//! # advsgm
//!
//! A complete, from-scratch Rust reproduction of **AdvSGM: Differentially
//! Private Graph Learning via Adversarial Skip-gram Model** (Zhang, Ye, Hu,
//! Xu — ICDE 2025), including every substrate the paper depends on and
//! every baseline it compares against.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`graph`] — graph storage, synthetic generators, Algorithm-2 sampling,
//!   random walks, link-prediction splits;
//! * [`linalg`] — dense matrices, stable sigmoids, the paper's Algorithm-1
//!   exponential clipping, SGD/Adam;
//! * [`privacy`] — Gaussian mechanism, subsampled-RDP accounting
//!   (Theorem 4), RDP↔(ε,δ) conversion (Theorem 3), budget stopping;
//! * [`core`] — the AdvSGM trainer (Algorithm 3) plus the SGM / DP-SGM /
//!   DP-ASGM / AdvSGM-NoDP ablations, sequential ([`core::Trainer`]) and
//!   sharded-parallel ([`core::ShardedTrainer`]);
//! * [`parallel`] — the vendored scoped thread pool + chunked parallel-for
//!   backing the sharded engine;
//! * [`baselines`] — DPGGAN, DPGVAE, GAP, DPAR;
//! * [`eval`] — link-prediction AUC, Affinity-Propagation clustering, MI;
//! * [`datasets`] — synthetic stand-ins for the paper's six datasets;
//! * [`store`] — embedding persistence (the `.aemb` format, see
//!   `docs/FORMAT.md`) and the query-serving [`store::EmbeddingStore`];
//!   the `advsgm` CLI binary (`train` / `query` / `info`) fronts it.
//!
//! # Quickstart
//!
//! ```
//! use advsgm::core::{AdvSgmConfig, ModelVariant, Trainer};
//! use advsgm::eval::linkpred::evaluate_split;
//! use advsgm::graph::generators::classic::karate_club;
//! use advsgm::graph::partition::link_prediction_split;
//!
//! let graph = karate_club();
//! let mut rng = advsgm::linalg::rng::seeded(7);
//! let split = link_prediction_split(&graph, 0.1, &mut rng).unwrap();
//!
//! let mut cfg = AdvSgmConfig::test_small(ModelVariant::AdvSgm);
//! cfg.epsilon = 6.0; // node-level (epsilon, delta)-DP target
//! let out = Trainer::fit(&split.train, cfg).unwrap();
//!
//! let auc = evaluate_split(&out.node_vectors, &split).unwrap();
//! assert!(auc >= 0.0 && auc <= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use advsgm_baselines as baselines;
pub use advsgm_core as core;
pub use advsgm_datasets as datasets;
pub use advsgm_eval as eval;
pub use advsgm_graph as graph;
pub use advsgm_linalg as linalg;
pub use advsgm_parallel as parallel;
pub use advsgm_privacy as privacy;
pub use advsgm_store as store;
