//! # advsgm
//!
//! A complete, from-scratch Rust reproduction of **AdvSGM: Differentially
//! Private Graph Learning via Adversarial Skip-gram Model** (Zhang, Ye, Hu,
//! Xu — ICDE 2025), including every substrate the paper depends on and
//! every baseline it compares against.
//!
//! # Quickstart
//!
//! The public surface is [`api`]: a typed pipeline covering the whole
//! train → persist → serve lifecycle behind one builder, one error type,
//! and no engine names.
//!
//! ```
//! use advsgm::api::{Dim, EmbeddingService, Epsilon, ModelVariant, PipelineBuilder};
//! use advsgm::graph::generators::classic::karate_club;
//!
//! let graph = karate_club();
//! let out = std::env::temp_dir().join("advsgm_lib_quickstart.aemb");
//!
//! let trained = PipelineBuilder::test_small(ModelVariant::AdvSgm)
//!     .dim(Dim::new(16)?)
//!     .epsilon(Epsilon::new(6.0)?)
//!     .build(&graph)?
//!     .train()?;
//! trained.save_embeddings(&out)?;
//!
//! let service = EmbeddingService::open(&out)?;
//! println!("released under: {}", service.privacy());
//! let neighbors = service.top_k(0, 5)?;
//! assert_eq!(neighbors.len(), 5);
//! # std::fs::remove_file(&out)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The `advsgm` CLI binary (`train` / `query` / `info`) fronts the same
//! pipeline from the shell.
//!
//! # Internals
//!
//! The workspace crates stay public for engine-level control (hand-wired
//! trainers, custom hooks, format introspection, baselines, paper
//! experiments) — the [`api`] pipeline is a facade over them, not a
//! replacement:
//!
//! * [`graph`] — graph storage, synthetic generators, Algorithm-2 sampling,
//!   random walks, link-prediction splits;
//! * [`linalg`] — dense matrices, stable sigmoids, the paper's Algorithm-1
//!   exponential clipping, SGD/Adam;
//! * [`privacy`] — Gaussian mechanism, subsampled-RDP accounting
//!   (Theorem 4), RDP↔(ε,δ) conversion (Theorem 3), budget stopping;
//! * [`core`] — the AdvSGM trainer (Algorithm 3) plus the SGM / DP-SGM /
//!   DP-ASGM / AdvSGM-NoDP ablations, sequential ([`core::Trainer`]) and
//!   sharded-parallel ([`core::ShardedTrainer`]);
//! * [`parallel`] — the vendored scoped thread pool + chunked parallel-for
//!   backing the sharded engine;
//! * [`baselines`] — DPGGAN, DPGVAE, GAP, DPAR;
//! * [`eval`] — link-prediction AUC, Affinity-Propagation clustering, MI;
//! * [`datasets`] — synthetic stand-ins for the paper's six datasets;
//! * [`store`] — embedding persistence (the `.aemb` format, see
//!   `docs/FORMAT.md`) and the query-serving [`store::EmbeddingStore`];
//! * [`attack`] — the empirical privacy audit: membership-inference
//!   attacks on released bytes with certified empirical-ε reporting
//!   (front door: [`api::audit_membership`] and the `advsgm audit`
//!   subcommand).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod api;
pub mod serve;

pub use advsgm_attack as attack;
pub use advsgm_baselines as baselines;
pub use advsgm_core as core;
pub use advsgm_datasets as datasets;
pub use advsgm_eval as eval;
pub use advsgm_graph as graph;
pub use advsgm_linalg as linalg;
pub use advsgm_parallel as parallel;
pub use advsgm_privacy as privacy;
pub use advsgm_store as store;
