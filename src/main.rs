//! The `advsgm` command-line interface: train embeddings (with live
//! progress and crash-safe checkpointing), persist them in the `.aemb`
//! format (`docs/FORMAT.md`), and serve queries from the file.
//!
//! ```text
//! advsgm train --out emb.aemb [--dataset ppi] [--scale 0.1] [--edges FILE]
//!              [--graph FILE.agph] [--partitions P]
//!              [--variant advsgm] [--epsilon 6] [--delta 1e-5] [--sigma 5]
//!              [--epochs N] [--dim 128] [--batch-size 128] [--lr 0.1]
//!              [--threads N] [--shard-size N] [--seed 0]
//!              [--checkpoint-every N] [--checkpoint PATH] [--resume PATH]
//! advsgm convert --out graph.agph [--dataset ppi] [--scale 0.1]
//!              [--edges FILE] [--seed 0] [--buckets P]
//! advsgm audit --out results/AUDIT_membership.json [--dataset ppi] [--scale 0.05]
//!              [--targets 3] [--runs 5] [--confidence 0.95] [--no-ablation]
//!              [model flags as for train]
//! advsgm query --store emb.aemb --node U [--top-k 10] [--threads N]
//!              [--index emb.aidx --approx 0.95]
//! advsgm query --remote HOST:PORT --node U [--top-k 10] [--approx 0.95]
//! advsgm query --store emb.aemb --pair U V
//! advsgm info  --store emb.aemb
//! advsgm index --store emb.aemb --out emb.aidx [--nlist N]
//! advsgm serve --store emb.aemb [--index emb.aidx | --build-index]
//!              [--addr 127.0.0.1:7878] [--threads N]
//! advsgm stop  --addr HOST:PORT
//! ```
//!
//! The CLI is a thin shell over `advsgm::api`: `parse_train` assembles a
//! [`PipelineBuilder`] (so configuration validation happens exactly once,
//! inside [`PipelineBuilder::build`]), `train` drives a [`Pipeline`] with
//! an observer for progress lines and the built-in checkpoint policy,
//! `query`/`info` serve from an [`EmbeddingService`], and
//! `index`/`serve`/`stop` front the sublinear serving stack
//! (`advsgm::serve`, DESIGN.md §12).
//!
//! `audit` runs the membership-inference harness
//! ([`advsgm::api::audit_membership`], DESIGN.md §13) against the same
//! pipeline and writes the `results/AUDIT_membership.json` artifact.
//!
//! `convert` writes a graph out as a partitioned `.agph` file
//! (`docs/FORMAT.md`), the disk-resident input of the out-of-core
//! training path: `train --graph g.agph --partitions P` runs the
//! partitioned engine, which keeps at most two embedding partitions in
//! memory while producing bitwise-identical releases (DESIGN.md §14).
//!
//! Argument parsing is hand-rolled like `advsgm-bench`'s: a handful of
//! subcommands and a score of flags do not justify a CLI dependency
//! outside the vendored crate set. Parsing is pure (`parse_train` /
//! `parse_convert` / `parse_audit` / `parse_query` / `parse_info` /
//! `parse_index` / `parse_serve` / `parse_stop` return argument structs)
//! so it is unit-tested without touching the filesystem.

use std::num::NonZeroUsize;
use std::process::ExitCode;

use advsgm::api::{
    audit_membership, AuditConfig, Checkpoint, Delta, Dim, EmbeddingService, Epsilon, ModelVariant,
    NoiseSigma, Pipeline, PipelineBuilder, PipelineEvent, StopReason,
};
use advsgm::datasets::{dataset_by_name, synthesize};
use advsgm::graph::io::read_edge_list_file;
use advsgm::graph::Graph;
use advsgm::serve::{client::ServeClient, ServeConfig, Server};
use advsgm::store::{IndexParams, IvfIndex};

const USAGE: &str = "usage:
  advsgm train --out PATH [--dataset NAME] [--scale F] [--edges FILE]
               [--graph FILE] [--partitions P]
               [--variant sgm|dp-sgm|dp-asgm|advsgm|advsgm-nodp|
                          signed-advsgm|sp-advsgm]
               [--epsilon F] [--delta F] [--sigma F] [--epochs N]
               [--dim N] [--batch-size N] [--lr F] [--threads N]
               [--shard-size N] [--seed N]
               [--checkpoint-every N] [--checkpoint PATH] [--resume PATH]
  advsgm convert --out PATH [--dataset NAME] [--scale F] [--edges FILE]
               [--seed N] [--buckets P]
  advsgm audit [--out PATH] [--dataset NAME] [--scale F] [--edges FILE]
               [--variant ...] [--epsilon F] [--delta F] [--sigma F]
               [--epochs N] [--dim N] [--batch-size N] [--lr F]
               [--seed N] [--threads N] [--targets N] [--runs N]
               [--test-fraction F] [--confidence F] [--no-ablation]
  advsgm query --store PATH --node U [--top-k K] [--threads N]
               [--index PATH --approx RECALL]
  advsgm query --remote HOST:PORT --node U [--top-k K] [--approx RECALL]
  advsgm query --store PATH --pair U V
  advsgm info  [--store PATH] [--host]
  advsgm index --store PATH --out PATH [--nlist N] [--kmeans-iters N]
               [--sample-queries N]
  advsgm serve --store PATH [--index PATH | --build-index]
               [--addr HOST:PORT] [--threads N] [--cache N]
               [--max-requests N] [--relaxed]
  advsgm stop  --addr HOST:PORT

train flags:
  --batch-size N        pairs per discriminator batch B (default 128)
  --lr F                learning rate for both eta_d and eta_g (default 0.1)
  --threads N           worker threads for the training engine; precedence:
                        an explicit N > 0 here overrides the ADVSGM_THREADS
                        environment variable, 0 (the default) defers to
                        ADVSGM_THREADS, and with both unset training runs on
                        1 thread
  --shard-size N        pairs per parallel shard; 0 = auto (batch/threads)
  --graph FILE          load the training graph from FILE: .agph files go
                        through the verified partitioned codec, anything
                        else is parsed as a whitespace edge-list
  --partitions P        train out of core with P node buckets: embeddings
                        live on disk and at most two bucket partitions are
                        resident at once, bitwise-identical to the in-RAM
                        engines; 0 (the default) trains in RAM. With
                        --resume this is a residency hint only (any P
                        continues the checkpointed trajectory exactly)
  --checkpoint-every N  write a resumable .actk checkpoint every N epochs
  --checkpoint PATH     checkpoint file (default: <out>.actk)
  --resume PATH         resume a checkpointed run bitwise-exactly; only
                        --out/--dataset/--scale/--edges/--epochs and the
                        checkpoint flags may accompany it (the rest of the
                        configuration is pinned by the checkpoint)

audit flags (model flags as for train; --dim 32 / --epochs 5 defaults):
  --out PATH            report path (default results/AUDIT_membership.json)
  --targets N           target edges in the audit panel (default 3)
  --runs N              training runs per world per edge (default 5; the
                        audit trains 2 * targets * runs releases)
  --test-fraction F     held-out split fraction supplying the panel
                        (default 0.1)
  --confidence F        Clopper-Pearson confidence level (default 0.95)
  --threads N           fan-out width for paired training runs; 0 = auto
                        (ADVSGM_THREADS, else 1); each run trains on 1
                        thread regardless
  --no-ablation         skip the sigma->0 (no-DP) sensitivity check

convert flags:
  --out PATH            the .agph file to write (required)
  --buckets P           node buckets to partition the edge sections into
                        (default 1); training may use any partition count
                        regardless of how the file was bucketed

serving flags:
  --index PATH          load a prebuilt .aidx ANN index (query: enables
                        --approx; serve: serves approximate requests)
  --approx RECALL       answer top-k through the ANN index at a recall
                        target in [0,1] (1.0 = exact); requires --index
                        locally, always available against --remote
  --remote HOST:PORT    query a running `advsgm serve` over the wire
                        instead of opening a store file
  --build-index         serve: build the index in memory at startup
                        instead of loading an .aidx file
  --cache N             serve: LRU capacity in cached top-k results
                        (default 1024; 0 disables)
  --max-requests N      serve: exit after answering N requests
  --relaxed             serve: score approximate (--approx < 1) candidate
                        scans with relaxed-tier SIMD kernels (reassociated
                        FMA); exact queries stay bitwise. Off by default
  --host                info: report detected CPU features and the kernel
                        backend the process would select (no store needed)

kernel backend (ADVSGM_KERNELS):
  every hot kernel dispatches through a runtime-selected backend:
  scalar | avx2 | neon. Precedence mirrors ADVSGM_THREADS: a set, valid,
  host-supported ADVSGM_KERNELS value wins; an unsupported or unknown
  value degrades to auto-detection (reported by `info --host`); unset
  auto-detects the strongest supported backend. Training and exact
  serving are bitwise-identical across backends";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let cmd = match args.next() {
        Some(c) => c,
        None => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let rest: Vec<String> = args.collect();
    let result = match cmd.as_str() {
        "train" => parse_train(&rest).and_then(cmd_train),
        "convert" => parse_convert(&rest).and_then(cmd_convert),
        "audit" => parse_audit(&rest).and_then(cmd_audit),
        "query" => parse_query(&rest).and_then(cmd_query),
        "info" => parse_info(&rest).and_then(cmd_info),
        "index" => parse_index(&rest).and_then(cmd_index),
        "serve" => parse_serve(&rest).and_then(cmd_serve),
        "stop" => parse_stop(&rest).and_then(cmd_stop),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("advsgm {cmd}: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Pulls the value following a flag out of the token list.
fn take_value(tokens: &[String], i: &mut usize, flag: &str) -> Result<String, String> {
    *i += 1;
    tokens
        .get(*i)
        .cloned()
        .ok_or_else(|| format!("{flag} needs a value"))
}

fn parse_num<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    value.parse().map_err(|e| format!("{flag}: {e}"))
}

fn parse_variant(name: &str) -> Result<ModelVariant, String> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "sgm" => ModelVariant::Sgm,
        "dp-sgm" | "dpsgm" => ModelVariant::DpSgm,
        "dp-asgm" | "dpasgm" => ModelVariant::DpAsgm,
        "advsgm" => ModelVariant::AdvSgm,
        "advsgm-nodp" | "advsgmnodp" => ModelVariant::AdvSgmNoDp,
        "signed-advsgm" | "signedadvsgm" => ModelVariant::SignedAdvSgm,
        "sp-advsgm" | "spadvsgm" => ModelVariant::SpAdvSgm,
        other => {
            return Err(format!(
                "unknown variant {other:?} (sgm, dp-sgm, dp-asgm, advsgm, advsgm-nodp, \
                 signed-advsgm, sp-advsgm)"
            ))
        }
    })
}

/// Parsed `advsgm train` arguments. The model configuration lives in a
/// [`PipelineBuilder`] so no code path can hold an `AdvSgmConfig` that
/// skipped the builder's validation.
#[derive(Debug, Clone)]
struct TrainArgs {
    out: String,
    dataset: String,
    scale: f64,
    edges: Option<String>,
    /// `--graph`: a graph file loaded by extension (`.agph` through the
    /// partitioned codec, anything else as an edge-list). Takes
    /// precedence over `--edges`.
    graph: Option<String>,
    /// `--partitions`: node buckets for the out-of-core engine; `0`
    /// trains in RAM. Not a model flag — the trajectory is
    /// partition-invariant, so it is legal alongside `--resume`.
    partitions: usize,
    builder: PipelineBuilder,
    /// `--epochs`, remembered separately so `--resume` can extend a run.
    epochs_explicit: Option<usize>,
    checkpoint_every: Option<NonZeroUsize>,
    checkpoint_path: Option<String>,
    resume: Option<String>,
    /// Model-configuration flags seen on the command line; `--resume`
    /// rejects them (the checkpoint pins the configuration).
    model_flags_seen: Vec<&'static str>,
}

fn parse_train(tokens: &[String]) -> Result<TrainArgs, String> {
    let mut args = TrainArgs {
        out: String::new(),
        dataset: "ppi".to_string(),
        scale: 0.1,
        edges: None,
        graph: None,
        partitions: 0,
        // A CLI run should finish in seconds by default; paper-scale epochs
        // remain one `--epochs 50` away.
        builder: PipelineBuilder::new(ModelVariant::AdvSgm).epochs(5),
        epochs_explicit: None,
        checkpoint_every: None,
        checkpoint_path: None,
        resume: None,
        model_flags_seen: Vec::new(),
    };
    let mut out: Option<String> = None;

    let mut i = 0;
    while i < tokens.len() {
        match tokens[i].as_str() {
            "--out" => out = Some(take_value(tokens, &mut i, "--out")?),
            "--dataset" => args.dataset = take_value(tokens, &mut i, "--dataset")?,
            "--scale" => {
                args.scale = parse_num(&take_value(tokens, &mut i, "--scale")?, "--scale")?;
                if !(args.scale > 0.0 && args.scale <= 1.0) {
                    return Err(format!("--scale must be in (0,1], got {}", args.scale));
                }
            }
            "--edges" => args.edges = Some(take_value(tokens, &mut i, "--edges")?),
            "--graph" => args.graph = Some(take_value(tokens, &mut i, "--graph")?),
            "--partitions" => {
                args.partitions =
                    parse_num(&take_value(tokens, &mut i, "--partitions")?, "--partitions")?;
            }
            "--variant" => {
                let v = parse_variant(&take_value(tokens, &mut i, "--variant")?)?;
                args.builder = args.builder.variant(v);
                args.model_flags_seen.push("--variant");
            }
            "--epsilon" => {
                let raw: f64 = parse_num(&take_value(tokens, &mut i, "--epsilon")?, "--epsilon")?;
                let eps = Epsilon::new(raw).map_err(|e| format!("--epsilon: {e}"))?;
                args.builder = args.builder.epsilon(eps);
                args.model_flags_seen.push("--epsilon");
            }
            "--delta" => {
                let raw: f64 = parse_num(&take_value(tokens, &mut i, "--delta")?, "--delta")?;
                let delta = Delta::new(raw).map_err(|e| format!("--delta: {e}"))?;
                args.builder = args.builder.delta(delta);
                args.model_flags_seen.push("--delta");
            }
            "--sigma" => {
                let raw: f64 = parse_num(&take_value(tokens, &mut i, "--sigma")?, "--sigma")?;
                let sigma = NoiseSigma::new(raw).map_err(|e| format!("--sigma: {e}"))?;
                args.builder = args.builder.sigma(sigma);
                args.model_flags_seen.push("--sigma");
            }
            "--epochs" => {
                let e: usize = parse_num(&take_value(tokens, &mut i, "--epochs")?, "--epochs")?;
                args.builder = args.builder.epochs(e);
                args.epochs_explicit = Some(e);
            }
            "--dim" => {
                let raw: usize = parse_num(&take_value(tokens, &mut i, "--dim")?, "--dim")?;
                let dim = Dim::new(raw).map_err(|e| format!("--dim: {e}"))?;
                args.builder = args.builder.dim(dim);
                args.model_flags_seen.push("--dim");
            }
            "--batch-size" => {
                let b: usize =
                    parse_num(&take_value(tokens, &mut i, "--batch-size")?, "--batch-size")?;
                if b == 0 {
                    return Err("--batch-size must be positive, got 0".into());
                }
                args.builder = args.builder.batch_size(b);
                args.model_flags_seen.push("--batch-size");
            }
            "--lr" => {
                let lr: f64 = parse_num(&take_value(tokens, &mut i, "--lr")?, "--lr")?;
                if !(lr > 0.0 && lr.is_finite()) {
                    return Err(format!("--lr must be positive and finite, got {lr}"));
                }
                // The paper sets eta_d = eta_g (Section VI-A); one flag
                // drives both.
                args.builder = args.builder.learning_rate(lr);
                args.model_flags_seen.push("--lr");
            }
            "--threads" => {
                // Maps to `AdvSgmConfig::with_threads` via the builder.
                // Precedence: an explicit N > 0 overrides ADVSGM_THREADS;
                // 0 (the default) defers to the environment, else 1.
                let n: usize = parse_num(&take_value(tokens, &mut i, "--threads")?, "--threads")?;
                args.builder = args.builder.threads(n);
                args.model_flags_seen.push("--threads");
            }
            "--shard-size" => {
                // 0 is meaningful (auto: divide the batch over threads).
                let n: usize =
                    parse_num(&take_value(tokens, &mut i, "--shard-size")?, "--shard-size")?;
                args.builder = args.builder.shard_size(n);
                args.model_flags_seen.push("--shard-size");
            }
            "--seed" => {
                let s: u64 = parse_num(&take_value(tokens, &mut i, "--seed")?, "--seed")?;
                args.builder = args.builder.seed(s);
                args.model_flags_seen.push("--seed");
            }
            "--checkpoint-every" => {
                let n: usize = parse_num(
                    &take_value(tokens, &mut i, "--checkpoint-every")?,
                    "--checkpoint-every",
                )?;
                args.checkpoint_every = Some(
                    NonZeroUsize::new(n)
                        .ok_or_else(|| "--checkpoint-every must be positive, got 0".to_string())?,
                );
            }
            "--checkpoint" => {
                args.checkpoint_path = Some(take_value(tokens, &mut i, "--checkpoint")?);
            }
            "--resume" => args.resume = Some(take_value(tokens, &mut i, "--resume")?),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
        i += 1;
    }
    args.out = out.ok_or_else(|| format!("--out is required\n{USAGE}"))?;
    if args.resume.is_some() && !args.model_flags_seen.is_empty() {
        return Err(format!(
            "--resume pins the model configuration from the checkpoint; \
             remove {} (only --out/--dataset/--scale/--edges/--epochs and \
             the checkpoint flags may accompany --resume)",
            args.model_flags_seen.join(", ")
        ));
    }
    Ok(args)
}

/// Parsed `advsgm convert` arguments: a graph source (as for `train`)
/// and the `.agph` file to write.
#[derive(Debug, Clone)]
struct ConvertArgs {
    out: String,
    dataset: String,
    scale: f64,
    edges: Option<String>,
    seed: u64,
    buckets: usize,
}

fn parse_convert(tokens: &[String]) -> Result<ConvertArgs, String> {
    let mut args = ConvertArgs {
        out: String::new(),
        dataset: "ppi".to_string(),
        scale: 0.1,
        edges: None,
        seed: 0,
        buckets: 1,
    };
    let mut out: Option<String> = None;

    let mut i = 0;
    while i < tokens.len() {
        match tokens[i].as_str() {
            "--out" => out = Some(take_value(tokens, &mut i, "--out")?),
            "--dataset" => args.dataset = take_value(tokens, &mut i, "--dataset")?,
            "--scale" => {
                args.scale = parse_num(&take_value(tokens, &mut i, "--scale")?, "--scale")?;
                if !(args.scale > 0.0 && args.scale <= 1.0) {
                    return Err(format!("--scale must be in (0,1], got {}", args.scale));
                }
            }
            "--edges" => args.edges = Some(take_value(tokens, &mut i, "--edges")?),
            "--seed" => args.seed = parse_num(&take_value(tokens, &mut i, "--seed")?, "--seed")?,
            "--buckets" => {
                args.buckets = parse_num(&take_value(tokens, &mut i, "--buckets")?, "--buckets")?;
                if args.buckets == 0 {
                    return Err("--buckets must be positive, got 0".into());
                }
            }
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
        i += 1;
    }
    args.out = out.ok_or_else(|| format!("--out is required\n{USAGE}"))?;
    Ok(args)
}

fn cmd_convert(args: ConvertArgs) -> Result<(), String> {
    let graph = build_graph(args.edges.as_deref(), &args.dataset, args.scale, args.seed)?;
    advsgm::store::save_agph(&args.out, &graph, args.buckets)
        .map_err(|e| format!("{}: {e}", args.out))?;
    let size = std::fs::metadata(&args.out).map(|m| m.len()).unwrap_or(0);
    println!(
        "wrote {}: {} nodes, {} edges in {} bucket section(s) ({})",
        args.out,
        graph.num_nodes(),
        graph.num_edges(),
        args.buckets,
        human_bytes(size as usize)
    );
    Ok(())
}

/// Parsed `advsgm audit` arguments: the training configuration under
/// audit (a [`PipelineBuilder`], like `train`) plus the harness geometry
/// (an [`AuditConfig`]).
#[derive(Debug, Clone)]
struct AuditArgs {
    out: String,
    dataset: String,
    scale: f64,
    edges: Option<String>,
    builder: PipelineBuilder,
    cfg: AuditConfig,
    ablation: bool,
}

fn parse_audit(tokens: &[String]) -> Result<AuditArgs, String> {
    let mut args = AuditArgs {
        out: "results/AUDIT_membership.json".to_string(),
        dataset: "ppi".to_string(),
        scale: 0.05,
        edges: None,
        // The audit trains 2 * targets * runs releases, so the default
        // model is the quick CLI shape (small dim, few epochs); paper
        // scale stays one `--dim 128 --epochs 50` away.
        builder: PipelineBuilder::new(ModelVariant::AdvSgm)
            .epochs(5)
            .dim(Dim::new(32).expect("32 is a valid dimension")),
        cfg: AuditConfig::new(0),
        ablation: true,
    };

    let mut i = 0;
    while i < tokens.len() {
        match tokens[i].as_str() {
            "--out" => args.out = take_value(tokens, &mut i, "--out")?,
            "--dataset" => args.dataset = take_value(tokens, &mut i, "--dataset")?,
            "--scale" => {
                args.scale = parse_num(&take_value(tokens, &mut i, "--scale")?, "--scale")?;
                if !(args.scale > 0.0 && args.scale <= 1.0) {
                    return Err(format!("--scale must be in (0,1], got {}", args.scale));
                }
            }
            "--edges" => args.edges = Some(take_value(tokens, &mut i, "--edges")?),
            "--variant" => {
                let v = parse_variant(&take_value(tokens, &mut i, "--variant")?)?;
                args.builder = args.builder.variant(v);
            }
            "--epsilon" => {
                let raw: f64 = parse_num(&take_value(tokens, &mut i, "--epsilon")?, "--epsilon")?;
                let eps = Epsilon::new(raw).map_err(|e| format!("--epsilon: {e}"))?;
                args.builder = args.builder.epsilon(eps);
            }
            "--delta" => {
                let raw: f64 = parse_num(&take_value(tokens, &mut i, "--delta")?, "--delta")?;
                let delta = Delta::new(raw).map_err(|e| format!("--delta: {e}"))?;
                args.builder = args.builder.delta(delta);
                // The empirical bound is stated at the training delta.
                args.cfg.delta = raw;
            }
            "--sigma" => {
                let raw: f64 = parse_num(&take_value(tokens, &mut i, "--sigma")?, "--sigma")?;
                let sigma = NoiseSigma::new(raw).map_err(|e| format!("--sigma: {e}"))?;
                args.builder = args.builder.sigma(sigma);
            }
            "--epochs" => {
                let e: usize = parse_num(&take_value(tokens, &mut i, "--epochs")?, "--epochs")?;
                args.builder = args.builder.epochs(e);
            }
            "--dim" => {
                let raw: usize = parse_num(&take_value(tokens, &mut i, "--dim")?, "--dim")?;
                let dim = Dim::new(raw).map_err(|e| format!("--dim: {e}"))?;
                args.builder = args.builder.dim(dim);
            }
            "--batch-size" => {
                let b: usize =
                    parse_num(&take_value(tokens, &mut i, "--batch-size")?, "--batch-size")?;
                if b == 0 {
                    return Err("--batch-size must be positive, got 0".into());
                }
                args.builder = args.builder.batch_size(b);
            }
            "--lr" => {
                let lr: f64 = parse_num(&take_value(tokens, &mut i, "--lr")?, "--lr")?;
                if !(lr > 0.0 && lr.is_finite()) {
                    return Err(format!("--lr must be positive and finite, got {lr}"));
                }
                args.builder = args.builder.learning_rate(lr);
            }
            "--seed" => {
                let s: u64 = parse_num(&take_value(tokens, &mut i, "--seed")?, "--seed")?;
                // One seed drives both the graph synthesis/panel draw and
                // (through the harness's derivation chain) every run.
                args.builder = args.builder.seed(s);
                args.cfg.seed = s;
            }
            "--threads" => {
                // Unlike train, this is the *fan-out* width over paired
                // runs; each individual run trains sequentially.
                args.cfg.threads =
                    parse_num(&take_value(tokens, &mut i, "--threads")?, "--threads")?;
            }
            "--targets" => {
                args.cfg.targets =
                    parse_num(&take_value(tokens, &mut i, "--targets")?, "--targets")?;
            }
            "--runs" => {
                args.cfg.runs_per_world =
                    parse_num(&take_value(tokens, &mut i, "--runs")?, "--runs")?;
            }
            "--test-fraction" => {
                args.cfg.test_fraction = parse_num(
                    &take_value(tokens, &mut i, "--test-fraction")?,
                    "--test-fraction",
                )?;
            }
            "--confidence" => {
                args.cfg.confidence =
                    parse_num(&take_value(tokens, &mut i, "--confidence")?, "--confidence")?;
            }
            "--no-ablation" => args.ablation = false,
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
        i += 1;
    }
    // Geometry/statistics violations get the harness's typed messages at
    // parse time rather than after graph synthesis.
    args.cfg.validate().map_err(|e| e.to_string())?;
    Ok(args)
}

fn cmd_audit(args: AuditArgs) -> Result<(), String> {
    let graph = build_graph(
        args.edges.as_deref(),
        &args.dataset,
        args.scale,
        args.cfg.seed,
    )?;
    let per_condition = 2 * args.cfg.targets * args.cfg.runs_per_world;
    let conditions = if args.ablation { 2 } else { 1 };
    println!(
        "auditing {} ({} target edge(s) x {} run(s)/world x 2 worlds = {} training runs{})...",
        args.builder.config().variant.paper_name(),
        args.cfg.targets,
        args.cfg.runs_per_world,
        per_condition * conditions,
        if args.ablation {
            " incl. sigma->0 ablation"
        } else {
            ""
        }
    );
    let start = std::time::Instant::now();
    let report = audit_membership(&graph, &args.builder, &args.cfg, args.ablation)
        .map_err(|e| e.to_string())?;
    report.write(&args.out).map_err(|e| e.to_string())?;

    println!("audited in {:.2?}:", start.elapsed());
    for a in &report.audit.attacks {
        println!(
            "  {:<18} tpr {:.3}  fpr {:.3}  certified eps >= {:.4}",
            a.name, a.tpr, a.fpr, a.empirical_epsilon
        );
    }
    match report.audit.stamped_epsilon {
        Some(stamp) => println!(
            "  empirical eps >= {:.4} vs stamped eps = {:.4} -> {}",
            report.audit.empirical_epsilon, stamp, report.verdict
        ),
        None => println!(
            "  empirical eps >= {:.4} (release is unstamped) -> {}",
            report.audit.empirical_epsilon, report.verdict
        ),
    }
    if let Some(ablation) = &report.ablation {
        println!(
            "  sigma->0 ablation: empirical eps >= {:.4} (attack power check)",
            ablation.empirical_epsilon
        );
    }
    println!("wrote {}", args.out);
    Ok(())
}

/// What an `advsgm query` invocation asks for.
#[derive(Debug, Clone, PartialEq, Eq)]
enum QueryTarget {
    /// Top-k neighbors of one node.
    Node { node: usize, top_k: usize },
    /// The Eq. 2 link score of one pair.
    Pair { u: usize, v: usize },
}

/// Where an `advsgm query` resolves: a local store file or a running
/// `advsgm serve` endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
enum QuerySource {
    /// Open a local `.aemb` (optionally with an `.aidx` alongside).
    Local {
        store: String,
        index: Option<String>,
    },
    /// Talk to a serving endpoint over the wire protocol.
    Remote { addr: String },
}

/// Parsed `advsgm query` arguments.
#[derive(Debug, Clone)]
struct QueryArgs {
    source: QuerySource,
    target: QueryTarget,
    threads: usize,
    /// Recall target for approximate top-k; `None` = exact.
    approx: Option<f64>,
}

fn parse_query(tokens: &[String]) -> Result<QueryArgs, String> {
    let mut path: Option<String> = None;
    let mut index: Option<String> = None;
    let mut remote: Option<String> = None;
    let mut node: Option<usize> = None;
    let mut pair: Option<(usize, usize)> = None;
    let mut top_k = 10usize;
    let mut threads = 0usize;
    let mut approx: Option<f64> = None;

    let mut i = 0;
    while i < tokens.len() {
        match tokens[i].as_str() {
            "--store" => path = Some(take_value(tokens, &mut i, "--store")?),
            "--index" => index = Some(take_value(tokens, &mut i, "--index")?),
            "--remote" => remote = Some(take_value(tokens, &mut i, "--remote")?),
            "--node" => node = Some(parse_num(&take_value(tokens, &mut i, "--node")?, "--node")?),
            "--pair" => {
                let u: usize = parse_num(&take_value(tokens, &mut i, "--pair")?, "--pair")?;
                let v: usize = parse_num(&take_value(tokens, &mut i, "--pair")?, "--pair")?;
                pair = Some((u, v));
            }
            "--top-k" => {
                top_k = parse_num(&take_value(tokens, &mut i, "--top-k")?, "--top-k")?;
            }
            "--threads" => {
                threads = parse_num(&take_value(tokens, &mut i, "--threads")?, "--threads")?;
            }
            "--approx" => {
                let r: f64 = parse_num(&take_value(tokens, &mut i, "--approx")?, "--approx")?;
                if !(0.0..=1.0).contains(&r) {
                    return Err(format!("--approx must be in [0,1], got {r}"));
                }
                approx = Some(r);
            }
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
        i += 1;
    }
    let source = match (remote, path) {
        (Some(_), Some(_)) => {
            return Err("pass either --store PATH or --remote HOST:PORT, not both".into())
        }
        (Some(addr), None) => {
            if index.is_some() {
                return Err("--index is a local-store flag; the server owns its index".into());
            }
            if threads != 0 {
                return Err("--threads is a local-store flag; the server owns its pool".into());
            }
            QuerySource::Remote { addr }
        }
        (None, Some(store)) => QuerySource::Local { store, index },
        (None, None) => {
            return Err(format!("--store or --remote is required\n{USAGE}"));
        }
    };
    if approx.is_some() && matches!(source, QuerySource::Local { index: None, .. }) {
        return Err("--approx needs an ANN index: pass --index PATH (or query --remote)".into());
    }
    let target = match (pair, node) {
        (Some(_), Some(_)) => {
            return Err("pass either --node U or --pair U V, not both".into());
        }
        (Some((u, v)), None) => QueryTarget::Pair { u, v },
        (None, Some(node)) => QueryTarget::Node { node, top_k },
        (None, None) => return Err(format!("need --node U or --pair U V\n{USAGE}")),
    };
    Ok(QueryArgs {
        source,
        target,
        threads,
        approx,
    })
}

/// Parsed `advsgm info` arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
struct InfoArgs {
    store: Option<String>,
    host: bool,
}

fn parse_info(tokens: &[String]) -> Result<InfoArgs, String> {
    let mut path: Option<String> = None;
    let mut host = false;
    let mut i = 0;
    while i < tokens.len() {
        match tokens[i].as_str() {
            "--store" => path = Some(take_value(tokens, &mut i, "--store")?),
            "--host" => host = true,
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
        i += 1;
    }
    if path.is_none() && !host {
        return Err(format!("pass --store PATH and/or --host\n{USAGE}"));
    }
    Ok(InfoArgs { store: path, host })
}

/// Parsed `advsgm index` arguments.
#[derive(Debug, Clone, PartialEq)]
struct IndexArgs {
    store: String,
    out: String,
    params: IndexParams,
}

fn parse_index(tokens: &[String]) -> Result<IndexArgs, String> {
    let mut store: Option<String> = None;
    let mut out: Option<String> = None;
    let mut params = IndexParams::default();
    let mut i = 0;
    while i < tokens.len() {
        match tokens[i].as_str() {
            "--store" => store = Some(take_value(tokens, &mut i, "--store")?),
            "--out" => out = Some(take_value(tokens, &mut i, "--out")?),
            "--nlist" => {
                params.nlist = parse_num(&take_value(tokens, &mut i, "--nlist")?, "--nlist")?;
            }
            "--kmeans-iters" => {
                let n: usize = parse_num(
                    &take_value(tokens, &mut i, "--kmeans-iters")?,
                    "--kmeans-iters",
                )?;
                if n == 0 {
                    return Err("--kmeans-iters must be positive, got 0".into());
                }
                params.kmeans_iters = n;
            }
            "--sample-queries" => {
                let n: usize = parse_num(
                    &take_value(tokens, &mut i, "--sample-queries")?,
                    "--sample-queries",
                )?;
                if n == 0 {
                    return Err("--sample-queries must be positive, got 0".into());
                }
                params.sample_queries = n;
            }
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
        i += 1;
    }
    Ok(IndexArgs {
        store: store.ok_or_else(|| format!("--store is required\n{USAGE}"))?,
        out: out.ok_or_else(|| format!("--out is required\n{USAGE}"))?,
        params,
    })
}

/// Parsed `advsgm serve` arguments.
#[derive(Debug, Clone, PartialEq)]
struct ServeArgs {
    store: String,
    index: Option<String>,
    build_index: bool,
    addr: String,
    threads: usize,
    cache: usize,
    max_requests: Option<u64>,
    relaxed: bool,
}

fn parse_serve(tokens: &[String]) -> Result<ServeArgs, String> {
    let mut args = ServeArgs {
        store: String::new(),
        index: None,
        build_index: false,
        addr: "127.0.0.1:7878".to_string(),
        threads: 0,
        cache: 1024,
        max_requests: None,
        relaxed: false,
    };
    let mut store: Option<String> = None;
    let mut i = 0;
    while i < tokens.len() {
        match tokens[i].as_str() {
            "--store" => store = Some(take_value(tokens, &mut i, "--store")?),
            "--index" => args.index = Some(take_value(tokens, &mut i, "--index")?),
            "--build-index" => args.build_index = true,
            "--addr" => args.addr = take_value(tokens, &mut i, "--addr")?,
            "--threads" => {
                args.threads = parse_num(&take_value(tokens, &mut i, "--threads")?, "--threads")?;
            }
            "--cache" => {
                args.cache = parse_num(&take_value(tokens, &mut i, "--cache")?, "--cache")?;
            }
            "--max-requests" => {
                let n: u64 = parse_num(
                    &take_value(tokens, &mut i, "--max-requests")?,
                    "--max-requests",
                )?;
                if n == 0 {
                    return Err("--max-requests must be positive, got 0".into());
                }
                args.max_requests = Some(n);
            }
            "--relaxed" => args.relaxed = true,
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
        i += 1;
    }
    if args.index.is_some() && args.build_index {
        return Err("pass either --index PATH or --build-index, not both".into());
    }
    args.store = store.ok_or_else(|| format!("--store is required\n{USAGE}"))?;
    Ok(args)
}

/// Parsed `advsgm stop` arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
struct StopArgs {
    addr: String,
}

fn parse_stop(tokens: &[String]) -> Result<StopArgs, String> {
    let mut addr: Option<String> = None;
    let mut i = 0;
    while i < tokens.len() {
        match tokens[i].as_str() {
            "--addr" => addr = Some(take_value(tokens, &mut i, "--addr")?),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
        i += 1;
    }
    Ok(StopArgs {
        addr: addr.ok_or_else(|| format!("--addr is required\n{USAGE}"))?,
    })
}

/// Builds a graph from `--edges` or the named synthetic dataset
/// (scaled), announcing what was loaded. Shared by `train` and `audit`.
fn build_graph(edges: Option<&str>, dataset: &str, scale: f64, seed: u64) -> Result<Graph, String> {
    match edges {
        Some(path) => {
            // Dispatch on the extension: `.agph` goes through the
            // verified partitioned codec, anything else is an edge-list.
            let g = if std::path::Path::new(path)
                .extension()
                .is_some_and(|e| e == "agph")
            {
                advsgm::store::load_agph(path).map_err(|e| format!("--graph {path}: {e}"))?
            } else {
                read_edge_list_file(path, None).map_err(|e| format!("--edges {path}: {e}"))?
            };
            println!(
                "loaded {path}: {} nodes, {} edges",
                g.num_nodes(),
                g.num_edges()
            );
            Ok(g)
        }
        None => {
            let d = dataset_by_name(dataset).ok_or_else(|| {
                format!(
                    "unknown dataset {dataset:?} (PPI, Facebook, Wiki, Blog, Epinions, DBLP, \
                     Polarity)"
                )
            })?;
            let spec = d.spec().scaled(scale);
            let g = synthesize(&spec, seed);
            println!(
                "synthesized {} at scale {scale}: {} nodes, {} edges",
                d.name(),
                g.num_nodes(),
                g.num_edges()
            );
            Ok(g)
        }
    }
}

fn cmd_train(args: TrainArgs) -> Result<(), String> {
    let graph_source = args.graph.as_deref().or(args.edges.as_deref());
    match args.resume.clone() {
        None => {
            let graph = build_graph(
                graph_source,
                &args.dataset,
                args.scale,
                args.builder.config().seed,
            )?;
            let pipeline = args
                .builder
                .clone()
                .partitions(args.partitions)
                .build(&graph)
                .map_err(|e| e.to_string())?;
            run_training(&args, pipeline)
        }
        Some(resume_path) => {
            let mut ckpt = Checkpoint::load(&resume_path)
                .map_err(|e| format!("--resume {resume_path}: {e}"))?;
            if let Some(e) = args.epochs_explicit {
                // Extending (or shortening, down to the completed count)
                // the schedule is the one legal override: batch draws
                // never depend on the total epoch count.
                ckpt.extend_epochs(e).map_err(|e| e.to_string())?;
            }
            if args.partitions > 0 {
                // A residency hint only: out-of-core checkpoints resume
                // under any bucket count, bitwise-exactly.
                ckpt.set_partitions(args.partitions);
            }
            // The graph must be the checkpoint's graph; for synthetic
            // datasets that means the checkpoint's seed, and resume
            // re-verifies the stored fingerprint either way.
            let graph = build_graph(graph_source, &args.dataset, args.scale, ckpt.seed())?;
            println!(
                "resumed {resume_path}: {}/{} epochs done, {} discriminator updates",
                ckpt.epochs_done(),
                ckpt.config().epochs,
                ckpt.disc_updates()
            );
            let pipeline = Pipeline::resume_from(&graph, ckpt).map_err(|e| e.to_string())?;
            run_training(&args, pipeline)
        }
    }
}

/// Drives a (fresh or resumed) pipeline to completion with progress +
/// checkpoint reporting, then persists the released store.
fn run_training(args: &TrainArgs, pipeline: Pipeline<'_>) -> Result<(), String> {
    let cfg = pipeline.config().clone();
    println!(
        "training {} (dim {}, {} epochs, batch {}, lr {}, {} thread(s))...",
        cfg.variant.paper_name(),
        cfg.dim,
        cfg.epochs,
        cfg.batch_size,
        cfg.eta_d,
        pipeline.threads()
    );
    let mut pipeline = pipeline.observe(|event| match event {
        PipelineEvent::Epoch(e) => {
            let spend = match &e.spend {
                Some(s) => format!("  eps {:.4}  delta {:.2e}", s.epsilon_spent, s.delta_spent),
                None => String::new(),
            };
            match (e.stop, e.loss) {
                (Some(StopReason::BudgetExhausted), _) => {
                    println!(
                        "epoch {:>3}/{}: privacy budget exhausted after {} updates{spend}",
                        e.epoch + 1,
                        e.epochs_total,
                        e.disc_updates
                    );
                }
                (_, Some(loss)) => {
                    println!(
                        "epoch {:>3}/{}  |L_Nov| {loss:.4}{spend}",
                        e.epoch + 1,
                        e.epochs_total
                    );
                }
                (_, None) => {}
            }
        }
        PipelineEvent::CheckpointSaved { path, epochs_done } => {
            println!("checkpoint: wrote {} (epoch {epochs_done})", path.display());
        }
        _ => {}
    });
    if let Some(every) = args.checkpoint_every {
        let path = args
            .checkpoint_path
            .clone()
            .unwrap_or_else(|| format!("{}.actk", args.out));
        pipeline = pipeline.checkpoint_every(every, path);
    }

    let start = std::time::Instant::now();
    let trained = pipeline.train().map_err(|e| e.to_string())?;
    let outcome = trained.outcome();
    println!(
        "trained in {:.2?}: {} epochs, {} discriminator updates{}{}",
        start.elapsed(),
        outcome.epochs_run,
        outcome.disc_updates,
        if outcome.stopped_by_budget {
            " (stopped by privacy budget)"
        } else {
            ""
        },
        if trained.checkpoints_written() > 0 {
            format!(", {} checkpoint(s) written", trained.checkpoints_written())
        } else {
            String::new()
        }
    );

    // Serialise once; the same buffer provides the file and the size line.
    let bytes = trained.store().to_bytes();
    std::fs::write(&args.out, &bytes).map_err(|e| format!("{}: {e}", args.out))?;
    println!(
        "saved {} nodes x {} dims to {} ({}); privacy: {}",
        trained.store().len(),
        trained.store().dim(),
        args.out,
        human_bytes(bytes.len()),
        trained.store().meta()
    );
    Ok(())
}

fn print_neighbors(node: usize, top_k: usize, neighbors: &[advsgm::store::Neighbor]) {
    println!("top {top_k} neighbors of node {node}:");
    println!("{:>10}  {:>10}  {:>14}", "row", "id", "score");
    for n in neighbors {
        println!("{:>10}  {:>10}  {:>14.6}", n.node, n.id, n.score);
    }
}

fn cmd_query(args: QueryArgs) -> Result<(), String> {
    match &args.source {
        QuerySource::Remote { addr } => {
            let mut client =
                ServeClient::connect(addr.as_str()).map_err(|e| format!("{addr}: {e}"))?;
            match args.target {
                QueryTarget::Pair { u, v } => {
                    let s = client
                        .score(u as u64, v as u64)
                        .map_err(|e| e.to_string())?;
                    println!("score({u}, {v}) = {s}");
                }
                QueryTarget::Node { node, top_k } => {
                    let neighbors = match args.approx {
                        Some(recall) => client.top_k_approx(node as u64, top_k as u32, recall),
                        None => client.top_k(node as u64, top_k as u32),
                    }
                    .map_err(|e| e.to_string())?;
                    print_neighbors(node, top_k, &neighbors);
                }
            }
        }
        QuerySource::Local { store, index } => {
            let mut service = EmbeddingService::open_with_threads(store, args.threads)
                .map_err(|e| e.to_string())?;
            if let Some(index_path) = index {
                let idx = IvfIndex::load(index_path).map_err(|e| format!("{index_path}: {e}"))?;
                service.attach_index(idx).map_err(|e| e.to_string())?;
            }
            match args.target {
                QueryTarget::Pair { u, v } => {
                    let s = service.score(u, v).map_err(|e| e.to_string())?;
                    println!("score({u}, {v}) = {s}");
                }
                QueryTarget::Node { node, top_k } => {
                    let neighbors = match args.approx {
                        Some(recall) => {
                            let got = service
                                .top_k_approx_with_stats(node, top_k, recall)
                                .map_err(|e| e.to_string())?;
                            println!(
                                "approx (recall target {recall}): scanned {} of {} rows",
                                got.rows_scanned,
                                service.len().saturating_sub(1)
                            );
                            got.neighbors
                        }
                        None => service
                            .batch_top_k(&[node], top_k)
                            .map_err(|e| e.to_string())?
                            .remove(0),
                    };
                    print_neighbors(node, top_k, &neighbors);
                }
            }
        }
    }
    Ok(())
}

fn cmd_index(args: IndexArgs) -> Result<(), String> {
    let store = advsgm::store::EmbeddingStore::load(&args.store)
        .map_err(|e| format!("{}: {e}", args.store))?;
    println!(
        "building IVF index over {} nodes x {} dims...",
        store.len(),
        store.dim()
    );
    let start = std::time::Instant::now();
    let index = IvfIndex::build(&store, args.params).map_err(|e| e.to_string())?;
    let bytes = index.to_bytes();
    std::fs::write(&args.out, &bytes).map_err(|e| format!("{}: {e}", args.out))?;
    println!(
        "built in {:.2?}: {} clusters, {} always-scanned row(s); wrote {} ({})",
        start.elapsed(),
        index.nlist(),
        index.always_scanned(),
        args.out,
        human_bytes(bytes.len())
    );
    for &(target, nprobe) in index.calibration() {
        println!(
            "  recall >= {target:.2}: probe {nprobe}/{} clusters",
            index.nlist()
        );
    }
    Ok(())
}

fn cmd_serve(args: ServeArgs) -> Result<(), String> {
    let mut service = EmbeddingService::open_with_threads(&args.store, args.threads)
        .map_err(|e| format!("{}: {e}", args.store))?;
    if let Some(index_path) = &args.index {
        let idx = IvfIndex::load(index_path).map_err(|e| format!("{index_path}: {e}"))?;
        service.attach_index(idx).map_err(|e| e.to_string())?;
        println!("loaded index {index_path}");
    } else if args.build_index {
        let start = std::time::Instant::now();
        let idx = service
            .build_index(IndexParams::default())
            .map_err(|e| e.to_string())?;
        println!(
            "built in-memory index in {:.2?} ({} clusters)",
            start.elapsed(),
            idx.nlist()
        );
    }
    if args.relaxed {
        service.enable_relaxed_kernels();
    }
    let nodes = service.len();
    let indexed = service.index().is_some();
    let (kernel_backend, kernel_source) = advsgm::linalg::backend::resolution();
    println!(
        "kernel backend {kernel_backend} ({}){}",
        kernel_source.describe(),
        if args.relaxed {
            "; relaxed tier on approximate scans"
        } else {
            ""
        }
    );
    let config = ServeConfig {
        cache_capacity: args.cache,
        max_requests: args.max_requests,
        ..ServeConfig::default()
    };
    let server = Server::bind(service, args.addr.as_str(), config)
        .map_err(|e| format!("{}: {e}", args.addr))?;
    println!(
        "serving {} nodes on {} ({}; stop with `advsgm stop --addr {}`)",
        nodes,
        server.local_addr(),
        if indexed {
            "exact + approximate"
        } else {
            "exact only"
        },
        server.local_addr()
    );
    let stats = server.wait();
    println!(
        "served {} request(s) in {} batch(es): {} cache hit(s), {} error(s)",
        stats.requests, stats.batches, stats.cache_hits, stats.errors
    );
    Ok(())
}

fn cmd_stop(args: StopArgs) -> Result<(), String> {
    let mut client =
        ServeClient::connect(args.addr.as_str()).map_err(|e| format!("{}: {e}", args.addr))?;
    client.shutdown().map_err(|e| e.to_string())?;
    println!("server at {} acknowledged shutdown", args.addr);
    Ok(())
}

fn cmd_info(args: InfoArgs) -> Result<(), String> {
    if args.host {
        let (backend, source) = advsgm::linalg::backend::resolution();
        println!("host:");
        println!("  arch        {}", std::env::consts::ARCH);
        let features: Vec<String> = advsgm::linalg::backend::host_features()
            .into_iter()
            .map(|(name, detected)| {
                if detected {
                    name.to_string()
                } else {
                    format!("!{name}")
                }
            })
            .collect();
        println!("  features    {}", features.join(" "));
        println!("  kernels     {backend} ({})", source.describe());
    }
    let Some(path) = &args.store else {
        return Ok(());
    };
    // `info` is deliberately format-level introspection, so it reads the
    // raw bytes and the internals `format` module alongside the service.
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    let size = bytes.len();
    let service = EmbeddingService::from_store(
        advsgm::store::EmbeddingStore::from_bytes(&bytes).map_err(|e| e.to_string())?,
    );
    println!("{path}:");
    println!(
        "  format      .aemb v{}",
        advsgm::store::format::FORMAT_VERSION
    );
    println!("  size        {}", human_bytes(size));
    println!("  checksum    ok (crc32)");
    println!("  nodes       {}", service.len());
    println!("  dim         {}", service.dim());
    println!("  privacy     {}", service.privacy());
    Ok(())
}

fn human_bytes(n: usize) -> String {
    if n >= 1 << 20 {
        format!("{:.1} MiB", n as f64 / (1 << 20) as f64)
    } else if n >= 1 << 10 {
        format!("{:.1} KiB", n as f64 / (1 << 10) as f64)
    } else {
        format!("{n} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    // ---- train ----

    #[test]
    fn train_happy_path_sets_every_flag() {
        let a = parse_train(&toks(
            "--out e.aemb --dataset wiki --scale 0.5 --variant dp-sgm --epsilon 2 \
             --delta 1e-6 --sigma 3 --epochs 7 --dim 32 --batch-size 64 --lr 0.05 \
             --threads 4 --shard-size 16 --seed 9 --checkpoint-every 2 --checkpoint c.actk",
        ))
        .unwrap();
        assert_eq!(a.out, "e.aemb");
        assert_eq!(a.dataset, "wiki");
        assert_eq!(a.scale, 0.5);
        let cfg = a.builder.config();
        assert_eq!(cfg.variant, ModelVariant::DpSgm);
        assert_eq!(cfg.epsilon, 2.0);
        assert_eq!(cfg.delta, 1e-6);
        assert_eq!(cfg.sigma, 3.0);
        assert_eq!(cfg.epochs, 7);
        assert_eq!(a.epochs_explicit, Some(7));
        assert_eq!(cfg.dim, 32);
        assert_eq!(cfg.batch_size, 64);
        assert_eq!(cfg.eta_d, 0.05);
        assert_eq!(cfg.eta_g, 0.05, "--lr drives both learning rates");
        assert_eq!(cfg.num_threads, 4);
        assert_eq!(cfg.shard_size, 16);
        assert_eq!(cfg.seed, 9);
        assert_eq!(a.checkpoint_every.map(NonZeroUsize::get), Some(2));
        assert_eq!(a.checkpoint_path.as_deref(), Some("c.actk"));
        cfg.validate().unwrap();
    }

    #[test]
    fn train_defaults_are_quick() {
        let a = parse_train(&toks("--out e.aemb")).unwrap();
        assert_eq!(a.builder.config().epochs, 5);
        assert_eq!(a.epochs_explicit, None);
        assert_eq!(a.builder.config().batch_size, 128);
        assert_eq!(a.checkpoint_every, None);
        assert!(a.resume.is_none());
    }

    #[test]
    fn train_requires_out() {
        let err = parse_train(&toks("--dataset ppi")).unwrap_err();
        assert!(err.contains("--out is required"), "{err}");
    }

    #[test]
    fn train_rejects_unknown_flag() {
        let err = parse_train(&toks("--out e.aemb --bogus 3")).unwrap_err();
        assert!(err.contains("unknown flag --bogus"), "{err}");
    }

    #[test]
    fn train_rejects_missing_value() {
        for flag in ["--out", "--epochs", "--batch-size", "--lr", "--resume"] {
            let err = parse_train(&toks(flag)).unwrap_err();
            assert!(err.contains("needs a value"), "{flag}: {err}");
        }
    }

    #[test]
    fn train_rejects_out_of_range_numerics() {
        for (cmd, needle) in [
            ("--out e --scale 0", "--scale must be in (0,1]"),
            ("--out e --scale 1.5", "--scale must be in (0,1]"),
            ("--out e --batch-size 0", "--batch-size must be positive"),
            ("--out e --lr 0", "--lr must be positive"),
            ("--out e --lr -0.5", "--lr must be positive"),
            ("--out e --lr inf", "--lr must be positive and finite"),
            (
                "--out e --checkpoint-every 0",
                "--checkpoint-every must be positive",
            ),
        ] {
            let err = parse_train(&toks(cmd)).unwrap_err();
            assert!(err.contains(needle), "{cmd}: {err}");
        }
    }

    #[test]
    fn train_rejects_typed_parameter_violations() {
        // The api newtypes reject these at parse time — the flag name and
        // the api's own constraint both appear in the message.
        for (cmd, needle) in [
            ("--out e --epsilon 0", "invalid parameter epsilon"),
            ("--out e --epsilon -2", "invalid parameter epsilon"),
            ("--out e --epsilon inf", "invalid parameter epsilon"),
            ("--out e --delta 0", "invalid parameter delta"),
            ("--out e --delta 1", "invalid parameter delta"),
            ("--out e --sigma 0", "invalid parameter sigma"),
            ("--out e --dim 0", "invalid parameter dim"),
        ] {
            let err = parse_train(&toks(cmd)).unwrap_err();
            assert!(err.contains(needle), "{cmd}: {err}");
            let flag = cmd.split_whitespace().nth(2).unwrap();
            assert!(err.contains(flag), "{cmd}: {err}");
        }
    }

    #[test]
    fn train_parses_graph_and_partitions() {
        let a = parse_train(&toks("--out e.aemb --graph g.agph --partitions 4")).unwrap();
        assert_eq!(a.graph.as_deref(), Some("g.agph"));
        assert_eq!(a.partitions, 4);
        // Not model flags: the trajectory is partition-invariant, so both
        // stay legal alongside --resume.
        let a = parse_train(&toks(
            "--out e.aemb --resume c.actk --graph g.agph --partitions 2",
        ))
        .unwrap();
        assert_eq!(a.partitions, 2);
        assert!(a.resume.is_some());
    }

    // ---- convert ----

    #[test]
    fn convert_happy_path_sets_every_flag() {
        let a = parse_convert(&toks(
            "--out g.agph --dataset wiki --scale 0.5 --seed 9 --buckets 8",
        ))
        .unwrap();
        assert_eq!(a.out, "g.agph");
        assert_eq!(a.dataset, "wiki");
        assert_eq!(a.scale, 0.5);
        assert_eq!(a.seed, 9);
        assert_eq!(a.buckets, 8);
        assert!(a.edges.is_none());
    }

    #[test]
    fn convert_defaults_and_rejections() {
        let a = parse_convert(&toks("--out g.agph")).unwrap();
        assert_eq!((a.buckets, a.seed, a.scale), (1, 0, 0.1));
        let err = parse_convert(&toks("--dataset ppi")).unwrap_err();
        assert!(err.contains("--out is required"), "{err}");
        let err = parse_convert(&toks("--out g.agph --buckets 0")).unwrap_err();
        assert!(err.contains("--buckets must be positive"), "{err}");
        let err = parse_convert(&toks("--out g.agph --bogus 1")).unwrap_err();
        assert!(err.contains("unknown flag --bogus"), "{err}");
    }

    #[test]
    fn train_rejects_unparseable_numerics() {
        for cmd in [
            "--out e --epochs many",
            "--out e --dim 3.5",
            "--out e --batch-size -2",
            "--out e --epsilon six",
            "--out e --seed 0x12",
        ] {
            assert!(parse_train(&toks(cmd)).is_err(), "{cmd} should fail");
        }
    }

    #[test]
    fn train_rejects_unknown_variant() {
        let err = parse_train(&toks("--out e --variant gpt")).unwrap_err();
        assert!(err.contains("unknown variant"), "{err}");
    }

    #[test]
    fn threads_flag_maps_to_with_threads_and_overrides_env() {
        // --threads N lands in AdvSgmConfig::num_threads via the builder's
        // with_threads mapping...
        let pinned = parse_train(&toks("--out e --threads 3")).unwrap();
        assert_eq!(pinned.builder.config().num_threads, 3);
        let auto = parse_train(&toks("--out e")).unwrap();
        assert_eq!(auto.builder.config().num_threads, 0, "default is auto");

        // ...and the precedence is: explicit flag > ADVSGM_THREADS > 1.
        // (This is the only test in this binary touching the variable.)
        std::env::set_var("ADVSGM_THREADS", "7");
        let explicit = pinned.builder.config().effective_threads();
        let deferred = auto.builder.config().effective_threads();
        std::env::remove_var("ADVSGM_THREADS");
        assert_eq!(explicit, 3, "--threads N overrides ADVSGM_THREADS");
        assert_eq!(deferred, 7, "--threads unset defers to ADVSGM_THREADS");
        assert_eq!(
            auto.builder.config().effective_threads(),
            1,
            "both unset falls back to 1 thread"
        );
    }

    #[test]
    fn kernels_env_resolution_precedence() {
        use advsgm::linalg::backend::{resolve_backend, Backend, BackendResolution};
        // Mirror of the --threads precedence table, for ADVSGM_KERNELS
        // (resolve_backend is pure in its argument, so no env mutation).
        // Unset or blank: auto-detect.
        assert_eq!(
            resolve_backend(None),
            (Backend::detect(), BackendResolution::Detected)
        );
        assert_eq!(
            resolve_backend(Some("  ")),
            (Backend::detect(), BackendResolution::Detected)
        );
        // A valid, supported name wins (scalar is supported everywhere;
        // names are case-insensitive and trimmed).
        assert_eq!(
            resolve_backend(Some(" Scalar ")),
            (Backend::Scalar, BackendResolution::EnvSelected)
        );
        // A known backend the host lacks degrades to detection.
        let missing = if cfg!(target_arch = "aarch64") {
            "avx2"
        } else {
            "neon"
        };
        assert_eq!(
            resolve_backend(Some(missing)),
            (Backend::detect(), BackendResolution::EnvUnsupported)
        );
        // Gibberish degrades to detection too, flagged as invalid.
        assert_eq!(
            resolve_backend(Some("sse9")),
            (Backend::detect(), BackendResolution::EnvInvalid)
        );
    }

    #[test]
    fn resume_pins_the_model_configuration() {
        // Dataset/epochs/checkpoint flags may accompany --resume...
        let a = parse_train(&toks(
            "--out e.aemb --resume c.actk --dataset wiki --scale 0.2 --epochs 9 \
             --checkpoint-every 1",
        ))
        .unwrap();
        assert_eq!(a.resume.as_deref(), Some("c.actk"));
        assert_eq!(a.epochs_explicit, Some(9));
        // ...but model flags are rejected, naming the offenders.
        for flag in [
            "--variant advsgm",
            "--epsilon 3",
            "--sigma 2",
            "--dim 64",
            "--batch-size 32",
            "--lr 0.2",
            "--threads 2",
            "--shard-size 8",
            "--seed 4",
        ] {
            let cmd = format!("--out e.aemb --resume c.actk {flag}");
            let err = parse_train(&toks(&cmd)).unwrap_err();
            assert!(
                err.contains("--resume pins the model configuration"),
                "{flag}: {err}"
            );
            assert!(
                err.contains(flag.split_whitespace().next().unwrap()),
                "{flag}: {err}"
            );
        }
    }

    // ---- audit ----

    #[test]
    fn audit_defaults_are_quick_and_writable() {
        let a = parse_audit(&toks("")).unwrap();
        assert_eq!(a.out, "results/AUDIT_membership.json");
        assert_eq!((a.dataset.as_str(), a.scale), ("ppi", 0.05));
        assert_eq!(a.builder.config().variant, ModelVariant::AdvSgm);
        assert_eq!(a.builder.config().dim, 32);
        assert_eq!(a.builder.config().epochs, 5);
        assert_eq!((a.cfg.targets, a.cfg.runs_per_world), (3, 5));
        assert_eq!((a.cfg.confidence, a.cfg.test_fraction), (0.95, 0.1));
        assert!(a.ablation, "the sigma->0 check is on by default");
    }

    #[test]
    fn audit_happy_path_sets_every_flag() {
        let a = parse_audit(&toks(
            "--out r.json --dataset wiki --scale 0.2 --variant advsgm --epsilon 2 \
             --delta 1e-6 --sigma 3 --epochs 7 --dim 16 --batch-size 64 --lr 0.05 \
             --seed 9 --threads 4 --targets 2 --runs 6 --test-fraction 0.2 \
             --confidence 0.9 --no-ablation",
        ))
        .unwrap();
        assert_eq!(a.out, "r.json");
        assert_eq!((a.dataset.as_str(), a.scale), ("wiki", 0.2));
        let cfg = a.builder.config();
        assert_eq!((cfg.epsilon, cfg.delta, cfg.sigma), (2.0, 1e-6, 3.0));
        assert_eq!((cfg.epochs, cfg.dim, cfg.batch_size), (7, 16, 64));
        assert_eq!(cfg.eta_d, 0.05);
        assert_eq!(cfg.seed, 9, "--seed drives the builder...");
        assert_eq!(a.cfg.seed, 9, "...and the harness derivation chain");
        assert_eq!(a.cfg.delta, 1e-6, "--delta states the bound's delta too");
        assert_eq!(a.cfg.threads, 4);
        assert_eq!((a.cfg.targets, a.cfg.runs_per_world), (2, 6));
        assert_eq!((a.cfg.test_fraction, a.cfg.confidence), (0.2, 0.9));
        assert!(!a.ablation);
    }

    #[test]
    fn audit_rejects_bad_geometry_at_parse_time() {
        for (cmd, needle) in [
            ("--targets 0", "targets"),
            ("--runs 1", "runs_per_world"),
            ("--confidence 1.0", "confidence"),
            ("--test-fraction 0", "test_fraction"),
        ] {
            let err = parse_audit(&toks(cmd)).unwrap_err();
            assert!(err.contains(needle), "{cmd}: {err}");
            assert!(err.contains("invalid audit parameter"), "{cmd}: {err}");
        }
    }

    #[test]
    fn audit_rejects_bad_model_flags_and_unknowns() {
        assert!(parse_audit(&toks("--epsilon 0"))
            .unwrap_err()
            .contains("invalid parameter epsilon"));
        assert!(parse_audit(&toks("--scale 2"))
            .unwrap_err()
            .contains("--scale must be in (0,1]"));
        assert!(parse_audit(&toks("--resume c.actk"))
            .unwrap_err()
            .contains("unknown flag"));
        assert!(parse_audit(&toks("--runs"))
            .unwrap_err()
            .contains("needs a value"));
    }

    // ---- query ----

    #[test]
    fn query_node_happy_path() {
        let a = parse_query(&toks("--store e.aemb --node 3 --top-k 7 --threads 2")).unwrap();
        assert_eq!(
            a.source,
            QuerySource::Local {
                store: "e.aemb".into(),
                index: None
            }
        );
        assert_eq!(a.target, QueryTarget::Node { node: 3, top_k: 7 });
        assert_eq!(a.threads, 2);
        assert_eq!(a.approx, None);
    }

    #[test]
    fn query_local_approx_needs_an_index() {
        let err = parse_query(&toks("--store e.aemb --node 3 --approx 0.9")).unwrap_err();
        assert!(err.contains("--approx needs an ANN index"), "{err}");
        let a = parse_query(&toks("--store e.aemb --index e.aidx --node 3 --approx 0.9")).unwrap();
        assert_eq!(a.approx, Some(0.9));
        assert_eq!(
            a.source,
            QuerySource::Local {
                store: "e.aemb".into(),
                index: Some("e.aidx".into())
            }
        );
        for bad in ["--approx 1.5", "--approx -0.1", "--approx nan"] {
            let cmd = format!("--store e.aemb --index e.aidx --node 3 {bad}");
            assert!(parse_query(&toks(&cmd)).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn query_remote_excludes_local_flags() {
        let a = parse_query(&toks("--remote 127.0.0.1:7878 --node 3 --approx 0.95")).unwrap();
        assert_eq!(
            a.source,
            QuerySource::Remote {
                addr: "127.0.0.1:7878".into()
            }
        );
        assert_eq!(a.approx, Some(0.95));
        for (cmd, needle) in [
            ("--remote h:1 --store e.aemb --node 1", "not both"),
            ("--remote h:1 --index e.aidx --node 1", "local-store flag"),
            ("--remote h:1 --threads 2 --node 1", "local-store flag"),
        ] {
            let err = parse_query(&toks(cmd)).unwrap_err();
            assert!(err.contains(needle), "{cmd}: {err}");
        }
    }

    #[test]
    fn query_pair_happy_path() {
        let a = parse_query(&toks("--store e.aemb --pair 3 8")).unwrap();
        assert_eq!(a.target, QueryTarget::Pair { u: 3, v: 8 });
    }

    #[test]
    fn query_rejects_node_and_pair_together() {
        let err = parse_query(&toks("--store e.aemb --node 1 --pair 2 3")).unwrap_err();
        assert!(err.contains("not both"), "{err}");
        // Order must not matter.
        let err = parse_query(&toks("--store e.aemb --pair 2 3 --node 1")).unwrap_err();
        assert!(err.contains("not both"), "{err}");
    }

    #[test]
    fn query_requires_a_target_and_store() {
        let err = parse_query(&toks("--store e.aemb")).unwrap_err();
        assert!(err.contains("need --node U or --pair U V"), "{err}");
        let err = parse_query(&toks("--node 1")).unwrap_err();
        assert!(err.contains("--store or --remote is required"), "{err}");
    }

    #[test]
    fn query_rejects_unknown_flags_and_bad_numbers() {
        assert!(parse_query(&toks("--store e --node 1 --frobnicate"))
            .unwrap_err()
            .contains("unknown flag"));
        assert!(parse_query(&toks("--store e --node minus-one")).is_err());
        assert!(
            parse_query(&toks("--store e --pair 1")).is_err(),
            "pair needs two values"
        );
        assert!(parse_query(&toks("--store e --node 1 --top-k -4")).is_err());
    }

    // ---- info ----

    #[test]
    fn info_happy_and_sad_paths() {
        let a = parse_info(&toks("--store e.aemb")).unwrap();
        assert_eq!(a.store.as_deref(), Some("e.aemb"));
        assert!(!a.host);
        assert!(parse_info(&toks(""))
            .unwrap_err()
            .contains("pass --store PATH and/or --host"));
        assert!(parse_info(&toks("--wat"))
            .unwrap_err()
            .contains("unknown flag"));
        assert!(parse_info(&toks("--store"))
            .unwrap_err()
            .contains("needs a value"));
    }

    // ---- index ----

    #[test]
    fn index_happy_path_and_defaults() {
        let a = parse_index(&toks(
            "--store e.aemb --out e.aidx --nlist 64 --kmeans-iters 3 --sample-queries 16",
        ))
        .unwrap();
        assert_eq!(a.store, "e.aemb");
        assert_eq!(a.out, "e.aidx");
        assert_eq!(a.params.nlist, 64);
        assert_eq!(a.params.kmeans_iters, 3);
        assert_eq!(a.params.sample_queries, 16);

        let d = parse_index(&toks("--store e.aemb --out e.aidx")).unwrap();
        assert_eq!(d.params, IndexParams::default());
    }

    #[test]
    fn index_rejects_bad_arguments() {
        assert!(parse_index(&toks("--out e.aidx"))
            .unwrap_err()
            .contains("--store is required"));
        assert!(parse_index(&toks("--store e.aemb"))
            .unwrap_err()
            .contains("--out is required"));
        assert!(parse_index(&toks("--store e --out o --kmeans-iters 0"))
            .unwrap_err()
            .contains("must be positive"));
        assert!(parse_index(&toks("--store e --out o --sample-queries 0"))
            .unwrap_err()
            .contains("must be positive"));
        assert!(parse_index(&toks("--store e --out o --wat"))
            .unwrap_err()
            .contains("unknown flag"));
    }

    // ---- serve / stop ----

    #[test]
    fn serve_happy_path_and_defaults() {
        let a = parse_serve(&toks(
            "--store e.aemb --index e.aidx --addr 0.0.0.0:9000 --threads 4 --cache 99 \
             --max-requests 1000 --relaxed",
        ))
        .unwrap();
        assert_eq!(a.store, "e.aemb");
        assert_eq!(a.index.as_deref(), Some("e.aidx"));
        assert_eq!(a.addr, "0.0.0.0:9000");
        assert_eq!(a.threads, 4);
        assert_eq!(a.cache, 99);
        assert_eq!(a.max_requests, Some(1000));
        assert!(a.relaxed);

        let d = parse_serve(&toks("--store e.aemb")).unwrap();
        assert_eq!(d.addr, "127.0.0.1:7878");
        assert_eq!(d.cache, 1024);
        assert_eq!(d.max_requests, None);
        assert!(!d.build_index);
        assert!(!d.relaxed, "relaxed tier is opt-in");
    }

    #[test]
    fn info_host_flag_with_and_without_store() {
        let h = parse_info(&toks("--host")).unwrap();
        assert_eq!(
            h,
            InfoArgs {
                store: None,
                host: true
            }
        );
        let both = parse_info(&toks("--store e.aemb --host")).unwrap();
        assert_eq!(
            both,
            InfoArgs {
                store: Some("e.aemb".into()),
                host: true
            }
        );
    }

    #[test]
    fn serve_rejects_conflicting_index_flags() {
        let err = parse_serve(&toks("--store e.aemb --index e.aidx --build-index")).unwrap_err();
        assert!(err.contains("not both"), "{err}");
        assert!(parse_serve(&toks("--index e.aidx"))
            .unwrap_err()
            .contains("--store is required"));
        assert!(parse_serve(&toks("--store e --max-requests 0"))
            .unwrap_err()
            .contains("must be positive"));
    }

    #[test]
    fn stop_requires_addr() {
        assert_eq!(
            parse_stop(&toks("--addr 127.0.0.1:7878")).unwrap().addr,
            "127.0.0.1:7878"
        );
        assert!(parse_stop(&toks(""))
            .unwrap_err()
            .contains("--addr is required"));
        assert!(parse_stop(&toks("--wat"))
            .unwrap_err()
            .contains("unknown flag"));
    }
}
