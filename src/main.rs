//! The `advsgm` command-line interface: train embeddings, persist them in
//! the `.aemb` format (`docs/FORMAT.md`), and serve queries from the file.
//!
//! ```text
//! advsgm train --out emb.aemb [--dataset ppi] [--scale 0.1] [--edges FILE]
//!              [--variant advsgm] [--epsilon 6] [--delta 1e-5] [--sigma 5]
//!              [--epochs N] [--dim 128] [--threads N] [--seed 0]
//! advsgm query --store emb.aemb --node U [--top-k 10] [--threads N]
//! advsgm query --store emb.aemb --pair U V
//! advsgm info  --store emb.aemb
//! ```
//!
//! Argument parsing is hand-rolled like `advsgm-bench`'s: three
//! subcommands and a dozen flags do not justify a CLI dependency outside
//! the vendored crate set.

use std::process::ExitCode;

use advsgm::core::{AdvSgmConfig, ModelVariant, ShardedTrainer};
use advsgm::datasets::{dataset_by_name, synthesize};
use advsgm::graph::io::read_edge_list_file;
use advsgm::graph::Graph;
use advsgm::store::EmbeddingStore;

const USAGE: &str = "usage:
  advsgm train --out PATH [--dataset NAME] [--scale F] [--edges FILE]
               [--variant sgm|dp-sgm|dp-asgm|advsgm|advsgm-nodp]
               [--epsilon F] [--delta F] [--sigma F] [--epochs N]
               [--dim N] [--threads N] [--seed N]
  advsgm query --store PATH --node U [--top-k K] [--threads N]
  advsgm query --store PATH --pair U V
  advsgm info  --store PATH";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let cmd = match args.next() {
        Some(c) => c,
        None => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let rest: Vec<String> = args.collect();
    let result = match cmd.as_str() {
        "train" => cmd_train(&rest),
        "query" => cmd_query(&rest),
        "info" => cmd_info(&rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("advsgm {cmd}: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Pulls the value following a flag out of the token list.
fn take_value(tokens: &[String], i: &mut usize, flag: &str) -> Result<String, String> {
    *i += 1;
    tokens
        .get(*i)
        .cloned()
        .ok_or_else(|| format!("{flag} needs a value"))
}

fn parse_num<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    value.parse().map_err(|e| format!("{flag}: {e}"))
}

fn parse_variant(name: &str) -> Result<ModelVariant, String> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "sgm" => ModelVariant::Sgm,
        "dp-sgm" | "dpsgm" => ModelVariant::DpSgm,
        "dp-asgm" | "dpasgm" => ModelVariant::DpAsgm,
        "advsgm" => ModelVariant::AdvSgm,
        "advsgm-nodp" | "advsgmnodp" => ModelVariant::AdvSgmNoDp,
        other => {
            return Err(format!(
                "unknown variant {other:?} (sgm, dp-sgm, dp-asgm, advsgm, advsgm-nodp)"
            ))
        }
    })
}

fn cmd_train(tokens: &[String]) -> Result<(), String> {
    let mut out: Option<String> = None;
    let mut dataset = "ppi".to_string();
    let mut scale = 0.1f64;
    let mut edges: Option<String> = None;
    // A CLI run should finish in seconds by default; paper-scale epochs
    // remain one `--epochs 50` away.
    let mut cfg = AdvSgmConfig {
        epochs: 5,
        ..AdvSgmConfig::default()
    };

    let mut i = 0;
    while i < tokens.len() {
        match tokens[i].as_str() {
            "--out" => out = Some(take_value(tokens, &mut i, "--out")?),
            "--dataset" => dataset = take_value(tokens, &mut i, "--dataset")?,
            "--scale" => {
                scale = parse_num(&take_value(tokens, &mut i, "--scale")?, "--scale")?;
                if !(scale > 0.0 && scale <= 1.0) {
                    return Err(format!("--scale must be in (0,1], got {scale}"));
                }
            }
            "--edges" => edges = Some(take_value(tokens, &mut i, "--edges")?),
            "--variant" => {
                cfg.variant = parse_variant(&take_value(tokens, &mut i, "--variant")?)?;
            }
            "--epsilon" => {
                cfg.epsilon = parse_num(&take_value(tokens, &mut i, "--epsilon")?, "--epsilon")?;
            }
            "--delta" => {
                cfg.delta = parse_num(&take_value(tokens, &mut i, "--delta")?, "--delta")?;
            }
            "--sigma" => {
                cfg.sigma = parse_num(&take_value(tokens, &mut i, "--sigma")?, "--sigma")?;
            }
            "--epochs" => {
                cfg.epochs = parse_num(&take_value(tokens, &mut i, "--epochs")?, "--epochs")?;
            }
            "--dim" => cfg.dim = parse_num(&take_value(tokens, &mut i, "--dim")?, "--dim")?,
            "--threads" => {
                cfg.num_threads =
                    parse_num(&take_value(tokens, &mut i, "--threads")?, "--threads")?;
            }
            "--seed" => cfg.seed = parse_num(&take_value(tokens, &mut i, "--seed")?, "--seed")?,
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
        i += 1;
    }
    let out = out.ok_or_else(|| format!("--out is required\n{USAGE}"))?;

    let graph: Graph = match &edges {
        Some(path) => {
            let g = read_edge_list_file(path, None).map_err(|e| format!("--edges {path}: {e}"))?;
            println!(
                "loaded {path}: {} nodes, {} edges",
                g.num_nodes(),
                g.num_edges()
            );
            g
        }
        None => {
            let d = dataset_by_name(&dataset).ok_or_else(|| {
                format!("unknown dataset {dataset:?} (PPI, Facebook, Wiki, Blog, Epinions, DBLP)")
            })?;
            let spec = d.spec().scaled(scale);
            let g = synthesize(&spec, cfg.seed);
            println!(
                "synthesized {} at scale {scale}: {} nodes, {} edges",
                d.name(),
                g.num_nodes(),
                g.num_edges()
            );
            g
        }
    };

    let trainer = ShardedTrainer::new(&graph, cfg.clone()).map_err(|e| e.to_string())?;
    println!(
        "training {} (dim {}, {} epochs, {} thread(s))...",
        cfg.variant.paper_name(),
        cfg.dim,
        cfg.epochs,
        trainer.threads()
    );
    let start = std::time::Instant::now();
    let outcome = trainer.train(&graph).map_err(|e| e.to_string())?;
    println!(
        "trained in {:.2?}: {} epochs, {} discriminator updates{}",
        start.elapsed(),
        outcome.epochs_run,
        outcome.disc_updates,
        if outcome.stopped_by_budget {
            " (stopped by privacy budget)"
        } else {
            ""
        }
    );

    let store = EmbeddingStore::from_outcome(&outcome, &cfg).map_err(|e| e.to_string())?;
    // Serialise once; the same buffer provides the file and the size line.
    let bytes = store.to_bytes();
    std::fs::write(&out, &bytes).map_err(|e| format!("{out}: {e}"))?;
    println!(
        "saved {} nodes x {} dims to {out} ({}); privacy: {}",
        store.len(),
        store.dim(),
        human_bytes(bytes.len()),
        store.meta()
    );
    Ok(())
}

fn cmd_query(tokens: &[String]) -> Result<(), String> {
    let mut path: Option<String> = None;
    let mut node: Option<usize> = None;
    let mut pair: Option<(usize, usize)> = None;
    let mut top_k = 10usize;
    let mut threads = 0usize;

    let mut i = 0;
    while i < tokens.len() {
        match tokens[i].as_str() {
            "--store" => path = Some(take_value(tokens, &mut i, "--store")?),
            "--node" => node = Some(parse_num(&take_value(tokens, &mut i, "--node")?, "--node")?),
            "--pair" => {
                let u: usize = parse_num(&take_value(tokens, &mut i, "--pair")?, "--pair")?;
                let v: usize = parse_num(&take_value(tokens, &mut i, "--pair")?, "--pair")?;
                pair = Some((u, v));
            }
            "--top-k" => top_k = parse_num(&take_value(tokens, &mut i, "--top-k")?, "--top-k")?,
            "--threads" => {
                threads = parse_num(&take_value(tokens, &mut i, "--threads")?, "--threads")?;
            }
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
        i += 1;
    }
    let path = path.ok_or_else(|| format!("--store is required\n{USAGE}"))?;
    let store = EmbeddingStore::load(&path).map_err(|e| e.to_string())?;

    match (pair, node) {
        (Some((u, v)), _) => {
            let s = store.score(u, v).map_err(|e| e.to_string())?;
            println!("score({u}, {v}) = {s}");
        }
        (None, Some(u)) => {
            let results = store
                .batch_top_k(&[u], top_k, threads)
                .map_err(|e| e.to_string())?;
            println!("top {top_k} neighbors of node {u}:");
            println!("{:>10}  {:>10}  {:>14}", "row", "id", "score");
            for n in &results[0] {
                println!("{:>10}  {:>10}  {:>14.6}", n.node, n.id, n.score);
            }
        }
        (None, None) => return Err(format!("need --node U or --pair U V\n{USAGE}")),
    }
    Ok(())
}

fn cmd_info(tokens: &[String]) -> Result<(), String> {
    let mut path: Option<String> = None;
    let mut i = 0;
    while i < tokens.len() {
        match tokens[i].as_str() {
            "--store" => path = Some(take_value(tokens, &mut i, "--store")?),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
        i += 1;
    }
    let path = path.ok_or_else(|| format!("--store is required\n{USAGE}"))?;
    let bytes = std::fs::read(&path).map_err(|e| format!("{path}: {e}"))?;
    let store = EmbeddingStore::from_bytes(&bytes).map_err(|e| e.to_string())?;
    println!("{path}:");
    println!(
        "  format      .aemb v{}",
        advsgm::store::format::FORMAT_VERSION
    );
    println!("  size        {}", human_bytes(bytes.len()));
    println!("  checksum    ok (crc32)");
    println!("  nodes       {}", store.len());
    println!("  dim         {}", store.dim());
    println!("  privacy     {}", store.meta());
    Ok(())
}

fn human_bytes(n: usize) -> String {
    if n >= 1 << 20 {
        format!("{:.1} MiB", n as f64 / (1 << 20) as f64)
    } else if n >= 1 << 10 {
        format!("{:.1} KiB", n as f64 / (1 << 10) as f64)
    } else {
        format!("{n} B")
    }
}
