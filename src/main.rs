//! The `advsgm` command-line interface: train embeddings (with live
//! progress and crash-safe checkpointing), persist them in the `.aemb`
//! format (`docs/FORMAT.md`), and serve queries from the file.
//!
//! ```text
//! advsgm train --out emb.aemb [--dataset ppi] [--scale 0.1] [--edges FILE]
//!              [--variant advsgm] [--epsilon 6] [--delta 1e-5] [--sigma 5]
//!              [--epochs N] [--dim 128] [--batch-size 128] [--lr 0.1]
//!              [--threads N] [--shard-size N] [--seed 0]
//!              [--checkpoint-every N] [--checkpoint PATH] [--resume PATH]
//! advsgm query --store emb.aemb --node U [--top-k 10] [--threads N]
//! advsgm query --store emb.aemb --pair U V
//! advsgm info  --store emb.aemb
//! ```
//!
//! Argument parsing is hand-rolled like `advsgm-bench`'s: three
//! subcommands and a score of flags do not justify a CLI dependency
//! outside the vendored crate set. Parsing is pure (`parse_train` /
//! `parse_query` / `parse_info` return argument structs) so it is
//! unit-tested without touching the filesystem.

use std::process::ExitCode;

use advsgm::core::session::{CheckpointState, EpochEvent, SessionControl, StopReason, TrainHooks};
use advsgm::core::{AdvSgmConfig, ModelVariant, ShardedTrainer};
use advsgm::datasets::{dataset_by_name, synthesize};
use advsgm::graph::io::read_edge_list_file;
use advsgm::graph::Graph;
use advsgm::store::{load_checkpoint, save_checkpoint, EmbeddingStore};

const USAGE: &str = "usage:
  advsgm train --out PATH [--dataset NAME] [--scale F] [--edges FILE]
               [--variant sgm|dp-sgm|dp-asgm|advsgm|advsgm-nodp]
               [--epsilon F] [--delta F] [--sigma F] [--epochs N]
               [--dim N] [--batch-size N] [--lr F] [--threads N]
               [--shard-size N] [--seed N]
               [--checkpoint-every N] [--checkpoint PATH] [--resume PATH]
  advsgm query --store PATH --node U [--top-k K] [--threads N]
  advsgm query --store PATH --pair U V
  advsgm info  --store PATH

train flags:
  --batch-size N        pairs per discriminator batch B (default 128)
  --lr F                learning rate for both eta_d and eta_g (default 0.1)
  --shard-size N        pairs per parallel shard; 0 = auto (batch/threads)
  --checkpoint-every N  write a resumable .actk checkpoint every N epochs
  --checkpoint PATH     checkpoint file (default: <out>.actk)
  --resume PATH         resume a checkpointed run bitwise-exactly; only
                        --out/--dataset/--scale/--edges/--epochs and the
                        checkpoint flags may accompany it (the rest of the
                        configuration is pinned by the checkpoint)";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let cmd = match args.next() {
        Some(c) => c,
        None => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let rest: Vec<String> = args.collect();
    let result = match cmd.as_str() {
        "train" => parse_train(&rest).and_then(cmd_train),
        "query" => parse_query(&rest).and_then(cmd_query),
        "info" => parse_info(&rest).and_then(cmd_info),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("advsgm {cmd}: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Pulls the value following a flag out of the token list.
fn take_value(tokens: &[String], i: &mut usize, flag: &str) -> Result<String, String> {
    *i += 1;
    tokens
        .get(*i)
        .cloned()
        .ok_or_else(|| format!("{flag} needs a value"))
}

fn parse_num<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    value.parse().map_err(|e| format!("{flag}: {e}"))
}

fn parse_variant(name: &str) -> Result<ModelVariant, String> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "sgm" => ModelVariant::Sgm,
        "dp-sgm" | "dpsgm" => ModelVariant::DpSgm,
        "dp-asgm" | "dpasgm" => ModelVariant::DpAsgm,
        "advsgm" => ModelVariant::AdvSgm,
        "advsgm-nodp" | "advsgmnodp" => ModelVariant::AdvSgmNoDp,
        other => {
            return Err(format!(
                "unknown variant {other:?} (sgm, dp-sgm, dp-asgm, advsgm, advsgm-nodp)"
            ))
        }
    })
}

/// Parsed `advsgm train` arguments.
#[derive(Debug, Clone)]
struct TrainArgs {
    out: String,
    dataset: String,
    scale: f64,
    edges: Option<String>,
    cfg: AdvSgmConfig,
    /// `--epochs`, remembered separately so `--resume` can extend a run.
    epochs_explicit: Option<usize>,
    checkpoint_every: Option<usize>,
    checkpoint_path: Option<String>,
    resume: Option<String>,
    /// Model-configuration flags seen on the command line; `--resume`
    /// rejects them (the checkpoint pins the configuration).
    model_flags_seen: Vec<&'static str>,
}

fn parse_train(tokens: &[String]) -> Result<TrainArgs, String> {
    let mut args = TrainArgs {
        out: String::new(),
        dataset: "ppi".to_string(),
        scale: 0.1,
        edges: None,
        // A CLI run should finish in seconds by default; paper-scale epochs
        // remain one `--epochs 50` away.
        cfg: AdvSgmConfig {
            epochs: 5,
            ..AdvSgmConfig::default()
        },
        epochs_explicit: None,
        checkpoint_every: None,
        checkpoint_path: None,
        resume: None,
        model_flags_seen: Vec::new(),
    };
    let mut out: Option<String> = None;

    let mut i = 0;
    while i < tokens.len() {
        match tokens[i].as_str() {
            "--out" => out = Some(take_value(tokens, &mut i, "--out")?),
            "--dataset" => args.dataset = take_value(tokens, &mut i, "--dataset")?,
            "--scale" => {
                args.scale = parse_num(&take_value(tokens, &mut i, "--scale")?, "--scale")?;
                if !(args.scale > 0.0 && args.scale <= 1.0) {
                    return Err(format!("--scale must be in (0,1], got {}", args.scale));
                }
            }
            "--edges" => args.edges = Some(take_value(tokens, &mut i, "--edges")?),
            "--variant" => {
                args.cfg.variant = parse_variant(&take_value(tokens, &mut i, "--variant")?)?;
                args.model_flags_seen.push("--variant");
            }
            "--epsilon" => {
                args.cfg.epsilon =
                    parse_num(&take_value(tokens, &mut i, "--epsilon")?, "--epsilon")?;
                args.model_flags_seen.push("--epsilon");
            }
            "--delta" => {
                args.cfg.delta = parse_num(&take_value(tokens, &mut i, "--delta")?, "--delta")?;
                args.model_flags_seen.push("--delta");
            }
            "--sigma" => {
                args.cfg.sigma = parse_num(&take_value(tokens, &mut i, "--sigma")?, "--sigma")?;
                args.model_flags_seen.push("--sigma");
            }
            "--epochs" => {
                let e: usize = parse_num(&take_value(tokens, &mut i, "--epochs")?, "--epochs")?;
                args.cfg.epochs = e;
                args.epochs_explicit = Some(e);
            }
            "--dim" => {
                args.cfg.dim = parse_num(&take_value(tokens, &mut i, "--dim")?, "--dim")?;
                args.model_flags_seen.push("--dim");
            }
            "--batch-size" => {
                let b: usize =
                    parse_num(&take_value(tokens, &mut i, "--batch-size")?, "--batch-size")?;
                if b == 0 {
                    return Err("--batch-size must be positive, got 0".into());
                }
                args.cfg.batch_size = b;
                args.model_flags_seen.push("--batch-size");
            }
            "--lr" => {
                let lr: f64 = parse_num(&take_value(tokens, &mut i, "--lr")?, "--lr")?;
                if !(lr > 0.0 && lr.is_finite()) {
                    return Err(format!("--lr must be positive and finite, got {lr}"));
                }
                // The paper sets eta_d = eta_g (Section VI-A); one flag
                // drives both.
                args.cfg.eta_d = lr;
                args.cfg.eta_g = lr;
                args.model_flags_seen.push("--lr");
            }
            "--threads" => {
                args.cfg.num_threads =
                    parse_num(&take_value(tokens, &mut i, "--threads")?, "--threads")?;
                args.model_flags_seen.push("--threads");
            }
            "--shard-size" => {
                // 0 is meaningful (auto: divide the batch over threads).
                args.cfg.shard_size =
                    parse_num(&take_value(tokens, &mut i, "--shard-size")?, "--shard-size")?;
                args.model_flags_seen.push("--shard-size");
            }
            "--seed" => {
                args.cfg.seed = parse_num(&take_value(tokens, &mut i, "--seed")?, "--seed")?;
                args.model_flags_seen.push("--seed");
            }
            "--checkpoint-every" => {
                let n: usize = parse_num(
                    &take_value(tokens, &mut i, "--checkpoint-every")?,
                    "--checkpoint-every",
                )?;
                if n == 0 {
                    return Err("--checkpoint-every must be positive, got 0".into());
                }
                args.checkpoint_every = Some(n);
            }
            "--checkpoint" => {
                args.checkpoint_path = Some(take_value(tokens, &mut i, "--checkpoint")?);
            }
            "--resume" => args.resume = Some(take_value(tokens, &mut i, "--resume")?),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
        i += 1;
    }
    args.out = out.ok_or_else(|| format!("--out is required\n{USAGE}"))?;
    if args.resume.is_some() && !args.model_flags_seen.is_empty() {
        return Err(format!(
            "--resume pins the model configuration from the checkpoint; \
             remove {} (only --out/--dataset/--scale/--edges/--epochs and \
             the checkpoint flags may accompany --resume)",
            args.model_flags_seen.join(", ")
        ));
    }
    Ok(args)
}

/// What an `advsgm query` invocation asks for.
#[derive(Debug, Clone, PartialEq, Eq)]
enum QueryTarget {
    /// Top-k neighbors of one node.
    Node { node: usize, top_k: usize },
    /// The Eq. 2 link score of one pair.
    Pair { u: usize, v: usize },
}

/// Parsed `advsgm query` arguments.
#[derive(Debug, Clone)]
struct QueryArgs {
    store: String,
    target: QueryTarget,
    threads: usize,
}

fn parse_query(tokens: &[String]) -> Result<QueryArgs, String> {
    let mut path: Option<String> = None;
    let mut node: Option<usize> = None;
    let mut pair: Option<(usize, usize)> = None;
    let mut top_k = 10usize;
    let mut threads = 0usize;

    let mut i = 0;
    while i < tokens.len() {
        match tokens[i].as_str() {
            "--store" => path = Some(take_value(tokens, &mut i, "--store")?),
            "--node" => node = Some(parse_num(&take_value(tokens, &mut i, "--node")?, "--node")?),
            "--pair" => {
                let u: usize = parse_num(&take_value(tokens, &mut i, "--pair")?, "--pair")?;
                let v: usize = parse_num(&take_value(tokens, &mut i, "--pair")?, "--pair")?;
                pair = Some((u, v));
            }
            "--top-k" => {
                top_k = parse_num(&take_value(tokens, &mut i, "--top-k")?, "--top-k")?;
            }
            "--threads" => {
                threads = parse_num(&take_value(tokens, &mut i, "--threads")?, "--threads")?;
            }
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
        i += 1;
    }
    let store = path.ok_or_else(|| format!("--store is required\n{USAGE}"))?;
    let target = match (pair, node) {
        (Some(_), Some(_)) => {
            return Err("pass either --node U or --pair U V, not both".into());
        }
        (Some((u, v)), None) => QueryTarget::Pair { u, v },
        (None, Some(node)) => QueryTarget::Node { node, top_k },
        (None, None) => return Err(format!("need --node U or --pair U V\n{USAGE}")),
    };
    Ok(QueryArgs {
        store,
        target,
        threads,
    })
}

/// Parsed `advsgm info` arguments.
#[derive(Debug, Clone)]
struct InfoArgs {
    store: String,
}

fn parse_info(tokens: &[String]) -> Result<InfoArgs, String> {
    let mut path: Option<String> = None;
    let mut i = 0;
    while i < tokens.len() {
        match tokens[i].as_str() {
            "--store" => path = Some(take_value(tokens, &mut i, "--store")?),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
        i += 1;
    }
    Ok(InfoArgs {
        store: path.ok_or_else(|| format!("--store is required\n{USAGE}"))?,
    })
}

/// Live progress lines + periodic checkpoint writing, through the session
/// layer's [`TrainHooks`] seam.
struct CliHooks {
    checkpoint_every: Option<usize>,
    checkpoint_path: String,
    /// Set when a checkpoint write failed; training stops gracefully and
    /// the error is reported after the run.
    write_error: Option<String>,
    checkpoints_written: usize,
}

impl TrainHooks for CliHooks {
    fn may_checkpoint(&self) -> bool {
        self.checkpoint_every.is_some()
    }

    fn on_epoch(&mut self, event: &EpochEvent) -> SessionControl {
        let spend = match &event.spend {
            Some(s) => format!("  eps {:.4}  delta {:.2e}", s.epsilon_spent, s.delta_spent),
            None => String::new(),
        };
        match (event.stop, event.loss) {
            (Some(StopReason::BudgetExhausted), _) => {
                println!(
                    "epoch {:>3}/{}: privacy budget exhausted after {} updates{spend}",
                    event.epoch + 1,
                    event.epochs_total,
                    event.disc_updates
                );
            }
            (_, Some(loss)) => {
                println!(
                    "epoch {:>3}/{}  |L_Nov| {loss:.4}{spend}",
                    event.epoch + 1,
                    event.epochs_total
                );
            }
            (_, None) => {}
        }
        SessionControl::Continue
    }

    fn wants_checkpoint(&mut self, epochs_done: usize) -> bool {
        matches!(self.checkpoint_every, Some(n) if epochs_done.is_multiple_of(n))
    }

    fn on_checkpoint(&mut self, state: &CheckpointState) -> SessionControl {
        match save_checkpoint(&self.checkpoint_path, state) {
            Ok(()) => {
                println!(
                    "checkpoint: wrote {} (epoch {})",
                    self.checkpoint_path, state.epochs_done
                );
                self.checkpoints_written += 1;
                SessionControl::Continue
            }
            Err(e) => {
                self.write_error = Some(format!("{}: {e}", self.checkpoint_path));
                SessionControl::Stop
            }
        }
    }
}

/// Builds the training graph from `--edges` or the named synthetic
/// dataset (scaled), announcing what was loaded.
fn build_graph(args: &TrainArgs, seed: u64) -> Result<Graph, String> {
    match &args.edges {
        Some(path) => {
            let g = read_edge_list_file(path, None).map_err(|e| format!("--edges {path}: {e}"))?;
            println!(
                "loaded {path}: {} nodes, {} edges",
                g.num_nodes(),
                g.num_edges()
            );
            Ok(g)
        }
        None => {
            let d = dataset_by_name(&args.dataset).ok_or_else(|| {
                format!(
                    "unknown dataset {:?} (PPI, Facebook, Wiki, Blog, Epinions, DBLP)",
                    args.dataset
                )
            })?;
            let spec = d.spec().scaled(args.scale);
            let g = synthesize(&spec, seed);
            println!(
                "synthesized {} at scale {}: {} nodes, {} edges",
                d.name(),
                args.scale,
                g.num_nodes(),
                g.num_edges()
            );
            Ok(g)
        }
    }
}

fn cmd_train(args: TrainArgs) -> Result<(), String> {
    match args.resume.clone() {
        None => {
            let graph = build_graph(&args, args.cfg.seed)?;
            let trainer =
                ShardedTrainer::new(&graph, args.cfg.clone()).map_err(|e| e.to_string())?;
            let cfg = args.cfg.clone();
            run_training(&args, &graph, trainer, cfg)
        }
        Some(resume_path) => {
            let mut state = load_checkpoint(&resume_path)
                .map_err(|e| format!("--resume {resume_path}: {e}"))?;
            if let Some(e) = args.epochs_explicit {
                if (e as u64) < state.epochs_done {
                    return Err(format!(
                        "--epochs {e} is below the checkpoint's {} completed epochs",
                        state.epochs_done
                    ));
                }
                // Extending (or shortening, down to the completed count)
                // the schedule is the one legal override: batch draws
                // never depend on the total epoch count.
                state.config.epochs = e;
            }
            // The graph must be the checkpoint's graph; for synthetic
            // datasets that means the checkpoint's seed, and resume
            // re-verifies the stored fingerprint either way.
            let graph = build_graph(&args, state.config.seed)?;
            let cfg = state.config.clone();
            let trainer = ShardedTrainer::resume(&graph, &state).map_err(|e| e.to_string())?;
            println!(
                "resumed {resume_path}: {}/{} epochs done, {} discriminator updates",
                state.epochs_done, cfg.epochs, state.disc_updates
            );
            run_training(&args, &graph, trainer, cfg)
        }
    }
}

/// Drives a (fresh or resumed) trainer to completion with progress +
/// checkpoint hooks, then exports the released store.
fn run_training(
    args: &TrainArgs,
    graph: &Graph,
    trainer: ShardedTrainer,
    cfg: AdvSgmConfig,
) -> Result<(), String> {
    println!(
        "training {} (dim {}, {} epochs, batch {}, lr {}, {} thread(s))...",
        cfg.variant.paper_name(),
        cfg.dim,
        cfg.epochs,
        cfg.batch_size,
        cfg.eta_d,
        trainer.threads()
    );
    let mut hooks = CliHooks {
        checkpoint_every: args.checkpoint_every,
        checkpoint_path: args
            .checkpoint_path
            .clone()
            .unwrap_or_else(|| format!("{}.actk", args.out)),
        write_error: None,
        checkpoints_written: 0,
    };
    let start = std::time::Instant::now();
    let outcome = trainer
        .train_with_hooks(graph, &mut hooks)
        .map_err(|e| e.to_string())?;
    if let Some(e) = hooks.write_error {
        return Err(format!("checkpoint write failed, training stopped: {e}"));
    }
    println!(
        "trained in {:.2?}: {} epochs, {} discriminator updates{}{}",
        start.elapsed(),
        outcome.epochs_run,
        outcome.disc_updates,
        if outcome.stopped_by_budget {
            " (stopped by privacy budget)"
        } else {
            ""
        },
        if hooks.checkpoints_written > 0 {
            format!(", {} checkpoint(s) written", hooks.checkpoints_written)
        } else {
            String::new()
        }
    );

    let store = EmbeddingStore::from_outcome(&outcome, &cfg).map_err(|e| e.to_string())?;
    // Serialise once; the same buffer provides the file and the size line.
    let bytes = store.to_bytes();
    std::fs::write(&args.out, &bytes).map_err(|e| format!("{}: {e}", args.out))?;
    println!(
        "saved {} nodes x {} dims to {} ({}); privacy: {}",
        store.len(),
        store.dim(),
        args.out,
        human_bytes(bytes.len()),
        store.meta()
    );
    Ok(())
}

fn cmd_query(args: QueryArgs) -> Result<(), String> {
    let store = EmbeddingStore::load(&args.store).map_err(|e| e.to_string())?;
    match args.target {
        QueryTarget::Pair { u, v } => {
            let s = store.score(u, v).map_err(|e| e.to_string())?;
            println!("score({u}, {v}) = {s}");
        }
        QueryTarget::Node { node, top_k } => {
            let results = store
                .batch_top_k(&[node], top_k, args.threads)
                .map_err(|e| e.to_string())?;
            println!("top {top_k} neighbors of node {node}:");
            println!("{:>10}  {:>10}  {:>14}", "row", "id", "score");
            for n in &results[0] {
                println!("{:>10}  {:>10}  {:>14.6}", n.node, n.id, n.score);
            }
        }
    }
    Ok(())
}

fn cmd_info(args: InfoArgs) -> Result<(), String> {
    let path = &args.store;
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    let store = EmbeddingStore::from_bytes(&bytes).map_err(|e| e.to_string())?;
    println!("{path}:");
    println!(
        "  format      .aemb v{}",
        advsgm::store::format::FORMAT_VERSION
    );
    println!("  size        {}", human_bytes(bytes.len()));
    println!("  checksum    ok (crc32)");
    println!("  nodes       {}", store.len());
    println!("  dim         {}", store.dim());
    println!("  privacy     {}", store.meta());
    Ok(())
}

fn human_bytes(n: usize) -> String {
    if n >= 1 << 20 {
        format!("{:.1} MiB", n as f64 / (1 << 20) as f64)
    } else if n >= 1 << 10 {
        format!("{:.1} KiB", n as f64 / (1 << 10) as f64)
    } else {
        format!("{n} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    // ---- train ----

    #[test]
    fn train_happy_path_sets_every_flag() {
        let a = parse_train(&toks(
            "--out e.aemb --dataset wiki --scale 0.5 --variant dp-sgm --epsilon 2 \
             --delta 1e-6 --sigma 3 --epochs 7 --dim 32 --batch-size 64 --lr 0.05 \
             --threads 4 --shard-size 16 --seed 9 --checkpoint-every 2 --checkpoint c.actk",
        ))
        .unwrap();
        assert_eq!(a.out, "e.aemb");
        assert_eq!(a.dataset, "wiki");
        assert_eq!(a.scale, 0.5);
        assert_eq!(a.cfg.variant, ModelVariant::DpSgm);
        assert_eq!(a.cfg.epsilon, 2.0);
        assert_eq!(a.cfg.delta, 1e-6);
        assert_eq!(a.cfg.sigma, 3.0);
        assert_eq!(a.cfg.epochs, 7);
        assert_eq!(a.epochs_explicit, Some(7));
        assert_eq!(a.cfg.dim, 32);
        assert_eq!(a.cfg.batch_size, 64);
        assert_eq!(a.cfg.eta_d, 0.05);
        assert_eq!(a.cfg.eta_g, 0.05, "--lr drives both learning rates");
        assert_eq!(a.cfg.num_threads, 4);
        assert_eq!(a.cfg.shard_size, 16);
        assert_eq!(a.cfg.seed, 9);
        assert_eq!(a.checkpoint_every, Some(2));
        assert_eq!(a.checkpoint_path.as_deref(), Some("c.actk"));
        a.cfg.validate().unwrap();
    }

    #[test]
    fn train_defaults_are_quick() {
        let a = parse_train(&toks("--out e.aemb")).unwrap();
        assert_eq!(a.cfg.epochs, 5);
        assert_eq!(a.epochs_explicit, None);
        assert_eq!(a.cfg.batch_size, 128);
        assert_eq!(a.checkpoint_every, None);
        assert!(a.resume.is_none());
    }

    #[test]
    fn train_requires_out() {
        let err = parse_train(&toks("--dataset ppi")).unwrap_err();
        assert!(err.contains("--out is required"), "{err}");
    }

    #[test]
    fn train_rejects_unknown_flag() {
        let err = parse_train(&toks("--out e.aemb --bogus 3")).unwrap_err();
        assert!(err.contains("unknown flag --bogus"), "{err}");
    }

    #[test]
    fn train_rejects_missing_value() {
        for flag in ["--out", "--epochs", "--batch-size", "--lr", "--resume"] {
            let err = parse_train(&toks(flag)).unwrap_err();
            assert!(err.contains("needs a value"), "{flag}: {err}");
        }
    }

    #[test]
    fn train_rejects_out_of_range_numerics() {
        for (cmd, needle) in [
            ("--out e --scale 0", "--scale must be in (0,1]"),
            ("--out e --scale 1.5", "--scale must be in (0,1]"),
            ("--out e --batch-size 0", "--batch-size must be positive"),
            ("--out e --lr 0", "--lr must be positive"),
            ("--out e --lr -0.5", "--lr must be positive"),
            ("--out e --lr inf", "--lr must be positive and finite"),
            (
                "--out e --checkpoint-every 0",
                "--checkpoint-every must be positive",
            ),
        ] {
            let err = parse_train(&toks(cmd)).unwrap_err();
            assert!(err.contains(needle), "{cmd}: {err}");
        }
    }

    #[test]
    fn train_rejects_unparseable_numerics() {
        for cmd in [
            "--out e --epochs many",
            "--out e --dim 3.5",
            "--out e --batch-size -2",
            "--out e --epsilon six",
            "--out e --seed 0x12",
        ] {
            assert!(parse_train(&toks(cmd)).is_err(), "{cmd} should fail");
        }
    }

    #[test]
    fn train_rejects_unknown_variant() {
        let err = parse_train(&toks("--out e --variant gpt")).unwrap_err();
        assert!(err.contains("unknown variant"), "{err}");
    }

    #[test]
    fn resume_pins_the_model_configuration() {
        // Dataset/epochs/checkpoint flags may accompany --resume...
        let a = parse_train(&toks(
            "--out e.aemb --resume c.actk --dataset wiki --scale 0.2 --epochs 9 \
             --checkpoint-every 1",
        ))
        .unwrap();
        assert_eq!(a.resume.as_deref(), Some("c.actk"));
        assert_eq!(a.epochs_explicit, Some(9));
        // ...but model flags are rejected, naming the offenders.
        for flag in [
            "--variant advsgm",
            "--epsilon 3",
            "--sigma 2",
            "--dim 64",
            "--batch-size 32",
            "--lr 0.2",
            "--threads 2",
            "--shard-size 8",
            "--seed 4",
        ] {
            let cmd = format!("--out e.aemb --resume c.actk {flag}");
            let err = parse_train(&toks(&cmd)).unwrap_err();
            assert!(
                err.contains("--resume pins the model configuration"),
                "{flag}: {err}"
            );
            assert!(
                err.contains(flag.split_whitespace().next().unwrap()),
                "{flag}: {err}"
            );
        }
    }

    // ---- query ----

    #[test]
    fn query_node_happy_path() {
        let a = parse_query(&toks("--store e.aemb --node 3 --top-k 7 --threads 2")).unwrap();
        assert_eq!(a.store, "e.aemb");
        assert_eq!(a.target, QueryTarget::Node { node: 3, top_k: 7 });
        assert_eq!(a.threads, 2);
    }

    #[test]
    fn query_pair_happy_path() {
        let a = parse_query(&toks("--store e.aemb --pair 3 8")).unwrap();
        assert_eq!(a.target, QueryTarget::Pair { u: 3, v: 8 });
    }

    #[test]
    fn query_rejects_node_and_pair_together() {
        let err = parse_query(&toks("--store e.aemb --node 1 --pair 2 3")).unwrap_err();
        assert!(err.contains("not both"), "{err}");
        // Order must not matter.
        let err = parse_query(&toks("--store e.aemb --pair 2 3 --node 1")).unwrap_err();
        assert!(err.contains("not both"), "{err}");
    }

    #[test]
    fn query_requires_a_target_and_store() {
        let err = parse_query(&toks("--store e.aemb")).unwrap_err();
        assert!(err.contains("need --node U or --pair U V"), "{err}");
        let err = parse_query(&toks("--node 1")).unwrap_err();
        assert!(err.contains("--store is required"), "{err}");
    }

    #[test]
    fn query_rejects_unknown_flags_and_bad_numbers() {
        assert!(parse_query(&toks("--store e --node 1 --frobnicate"))
            .unwrap_err()
            .contains("unknown flag"));
        assert!(parse_query(&toks("--store e --node minus-one")).is_err());
        assert!(
            parse_query(&toks("--store e --pair 1")).is_err(),
            "pair needs two values"
        );
        assert!(parse_query(&toks("--store e --node 1 --top-k -4")).is_err());
    }

    // ---- info ----

    #[test]
    fn info_happy_and_sad_paths() {
        assert_eq!(parse_info(&toks("--store e.aemb")).unwrap().store, "e.aemb");
        assert!(parse_info(&toks(""))
            .unwrap_err()
            .contains("--store is required"));
        assert!(parse_info(&toks("--wat"))
            .unwrap_err()
            .contains("unknown flag"));
        assert!(parse_info(&toks("--store"))
            .unwrap_err()
            .contains("needs a value"));
    }
}
