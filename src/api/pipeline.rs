//! The pipeline lifecycle: train → release → persist → resume.
//!
//! [`Pipeline`] owns one training run end to end. It is produced by
//! [`PipelineBuilder::build`] (fresh runs) or [`Pipeline::resume`]
//! (checkpointed runs), executes through the session layer's engine
//! strategies without the caller ever naming an engine, and yields a
//! [`Trained`] handle sitting exactly on the paper's Theorem-5 release
//! boundary: everything reachable from `Trained` — the embedding store,
//! the serving handle, the privacy spend — is post-processing of the
//! released matrix and costs no further budget.
//!
//! [`PipelineBuilder::build`]: crate::api::PipelineBuilder::build

use std::num::NonZeroUsize;
use std::path::{Path, PathBuf};

use advsgm_core::{
    AdvSgmConfig, CheckpointState, EngineKind, EpochEvent, PartitionedTrainer, SessionControl,
    ShardedTrainer, SpendSnapshot, TrainHooks, TrainOutcome,
};
use advsgm_graph::Graph;
use advsgm_linalg::DenseMatrix;
use advsgm_privacy::RdpAccountant;
use advsgm_store::{load_checkpoint, save_checkpoint, EmbeddingStore};

use crate::api::error::{Error, Result};
use crate::api::service::EmbeddingService;

/// What a [`Pipeline`] observer receives while training runs.
///
/// # Examples
/// ```
/// use advsgm::api::{ModelVariant, PipelineBuilder, PipelineEvent};
/// use advsgm::graph::generators::classic::karate_club;
///
/// let graph = karate_club();
/// let mut epochs_seen = Vec::new();
/// PipelineBuilder::test_small(ModelVariant::Sgm)
///     .build(&graph)?
///     .observe(|event| {
///         if let PipelineEvent::Epoch(e) = event {
///             epochs_seen.push(e.epoch);
///         }
///     })
///     .train()?;
/// assert_eq!(epochs_seen, vec![0, 1]);
/// # Ok::<(), advsgm::api::Error>(())
/// ```
#[derive(Debug)]
#[non_exhaustive]
pub enum PipelineEvent<'a> {
    /// An epoch boundary: loss, updates, privacy spend, stop reason.
    Epoch(&'a EpochEvent),
    /// A periodic checkpoint (requested through
    /// [`Pipeline::checkpoint_every`]) was written.
    CheckpointSaved {
        /// The checkpoint file that was written.
        path: &'a Path,
        /// Completed epochs at the captured boundary.
        epochs_done: u64,
    },
}

/// A loaded training checkpoint, ready to resume.
///
/// Wraps the session layer's [`CheckpointState`] with the accessors a
/// driver needs *before* resuming — notably [`Checkpoint::seed`], so a
/// synthetic training graph can be rebuilt deterministically, and
/// [`Checkpoint::extend_epochs`], the one legal configuration override
/// (batch draws never depend on the total epoch count, so extending the
/// schedule preserves the bitwise trajectory).
///
/// # Examples
/// ```
/// use advsgm::api::{ModelVariant, Pipeline, PipelineBuilder, Checkpoint};
/// use advsgm::graph::generators::classic::karate_club;
///
/// let graph = karate_club();
/// let dir = std::env::temp_dir().join("advsgm_api_checkpoint_doc");
/// std::fs::create_dir_all(&dir)?;
/// let path = dir.join("doc.actk");
///
/// // Train a short run, keeping its final state resumable.
/// PipelineBuilder::test_small(ModelVariant::Sgm)
///     .build(&graph)?
///     .keep_checkpoint()
///     .train()?
///     .save_checkpoint(&path)?;
///
/// // Load it back, extend the schedule, and resume.
/// let mut ckpt = Checkpoint::load(&path)?;
/// assert_eq!(ckpt.epochs_done(), 2);
/// ckpt.extend_epochs(4)?;
/// let trained = Pipeline::resume_from(&graph, ckpt)?.train()?;
/// assert_eq!(trained.outcome().epochs_run, 4);
/// # std::fs::remove_file(&path)?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Checkpoint {
    state: CheckpointState,
    /// The partition-count *hint* for resuming out-of-core checkpoints
    /// ([`Checkpoint::set_partitions`]). Never persisted: the trajectory
    /// is partition-invariant, so the bucket count is free to change
    /// between the captured run and the resumed one.
    partitions: usize,
}

impl Checkpoint {
    /// Loads and verifies an `.actk` checkpoint file.
    ///
    /// # Errors
    /// [`Error::Store`] on I/O failures or any of the codec's typed
    /// corruption modes.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        Ok(Self {
            state: load_checkpoint(path)?,
            partitions: 0,
        })
    }

    /// Sets the node-bucket count used when resuming a checkpoint that
    /// was captured by the out-of-core partitioned engine (defaults to 1
    /// when unset). The continued trajectory is bitwise-identical under
    /// *any* count — this is purely a memory-residency choice, which is
    /// why it is a resume-time hint and not part of the persisted state.
    /// Ignored for in-RAM checkpoints.
    pub fn set_partitions(&mut self, partitions: usize) {
        self.partitions = partitions;
    }

    /// The base RNG seed of the checkpointed run (rebuild synthetic
    /// graphs from this before resuming).
    pub fn seed(&self) -> u64 {
        self.state.config.seed
    }

    /// Completed epochs at the captured boundary.
    pub fn epochs_done(&self) -> u64 {
        self.state.epochs_done
    }

    /// Discriminator updates applied so far.
    pub fn disc_updates(&self) -> u64 {
        self.state.disc_updates
    }

    /// The full pinned configuration (including the resolved thread
    /// count — resume never re-reads `ADVSGM_THREADS`).
    pub fn config(&self) -> &AdvSgmConfig {
        &self.state.config
    }

    /// Extends (or shortens, down to the completed count) the total
    /// epoch schedule — the only configuration override resume permits.
    ///
    /// # Errors
    /// [`Error::InvalidParameter`] when `epochs` is below the completed
    /// count.
    pub fn extend_epochs(&mut self, epochs: usize) -> Result<()> {
        if (epochs as u64) < self.state.epochs_done {
            return Err(Error::invalid(
                "epochs",
                format!(
                    "{epochs} is below the checkpoint's {} completed epochs",
                    self.state.epochs_done
                ),
            ));
        }
        self.state.config.epochs = epochs;
        Ok(())
    }

    /// The wrapped session-layer state (internals escape hatch).
    pub fn state(&self) -> &CheckpointState {
        &self.state
    }
}

/// Where periodic checkpoints go, and how often.
#[derive(Debug, Clone)]
struct CheckpointPolicy {
    every: NonZeroUsize,
    path: PathBuf,
}

/// The boxed observer a [`Pipeline`] carries.
type Observer<'g> = Box<dyn FnMut(PipelineEvent<'_>) + 'g>;

/// The engine a [`Pipeline`] drives: the in-RAM facade (which itself
/// selects sequential vs sharded by thread count) or the out-of-core
/// partitioned engine. Every variant runs the same `run_schedule` and
/// produces the same bitwise trajectory at a fixed seed.
enum AnyTrainer {
    InRam(ShardedTrainer),
    OutOfCore(Box<PartitionedTrainer>),
}

impl AnyTrainer {
    fn threads(&self) -> usize {
        match self {
            AnyTrainer::InRam(t) => t.threads(),
            AnyTrainer::OutOfCore(t) => t.threads(),
        }
    }

    fn config(&self) -> &AdvSgmConfig {
        match self {
            AnyTrainer::InRam(t) => t.config(),
            AnyTrainer::OutOfCore(t) => t.config(),
        }
    }

    fn train_with_hooks(
        self,
        graph: &Graph,
        hooks: &mut dyn TrainHooks,
    ) -> std::result::Result<TrainOutcome, advsgm_core::CoreError> {
        match self {
            AnyTrainer::InRam(t) => t.train_with_hooks(graph, hooks),
            AnyTrainer::OutOfCore(t) => t.train_with_hooks(graph, hooks),
        }
    }
}

/// One training run, engine-agnostic: built by
/// [`PipelineBuilder::build`] or [`Pipeline::resume`], consumed by
/// [`Pipeline::train`].
///
/// The engine is selected at construction: sequential vs sharded from
/// [`AdvSgmConfig::effective_threads`], or the out-of-core partitioned
/// engine when the builder asked for node buckets
/// ([`PipelineBuilder::partitions`]). A `Pipeline` run is
/// bitwise-identical to the equivalent hand-wired
/// [`Trainer`](advsgm_core::Trainer) / [`ShardedTrainer`] /
/// [`PartitionedTrainer`] run (`tests/api_facade.rs`,
/// `tests/ooc_equivalence.rs`).
///
/// [`PipelineBuilder::partitions`]: crate::api::PipelineBuilder::partitions
///
/// [`PipelineBuilder::build`]: crate::api::PipelineBuilder::build
///
/// # Examples
/// ```
/// use advsgm::api::{ModelVariant, PipelineBuilder};
/// use advsgm::graph::generators::classic::karate_club;
///
/// let graph = karate_club();
/// let pipeline = PipelineBuilder::test_small(ModelVariant::AdvSgm)
///     .threads(1)
///     .build(&graph)?;
/// assert_eq!(pipeline.threads(), 1);
/// let trained = pipeline.train()?;
/// assert!(trained.outcome().disc_updates > 0);
/// # Ok::<(), advsgm::api::Error>(())
/// ```
pub struct Pipeline<'g> {
    graph: &'g Graph,
    trainer: AnyTrainer,
    checkpoints: Option<CheckpointPolicy>,
    keep_checkpoint: bool,
    observer: Option<Observer<'g>>,
    /// The accountant's spend at the resumed-from boundary, so a resumed
    /// run whose schedule is already complete (zero epochs to replay,
    /// hence zero epoch events) still reports its spend on [`Trained`].
    resumed_spend: Option<SpendSnapshot>,
}

impl std::fmt::Debug for Pipeline<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("threads", &self.threads())
            .field("config", self.config())
            .field("checkpoints", &self.checkpoints)
            .field("keep_checkpoint", &self.keep_checkpoint)
            .field("observer", &self.observer.is_some())
            .finish()
    }
}

impl<'g> Pipeline<'g> {
    /// Wraps an already-constructed in-RAM trainer (crate-internal: the
    /// builder and resume paths are the public constructors).
    pub(crate) fn from_trainer(graph: &'g Graph, trainer: ShardedTrainer) -> Self {
        Self::from_any(graph, AnyTrainer::InRam(trainer))
    }

    /// Wraps an already-constructed out-of-core trainer (crate-internal:
    /// reached through [`PipelineBuilder::partitions`]).
    ///
    /// [`PipelineBuilder::partitions`]: crate::api::PipelineBuilder::partitions
    pub(crate) fn from_partitioned(graph: &'g Graph, trainer: PartitionedTrainer) -> Self {
        Self::from_any(graph, AnyTrainer::OutOfCore(Box::new(trainer)))
    }

    fn from_any(graph: &'g Graph, trainer: AnyTrainer) -> Self {
        Self {
            graph,
            trainer,
            checkpoints: None,
            keep_checkpoint: false,
            observer: None,
            resumed_spend: None,
        }
    }

    /// Resumes a checkpointed run from an `.actk` file, against the same
    /// graph it was captured on. The engine and thread count are pinned
    /// by the checkpoint; the continued run is bitwise-identical to
    /// never having interrupted the original.
    ///
    /// # Errors
    /// [`Error::Store`] on load/codec failures, [`Error::Core`] when the
    /// state is inconsistent or does not match `graph`.
    pub fn resume(graph: &'g Graph, path: impl AsRef<Path>) -> Result<Self> {
        Self::resume_from(graph, Checkpoint::load(path)?)
    }

    /// [`Pipeline::resume`] from an already-loaded [`Checkpoint`] — the
    /// entry point when the driver needs the checkpoint's seed or epoch
    /// counts (or to [`Checkpoint::extend_epochs`]) before resuming.
    ///
    /// # Errors
    /// [`Error::Core`] when the state is inconsistent or does not match
    /// `graph`.
    pub fn resume_from(graph: &'g Graph, checkpoint: Checkpoint) -> Result<Self> {
        // Dispatch on the engine recorded in the checkpoint: out-of-core
        // captures resume through the partitioned trainer (with the
        // caller's bucket-count hint — any count continues the same
        // bitwise trajectory), everything else through the in-RAM facade.
        let trainer = match checkpoint.state.engine {
            EngineKind::Partitioned => AnyTrainer::OutOfCore(Box::new(PartitionedTrainer::resume(
                graph,
                &checkpoint.state,
                checkpoint.partitions.max(1),
            )?)),
            _ => AnyTrainer::InRam(ShardedTrainer::resume(graph, &checkpoint.state)?),
        };
        // Seed the spend from the checkpointed accountant: if every epoch
        // is already done, no epoch event will ever fire to report it.
        let resumed_spend = match &checkpoint.state.accountant {
            Some(s) => {
                let cfg = &checkpoint.state.config;
                Some(RdpAccountant::from_state(s.clone())?.snapshot(cfg.epsilon, cfg.delta)?)
            }
            None => None,
        };
        let mut pipeline = Self::from_any(graph, trainer);
        pipeline.resumed_spend = resumed_spend;
        Ok(pipeline)
    }

    /// Writes a crash-safe `.actk` checkpoint to `path` every `every`
    /// completed epochs (and reports each write to the observer as
    /// [`PipelineEvent::CheckpointSaved`]). The most recent captured
    /// state is also kept in memory for [`Trained::save_checkpoint`].
    #[must_use]
    pub fn checkpoint_every(mut self, every: NonZeroUsize, path: impl Into<PathBuf>) -> Self {
        self.checkpoints = Some(CheckpointPolicy {
            every,
            path: path.into(),
        });
        self
    }

    /// Captures the final epoch boundary's state in memory so
    /// [`Trained::save_checkpoint`] can persist a resumable handle after
    /// the run (used to extend a finished schedule later). Budget-stopped
    /// runs are final and capture nothing.
    #[must_use]
    pub fn keep_checkpoint(mut self) -> Self {
        self.keep_checkpoint = true;
        self
    }

    /// Installs an observer for [`PipelineEvent`]s (live progress lines,
    /// metrics export). Purely observational: it cannot alter the
    /// trajectory, which stays bitwise-identical with or without it.
    #[must_use]
    pub fn observe(mut self, observer: impl FnMut(PipelineEvent<'_>) + 'g) -> Self {
        self.observer = Some(Box::new(observer));
        self
    }

    /// The resolved worker-thread count (1 means the sequential engine).
    pub fn threads(&self) -> usize {
        self.trainer.threads()
    }

    /// The validated configuration this pipeline will run.
    pub fn config(&self) -> &AdvSgmConfig {
        self.trainer.config()
    }

    /// Runs Algorithm 3 to completion (or budget exhaustion, which is
    /// *not* an error — see [`TrainOutcome::stopped_by_budget`]) and
    /// crosses the Theorem-5 release boundary: the returned [`Trained`]
    /// handle owns the released embedding store stamped with the
    /// accountant's spend.
    ///
    /// # Errors
    /// Substrate failures via their layer's [`enum@Error`] variant;
    /// [`Error::CheckpointWrite`] when a periodic checkpoint write
    /// failed (training stops gracefully at that boundary).
    pub fn train(self) -> Result<Trained> {
        let Pipeline {
            graph,
            trainer,
            checkpoints,
            keep_checkpoint,
            mut observer,
            resumed_spend,
        } = self;
        let cfg = trainer.config().clone();
        let mut hooks = PipelineHooks {
            policy: checkpoints,
            keep_final: keep_checkpoint,
            epochs_total: cfg.epochs,
            observer: observer.as_deref_mut(),
            latest: None,
            last_spend: resumed_spend,
            periodic_due: false,
            checkpoints_written: 0,
            write_error: None,
        };
        let outcome = trainer.train_with_hooks(graph, &mut hooks)?;
        if let Some((path, source)) = hooks.write_error {
            return Err(Error::CheckpointWrite { path, source });
        }
        let store = EmbeddingStore::from_outcome(&outcome, &cfg)?;
        Ok(Trained {
            outcome,
            store,
            spend: hooks.last_spend,
            checkpoint: hooks.latest,
            checkpoints_written: hooks.checkpoints_written,
        })
    }
}

/// The session-layer hook implementation behind [`Pipeline::train`]:
/// relays epoch events to the observer, executes the checkpoint policy,
/// and records the final spend snapshot for [`Trained::spend`].
struct PipelineHooks<'a, 'g> {
    policy: Option<CheckpointPolicy>,
    keep_final: bool,
    epochs_total: usize,
    observer: Option<&'a mut (dyn FnMut(PipelineEvent<'_>) + 'g)>,
    latest: Option<CheckpointState>,
    last_spend: Option<SpendSnapshot>,
    /// Set by [`TrainHooks::wants_checkpoint`] when the periodic policy
    /// asked for the capture; consumed by `on_checkpoint` so the
    /// periodic predicate lives in exactly one place.
    periodic_due: bool,
    checkpoints_written: usize,
    write_error: Option<(PathBuf, advsgm_store::StoreError)>,
}

impl TrainHooks for PipelineHooks<'_, '_> {
    fn may_checkpoint(&self) -> bool {
        // Engines skip per-epoch snapshot upkeep entirely when this run
        // can never request a checkpoint.
        self.policy.is_some() || self.keep_final
    }

    fn on_epoch(&mut self, event: &EpochEvent) -> SessionControl {
        if event.spend.is_some() {
            self.last_spend = event.spend;
        }
        if let Some(observer) = self.observer.as_mut() {
            observer(PipelineEvent::Epoch(event));
        }
        SessionControl::Continue
    }

    fn wants_checkpoint(&mut self, epochs_done: usize) -> bool {
        self.periodic_due = matches!(
            &self.policy,
            Some(p) if epochs_done.is_multiple_of(p.every.get())
        );
        let final_keep = self.keep_final && epochs_done == self.epochs_total;
        self.periodic_due || final_keep
    }

    fn on_checkpoint(&mut self, state: &CheckpointState) -> SessionControl {
        self.latest = Some(state.clone());
        let periodic = std::mem::take(&mut self.periodic_due);
        if let (true, Some(p)) = (periodic, &self.policy) {
            match save_checkpoint(&p.path, state) {
                Ok(()) => {
                    self.checkpoints_written += 1;
                    if let Some(observer) = self.observer.as_mut() {
                        observer(PipelineEvent::CheckpointSaved {
                            path: &p.path,
                            epochs_done: state.epochs_done,
                        });
                    }
                }
                Err(e) => {
                    self.write_error = Some((p.path.clone(), e));
                    return SessionControl::Stop;
                }
            }
        }
        SessionControl::Continue
    }
}

/// A finished training run on the release side of Theorem 5.
///
/// Owns the [`TrainOutcome`] and the released [`EmbeddingStore`] stamped
/// with the accountant's spend. Everything here — saving, serving,
/// inspecting the spend — is post-processing: no further privacy budget
/// is consumed regardless of how the handle is used.
///
/// # Examples
/// ```
/// use advsgm::api::{ModelVariant, PipelineBuilder};
/// use advsgm::graph::generators::classic::karate_club;
///
/// let graph = karate_club();
/// let trained = PipelineBuilder::test_small(ModelVariant::AdvSgm)
///     .build(&graph)?
///     .train()?;
/// let spend = trained.spend().expect("AdvSGM is private");
/// assert!(spend.epsilon_spent > 0.0);
///
/// // Serving is post-processing of the released store.
/// let service = trained.serve();
/// assert_eq!(service.len(), graph.num_nodes());
/// assert!(service.privacy().is_private());
/// # Ok::<(), advsgm::api::Error>(())
/// ```
#[derive(Debug)]
pub struct Trained {
    outcome: TrainOutcome,
    store: EmbeddingStore,
    spend: Option<SpendSnapshot>,
    checkpoint: Option<CheckpointState>,
    checkpoints_written: usize,
}

impl Trained {
    /// The accountant's final spend against the configured target —
    /// `None` for non-private variants. This is the number stamped into
    /// every artifact released from this handle.
    pub fn spend(&self) -> Option<SpendSnapshot> {
        self.spend
    }

    /// The full training outcome (epochs run, update counts, losses, the
    /// raw matrices).
    pub fn outcome(&self) -> &TrainOutcome {
        &self.outcome
    }

    /// The released node-vector matrix `W_in` — the embeddings used
    /// downstream.
    pub fn embeddings(&self) -> &DenseMatrix {
        &self.outcome.node_vectors
    }

    /// The released store: embeddings plus the privacy stamp.
    pub fn store(&self) -> &EmbeddingStore {
        &self.store
    }

    /// Periodic checkpoints written during the run
    /// ([`Pipeline::checkpoint_every`]).
    pub fn checkpoints_written(&self) -> usize {
        self.checkpoints_written
    }

    /// Persists the released embeddings as an `.aemb` file
    /// (`docs/FORMAT.md`), privacy stamp included; the roundtrip back
    /// through [`EmbeddingService::open`] is bitwise-exact.
    ///
    /// # Errors
    /// [`Error::Store`] on I/O failures.
    pub fn save_embeddings(&self, path: impl AsRef<Path>) -> Result<()> {
        Ok(self.store.save(path)?)
    }

    /// Persists the run's most recent captured checkpoint as an `.actk`
    /// file, from which [`Pipeline::resume`] continues (or extends) the
    /// schedule bitwise-exactly.
    ///
    /// # Errors
    /// [`Error::InvalidParameter`] when no checkpoint was captured —
    /// enable [`Pipeline::keep_checkpoint`] or
    /// [`Pipeline::checkpoint_every`] before training (budget-stopped
    /// runs are final and never capture state); [`Error::Store`] on
    /// write failures.
    pub fn save_checkpoint(&self, path: impl AsRef<Path>) -> Result<()> {
        let state = self.checkpoint.as_ref().ok_or_else(|| {
            Error::invalid(
                "checkpoint",
                "no checkpoint captured; enable Pipeline::keep_checkpoint or \
                 Pipeline::checkpoint_every before training",
            )
        })?;
        Ok(save_checkpoint(path, state)?)
    }

    /// The released store serialized to `.aemb` bytes — exactly what a
    /// [`Trained::save_embeddings`] file contains, without touching the
    /// filesystem. This is the Theorem-5 adversary's complete view of
    /// the run; the membership-inference audit
    /// ([`audit_membership`](crate::api::audit_membership)) attacks
    /// these bytes and nothing else.
    pub fn release_bytes(&self) -> Vec<u8> {
        self.store.to_bytes()
    }

    /// Opens a long-lived serving handle over a copy of the released
    /// store (thread width auto-resolved; see
    /// [`EmbeddingService::from_store`]). Consuming alternative:
    /// [`Trained::into_service`].
    pub fn serve(&self) -> EmbeddingService {
        EmbeddingService::from_store(self.store.clone())
    }

    /// [`Trained::serve`] without copying the store (consumes the
    /// handle).
    pub fn into_service(self) -> EmbeddingService {
        EmbeddingService::from_store(self.store)
    }
}
