//! The facade's audit entry point: wiring real pipeline training into
//! the membership-inference harness of `advsgm-attack`.
//!
//! The harness (`advsgm_attack::run_audit`) is deliberately blind to the
//! training stack — it consumes a *release function* mapping `(graph,
//! seed)` to released `.aemb` bytes. This module supplies that function
//! from a [`PipelineBuilder`]: each paired-world run clones the builder,
//! pins the derived seed, forces the sequential engine (`threads(1)` —
//! the harness owns the fan-out), trains, and hands back
//! [`Trained::release_bytes`]. The attack then reads scores through the
//! released bytes only, exactly the Theorem-5 adversary's view, so the
//! audit consumes no privacy budget beyond the training runs themselves.
//!
//! [`Trained::release_bytes`]: crate::api::Trained::release_bytes

use advsgm_attack::{
    run_audit, AttackError, AuditConfig, AuditOutcome, AuditReport, ReleaseProfile,
};
use advsgm_core::ModelVariant;
use advsgm_graph::Graph;

use crate::api::builder::PipelineBuilder;
use crate::api::error::Result;

/// Runs the full membership-inference audit against releases trained by
/// `builder`, and (when `with_ablation` is set) repeats it with the DP
/// machinery switched off ([`ModelVariant::AdvSgmNoDp`]) as the σ→0
/// sensitivity check: if the harness cannot certify a large `epsilon`
/// even without noise, the panel is too weak for the private result to
/// mean anything.
///
/// The returned [`AuditReport`] is byte-deterministic in `(graph,
/// builder, cfg)` — rerunning at the same seed reproduces
/// `results/AUDIT_membership.json` exactly (`tests/audit_harness.rs`).
///
/// # Examples
/// ```
/// use advsgm::api::{audit_membership, AuditConfig, ModelVariant, PipelineBuilder};
/// use advsgm::graph::generators::classic::karate_club;
///
/// let graph = karate_club();
/// let builder = PipelineBuilder::test_small(ModelVariant::AdvSgm);
/// let mut cfg = AuditConfig::new(7);
/// cfg.targets = 1;
/// cfg.runs_per_world = 2;
/// let report = audit_membership(&graph, &builder, &cfg, false)?;
/// assert_eq!(report.experiment, "audit_membership");
/// assert!(report.audit.stamped_epsilon.is_some(), "AdvSGM stamps spend");
/// # Ok::<(), advsgm::api::Error>(())
/// ```
///
/// # Errors
/// [`Error::Attack`](crate::api::Error::Attack) on audit-config
/// violations, panels larger than the held-out edge set, or any failed
/// training run (the underlying pipeline error is carried in the
/// attack-layer `Release` message).
pub fn audit_membership(
    graph: &Graph,
    builder: &PipelineBuilder,
    cfg: &AuditConfig,
    with_ablation: bool,
) -> Result<AuditReport> {
    let outcome = audit_outcome(graph, builder, cfg)?;
    let ablation = if with_ablation {
        let no_dp = builder.clone().variant(ModelVariant::AdvSgmNoDp);
        Some(audit_outcome(graph, &no_dp, cfg)?)
    } else {
        None
    };
    Ok(AuditReport::assemble(
        cfg,
        release_profile(builder),
        &outcome,
        ablation.as_ref(),
    ))
}

/// One audited condition: the harness run without report assembly — the
/// building block for callers composing their own ablation grids.
///
/// # Errors
/// As [`audit_membership`].
pub fn audit_outcome(
    graph: &Graph,
    builder: &PipelineBuilder,
    cfg: &AuditConfig,
) -> Result<AuditOutcome> {
    let release = |g: &Graph, seed: u64| -> std::result::Result<Vec<u8>, AttackError> {
        let trained = builder
            .clone()
            .seed(seed)
            .threads(1)
            .build(g)
            .and_then(|p| p.train())
            .map_err(|e| AttackError::release(e.to_string()))?;
        Ok(trained.release_bytes())
    };
    Ok(run_audit(graph, cfg, release)?)
}

/// The [`ReleaseProfile`] the report echoes, read off the builder's
/// assembled configuration.
fn release_profile(builder: &PipelineBuilder) -> ReleaseProfile {
    let c = builder.config();
    ReleaseProfile {
        variant: c.variant.paper_name().to_string(),
        dim: c.dim,
        epochs: c.epochs,
        batch_size: c.batch_size,
        learning_rate: c.eta_d,
        sigma: c.sigma,
        epsilon_target: c.epsilon,
        delta: c.delta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use advsgm_graph::generators::erdos_renyi::gnm_random_graph;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn small_graph() -> Graph {
        let mut rng = SmallRng::seed_from_u64(5);
        gnm_random_graph(40, 120, &mut rng)
    }

    fn tiny_cfg(seed: u64) -> AuditConfig {
        let mut cfg = AuditConfig::new(seed);
        cfg.targets = 1;
        cfg.runs_per_world = 2;
        cfg
    }

    #[test]
    fn profile_echoes_the_builder_config() {
        let b = PipelineBuilder::test_small(ModelVariant::AdvSgm)
            .epochs(3)
            .learning_rate(0.07);
        let p = release_profile(&b);
        assert_eq!(p.variant, "AdvSGM");
        assert_eq!(p.epochs, 3);
        assert_eq!(p.learning_rate, 0.07);
        assert_eq!(p.sigma, b.config().sigma);
    }

    #[test]
    fn failed_training_surfaces_as_attack_release_error() {
        let g = small_graph();
        // gen_iters(0) fails builder validation inside the release fn.
        let b = PipelineBuilder::test_small(ModelVariant::AdvSgm).gen_iters(0);
        let err = audit_membership(&g, &b, &tiny_cfg(1), false).unwrap_err();
        let msg = err.to_string();
        assert!(msg.starts_with("attack: release failed"), "{msg}");
        assert!(msg.contains("invalid configuration"), "{msg}");
    }

    #[test]
    fn ablation_swaps_in_the_no_dp_variant() {
        let g = small_graph();
        let b = PipelineBuilder::test_small(ModelVariant::AdvSgm);
        let report = audit_membership(&g, &b, &tiny_cfg(2), true).unwrap();
        // The headline section is stamped; the σ→0 section is not (the
        // non-private variant releases without an epsilon stamp).
        assert!(report.audit.stamped_epsilon.is_some());
        let ablation = report.ablation.expect("ablation requested");
        assert!(ablation.stamped_epsilon.is_none());
        // The profile echoes the *audited* (private) configuration.
        assert_eq!(report.train.variant, "AdvSGM");
    }
}
