//! The long-lived query-serving handle over a released embedding store.
//!
//! [`EmbeddingService`] wraps an [`EmbeddingStore`] together with an
//! owned worker pool, so a serving loop pays thread spawns once and
//! answers every query — Eq.-2 pair scores, top-k neighbors, batched
//! top-k — from then on. All of it is post-processing of the released
//! matrix (the paper's Theorem 5): the privacy stamp the service reports
//! is the complete cost no matter how many queries run, and batched
//! results are bitwise-identical at every pool width.

use std::path::Path;
use std::sync::Mutex;

use advsgm_linalg::backend::RelaxedKernels;
use advsgm_parallel::{resolve_threads, ThreadPool};
use advsgm_store::{EmbeddingStore, IndexParams, IvfIndex, Neighbor, PrivacyMeta, SearchResult};

use crate::api::error::Result;

/// A query-serving handle: the released store plus an owned worker pool.
///
/// # Examples
/// ```
/// use advsgm::api::{EmbeddingService, ModelVariant, PipelineBuilder};
/// use advsgm::graph::generators::classic::karate_club;
///
/// let graph = karate_club();
/// let dir = std::env::temp_dir().join("advsgm_api_service_doc");
/// std::fs::create_dir_all(&dir)?;
/// let path = dir.join("doc.aemb");
///
/// PipelineBuilder::test_small(ModelVariant::AdvSgm)
///     .build(&graph)?
///     .train()?
///     .save_embeddings(&path)?;
///
/// let service = EmbeddingService::open(&path)?;
/// println!("released under: {}", service.privacy());
/// let score = service.score(0, 33)?;
/// assert!(score.is_finite());
/// let top = service.top_k(0, 5)?;
/// assert_eq!(top.len(), 5);
/// let batched = service.batch_top_k(&[0, 33], 5)?;
/// assert_eq!(batched[0], top, "batched serving matches single-query");
/// # std::fs::remove_file(&path)?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct EmbeddingService {
    store: EmbeddingStore,
    /// Resolved worker width; the pool itself is built on the first
    /// batched query, so single-query and metadata-only consumers (e.g.
    /// `advsgm info`) never spawn threads. Interior-mutable so the whole
    /// query surface takes `&self` (a shared service handle can serve).
    threads: usize,
    pool: Mutex<Option<ThreadPool>>,
    /// Optional ANN index for sublinear approximate queries; validated
    /// against the store's fingerprint when attached. Exact paths never
    /// consult it.
    index: Option<IvfIndex>,
    /// Relaxed-tier kernel opt-in (DESIGN.md §15). `None` (the default)
    /// keeps every scan on the bitwise tier; `Some` routes *only* the
    /// approximate candidate scan through reassociated-FMA dots —
    /// Theorem-5 post-processing of the released embeddings. Exact
    /// queries and index building never consult it.
    relaxed: Option<RelaxedKernels>,
}

impl std::fmt::Debug for EmbeddingService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EmbeddingService")
            .field("nodes", &self.store.len())
            .field("dim", &self.store.dim())
            .field("privacy", self.store.meta())
            .field("pool_threads", &self.threads)
            .finish()
    }
}

impl EmbeddingService {
    /// Loads an `.aemb` file (checksum-verified) and stands up a serving
    /// handle with the worker width auto-resolved (`ADVSGM_THREADS` if
    /// set, else 1).
    ///
    /// # Errors
    /// [`Error`](crate::api::Error) wrapping I/O failures and every
    /// typed corruption mode of the format.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        Ok(Self::from_store(EmbeddingStore::load(path)?))
    }

    /// [`EmbeddingService::open`] with an explicit worker width
    /// (`0` = auto). Width never changes results, only latency: batched
    /// serving is bitwise thread-count-invariant.
    ///
    /// # Errors
    /// See [`EmbeddingService::open`].
    pub fn open_with_threads(path: impl AsRef<Path>, threads: usize) -> Result<Self> {
        Ok(Self::with_threads(EmbeddingStore::load(path)?, threads))
    }

    /// Wraps an in-memory store with the worker width auto-resolved.
    pub fn from_store(store: EmbeddingStore) -> Self {
        Self::with_threads(store, 0)
    }

    /// Wraps an in-memory store with an explicit worker width
    /// (`0` = auto, resolved here so `ADVSGM_THREADS` is read once at
    /// construction). Worker threads spawn lazily on the first
    /// [`EmbeddingService::batch_top_k`] call.
    pub fn with_threads(store: EmbeddingStore, threads: usize) -> Self {
        Self {
            threads: resolve_threads(threads),
            pool: Mutex::new(None),
            store,
            index: None,
            relaxed: None,
        }
    }

    /// Opts the approximate query path into the relaxed kernel tier
    /// ([`RelaxedKernels`]): candidate scans use reassociated-FMA dot
    /// products on the active backend. Exact queries, `score`, and index
    /// construction stay on the bitwise tier, so released artifacts are
    /// unaffected — this is pure post-processing of the Theorem-5
    /// release. Deterministic for a fixed backend; near-tied neighbors
    /// may swap relative to the bitwise scan.
    pub fn enable_relaxed_kernels(&mut self) {
        self.relaxed = Some(RelaxedKernels::opt_in());
    }

    /// Whether the relaxed kernel tier is active for approximate queries.
    #[must_use]
    pub fn relaxed_kernels_enabled(&self) -> bool {
        self.relaxed.is_some()
    }

    /// [`EmbeddingService::open_with_threads`] plus an `.aidx` ANN index
    /// loaded alongside and validated against the store (fingerprint,
    /// shape). The result serves approximate queries sublinearly; every
    /// exact path is untouched.
    ///
    /// # Errors
    /// Everything [`EmbeddingService::open`] reports, the index format's
    /// typed corruption modes, and
    /// [`StoreError::IndexStoreMismatch`](advsgm_store::StoreError::IndexStoreMismatch)
    /// when the index was built from a different release.
    pub fn open_indexed(
        store_path: impl AsRef<Path>,
        index_path: impl AsRef<Path>,
        threads: usize,
    ) -> Result<Self> {
        let mut service = Self::open_with_threads(store_path, threads)?;
        service.attach_index(IvfIndex::load(index_path)?)?;
        Ok(service)
    }

    /// Attaches a prebuilt ANN index after validating it belongs to the
    /// served store (the `O(n·r)` fingerprint pass runs once, here — not
    /// per query).
    ///
    /// # Errors
    /// [`StoreError::IndexStoreMismatch`](advsgm_store::StoreError::IndexStoreMismatch)
    /// when shape or fingerprint disagree.
    pub fn attach_index(&mut self, index: IvfIndex) -> Result<()> {
        index.validate_for(&self.store)?;
        self.index = Some(index);
        Ok(())
    }

    /// Builds an ANN index from the served store (Theorem-5
    /// post-processing; no privacy cost) and attaches it.
    ///
    /// # Errors
    /// See [`IvfIndex::build`].
    pub fn build_index(&mut self, params: IndexParams) -> Result<&IvfIndex> {
        let index = IvfIndex::build(&self.store, params)?;
        self.index = Some(index);
        Ok(self.index.as_ref().expect("just attached"))
    }

    /// The attached ANN index, if any.
    pub fn index(&self) -> Option<&IvfIndex> {
        self.index.as_ref()
    }

    /// Number of served nodes.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the service holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Embedding dimension `r`.
    pub fn dim(&self) -> usize {
        self.store.dim()
    }

    /// The privacy stamp the release carries: variant and, for private
    /// variants, the spent `(epsilon, delta)` and `sigma`.
    pub fn privacy(&self) -> &PrivacyMeta {
        self.store.meta()
    }

    /// Eq. 2's link score `<v_u, v_v>`.
    ///
    /// # Errors
    /// [`Error::Store`](crate::api::Error::Store) for rows the store
    /// does not hold.
    pub fn score(&self, u: usize, v: usize) -> Result<f64> {
        Ok(self.store.score(u, v)?)
    }

    /// The `k` highest-scoring neighbors of `u` (self excluded), sorted
    /// by `(score desc, row asc)`.
    ///
    /// # Errors
    /// [`Error::Store`](crate::api::Error::Store) for rows the store
    /// does not hold.
    pub fn top_k(&self, u: usize, k: usize) -> Result<Vec<Neighbor>> {
        Ok(self.store.top_k(u, k)?)
    }

    /// [`EmbeddingService::top_k`] for many query nodes at once, spread
    /// over the service's pool (spawned on the first call, then reused;
    /// concurrent callers serialise on it). Results are assembled in
    /// query order and are bitwise-identical at every pool width.
    ///
    /// # Errors
    /// [`Error::Store`](crate::api::Error::Store) if *any* query row is
    /// out of range (checked up front; no partial results).
    pub fn batch_top_k(&self, queries: &[usize], k: usize) -> Result<Vec<Vec<Neighbor>>> {
        // A poisoned lock only means a previous batch panicked; the pool
        // cache itself stays usable.
        let mut guard = self
            .pool
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let pool = guard.get_or_insert_with(|| ThreadPool::new(self.threads));
        Ok(self.store.batch_top_k_in(queries, k, pool)?)
    }

    /// Approximate top-k through the attached ANN index: probes the
    /// clusters the build-time calibration says reach `recall_target`,
    /// scanning a fraction of the store instead of all of it.
    ///
    /// `recall_target >= 1.0` — or no attached index — falls back to the
    /// exact scan, so the call is always answerable and exactness is an
    /// explicit point on the same dial.
    ///
    /// # Errors
    /// [`Error::Store`](crate::api::Error::Store) for rows the store does
    /// not hold.
    pub fn top_k_approx(&self, u: usize, k: usize, recall_target: f64) -> Result<Vec<Neighbor>> {
        Ok(self.top_k_approx_with_stats(u, k, recall_target)?.neighbors)
    }

    /// [`EmbeddingService::top_k_approx`] keeping the search statistics
    /// ([`SearchResult::rows_scanned`]) — the bench harness and recall
    /// tests read the scan fraction from here.
    ///
    /// # Errors
    /// See [`EmbeddingService::top_k_approx`].
    pub fn top_k_approx_with_stats(
        &self,
        u: usize,
        k: usize,
        recall_target: f64,
    ) -> Result<SearchResult> {
        match &self.index {
            Some(index) if recall_target < 1.0 => {
                let nprobe = index.nprobe_for(recall_target);
                Ok(match &self.relaxed {
                    Some(kernels) => index.search_relaxed(&self.store, u, k, nprobe, kernels)?,
                    None => index.search(&self.store, u, k, nprobe)?,
                })
            }
            _ => Ok(SearchResult {
                neighbors: self.store.top_k(u, k)?,
                rows_scanned: self.store.len().saturating_sub(1),
            }),
        }
    }

    /// [`EmbeddingService::top_k_approx`] for many query nodes: duplicate
    /// queries are resolved once and fanned back out in query order, so a
    /// hot node costs one index probe no matter how often the batch asks
    /// for it.
    ///
    /// # Errors
    /// [`Error::Store`](crate::api::Error::Store) if *any* query row is
    /// out of range (checked per query as it is resolved).
    pub fn batch_top_k_approx(
        &self,
        queries: &[usize],
        k: usize,
        recall_target: f64,
    ) -> Result<Vec<Vec<Neighbor>>> {
        let mut resolved: std::collections::HashMap<usize, Vec<Neighbor>> =
            std::collections::HashMap::new();
        let mut out = Vec::with_capacity(queries.len());
        for &u in queries {
            let neighbors = match resolved.entry(u) {
                std::collections::hash_map::Entry::Occupied(e) => e.get().clone(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    let got = self.top_k_approx_with_stats(u, k, recall_target)?.neighbors;
                    e.insert(got.clone());
                    got
                }
            };
            out.push(neighbors);
        }
        Ok(out)
    }

    /// Persists the served store as an `.aemb` file (bitwise-exact
    /// roundtrip).
    ///
    /// # Errors
    /// [`Error::Store`](crate::api::Error::Store) on I/O failures.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        Ok(self.store.save(path)?)
    }

    /// The wrapped store (internals escape hatch).
    pub fn store(&self) -> &EmbeddingStore {
        &self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advsgm_core::ModelVariant;
    use advsgm_linalg::DenseMatrix;

    fn service() -> EmbeddingService {
        let m = DenseMatrix::from_fn(20, 4, |i, j| ((i * 7 + j * 3) as f64 * 0.17).sin());
        let store = EmbeddingStore::new(m, PrivacyMeta::non_private(ModelVariant::Sgm)).unwrap();
        EmbeddingService::with_threads(store, 2)
    }

    #[test]
    fn queries_match_the_store() {
        let s = service();
        assert_eq!(s.len(), 20);
        assert_eq!(s.dim(), 4);
        assert!(!s.is_empty());
        assert!(!s.privacy().is_private());
        let solo = s.top_k(3, 5).unwrap();
        assert_eq!(solo, s.store().top_k(3, 5).unwrap());
        let batched = s.batch_top_k(&[3, 7], 5).unwrap();
        assert_eq!(batched[0], solo);
        assert_eq!(
            s.score(1, 2).unwrap().to_bits(),
            s.store().score(1, 2).unwrap().to_bits()
        );
    }

    #[test]
    fn out_of_range_queries_are_typed_errors() {
        let s = service();
        assert!(s.score(0, 99).is_err());
        assert!(s.top_k(99, 3).is_err());
        assert!(s.batch_top_k(&[0, 99], 3).is_err());
    }

    #[test]
    fn open_missing_file_reports_the_store_layer() {
        let err = EmbeddingService::open("/nonexistent/advsgm/nope.aemb").unwrap_err();
        assert!(err.to_string().starts_with("store: "), "{err}");
    }

    #[test]
    fn approx_without_index_is_the_exact_scan() {
        let s = service();
        let approx = s.top_k_approx(3, 5, 0.9).unwrap();
        let exact = s.top_k(3, 5).unwrap();
        assert_eq!(approx, exact);
        let stats = s.top_k_approx_with_stats(3, 5, 0.9).unwrap();
        assert_eq!(stats.rows_scanned, s.len() - 1);
    }

    #[test]
    fn approx_with_index_serves_and_exact_target_matches_top_k() {
        let mut s = service();
        s.build_index(IndexParams {
            nlist: 4,
            ..IndexParams::default()
        })
        .unwrap();
        assert!(s.index().is_some());
        // recall_target >= 1.0 must take the untouched exact path.
        let exact = s.top_k_approx(3, 5, 1.0).unwrap();
        let reference = s.top_k(3, 5).unwrap();
        assert_eq!(exact.len(), reference.len());
        for (a, b) in exact.iter().zip(&reference) {
            assert_eq!(a.node, b.node);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
        // Approximate batches dedupe and fan out in query order.
        let batched = s.batch_top_k_approx(&[3, 7, 3], 5, 0.9).unwrap();
        assert_eq!(batched.len(), 3);
        assert_eq!(batched[0], batched[2]);
        assert_eq!(batched[0], s.top_k_approx(3, 5, 0.9).unwrap());
    }

    #[test]
    fn foreign_index_is_rejected_at_attach() {
        let mut s = service();
        let other = {
            let m = DenseMatrix::from_fn(20, 4, |i, j| ((i * 5 + j) as f64 * 0.23).cos());
            EmbeddingStore::new(m, PrivacyMeta::non_private(ModelVariant::Sgm)).unwrap()
        };
        let foreign = IvfIndex::build(&other, IndexParams::default()).unwrap();
        let err = s.attach_index(foreign).unwrap_err();
        assert!(err.to_string().contains("does not match"), "{err}");
        assert!(s.index().is_none());
    }
}
