//! The long-lived query-serving handle over a released embedding store.
//!
//! [`EmbeddingService`] wraps an [`EmbeddingStore`] together with an
//! owned worker pool, so a serving loop pays thread spawns once and
//! answers every query — Eq.-2 pair scores, top-k neighbors, batched
//! top-k — from then on. All of it is post-processing of the released
//! matrix (the paper's Theorem 5): the privacy stamp the service reports
//! is the complete cost no matter how many queries run, and batched
//! results are bitwise-identical at every pool width.

use std::path::Path;
use std::sync::Mutex;

use advsgm_parallel::{resolve_threads, ThreadPool};
use advsgm_store::{EmbeddingStore, Neighbor, PrivacyMeta};

use crate::api::error::Result;

/// A query-serving handle: the released store plus an owned worker pool.
///
/// # Examples
/// ```
/// use advsgm::api::{EmbeddingService, ModelVariant, PipelineBuilder};
/// use advsgm::graph::generators::classic::karate_club;
///
/// let graph = karate_club();
/// let dir = std::env::temp_dir().join("advsgm_api_service_doc");
/// std::fs::create_dir_all(&dir)?;
/// let path = dir.join("doc.aemb");
///
/// PipelineBuilder::test_small(ModelVariant::AdvSgm)
///     .build(&graph)?
///     .train()?
///     .save_embeddings(&path)?;
///
/// let service = EmbeddingService::open(&path)?;
/// println!("released under: {}", service.privacy());
/// let score = service.score(0, 33)?;
/// assert!(score.is_finite());
/// let top = service.top_k(0, 5)?;
/// assert_eq!(top.len(), 5);
/// let batched = service.batch_top_k(&[0, 33], 5)?;
/// assert_eq!(batched[0], top, "batched serving matches single-query");
/// # std::fs::remove_file(&path)?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct EmbeddingService {
    store: EmbeddingStore,
    /// Resolved worker width; the pool itself is built on the first
    /// batched query, so single-query and metadata-only consumers (e.g.
    /// `advsgm info`) never spawn threads. Interior-mutable so the whole
    /// query surface takes `&self` (a shared service handle can serve).
    threads: usize,
    pool: Mutex<Option<ThreadPool>>,
}

impl std::fmt::Debug for EmbeddingService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EmbeddingService")
            .field("nodes", &self.store.len())
            .field("dim", &self.store.dim())
            .field("privacy", self.store.meta())
            .field("pool_threads", &self.threads)
            .finish()
    }
}

impl EmbeddingService {
    /// Loads an `.aemb` file (checksum-verified) and stands up a serving
    /// handle with the worker width auto-resolved (`ADVSGM_THREADS` if
    /// set, else 1).
    ///
    /// # Errors
    /// [`Error`](crate::api::Error) wrapping I/O failures and every
    /// typed corruption mode of the format.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        Ok(Self::from_store(EmbeddingStore::load(path)?))
    }

    /// [`EmbeddingService::open`] with an explicit worker width
    /// (`0` = auto). Width never changes results, only latency: batched
    /// serving is bitwise thread-count-invariant.
    ///
    /// # Errors
    /// See [`EmbeddingService::open`].
    pub fn open_with_threads(path: impl AsRef<Path>, threads: usize) -> Result<Self> {
        Ok(Self::with_threads(EmbeddingStore::load(path)?, threads))
    }

    /// Wraps an in-memory store with the worker width auto-resolved.
    pub fn from_store(store: EmbeddingStore) -> Self {
        Self::with_threads(store, 0)
    }

    /// Wraps an in-memory store with an explicit worker width
    /// (`0` = auto, resolved here so `ADVSGM_THREADS` is read once at
    /// construction). Worker threads spawn lazily on the first
    /// [`EmbeddingService::batch_top_k`] call.
    pub fn with_threads(store: EmbeddingStore, threads: usize) -> Self {
        Self {
            threads: resolve_threads(threads),
            pool: Mutex::new(None),
            store,
        }
    }

    /// Number of served nodes.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the service holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Embedding dimension `r`.
    pub fn dim(&self) -> usize {
        self.store.dim()
    }

    /// The privacy stamp the release carries: variant and, for private
    /// variants, the spent `(epsilon, delta)` and `sigma`.
    pub fn privacy(&self) -> &PrivacyMeta {
        self.store.meta()
    }

    /// Eq. 2's link score `<v_u, v_v>`.
    ///
    /// # Errors
    /// [`Error::Store`](crate::api::Error::Store) for rows the store
    /// does not hold.
    pub fn score(&self, u: usize, v: usize) -> Result<f64> {
        Ok(self.store.score(u, v)?)
    }

    /// The `k` highest-scoring neighbors of `u` (self excluded), sorted
    /// by `(score desc, row asc)`.
    ///
    /// # Errors
    /// [`Error::Store`](crate::api::Error::Store) for rows the store
    /// does not hold.
    pub fn top_k(&self, u: usize, k: usize) -> Result<Vec<Neighbor>> {
        Ok(self.store.top_k(u, k)?)
    }

    /// [`EmbeddingService::top_k`] for many query nodes at once, spread
    /// over the service's pool (spawned on the first call, then reused;
    /// concurrent callers serialise on it). Results are assembled in
    /// query order and are bitwise-identical at every pool width.
    ///
    /// # Errors
    /// [`Error::Store`](crate::api::Error::Store) if *any* query row is
    /// out of range (checked up front; no partial results).
    pub fn batch_top_k(&self, queries: &[usize], k: usize) -> Result<Vec<Vec<Neighbor>>> {
        // A poisoned lock only means a previous batch panicked; the pool
        // cache itself stays usable.
        let mut guard = self
            .pool
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let pool = guard.get_or_insert_with(|| ThreadPool::new(self.threads));
        Ok(self.store.batch_top_k_in(queries, k, pool)?)
    }

    /// Persists the served store as an `.aemb` file (bitwise-exact
    /// roundtrip).
    ///
    /// # Errors
    /// [`Error::Store`](crate::api::Error::Store) on I/O failures.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        Ok(self.store.save(path)?)
    }

    /// The wrapped store (internals escape hatch).
    pub fn store(&self) -> &EmbeddingStore {
        &self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advsgm_core::ModelVariant;
    use advsgm_linalg::DenseMatrix;

    fn service() -> EmbeddingService {
        let m = DenseMatrix::from_fn(20, 4, |i, j| ((i * 7 + j * 3) as f64 * 0.17).sin());
        let store = EmbeddingStore::new(m, PrivacyMeta::non_private(ModelVariant::Sgm)).unwrap();
        EmbeddingService::with_threads(store, 2)
    }

    #[test]
    fn queries_match_the_store() {
        let s = service();
        assert_eq!(s.len(), 20);
        assert_eq!(s.dim(), 4);
        assert!(!s.is_empty());
        assert!(!s.privacy().is_private());
        let solo = s.top_k(3, 5).unwrap();
        assert_eq!(solo, s.store().top_k(3, 5).unwrap());
        let batched = s.batch_top_k(&[3, 7], 5).unwrap();
        assert_eq!(batched[0], solo);
        assert_eq!(
            s.score(1, 2).unwrap().to_bits(),
            s.store().score(1, 2).unwrap().to_bits()
        );
    }

    #[test]
    fn out_of_range_queries_are_typed_errors() {
        let s = service();
        assert!(s.score(0, 99).is_err());
        assert!(s.top_k(99, 3).is_err());
        assert!(s.batch_top_k(&[0, 99], 3).is_err());
    }

    #[test]
    fn open_missing_file_reports_the_store_layer() {
        let err = EmbeddingService::open("/nonexistent/advsgm/nope.aemb").unwrap_err();
        assert!(err.to_string().starts_with("store: "), "{err}");
    }
}
