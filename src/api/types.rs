//! Typed configuration values — parse, don't validate.
//!
//! Each newtype's constructor rejects out-of-range values, so once a
//! value exists it is known-good: a [`PipelineBuilder`] built from these
//! types cannot represent a config whose named privacy/shape parameters
//! are invalid, and the remaining cross-field constraints are checked
//! exactly once by [`PipelineBuilder::build`].
//!
//! [`PipelineBuilder`]: crate::api::PipelineBuilder
//! [`PipelineBuilder::build`]: crate::api::PipelineBuilder::build

use std::fmt;

use crate::api::error::{Error, Result};

/// A validated privacy budget `epsilon`: finite and strictly positive.
///
/// # Examples
/// ```
/// use advsgm::api::Epsilon;
///
/// let eps = Epsilon::new(6.0).unwrap();
/// assert_eq!(eps.get(), 6.0);
/// assert!(Epsilon::new(0.0).is_err());
/// assert!(Epsilon::new(f64::NAN).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Epsilon(f64);

impl Epsilon {
    /// Parses a raw budget; rejects non-finite and non-positive values.
    ///
    /// # Errors
    /// [`Error::InvalidParameter`] naming `epsilon`.
    pub fn new(value: f64) -> Result<Self> {
        if value.is_finite() && value > 0.0 {
            Ok(Self(value))
        } else {
            Err(Error::invalid(
                "epsilon",
                format!("privacy budget must be finite and positive, got {value}"),
            ))
        }
    }

    /// The validated value.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl fmt::Display for Epsilon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A validated failure probability `delta`: strictly inside `(0, 1)`.
///
/// # Examples
/// ```
/// use advsgm::api::Delta;
///
/// assert_eq!(Delta::new(1e-5).unwrap().get(), 1e-5);
/// assert!(Delta::new(0.0).is_err());
/// assert!(Delta::new(1.0).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Delta(f64);

impl Delta {
    /// Parses a raw delta; rejects values outside the open interval
    /// `(0, 1)` (NaN included).
    ///
    /// # Errors
    /// [`Error::InvalidParameter`] naming `delta`.
    pub fn new(value: f64) -> Result<Self> {
        if value > 0.0 && value < 1.0 {
            Ok(Self(value))
        } else {
            Err(Error::invalid(
                "delta",
                format!("failure probability must be in (0, 1), got {value}"),
            ))
        }
    }

    /// The validated value.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl fmt::Display for Delta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A validated noise multiplier `sigma`: finite and strictly positive.
///
/// # Examples
/// ```
/// use advsgm::api::NoiseSigma;
///
/// assert_eq!(NoiseSigma::new(5.0).unwrap().get(), 5.0);
/// assert!(NoiseSigma::new(-1.0).is_err());
/// assert!(NoiseSigma::new(f64::INFINITY).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct NoiseSigma(f64);

impl NoiseSigma {
    /// Parses a raw noise multiplier; rejects non-finite and non-positive
    /// values.
    ///
    /// # Errors
    /// [`Error::InvalidParameter`] naming `sigma`.
    pub fn new(value: f64) -> Result<Self> {
        if value.is_finite() && value > 0.0 {
            Ok(Self(value))
        } else {
            Err(Error::invalid(
                "sigma",
                format!("noise multiplier must be finite and positive, got {value}"),
            ))
        }
    }

    /// The validated value.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl fmt::Display for NoiseSigma {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A validated embedding dimension `r`: strictly positive.
///
/// # Examples
/// ```
/// use advsgm::api::Dim;
///
/// assert_eq!(Dim::new(128).unwrap().get(), 128);
/// assert!(Dim::new(0).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Dim(usize);

impl Dim {
    /// Parses a raw dimension; rejects zero.
    ///
    /// # Errors
    /// [`Error::InvalidParameter`] naming `dim`.
    pub fn new(value: usize) -> Result<Self> {
        if value > 0 {
            Ok(Self(value))
        } else {
            Err(Error::invalid(
                "dim",
                "embedding dimension must be positive, got 0".to_string(),
            ))
        }
    }

    /// The validated value.
    pub fn get(self) -> usize {
        self.0
    }
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_domain() {
        assert!(Epsilon::new(1e-9).is_ok());
        assert!(Epsilon::new(1e9).is_ok());
        for bad in [0.0, -3.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = Epsilon::new(bad).unwrap_err();
            assert!(err
                .to_string()
                .starts_with("api: invalid parameter epsilon"));
        }
    }

    #[test]
    fn delta_domain() {
        assert!(Delta::new(0.5).is_ok());
        for bad in [0.0, 1.0, -1e-5, 2.0, f64::NAN] {
            assert!(Delta::new(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn sigma_domain() {
        assert!(NoiseSigma::new(0.1).is_ok());
        for bad in [0.0, -5.0, f64::NAN, f64::INFINITY] {
            assert!(NoiseSigma::new(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn dim_domain() {
        assert!(Dim::new(1).is_ok());
        assert!(Dim::new(0).is_err());
    }
}
