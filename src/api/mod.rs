//! The unified front door of the workspace: one typed pipeline from
//! graph to served queries.
//!
//! The paper's system is one conceptual flow — sample (Algorithm 2),
//! train adversarially under the Theorem-4 budget (Algorithm 3), release
//! the embeddings once (Theorem 5), serve Eq.-2 queries forever — and
//! this module is that flow as an API:
//!
//! ```text
//! PipelineBuilder ──build──▶ Pipeline ──train──▶ Trained ──serve──▶ EmbeddingService
//!       ▲                       ▲                   │                     ▲
//!   typed newtypes         Pipeline::resume    save_embeddings      EmbeddingService::open
//!   (Epsilon, Delta,       (.actk checkpoint)  save_checkpoint      (.aemb release file)
//!    NoiseSigma, Dim)                          spend
//! ```
//!
//! Design rules:
//!
//! * **Parse, don't validate.** Privacy and shape parameters are typed
//!   ([`Epsilon`], [`Delta`], [`NoiseSigma`], [`Dim`]) and rejected at
//!   construction; [`PipelineBuilder::build`] runs the one
//!   cross-field validation pass. An invalid configuration cannot exist
//!   past the builder.
//! * **Callers never name an engine.** [`Pipeline::train`] selects the
//!   sequential or sharded engine from the resolved thread count — or
//!   the out-of-core partitioned engine when the builder asked for node
//!   buckets ([`PipelineBuilder::partitions`]) — and the run is
//!   bitwise-identical to the equivalent hand-wired engine
//!   (`tests/api_facade.rs`, `tests/ooc_equivalence.rs`).
//! * **One error.** Every operation returns [`Result`]; the single
//!   [`enum@Error`] wraps each crate's error with the source chain
//!   preserved and the originating layer named.
//! * **The release boundary is a type.** [`Trained`] sits exactly on
//!   Theorem 5: everything reachable from it is post-processing of the
//!   released matrix, so serving any query volume adds no privacy cost.
//!
//! # The whole lifecycle
//!
//! ```
//! use advsgm::api::{Dim, EmbeddingService, Epsilon, ModelVariant, PipelineBuilder};
//! use advsgm::graph::generators::classic::karate_club;
//!
//! let graph = karate_club();
//! let dir = std::env::temp_dir().join("advsgm_api_mod_doc");
//! std::fs::create_dir_all(&dir)?;
//! let path = dir.join("karate.aemb");
//!
//! // Train under a (6, 1e-5) node-level DP budget and release once.
//! let trained = PipelineBuilder::test_small(ModelVariant::AdvSgm)
//!     .dim(Dim::new(16)?)
//!     .epsilon(Epsilon::new(6.0)?)
//!     .build(&graph)?
//!     .train()?;
//! trained.save_embeddings(&path)?;
//!
//! // Serve from the file: post-processing, no further budget.
//! let service = EmbeddingService::open(&path)?;
//! assert!(service.privacy().is_private());
//! let neighbors = service.top_k(0, 5)?;
//! assert_eq!(neighbors.len(), 5);
//! # std::fs::remove_file(&path)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The crate-level types the pipeline wraps (`advsgm::core::Trainer`,
//! `advsgm::store::EmbeddingStore`, ...) remain public as internals for
//! callers that need engine-level control; see the crate root docs.

mod audit;
mod builder;
mod error;
mod pipeline;
mod service;
mod types;

pub use audit::{audit_membership, audit_outcome};
pub use builder::PipelineBuilder;
pub use error::{Error, Result};
pub use pipeline::{Checkpoint, Pipeline, PipelineEvent, Trained};
pub use service::EmbeddingService;
pub use types::{Delta, Dim, Epsilon, NoiseSigma};

// The vocabulary the pipeline surface speaks, re-exported so the whole
// train -> persist -> serve flow needs no direct advsgm_core /
// advsgm_store imports.
pub use advsgm_attack::{AuditConfig, AuditReport};
pub use advsgm_core::{EpochEvent, ModelVariant, SpendSnapshot, StopReason, TrainOutcome};
pub use advsgm_store::{Neighbor, PrivacyMeta};
