//! The one workspace error: every crate failure funnels into
//! [`enum@Error`], so the whole facade returns one [`Result`].
//!
//! Each wrapped error keeps its source chain (the inner error is
//! reachable through [`std::error::Error::source`]) and its `Display`
//! names the originating layer, so `"store: truncated store file: ..."`
//! tells a caller at a glance which subsystem failed without matching on
//! variants. The enum is `#[non_exhaustive]`: new layers can join
//! without breaking downstream matches.

use std::fmt;
use std::path::PathBuf;

use advsgm_attack::AttackError;
use advsgm_baselines::BaselineError;
use advsgm_core::CoreError;
use advsgm_eval::EvalError;
use advsgm_graph::GraphError;
use advsgm_linalg::LinalgError;
use advsgm_privacy::PrivacyError;
use advsgm_store::StoreError;

/// The facade-wide result type: every `advsgm::api` operation returns it.
///
/// # Examples
/// ```
/// fn parse_budget(raw: f64) -> advsgm::api::Result<advsgm::api::Epsilon> {
///     advsgm::api::Epsilon::new(raw)
/// }
/// assert!(parse_budget(6.0).is_ok());
/// assert!(parse_budget(-1.0).is_err());
/// ```
pub type Result<T> = std::result::Result<T, Error>;

/// Every failure the workspace can produce, under one roof.
///
/// Constructed via `From` impls from each crate's error type (or by the
/// `api` layer itself for typed-parameter violations), with the source
/// chain preserved and the originating layer named in the `Display`
/// rendering.
///
/// # Examples
/// ```
/// use std::error::Error as _;
/// use advsgm::graph::GraphError;
///
/// let e = advsgm::api::Error::from(GraphError::EmptyGraph { op: "train" });
/// assert_eq!(e.to_string(), "graph: train requires a non-empty graph");
/// assert!(e.source().is_some(), "the layer error stays reachable");
/// ```
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// A graph-substrate failure (construction, I/O, sampling).
    Graph(GraphError),
    /// A linear-algebra failure (shape mismatch, bad parameter).
    Linalg(LinalgError),
    /// A privacy-substrate failure (accounting parameters; budget
    /// exhaustion during training is *not* an error — it is a normal
    /// stopping condition reported on the outcome).
    Privacy(PrivacyError),
    /// A training failure from the core engines.
    Core(CoreError),
    /// A failure in one of the comparison baselines.
    Baselines(BaselineError),
    /// An evaluation failure (link prediction, clustering).
    Eval(EvalError),
    /// A persistence or serving failure (`.aemb`/`.actk` codecs, store
    /// queries).
    Store(StoreError),
    /// A membership-inference audit failure (bad audit geometry, a
    /// release that could not be produced or read, report I/O).
    Attack(AttackError),
    /// A bare I/O failure raised by the `api` layer itself.
    Io(std::io::Error),
    /// A typed parameter rejected at construction
    /// ([`Epsilon`](crate::api::Epsilon) and friends), or an `api`-level
    /// precondition violation.
    InvalidParameter {
        /// The parameter that was rejected.
        param: &'static str,
        /// The constraint it violated.
        reason: String,
    },
    /// A periodic checkpoint write requested through
    /// [`Pipeline::checkpoint_every`](crate::api::Pipeline::checkpoint_every)
    /// failed; training stopped gracefully at that epoch boundary.
    CheckpointWrite {
        /// The checkpoint file that could not be written.
        path: PathBuf,
        /// The underlying codec/I-O failure.
        source: StoreError,
    },
}

impl Error {
    /// An `api`-layer parameter rejection (used by the typed newtypes).
    pub(crate) fn invalid(param: &'static str, reason: impl Into<String>) -> Self {
        Error::InvalidParameter {
            param,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Graph(e) => write!(f, "graph: {e}"),
            Error::Linalg(e) => write!(f, "linalg: {e}"),
            Error::Privacy(e) => write!(f, "privacy: {e}"),
            Error::Core(e) => write!(f, "core: {e}"),
            Error::Baselines(e) => write!(f, "baselines: {e}"),
            Error::Eval(e) => write!(f, "eval: {e}"),
            Error::Store(e) => write!(f, "store: {e}"),
            Error::Attack(e) => write!(f, "attack: {e}"),
            Error::Io(e) => write!(f, "io: {e}"),
            Error::InvalidParameter { param, reason } => {
                write!(f, "api: invalid parameter {param}: {reason}")
            }
            Error::CheckpointWrite { path, source } => {
                write!(
                    f,
                    "api: checkpoint write failed at {}: {source}",
                    path.display()
                )
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Graph(e) => Some(e),
            Error::Linalg(e) => Some(e),
            Error::Privacy(e) => Some(e),
            Error::Core(e) => Some(e),
            Error::Baselines(e) => Some(e),
            Error::Eval(e) => Some(e),
            Error::Store(e) => Some(e),
            Error::Attack(e) => Some(e),
            Error::Io(e) => Some(e),
            Error::InvalidParameter { .. } => None,
            Error::CheckpointWrite { source, .. } => Some(source),
        }
    }
}

impl From<GraphError> for Error {
    fn from(e: GraphError) -> Self {
        Error::Graph(e)
    }
}

impl From<LinalgError> for Error {
    fn from(e: LinalgError) -> Self {
        Error::Linalg(e)
    }
}

impl From<PrivacyError> for Error {
    fn from(e: PrivacyError) -> Self {
        Error::Privacy(e)
    }
}

impl From<CoreError> for Error {
    fn from(e: CoreError) -> Self {
        Error::Core(e)
    }
}

impl From<BaselineError> for Error {
    fn from(e: BaselineError) -> Self {
        Error::Baselines(e)
    }
}

impl From<EvalError> for Error {
    fn from(e: EvalError) -> Self {
        Error::Eval(e)
    }
}

impl From<StoreError> for Error {
    fn from(e: StoreError) -> Self {
        Error::Store(e)
    }
}

impl From<AttackError> for Error {
    fn from(e: AttackError) -> Self {
        Error::Attack(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}
