//! The typed, validate-at-construction entry point of the pipeline.
//!
//! [`PipelineBuilder`] is the only front door: privacy and shape
//! parameters arrive as the typed newtypes of [`crate::api::types`]
//! (whose constructors already rejected out-of-range values), and
//! [`PipelineBuilder::build`] runs [`AdvSgmConfig::validate`] **exactly
//! once** over the assembled configuration before any engine exists —
//! so an invalid config is unrepresentable past the builder, and no
//! caller ever threads a raw `AdvSgmConfig` between crates by hand.

use std::path::{Path, PathBuf};

use advsgm_core::{AdvSgmConfig, ModelVariant, PartitionedTrainer, ShardedTrainer};
use advsgm_graph::Graph;

use crate::api::error::Result;
use crate::api::pipeline::Pipeline;
use crate::api::types::{Delta, Dim, Epsilon, NoiseSigma};

/// Builds a [`Pipeline`] from typed parameters, with the paper's
/// Section VI-A defaults for everything left unset.
///
/// # Examples
/// ```
/// use advsgm::api::{Dim, Epsilon, ModelVariant, PipelineBuilder};
/// use advsgm::graph::generators::classic::karate_club;
///
/// let graph = karate_club();
/// let trained = PipelineBuilder::test_small(ModelVariant::AdvSgm)
///     .dim(Dim::new(8)?)
///     .epsilon(Epsilon::new(6.0)?)
///     .build(&graph)?
///     .train()?;
/// assert!(trained.spend().is_some(), "private variants report spend");
/// # Ok::<(), advsgm::api::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct PipelineBuilder {
    cfg: AdvSgmConfig,
    /// `0` selects the in-RAM engines (sequential/sharded by thread
    /// count); `>= 1` selects the out-of-core partitioned engine with
    /// this many node buckets. Deliberately *not* part of
    /// [`AdvSgmConfig`]: the trajectory is partition-invariant, so the
    /// bucket count is an execution-resource choice, never pinned into
    /// checkpoints or release metadata.
    partitions: usize,
    /// An optional graph file recorded by
    /// [`PipelineBuilder::graph_path`], consumed by
    /// [`PipelineBuilder::load_graph`].
    graph_path: Option<PathBuf>,
}

impl PipelineBuilder {
    /// A builder with the paper's full experimental defaults
    /// (`dim = 128`, `epochs = 50`, `sigma = 5`, ...) for `variant`.
    pub fn new(variant: ModelVariant) -> Self {
        Self {
            cfg: AdvSgmConfig::for_variant(variant),
            partitions: 0,
            graph_path: None,
        }
    }

    /// A builder with the scaled-down test configuration
    /// ([`AdvSgmConfig::test_small`]): tiny embeddings and few epochs,
    /// fast but exercising every code path. The right starting point for
    /// examples, doctests, and smoke tests.
    pub fn test_small(variant: ModelVariant) -> Self {
        Self {
            cfg: AdvSgmConfig::test_small(variant),
            partitions: 0,
            graph_path: None,
        }
    }

    /// Wraps an existing configuration — the bridge for callers that
    /// already assembled an [`AdvSgmConfig`] (e.g. loaded from a sweep
    /// harness). [`PipelineBuilder::build`] still validates it exactly
    /// once, so this cannot smuggle an invalid config past the builder.
    pub fn from_config(cfg: AdvSgmConfig) -> Self {
        Self {
            cfg,
            partitions: 0,
            graph_path: None,
        }
    }

    /// The configuration as assembled so far (not yet validated).
    pub fn config(&self) -> &AdvSgmConfig {
        &self.cfg
    }

    /// Sets the model variant to train (keeping every other parameter).
    #[must_use]
    pub fn variant(mut self, variant: ModelVariant) -> Self {
        self.cfg.variant = variant;
        self
    }

    /// Sets the embedding dimension `r`.
    #[must_use]
    pub fn dim(mut self, dim: Dim) -> Self {
        self.cfg.dim = dim.get();
        self
    }

    /// Sets the target privacy budget `epsilon`.
    #[must_use]
    pub fn epsilon(mut self, epsilon: Epsilon) -> Self {
        self.cfg.epsilon = epsilon.get();
        self
    }

    /// Sets the target failure probability `delta`.
    #[must_use]
    pub fn delta(mut self, delta: Delta) -> Self {
        self.cfg.delta = delta.get();
        self
    }

    /// Sets the noise multiplier `sigma`.
    #[must_use]
    pub fn sigma(mut self, sigma: NoiseSigma) -> Self {
        self.cfg.sigma = sigma.get();
        self
    }

    /// Sets the number of training epochs `n_epoch`.
    #[must_use]
    pub fn epochs(mut self, epochs: usize) -> Self {
        self.cfg.epochs = epochs;
        self
    }

    /// Sets the batch size `B`.
    #[must_use]
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.cfg.batch_size = batch_size;
        self
    }

    /// Sets the negative sampling number `k`.
    #[must_use]
    pub fn negatives(mut self, negatives: usize) -> Self {
        self.cfg.negatives = negatives;
        self
    }

    /// Sets the discriminator iterations per epoch `n_D`.
    #[must_use]
    pub fn disc_iters(mut self, disc_iters: usize) -> Self {
        self.cfg.disc_iters = disc_iters;
        self
    }

    /// Sets the generator iterations per epoch `n_G`.
    #[must_use]
    pub fn gen_iters(mut self, gen_iters: usize) -> Self {
        self.cfg.gen_iters = gen_iters;
        self
    }

    /// Sets both learning rates `eta_d = eta_g` (the paper keeps them
    /// equal, Section VI-A).
    #[must_use]
    pub fn learning_rate(mut self, lr: f64) -> Self {
        self.cfg.eta_d = lr;
        self.cfg.eta_g = lr;
        self
    }

    /// Sets the base RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Sets the worker-thread count (mapped to
    /// [`AdvSgmConfig::with_threads`]). `0` means *auto*: the
    /// `ADVSGM_THREADS` environment variable if set, else 1; an explicit
    /// `N > 0` always takes precedence over the environment. The
    /// resulting [`Pipeline::train`] auto-selects the sequential or
    /// sharded engine from the resolved count — callers never name an
    /// engine.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.cfg = self.cfg.with_threads(threads);
        self
    }

    /// Sets the pairs-per-shard for the parallel engine (mapped to
    /// [`AdvSgmConfig::with_shard_size`]); `0` divides each batch evenly
    /// over the threads.
    #[must_use]
    pub fn shard_size(mut self, shard_size: usize) -> Self {
        self.cfg = self.cfg.with_shard_size(shard_size);
        self
    }

    /// Selects the out-of-core partitioned engine with `partitions` node
    /// buckets: embeddings live on disk and at most two bucket
    /// partitions are resident at once, while the trajectory (released
    /// bytes, losses, privacy spend) stays bitwise-identical to the
    /// in-RAM engines (`tests/ooc_equivalence.rs`). `0` (the default)
    /// keeps the in-RAM engine selection by thread count.
    #[must_use]
    pub fn partitions(mut self, partitions: usize) -> Self {
        self.partitions = partitions;
        self
    }

    /// Records a graph file for [`PipelineBuilder::load_graph`]: a
    /// disk-resident `.agph` partitioned graph (`docs/FORMAT.md`) or a
    /// whitespace edge-list (any other extension).
    #[must_use]
    pub fn graph_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.graph_path = Some(path.into());
        self
    }

    /// Loads the graph recorded by [`PipelineBuilder::graph_path`],
    /// dispatching on the extension: `.agph` goes through the verified
    /// streaming codec ([`advsgm_store::load_agph`]), anything else is
    /// parsed as a whitespace edge-list.
    ///
    /// # Errors
    /// [`Error::InvalidParameter`](crate::api::Error::InvalidParameter)
    /// when no path was recorded; [`Error::Store`](crate::api::Error::Store)
    /// / [`Error::Graph`](crate::api::Error::Graph) on decode failures
    /// (including every `.agph` corruption mode).
    pub fn load_graph(&self) -> Result<Graph> {
        let path = self.graph_path.as_deref().ok_or_else(|| {
            crate::api::Error::invalid(
                "graph_path",
                "no graph file recorded; call PipelineBuilder::graph_path first",
            )
        })?;
        load_graph_file(path)
    }

    /// Validates the assembled configuration — the builder's single
    /// [`AdvSgmConfig::validate`] call — and stands up a [`Pipeline`]
    /// with the engine auto-selected: the out-of-core partitioned engine
    /// when [`PipelineBuilder::partitions`] is `>= 1`, otherwise the
    /// in-RAM engine for [`AdvSgmConfig::effective_threads`].
    ///
    /// # Errors
    /// [`Error::Core`](crate::api::Error::Core) on any cross-field
    /// configuration violation, or on graph/sampler construction
    /// failures (e.g. an empty graph).
    pub fn build(self, graph: &Graph) -> Result<Pipeline<'_>> {
        self.cfg.validate()?;
        if self.partitions >= 1 {
            let trainer = PartitionedTrainer::new(graph, self.cfg, self.partitions)?;
            return Ok(Pipeline::from_partitioned(graph, trainer));
        }
        // Engine selection is the trainer facade's existing contract:
        // `effective_threads() <= 1` delegates to the sequential engine.
        let trainer = ShardedTrainer::new(graph, self.cfg)?;
        Ok(Pipeline::from_trainer(graph, trainer))
    }
}

/// Loads a training graph from disk by extension: `.agph` through the
/// verified streaming codec, anything else as a whitespace edge-list.
pub(crate) fn load_graph_file(path: &Path) -> Result<Graph> {
    if path.extension().is_some_and(|e| e == "agph") {
        Ok(advsgm_store::load_agph(path)?)
    } else {
        Ok(advsgm_graph::io::read_edge_list_file(path, None)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advsgm_graph::generators::classic::karate_club;

    #[test]
    fn build_rejects_cross_field_violations() {
        // The newtypes cannot express these; build()'s validate call must.
        let g = karate_club();
        let err = PipelineBuilder::test_small(ModelVariant::AdvSgm)
            .gen_iters(0)
            .build(&g)
            .unwrap_err();
        assert!(err.to_string().starts_with("core: invalid configuration"));
        let err = PipelineBuilder::test_small(ModelVariant::Sgm)
            .learning_rate(-0.5)
            .build(&g)
            .unwrap_err();
        assert!(err.to_string().contains("learning rates"));
        assert!(PipelineBuilder::test_small(ModelVariant::Sgm)
            .epochs(0)
            .build(&g)
            .is_err());
    }

    #[test]
    fn build_rejects_empty_graph() {
        let g = Graph::from_parts(5, vec![], None);
        let err = PipelineBuilder::test_small(ModelVariant::Sgm)
            .build(&g)
            .unwrap_err();
        assert!(err.to_string().contains("no edges"), "{err}");
    }

    #[test]
    fn setters_land_in_the_config() {
        let b = PipelineBuilder::new(ModelVariant::DpSgm)
            .dim(Dim::new(32).unwrap())
            .epsilon(Epsilon::new(2.0).unwrap())
            .delta(Delta::new(1e-6).unwrap())
            .sigma(NoiseSigma::new(3.0).unwrap())
            .epochs(7)
            .batch_size(64)
            .negatives(3)
            .disc_iters(9)
            .gen_iters(4)
            .learning_rate(0.05)
            .seed(9)
            .threads(4)
            .shard_size(16);
        let c = b.config();
        assert_eq!(c.variant, ModelVariant::DpSgm);
        assert_eq!((c.dim, c.epsilon, c.delta, c.sigma), (32, 2.0, 1e-6, 3.0));
        assert_eq!((c.epochs, c.batch_size, c.negatives), (7, 64, 3));
        assert_eq!((c.disc_iters, c.gen_iters), (9, 4));
        assert_eq!((c.eta_d, c.eta_g), (0.05, 0.05));
        assert_eq!((c.seed, c.num_threads, c.shard_size), (9, 4, 16));
    }

    #[test]
    fn partitions_select_the_out_of_core_engine_bitwise() {
        // Same seed, in-RAM vs partitioned build: identical release bytes.
        let g = karate_club();
        let a = PipelineBuilder::test_small(ModelVariant::AdvSgm)
            .threads(1)
            .build(&g)
            .unwrap()
            .train()
            .unwrap();
        let b = PipelineBuilder::test_small(ModelVariant::AdvSgm)
            .threads(1)
            .partitions(3)
            .build(&g)
            .unwrap()
            .train()
            .unwrap();
        assert_eq!(a.release_bytes(), b.release_bytes());
    }

    #[test]
    fn load_graph_dispatches_on_extension() {
        let g = karate_club();
        let dir = std::env::temp_dir().join("advsgm_api_builder_load_graph");
        std::fs::create_dir_all(&dir).unwrap();
        let agph = dir.join("karate.agph");
        advsgm_store::save_agph(&agph, &g, 4).unwrap();
        let edges = dir.join("karate.edges");
        let mut text = String::new();
        for e in g.edges() {
            let (u, v) = e.endpoints();
            text.push_str(&format!("{} {}\n", u.0, v.0));
        }
        std::fs::write(&edges, text).unwrap();

        let from_agph = PipelineBuilder::test_small(ModelVariant::Sgm)
            .graph_path(&agph)
            .load_graph()
            .unwrap();
        let from_list = PipelineBuilder::test_small(ModelVariant::Sgm)
            .graph_path(&edges)
            .load_graph()
            .unwrap();
        assert_eq!(from_agph.num_nodes(), g.num_nodes());
        assert_eq!(from_agph.num_edges(), g.num_edges());
        assert_eq!(from_list.num_edges(), g.num_edges());

        let err = PipelineBuilder::test_small(ModelVariant::Sgm)
            .load_graph()
            .unwrap_err();
        assert!(err.to_string().contains("graph_path"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn explicit_threads_take_precedence_over_auto() {
        // num_threads > 0 pins the width; 0 defers to ADVSGM_THREADS.
        let pinned = PipelineBuilder::test_small(ModelVariant::Sgm).threads(3);
        assert_eq!(pinned.config().effective_threads(), 3);
        let auto = PipelineBuilder::test_small(ModelVariant::Sgm).threads(0);
        assert_eq!(auto.config().num_threads, 0);
    }
}
