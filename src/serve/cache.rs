//! A small LRU cache for hot query nodes.
//!
//! Serving traffic is typically Zipf-shaped — a few hub nodes absorb most
//! queries — so the dispatcher keeps recently answered top-k results and
//! skips the scan entirely on a repeat. Results are pure functions of the
//! released store (which is immutable for the server's lifetime), so
//! cached answers can never go stale; capacity is the only eviction
//! reason.
//!
//! Implementation: a `HashMap` from key to `(value, tick)` plus a
//! `BTreeMap` from tick to key as the recency order. Every touch
//! re-stamps the entry with a fresh monotonic tick; eviction pops the
//! smallest tick. Both sides are `O(log capacity)` per operation with no
//! unsafe code and no dependencies.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// A least-recently-used map with a fixed capacity.
///
/// # Examples
/// ```
/// use advsgm::serve::cache::LruCache;
///
/// let mut cache: LruCache<u32, &str> = LruCache::new(2);
/// cache.insert(1, "one");
/// cache.insert(2, "two");
/// cache.get(&1); // 1 is now the most recent
/// cache.insert(3, "three"); // evicts 2
/// assert!(cache.get(&2).is_none());
/// assert_eq!(cache.get(&1), Some(&"one"));
/// ```
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    tick: u64,
    map: HashMap<K, (V, u64)>,
    order: BTreeMap<u64, K>,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries (`0` disables
    /// caching: every insert is dropped).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            tick: 0,
            map: HashMap::with_capacity(capacity.min(4096)),
            order: BTreeMap::new(),
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up `key`, marking it most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(key) {
            None => None,
            Some((value, stamp)) => {
                self.order.remove(stamp);
                self.order.insert(tick, key.clone());
                *stamp = tick;
                Some(value)
            }
        }
    }

    /// Inserts (or refreshes) `key`, evicting the least-recently-used
    /// entry when full.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if let Some((_, old)) = self.map.remove(&key) {
            self.order.remove(&old);
        } else if self.map.len() >= self.capacity {
            if let Some((&oldest, _)) = self.order.iter().next() {
                if let Some(victim) = self.order.remove(&oldest) {
                    self.map.remove(&victim);
                }
            }
        }
        self.order.insert(self.tick, key.clone());
        self.map.insert(key, (value, self.tick));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(3);
        for i in 0..3 {
            c.insert(i, i * 10);
        }
        assert_eq!(c.get(&0), Some(&0)); // refresh 0
        c.insert(3, 30); // evicts 1 (oldest untouched)
        assert!(c.get(&1).is_none());
        assert_eq!(c.get(&0), Some(&0));
        assert_eq!(c.get(&2), Some(&20));
        assert_eq!(c.get(&3), Some(&30));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn reinsert_updates_value_without_growing() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("a", 2);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&"a"), Some(&2));
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let mut c = LruCache::new(0);
        c.insert(1, 1);
        assert!(c.is_empty());
        assert!(c.get(&1).is_none());
    }

    #[test]
    fn heavy_churn_stays_bounded() {
        let mut c = LruCache::new(8);
        for i in 0..10_000u64 {
            c.insert(i % 37, i);
            assert!(c.len() <= 8);
        }
        // The most recent insert must be present.
        assert!(c.get(&(9_999 % 37)).is_some());
    }
}
