//! Blocking client for the `advsgm serve` wire protocol.
//!
//! One [`ServeClient`] wraps one TCP connection; requests run strictly
//! in sequence (the protocol has no request ids, so a connection is a
//! simple request/response pipe). Server-side failures arrive as
//! [`std::io::ErrorKind::Other`] errors carrying the server's message —
//! a malformed-request rejection or an out-of-range node reads exactly
//! like the server printed it.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use advsgm_store::Neighbor;

use super::protocol::{
    read_frame, write_frame, Request, Response, OP_PING, OP_SCORE, OP_SHUTDOWN, OP_TOP_K,
};

/// A connected client for one `advsgm serve` endpoint.
///
/// # Examples
/// ```no_run
/// use advsgm::serve::client::ServeClient;
///
/// let mut client = ServeClient::connect("127.0.0.1:7878")?;
/// client.ping()?;
/// let neighbors = client.top_k(0, 10)?;
/// println!("top neighbor of 0: {:?}", neighbors.first());
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug)]
pub struct ServeClient {
    stream: TcpStream,
}

impl ServeClient {
    /// Connects to a serving endpoint (`host:port`).
    ///
    /// # Errors
    /// Resolution and connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        // Request/response round-trips are latency-bound; never Nagle.
        stream.set_nodelay(true)?;
        // A hung server must not hang the client forever.
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        Ok(Self { stream })
    }

    /// One request/response round-trip.
    fn call(&mut self, request: &Request, op: u8) -> io::Result<Response> {
        write_frame(&mut self.stream, &request.encode())?;
        let payload = read_frame(&mut self.stream)?;
        Response::decode(op, &payload).map_err(io::Error::other)
    }

    /// Converts a server-side [`Response::Error`] into an `io::Error`.
    fn ok_or_server_error(response: Response) -> io::Result<Response> {
        match response {
            Response::Error(msg) => Err(io::Error::other(format!("server: {msg}"))),
            other => Ok(other),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    /// Transport failures or a server-side error response.
    pub fn ping(&mut self) -> io::Result<()> {
        Self::ok_or_server_error(self.call(&Request::Ping, OP_PING)?).map(|_| ())
    }

    /// Exact top-k neighbors of `node` — bitwise the same rows and scores
    /// as a local [`EmbeddingStore::top_k`](advsgm_store::EmbeddingStore::top_k).
    ///
    /// # Errors
    /// Transport failures or a server-side error response (out-of-range
    /// node, `k` over the protocol cap).
    pub fn top_k(&mut self, node: u64, k: u32) -> io::Result<Vec<Neighbor>> {
        self.top_k_request(node, k, false, 1.0)
    }

    /// Approximate top-k through the server's ANN index at a recall
    /// target in `[0, 1]` (a target `>= 1.0` asks for the exact path).
    ///
    /// # Errors
    /// See [`ServeClient::top_k`].
    pub fn top_k_approx(
        &mut self,
        node: u64,
        k: u32,
        recall_target: f64,
    ) -> io::Result<Vec<Neighbor>> {
        self.top_k_request(node, k, true, recall_target)
    }

    fn top_k_request(
        &mut self,
        node: u64,
        k: u32,
        approx: bool,
        recall_target: f64,
    ) -> io::Result<Vec<Neighbor>> {
        let req = Request::TopK {
            node,
            k,
            approx,
            recall_target,
        };
        match Self::ok_or_server_error(self.call(&req, OP_TOP_K)?)? {
            Response::Neighbors(neighbors) => Ok(neighbors),
            other => Err(io::Error::other(format!(
                "protocol violation: expected neighbors, got {other:?}"
            ))),
        }
    }

    /// Eq.-2 link score between two rows.
    ///
    /// # Errors
    /// Transport failures or a server-side error response.
    pub fn score(&mut self, u: u64, v: u64) -> io::Result<f64> {
        match Self::ok_or_server_error(self.call(&Request::Score { u, v }, OP_SCORE)?)? {
            Response::Score(s) => Ok(s),
            other => Err(io::Error::other(format!(
                "protocol violation: expected a score, got {other:?}"
            ))),
        }
    }

    /// Asks the server to shut down cleanly; returns once the server has
    /// acknowledged.
    ///
    /// # Errors
    /// Transport failures.
    pub fn shutdown(&mut self) -> io::Result<()> {
        Self::ok_or_server_error(self.call(&Request::Shutdown, OP_SHUTDOWN)?).map(|_| ())
    }
}
