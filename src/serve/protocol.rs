//! Wire protocol for `advsgm serve`: length-prefixed binary frames over
//! TCP.
//!
//! Every message — request or response — is one *frame*: a `u32`
//! little-endian payload length followed by that many payload bytes.
//! Frames are capped at [`MAX_FRAME`] so a hostile length can never force
//! a large allocation; multi-byte integers are little-endian and floats
//! travel as raw IEEE-754 bits, matching the `.aemb` conventions
//! (`docs/FORMAT.md`).
//!
//! Request payloads start with an opcode byte; response payloads start
//! with a status byte (`0` ok, `1` error, error body = UTF-8 message).
//! The full layout is specified in DESIGN.md §12. The protocol is
//! deliberately connection-oriented and stateless per request: any
//! request can follow any other on the same connection, and a malformed
//! *payload* gets an error response while the connection stays open
//! (only an unreadable frame header tears it down, because the stream
//! can no longer be trusted).

use std::io::{Read, Write};

use advsgm_store::Neighbor;

/// Hard cap on a frame's payload length, requests and responses alike.
///
/// Bounds allocation against hostile lengths and, together with
/// [`MAX_K`], guarantees every legal response fits in one frame.
pub const MAX_FRAME: usize = 64 * 1024;

/// Largest `k` a top-k request may ask for: `MAX_K` neighbor records
/// (24 bytes each) plus headers stay under [`MAX_FRAME`].
pub const MAX_K: usize = 2048;

/// Request opcode: liveness probe, empty body.
pub const OP_PING: u8 = 0x01;
/// Request opcode: top-k neighbor query.
pub const OP_TOP_K: u8 = 0x02;
/// Request opcode: Eq.-2 pair score.
pub const OP_SCORE: u8 = 0x03;
/// Request opcode: orderly server shutdown, empty body.
pub const OP_SHUTDOWN: u8 = 0x04;

/// Response status byte: success.
pub const STATUS_OK: u8 = 0x00;
/// Response status byte: failure; body is a UTF-8 message.
pub const STATUS_ERR: u8 = 0x01;

/// A parsed client request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Request {
    /// Liveness probe; the server answers with an empty ok.
    Ping,
    /// Top-k neighbors of `node` (self excluded).
    TopK {
        /// Query row.
        node: u64,
        /// Number of neighbors requested (at most [`MAX_K`]).
        k: u32,
        /// `false` = exact full scan, `true` = ANN index at
        /// `recall_target`.
        approx: bool,
        /// Recall target for approximate mode (ignored when exact).
        recall_target: f64,
    },
    /// Eq.-2 inner-product score between two rows.
    Score {
        /// First row.
        u: u64,
        /// Second row.
        v: u64,
    },
    /// Ask the server to stop accepting work and exit its serve loop.
    Shutdown,
}

/// A server response, as seen by the client-side decoder.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Empty success (ping, shutdown).
    Ok,
    /// Top-k result rows.
    Neighbors(Vec<Neighbor>),
    /// A pair score.
    Score(f64),
    /// The request failed; the message says why.
    Error(String),
}

impl Request {
    /// Serialises the request payload (no frame header).
    pub fn encode(&self) -> Vec<u8> {
        match *self {
            Request::Ping => vec![OP_PING],
            Request::TopK {
                node,
                k,
                approx,
                recall_target,
            } => {
                let mut out = Vec::with_capacity(22);
                out.push(OP_TOP_K);
                out.extend_from_slice(&node.to_le_bytes());
                out.extend_from_slice(&k.to_le_bytes());
                out.push(u8::from(approx));
                out.extend_from_slice(&recall_target.to_le_bytes());
                out
            }
            Request::Score { u, v } => {
                let mut out = Vec::with_capacity(17);
                out.push(OP_SCORE);
                out.extend_from_slice(&u.to_le_bytes());
                out.extend_from_slice(&v.to_le_bytes());
                out
            }
            Request::Shutdown => vec![OP_SHUTDOWN],
        }
    }

    /// Parses a request payload. A `Err(reason)` is a *payload* problem —
    /// the server answers it with [`Response::Error`] and keeps the
    /// connection; framing itself was already validated by the caller.
    pub fn decode(payload: &[u8]) -> Result<Self, String> {
        let (&op, body) = payload
            .split_first()
            .ok_or_else(|| "empty request payload".to_string())?;
        match op {
            OP_PING if body.is_empty() => Ok(Request::Ping),
            OP_PING => Err(format!("ping carries no body, got {} bytes", body.len())),
            OP_TOP_K => {
                if body.len() != 21 {
                    return Err(format!("top-k body must be 21 bytes, got {}", body.len()));
                }
                let node = u64::from_le_bytes(body[0..8].try_into().expect("8 bytes"));
                let k = u32::from_le_bytes(body[8..12].try_into().expect("4 bytes"));
                let approx = match body[12] {
                    0 => false,
                    1 => true,
                    other => return Err(format!("unknown top-k mode byte {other:#04x}")),
                };
                let recall_target = f64::from_le_bytes(body[13..21].try_into().expect("8 bytes"));
                if k as usize > MAX_K {
                    return Err(format!("k={k} exceeds the protocol maximum of {MAX_K}"));
                }
                if approx && !(0.0..=1.0).contains(&recall_target) {
                    return Err(format!("recall target {recall_target} outside [0, 1]"));
                }
                Ok(Request::TopK {
                    node,
                    k,
                    approx,
                    recall_target,
                })
            }
            OP_SCORE => {
                if body.len() != 16 {
                    return Err(format!("score body must be 16 bytes, got {}", body.len()));
                }
                Ok(Request::Score {
                    u: u64::from_le_bytes(body[0..8].try_into().expect("8 bytes")),
                    v: u64::from_le_bytes(body[8..16].try_into().expect("8 bytes")),
                })
            }
            OP_SHUTDOWN if body.is_empty() => Ok(Request::Shutdown),
            OP_SHUTDOWN => Err(format!(
                "shutdown carries no body, got {} bytes",
                body.len()
            )),
            other => Err(format!("unknown opcode {other:#04x}")),
        }
    }
}

impl Response {
    /// Serialises the response payload (no frame header).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Ok => vec![STATUS_OK],
            Response::Neighbors(neighbors) => {
                let mut out = Vec::with_capacity(5 + 24 * neighbors.len());
                out.push(STATUS_OK);
                out.extend_from_slice(&(neighbors.len() as u32).to_le_bytes());
                for n in neighbors {
                    out.extend_from_slice(&(n.node as u64).to_le_bytes());
                    out.extend_from_slice(&n.id.to_le_bytes());
                    out.extend_from_slice(&n.score.to_le_bytes());
                }
                out
            }
            Response::Score(s) => {
                let mut out = Vec::with_capacity(9);
                out.push(STATUS_OK);
                out.extend_from_slice(&s.to_le_bytes());
                out
            }
            Response::Error(msg) => {
                let msg = msg.as_bytes();
                let take = msg.len().min(MAX_FRAME - 1);
                let mut out = Vec::with_capacity(1 + take);
                out.push(STATUS_ERR);
                out.extend_from_slice(&msg[..take]);
                out
            }
        }
    }

    /// Parses a response payload for a request of the given opcode (the
    /// client knows which request it sent; the wire does not repeat it).
    pub fn decode(request_op: u8, payload: &[u8]) -> Result<Self, String> {
        let (&status, body) = payload
            .split_first()
            .ok_or_else(|| "empty response payload".to_string())?;
        match status {
            STATUS_ERR => Ok(Response::Error(String::from_utf8_lossy(body).into_owned())),
            STATUS_OK => match request_op {
                OP_PING | OP_SHUTDOWN => Ok(Response::Ok),
                OP_SCORE => {
                    if body.len() != 8 {
                        return Err(format!(
                            "score response must be 8 bytes, got {}",
                            body.len()
                        ));
                    }
                    Ok(Response::Score(f64::from_le_bytes(
                        body.try_into().expect("8 bytes"),
                    )))
                }
                OP_TOP_K => {
                    if body.len() < 4 {
                        return Err("top-k response shorter than its count".into());
                    }
                    let count =
                        u32::from_le_bytes(body[0..4].try_into().expect("4 bytes")) as usize;
                    let records = &body[4..];
                    if records.len() != 24 * count {
                        return Err(format!(
                            "top-k response declares {count} records but carries {} bytes",
                            records.len()
                        ));
                    }
                    let mut neighbors = Vec::with_capacity(count);
                    for chunk in records.chunks_exact(24) {
                        neighbors.push(Neighbor {
                            node: u64::from_le_bytes(chunk[0..8].try_into().expect("8 bytes"))
                                as usize,
                            id: u64::from_le_bytes(chunk[8..16].try_into().expect("8 bytes")),
                            score: f64::from_le_bytes(chunk[16..24].try_into().expect("8 bytes")),
                        });
                    }
                    Ok(Response::Neighbors(neighbors))
                }
                other => Err(format!("cannot decode a response to opcode {other:#04x}")),
            },
            other => Err(format!("unknown response status {other:#04x}")),
        }
    }
}

/// Writes one frame (header + payload) to `w`.
///
/// # Errors
/// I/O failures; payloads over [`MAX_FRAME`] are an
/// [`std::io::ErrorKind::InvalidInput`] error before anything is written.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("frame payload {} exceeds {MAX_FRAME}", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame's payload from `r`, enforcing [`MAX_FRAME`].
///
/// # Errors
/// I/O failures (including clean EOF as `UnexpectedEof` on the header
/// read); a declared length above [`MAX_FRAME`] is
/// [`std::io::ErrorKind::InvalidData`] — the stream can no longer be
/// framed and must be dropped.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Vec<u8>> {
    let mut header = [0u8; 4];
    r.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("declared frame length {len} exceeds {MAX_FRAME}"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip() {
        for req in [
            Request::Ping,
            Request::TopK {
                node: 42,
                k: 10,
                approx: true,
                recall_target: 0.95,
            },
            Request::TopK {
                node: u64::MAX,
                k: 0,
                approx: false,
                recall_target: 0.0,
            },
            Request::Score { u: 3, v: 9 },
            Request::Shutdown,
        ] {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn responses_roundtrip() {
        let neighbors = vec![
            Neighbor {
                node: 7,
                id: 700,
                score: 1.25,
            },
            Neighbor {
                node: 2,
                id: 200,
                score: f64::NEG_INFINITY,
            },
        ];
        let cases = [
            (OP_PING, Response::Ok),
            (OP_TOP_K, Response::Neighbors(neighbors)),
            (OP_TOP_K, Response::Neighbors(Vec::new())),
            (OP_SCORE, Response::Score(-0.5)),
            (OP_SHUTDOWN, Response::Ok),
            (OP_TOP_K, Response::Error("node 9 out of range".into())),
        ];
        for (op, resp) in cases {
            assert_eq!(Response::decode(op, &resp.encode()).unwrap(), resp);
        }
        // NaN scores survive bitwise even though PartialEq can't see it.
        let nan = Response::Neighbors(vec![Neighbor {
            node: 0,
            id: 0,
            score: f64::NAN,
        }]);
        match Response::decode(OP_TOP_K, &nan.encode()).unwrap() {
            Response::Neighbors(got) => {
                assert_eq!(got[0].score.to_bits(), f64::NAN.to_bits());
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn malformed_requests_are_typed_reasons() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[0xEE]).unwrap_err().contains("opcode"));
        assert!(Request::decode(&[OP_PING, 1]).is_err());
        assert!(Request::decode(&[OP_TOP_K, 1, 2]).is_err());
        assert!(Request::decode(&[OP_SCORE; 5]).is_err());
        // k over the cap.
        let mut big = Request::TopK {
            node: 0,
            k: (MAX_K + 1) as u32,
            approx: false,
            recall_target: 1.0,
        }
        .encode();
        assert!(Request::decode(&big).unwrap_err().contains("exceeds"));
        // Bad mode byte.
        big = Request::TopK {
            node: 0,
            k: 1,
            approx: false,
            recall_target: 1.0,
        }
        .encode();
        big[13] = 7;
        assert!(Request::decode(&big).unwrap_err().contains("mode"));
    }

    #[test]
    fn frames_roundtrip_and_reject_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"hello");

        let mut sink = Vec::new();
        let oversize = vec![0u8; MAX_FRAME + 1];
        assert!(write_frame(&mut sink, &oversize).is_err());
        assert!(sink.is_empty(), "nothing written for oversize payloads");

        let mut hostile = std::io::Cursor::new(((MAX_FRAME + 1) as u32).to_le_bytes().to_vec());
        assert_eq!(
            read_frame(&mut hostile).unwrap_err().kind(),
            std::io::ErrorKind::InvalidData
        );
    }
}
