//! The `advsgm serve` front-end: a long-lived TCP server over a released
//! embedding store.
//!
//! Everything served here is post-processing of a released `.aemb`
//! matrix (the paper's Theorem 5): no matter how many queries run or how
//! they batch, the privacy stamp on the store is the complete cost.
//! Serving architecture, protocol layout, and the release-boundary
//! argument are documented in DESIGN.md §12; the byte-level frame format
//! lives in [`protocol`].
//!
//! ## Architecture
//!
//! Three kinds of threads cooperate around one [`crossbeam-free
//! mpsc`](std::sync::mpsc) channel:
//!
//! * **Connection threads** (one per accepted client) parse
//!   length-prefixed frames, turn malformed payloads into error
//!   responses *without* dropping the connection, and forward valid
//!   requests to the dispatcher with a private reply channel.
//! * **The dispatcher** (one thread, owns the [`EmbeddingService`])
//!   drains the channel in small time windows so concurrent top-k
//!   requests coalesce into one `batch_top_k` call — the store dedupes
//!   repeated nodes, the pool spreads distinct ones — and keeps an LRU
//!   cache of hot query results ([`cache`]). Exact and approximate
//!   requests batch separately; scores and pings answer inline.
//! * **The acceptor** blocks on `accept` and hands sockets to connection
//!   threads; shutdown wakes it with a self-connect.
//!
//! Shutdown is cooperative: a [`protocol::Request::Shutdown`] frame (or
//! reaching `max_requests`) makes the dispatcher acknowledge, stop the
//! world via an atomic flag, and wake the acceptor. Connection threads
//! poll the flag on a short read timeout, so lingering idle clients
//! cannot hold the process open.

pub mod cache;
pub mod client;
pub mod protocol;

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use advsgm_store::Neighbor;

use crate::api::{EmbeddingService, Result};
use cache::LruCache;
use protocol::{read_frame, write_frame, Request, Response};

/// Largest number of requests the dispatcher folds into one batch window.
const BATCH_MAX: usize = 256;

/// How often blocked threads re-check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(250);

/// Tuning knobs for [`Server::bind`]. `Default` is sized for a small
/// serving box: a 1024-entry result cache and a 1 ms batching window
/// (long enough to coalesce a concurrent burst, short enough to be
/// invisible in per-query latency).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// LRU capacity, in cached top-k results (`0` disables caching).
    pub cache_capacity: usize,
    /// How long the dispatcher waits for more requests to join a batch
    /// after the first one arrives.
    pub batch_window: Duration,
    /// Stop serving after this many requests (`None` = run until a
    /// shutdown frame). Useful for bounded smoke runs.
    pub max_requests: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            cache_capacity: 1024,
            batch_window: Duration::from_millis(1),
            max_requests: None,
        }
    }
}

/// Counters the dispatcher accumulates over a server's lifetime,
/// returned by [`Server::wait`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests answered (including error responses).
    pub requests: u64,
    /// Top-k requests answered from the LRU cache.
    pub cache_hits: u64,
    /// Dispatcher batch windows that processed at least one request.
    pub batches: u64,
    /// Requests answered with an error response.
    pub errors: u64,
}

/// One request in flight from a connection thread to the dispatcher.
struct Job {
    request: Request,
    reply: mpsc::Sender<Response>,
}

/// A running server: acceptor + dispatcher threads bound to a socket.
///
/// Dropping the handle does *not* stop the server; send a shutdown frame
/// (e.g. [`client::ServeClient::shutdown`]) and then [`Server::wait`].
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    accept_handle: JoinHandle<()>,
    dispatch_handle: JoinHandle<ServerStats>,
}

impl Server {
    /// Binds `addr` (use port `0` for an ephemeral port) and starts
    /// serving `service` in background threads; returns immediately.
    ///
    /// # Errors
    /// Bind failures as [`Error::Io`](crate::api::Error::Io).
    pub fn bind(
        service: EmbeddingService,
        addr: impl ToSocketAddrs,
        config: ServeConfig,
    ) -> Result<Server> {
        let listener = TcpListener::bind(addr).map_err(crate::api::Error::Io)?;
        let local = listener.local_addr().map_err(crate::api::Error::Io)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel::<Job>();

        let dispatch_handle = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || dispatcher(service, rx, config, shutdown, local))
        };
        let accept_handle = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || acceptor(listener, tx, shutdown))
        };
        Ok(Server {
            addr: local,
            accept_handle,
            dispatch_handle,
        })
    }

    /// The bound socket address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the server shuts down (shutdown frame or
    /// `max_requests`), then returns the lifetime counters.
    pub fn wait(self) -> ServerStats {
        let stats = self.dispatch_handle.join().unwrap_or_default();
        let _ = self.accept_handle.join();
        stats
    }
}

/// Accept loop: hands each connection to its own thread until the
/// shutdown flag rises (the dispatcher wakes a blocked `accept` with a
/// self-connect).
fn acceptor(listener: TcpListener, tx: mpsc::Sender<Job>, shutdown: Arc<AtomicBool>) {
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        match stream {
            Ok(stream) => {
                let tx = tx.clone();
                let shutdown = Arc::clone(&shutdown);
                std::thread::spawn(move || connection(stream, tx, shutdown));
            }
            // Transient accept errors (EMFILE, aborted handshake) must
            // not kill the serve loop.
            Err(_) => continue,
        }
    }
}

/// Per-connection loop: frames in, frames out. Malformed payloads get an
/// error response on the open connection; only an unframeable stream
/// (bad header, EOF, mid-frame timeout) tears it down.
fn connection(stream: TcpStream, tx: mpsc::Sender<Job>, shutdown: Arc<AtomicBool>) {
    let _ = stream.set_nodelay(true);
    // Short read timeout so idle connections notice shutdown promptly.
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let mut read_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut write_half = stream;
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let payload = match read_frame(&mut read_half) {
            Ok(p) => p,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue; // idle; poll the shutdown flag again
            }
            Err(_) => return, // EOF or an unframeable stream
        };
        let response = match Request::decode(&payload) {
            Err(reason) => Response::Error(format!("malformed request: {reason}")),
            Ok(request) => {
                let (reply_tx, reply_rx) = mpsc::channel();
                if tx
                    .send(Job {
                        request,
                        reply: reply_tx,
                    })
                    .is_err()
                {
                    Response::Error("server is shutting down".into())
                } else {
                    reply_rx
                        .recv()
                        .unwrap_or_else(|_| Response::Error("server dropped the request".into()))
                }
            }
        };
        if write_frame(&mut write_half, &response.encode()).is_err() {
            return;
        }
    }
}

/// Key identifying one cacheable top-k answer: `(node, k, mode)`, where
/// mode is `u64::MAX` for exact scans and the recall target's bit
/// pattern for approximate ones (`f64::from_bits(u64::MAX)` is NaN,
/// which the protocol rejects, so the sentinel cannot collide).
type CacheKey = (u64, u32, u64);

/// A cache-missing top-k job awaiting its batched answer: the query node
/// plus the reply channel of the connection that asked.
type PendingTopK = (u64, mpsc::Sender<Response>);

const EXACT_MODE: u64 = u64::MAX;

/// Dispatcher: owns the service and the cache, coalesces top-k requests
/// into batches, answers everything else inline, and drives shutdown.
fn dispatcher(
    service: EmbeddingService,
    rx: mpsc::Receiver<Job>,
    config: ServeConfig,
    shutdown: Arc<AtomicBool>,
    local: SocketAddr,
) -> ServerStats {
    let mut stats = ServerStats::default();
    let mut cache: LruCache<CacheKey, Vec<Neighbor>> = LruCache::new(config.cache_capacity);
    let mut stop = false;
    while !stop {
        let first = match rx.recv_timeout(POLL_INTERVAL) {
            Ok(job) => job,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        };
        // Coalesce: wait out the batch window for concurrent requests.
        let mut batch = vec![first];
        let deadline = Instant::now() + config.batch_window;
        while batch.len() < BATCH_MAX {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(job) => batch.push(job),
                Err(_) => break,
            }
        }
        stats.batches += 1;
        stop = process_batch(&service, &mut cache, batch, &mut stats);
        if let Some(max) = config.max_requests {
            if stats.requests >= max {
                stop = true;
            }
        }
    }
    // Stop the world: raise the flag, then wake the blocked acceptor so
    // it observes the flag and exits.
    shutdown.store(true, Ordering::SeqCst);
    let _ = TcpStream::connect(local);
    stats
}

/// Answers one coalesced batch. Returns `true` when a shutdown request
/// was part of it.
fn process_batch(
    service: &EmbeddingService,
    cache: &mut LruCache<CacheKey, Vec<Neighbor>>,
    batch: Vec<Job>,
    stats: &mut ServerStats,
) -> bool {
    let mut shutdown_requested = false;
    // Cache-missing top-k jobs, grouped by (k, mode) so each group is one
    // batched store call.
    let mut groups: HashMap<(u32, u64), Vec<PendingTopK>> = HashMap::new();
    for job in batch {
        stats.requests += 1;
        match job.request {
            Request::Ping => {
                let _ = job.reply.send(Response::Ok);
            }
            Request::Shutdown => {
                shutdown_requested = true;
                let _ = job.reply.send(Response::Ok);
            }
            Request::Score { u, v } => {
                let response = match service.score(u as usize, v as usize) {
                    Ok(s) => Response::Score(s),
                    Err(e) => {
                        stats.errors += 1;
                        Response::Error(e.to_string())
                    }
                };
                let _ = job.reply.send(response);
            }
            Request::TopK {
                node,
                k,
                approx,
                recall_target,
            } => {
                if node as usize >= service.len() {
                    stats.errors += 1;
                    let _ = job.reply.send(Response::Error(format!(
                        "node {node} out of range (store holds {} nodes)",
                        service.len()
                    )));
                    continue;
                }
                let mode = if approx {
                    recall_target.to_bits()
                } else {
                    EXACT_MODE
                };
                if let Some(hit) = cache.get(&(node, k, mode)) {
                    stats.cache_hits += 1;
                    let _ = job.reply.send(Response::Neighbors(hit.clone()));
                    continue;
                }
                groups.entry((k, mode)).or_default().push((node, job.reply));
            }
        }
    }
    for ((k, mode), jobs) in groups {
        let nodes: Vec<usize> = jobs.iter().map(|(n, _)| *n as usize).collect();
        let results = if mode == EXACT_MODE {
            service.batch_top_k(&nodes, k as usize)
        } else {
            service.batch_top_k_approx(&nodes, k as usize, f64::from_bits(mode))
        };
        match results {
            Ok(per_query) => {
                for ((node, reply), neighbors) in jobs.into_iter().zip(per_query) {
                    cache.insert((node, k, mode), neighbors.clone());
                    let _ = reply.send(Response::Neighbors(neighbors));
                }
            }
            Err(e) => {
                // Range errors were filtered above; anything left (pool
                // failure, index drift) fails the group loudly but keeps
                // the server alive.
                let msg = e.to_string();
                for (_, reply) in jobs {
                    stats.errors += 1;
                    let _ = reply.send(Response::Error(msg.clone()));
                }
            }
        }
    }
    shutdown_requested
}

#[cfg(test)]
mod tests {
    use super::*;
    use advsgm_core::ModelVariant;
    use advsgm_linalg::DenseMatrix;
    use advsgm_store::{EmbeddingStore, IndexParams, PrivacyMeta};
    use client::ServeClient;

    fn test_service(indexed: bool) -> EmbeddingService {
        let m = DenseMatrix::from_fn(80, 6, |i, j| ((i * 7 + j * 3) as f64 * 0.13).sin());
        let store = EmbeddingStore::new(m, PrivacyMeta::non_private(ModelVariant::Sgm)).unwrap();
        let mut service = EmbeddingService::with_threads(store, 2);
        if indexed {
            service
                .build_index(IndexParams {
                    nlist: 8,
                    ..IndexParams::default()
                })
                .unwrap();
        }
        service
    }

    fn start(indexed: bool, config: ServeConfig) -> (Server, SocketAddr) {
        let server = Server::bind(test_service(indexed), "127.0.0.1:0", config).unwrap();
        let addr = server.local_addr();
        (server, addr)
    }

    #[test]
    fn round_trip_matches_local_exact_scan() {
        let (server, addr) = start(true, ServeConfig::default());
        let reference = test_service(false);
        let mut client = ServeClient::connect(addr).unwrap();
        client.ping().unwrap();
        for node in [0u64, 7, 79] {
            let wire = client.top_k(node, 10).unwrap();
            let local = reference.top_k(node as usize, 10).unwrap();
            assert_eq!(wire.len(), local.len());
            for (a, b) in wire.iter().zip(&local) {
                assert_eq!(a.node, b.node);
                assert_eq!(a.id, b.id);
                assert_eq!(a.score.to_bits(), b.score.to_bits(), "node={node}");
            }
        }
        let s = client.score(1, 2).unwrap();
        assert_eq!(
            s.to_bits(),
            reference.score(1, 2).unwrap().to_bits(),
            "score must be bitwise"
        );
        let approx = client.top_k_approx(3, 5, 0.9).unwrap();
        assert!(approx.len() <= 5);
        client.shutdown().unwrap();
        let stats = server.wait();
        assert!(stats.requests >= 6);
    }

    #[test]
    fn malformed_requests_degrade_gracefully() {
        let (server, addr) = start(false, ServeConfig::default());
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        // Unknown opcode: error response, connection stays usable.
        write_frame(&mut raw, &[0xEE, 1, 2, 3]).unwrap();
        let resp = read_frame(&mut raw).unwrap();
        assert_eq!(resp[0], protocol::STATUS_ERR);
        assert!(String::from_utf8_lossy(&resp[1..]).contains("opcode"));
        // Out-of-range node: error response, connection stays usable.
        write_frame(
            &mut raw,
            &Request::TopK {
                node: 9_999,
                k: 3,
                approx: false,
                recall_target: 1.0,
            }
            .encode(),
        )
        .unwrap();
        let resp = read_frame(&mut raw).unwrap();
        assert_eq!(resp[0], protocol::STATUS_ERR);
        assert!(String::from_utf8_lossy(&resp[1..]).contains("out of range"));
        // The same connection still answers valid requests afterwards.
        write_frame(&mut raw, &Request::Ping.encode()).unwrap();
        assert_eq!(read_frame(&mut raw).unwrap(), vec![protocol::STATUS_OK]);
        drop(raw);

        let mut client = ServeClient::connect(addr).unwrap();
        client.shutdown().unwrap();
        let stats = server.wait();
        // The unknown opcode is answered connection-side (it never
        // reaches the dispatcher); only the out-of-range node counts.
        assert!(stats.errors >= 1, "stats: {stats:?}");
    }

    #[test]
    fn concurrent_clients_batch_and_cache() {
        let config = ServeConfig {
            batch_window: Duration::from_millis(5),
            ..ServeConfig::default()
        };
        let (server, addr) = start(false, config);
        let reference = test_service(false);
        let expected = reference.top_k(5, 8).unwrap();
        let mut handles = Vec::new();
        for _ in 0..4 {
            handles.push(std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).unwrap();
                let mut answers = Vec::new();
                for _ in 0..6 {
                    answers.push(client.top_k(5, 8).unwrap());
                }
                answers
            }));
        }
        for handle in handles {
            for got in handle.join().unwrap() {
                assert_eq!(got.len(), expected.len());
                for (a, b) in got.iter().zip(&expected) {
                    assert_eq!(a.node, b.node);
                    assert_eq!(a.score.to_bits(), b.score.to_bits());
                }
            }
        }
        ServeClient::connect(addr).unwrap().shutdown().unwrap();
        let stats = server.wait();
        // 24 identical queries: all but the very first resolve from the
        // LRU (or dedupe inside one batch window, which the store makes
        // a single scan anyway — either way the cache must have fired).
        assert!(stats.cache_hits > 0, "stats: {stats:?}");
        assert!(stats.requests >= 25);
    }

    #[test]
    fn max_requests_bounds_the_run() {
        let config = ServeConfig {
            max_requests: Some(3),
            ..ServeConfig::default()
        };
        let (server, addr) = start(false, config);
        let mut client = ServeClient::connect(addr).unwrap();
        for _ in 0..3 {
            client.ping().unwrap();
        }
        let stats = server.wait();
        assert_eq!(stats.requests, 3);
    }
}
