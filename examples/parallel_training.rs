//! Parallel sharded training: the same Algorithm 3, spread over a worker
//! pool, with the engine's determinism contract demonstrated live.
//!
//! ```bash
//! cargo run --release --example parallel_training
//! ```
//!
//! The sweep below pins explicit widths (1/2/4) so the determinism checks
//! are self-contained; a final auto run leaves `num_threads = 0` to show
//! how `ADVSGM_THREADS` resolves when the width is not pinned in code.

use std::time::Instant;

use advsgm::core::{AdvSgmConfig, ModelVariant, ShardedTrainer, Trainer};
use advsgm::graph::generators::sbm::{degree_corrected_sbm, SbmConfig};
use advsgm::linalg::rng::seeded;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mid-sized synthetic graph: big enough that per-batch gradient work
    // dominates pool dispatch.
    let mut rng = seeded(21);
    let graph = degree_corrected_sbm(
        &SbmConfig {
            num_nodes: 2_000,
            num_edges: 10_000,
            num_blocks: 8,
            mixing: 0.12,
            degree_exponent: 2.5,
        },
        &mut rng,
    );
    println!(
        "graph: {} nodes, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    );

    let base = AdvSgmConfig {
        variant: ModelVariant::AdvSgm,
        dim: 64,
        batch_size: 256,
        epochs: 2,
        disc_iters: 8,
        gen_iters: 2,
        epsilon: 1e9, // never stop early: comparable work at every width
        ..AdvSgmConfig::default()
    };

    // Reference: the sequential trainer.
    let t0 = Instant::now();
    let seq = Trainer::fit(&graph, base.clone())?;
    let seq_time = t0.elapsed();
    println!(
        "sequential Trainer        {seq_time:>10.2?}  ({} updates)",
        seq.disc_updates
    );

    // The sharded engine at increasing widths. threads = 1 must reproduce
    // the sequential run bit-for-bit; wider runs are deterministic too,
    // each on its own derived-stream trajectory.
    for threads in [1usize, 2, 4] {
        let cfg = base.clone().with_threads(threads);
        let t0 = Instant::now();
        let out = ShardedTrainer::fit(&graph, cfg.clone())?;
        let elapsed = t0.elapsed();
        let rerun = ShardedTrainer::fit(&graph, cfg)?;
        let deterministic = out
            .node_vectors
            .as_slice()
            .iter()
            .zip(rerun.node_vectors.as_slice())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        let bitwise_seq = out
            .node_vectors
            .as_slice()
            .iter()
            .zip(seq.node_vectors.as_slice())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        println!(
            "sharded, {threads} thread(s)      {elapsed:>10.2?}  run-to-run deterministic: {deterministic}{}",
            if threads == 1 {
                format!(", bitwise == sequential: {bitwise_seq}")
            } else {
                String::new()
            }
        );
        assert!(deterministic, "determinism contract violated");
        if threads == 1 {
            assert!(bitwise_seq, "threads=1 must match the sequential trainer");
        }
        // Accounting never depends on the engine.
        assert_eq!(out.disc_updates, seq.disc_updates);
        assert_eq!(out.epsilon_spent, seq.epsilon_spent);
    }

    // Auto resolution: num_threads = 0 defers to ADVSGM_THREADS (else 1).
    let auto_cfg = base.clone().with_threads(0);
    let auto = ShardedTrainer::new(&graph, auto_cfg.clone())?;
    println!(
        "\nauto width: num_threads = 0 resolves to {} thread(s) \
         (ADVSGM_THREADS = {})",
        auto.threads(),
        std::env::var("ADVSGM_THREADS").unwrap_or_else(|_| "unset".into())
    );
    assert_eq!(auto.threads(), auto_cfg.effective_threads());

    println!(
        "\nprivacy spend (any engine): epsilon = {:.3} at delta = {:.0e}",
        seq.epsilon_spent.unwrap_or(f64::NAN),
        base.delta
    );
    println!("speedups require free cores; see `cargo bench --bench throughput_scaling`");
    Ok(())
}
