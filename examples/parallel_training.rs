//! Parallel sharded training through `advsgm::api`: the same Algorithm 3
//! at every width, engine selection left entirely to the pipeline — plus
//! a live proof that the facade is bitwise-faithful to the hand-wired
//! engines it wraps.
//!
//! ```bash
//! cargo run --release --example parallel_training
//! ```
//!
//! The sweep below pins explicit widths (1/2/4) so the determinism checks
//! are self-contained; a final auto run leaves the width unset to show
//! how `ADVSGM_THREADS` resolves when it is not pinned in code.

use std::time::Instant;

use advsgm::api::{ModelVariant, PipelineBuilder};
use advsgm::core::{ShardedTrainer, Trainer};
use advsgm::graph::generators::sbm::{degree_corrected_sbm, SbmConfig};
use advsgm::linalg::rng::seeded;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mid-sized synthetic graph: big enough that per-batch gradient work
    // dominates pool dispatch.
    let mut rng = seeded(21);
    let graph = degree_corrected_sbm(
        &SbmConfig {
            num_nodes: 2_000,
            num_edges: 10_000,
            num_blocks: 8,
            mixing: 0.12,
            degree_exponent: 2.5,
        },
        &mut rng,
    );
    println!(
        "graph: {} nodes, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    );

    let base = PipelineBuilder::new(ModelVariant::AdvSgm)
        .dim(advsgm::api::Dim::new(64)?)
        .batch_size(256)
        .epochs(2)
        .disc_iters(8)
        .gen_iters(2)
        .epsilon(advsgm::api::Epsilon::new(1e9)?); // never stop early

    // Reference: the hand-wired sequential trainer (internals surface).
    let t0 = Instant::now();
    let seq = Trainer::fit(&graph, base.config().clone())?;
    let seq_time = t0.elapsed();
    println!(
        "hand-wired Trainer        {seq_time:>10.2?}  ({} updates)",
        seq.disc_updates
    );

    // The pipeline at increasing widths. threads = 1 must reproduce the
    // sequential run bit-for-bit; wider runs are deterministic too, each
    // on its own derived-stream trajectory — and every width must match
    // the hand-wired ShardedTrainer exactly (the facade adds nothing).
    for threads in [1usize, 2, 4] {
        let b = base.clone().threads(threads);
        let t0 = Instant::now();
        let out = b.clone().build(&graph)?.train()?;
        let elapsed = t0.elapsed();
        let hand_wired = ShardedTrainer::fit(&graph, b.config().clone())?;
        let bitwise_engine = out
            .embeddings()
            .as_slice()
            .iter()
            .zip(hand_wired.node_vectors.as_slice())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        let bitwise_seq = out
            .embeddings()
            .as_slice()
            .iter()
            .zip(seq.node_vectors.as_slice())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        println!(
            "pipeline, {threads} thread(s)     {elapsed:>10.2?}  bitwise == hand-wired engine: {bitwise_engine}{}",
            if threads == 1 {
                format!(", bitwise == sequential: {bitwise_seq}")
            } else {
                String::new()
            }
        );
        assert!(bitwise_engine, "facade must be bitwise-faithful");
        if threads == 1 {
            assert!(bitwise_seq, "threads=1 must match the sequential trainer");
        }
        // Accounting never depends on the engine.
        assert_eq!(out.outcome().disc_updates, seq.disc_updates);
        assert_eq!(out.outcome().epsilon_spent, seq.epsilon_spent);
    }

    // Auto resolution: an unpinned width defers to ADVSGM_THREADS (else 1).
    let auto = base.clone().threads(0).build(&graph)?;
    println!(
        "\nauto width: threads = 0 resolves to {} thread(s) \
         (ADVSGM_THREADS = {})",
        auto.threads(),
        std::env::var("ADVSGM_THREADS").unwrap_or_else(|_| "unset".into())
    );
    assert_eq!(auto.threads(), auto.config().effective_threads());

    println!(
        "\nprivacy spend (any engine): epsilon = {:.3} at delta = {:.0e}",
        seq.epsilon_spent.unwrap_or(f64::NAN),
        base.config().delta
    );
    println!("speedups require free cores; see `cargo bench --bench throughput_scaling`");
    Ok(())
}
