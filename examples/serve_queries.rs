//! End-to-end serving demo: train → release → save → load → query,
//! entirely through `advsgm::api`.
//!
//! ```bash
//! cargo run --release --example serve_queries
//! ```
//!
//! Trains AdvSGM on a small synthetic community graph, releases the
//! vectors as an `.aemb` store stamped with the accountant's spend,
//! roundtrips it through disk (bitwise-exact — the file format stores
//! raw IEEE-754 bits, see `docs/FORMAT.md`), and serves pair-score and
//! top-k neighbor queries from an `EmbeddingService` over the loaded
//! copy. All of the serving is post-processing (Theorem 5): the privacy
//! stamp printed below is the complete cost, no matter how many queries
//! run.

use advsgm::api::{Dim, EmbeddingService, ModelVariant, PipelineBuilder};
use advsgm::graph::generators::sbm::{degree_corrected_sbm, SbmConfig};
use advsgm::graph::NodeId;
use advsgm::linalg::rng::seeded;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = seeded(33);
    let graph = degree_corrected_sbm(
        &SbmConfig {
            num_nodes: 400,
            num_edges: 2_400,
            num_blocks: 8,
            mixing: 0.08,
            degree_exponent: 2.5,
        },
        &mut rng,
    );
    println!(
        "graph: {} nodes, {} edges, 8 planted communities",
        graph.num_nodes(),
        graph.num_edges()
    );

    // Train and release in one flow; the store carries the accountant's
    // spent epsilon, the target delta, and sigma.
    let trained = PipelineBuilder::test_small(ModelVariant::AdvSgm)
        .dim(Dim::new(32)?)
        .epochs(4)
        .disc_iters(8)
        .build(&graph)?
        .train()?;
    println!(
        "released: {} x {} vectors",
        trained.store().len(),
        trained.store().dim()
    );
    println!("privacy:  {}", trained.store().meta());

    // Persist and reload through the service — the roundtrip is
    // bitwise-exact and the checksum is verified on open.
    let path = std::env::temp_dir().join("serve_queries_demo.aemb");
    trained.save_embeddings(&path)?;
    let served = EmbeddingService::open(&path)?;
    assert_eq!(
        served.store(),
        trained.store(),
        "save -> load must be exact"
    );
    println!(
        "saved + reloaded {} ({} bytes), checksum verified",
        path.display(),
        std::fs::metadata(&path)?.len()
    );

    // Pair scores: Eq. 2's inner product, the link-prediction statistic.
    let (u, some_neighbor) = {
        let e = graph.edges()[0];
        (e.u().index(), e.v().index())
    };
    println!(
        "\nscore({u}, {some_neighbor})    = {:+.4}  (real edge)",
        served.score(u, some_neighbor)?
    );
    let far = (u + served.len() / 2) % served.len();
    println!(
        "score({u}, {far}) = {:+.4}  (random pair)",
        served.score(u, far)?
    );

    // Neighbor serving: top-k by inner product, self excluded.
    println!("\ntop 5 neighbors of node {u}:");
    for n in served.top_k(u, 5)? {
        let real = if graph.has_edge(NodeId(u as u32), NodeId(n.node as u32)) {
            "edge in training graph"
        } else {
            "no training edge"
        };
        println!("  node {:>4}  score {:+.4}  ({real})", n.node, n.score);
    }

    // Batched serving is thread-count invariant: same bits at any width.
    let queries: Vec<usize> = (0..served.len()).step_by(37).collect();
    let here = served.batch_top_k(&queries, 5)?;
    let four = EmbeddingService::open_with_threads(&path, 4)?;
    assert_eq!(
        here,
        four.batch_top_k(&queries, 5)?,
        "batch_top_k must not depend on the service's pool width"
    );
    println!(
        "\nbatch_top_k over {} queries: identical results at 1 and 4 threads",
        queries.len()
    );

    std::fs::remove_file(&path)?;
    Ok(())
}
