//! The whole lifecycle in one screen: train → save → load → top-k,
//! entirely through `advsgm::api` — no engine names, no crate-level
//! types, one error type.
//!
//! ```bash
//! cargo run --release --example pipeline_quickstart
//! ```

use advsgm::api::{Dim, EmbeddingService, Epsilon, ModelVariant, PipelineBuilder, Result};
use advsgm::graph::generators::classic::karate_club;

fn main() -> Result<()> {
    // The complete train → save → load → top-k flow (the builder rejects
    // invalid parameters at construction; `build` validates the rest).
    let graph = karate_club();
    let path = std::env::temp_dir().join("pipeline_quickstart.aemb");
    let trained = PipelineBuilder::test_small(ModelVariant::AdvSgm)
        .dim(Dim::new(16)?)
        .epsilon(Epsilon::new(6.0)?)
        .epochs(10)
        .seed(7)
        .build(&graph)?
        .train()?;
    trained.save_embeddings(&path)?;
    let service = EmbeddingService::open(&path)?;
    let neighbors = service.top_k(0, 5)?;
    // ---- that's the whole pipeline; the rest is printing. ----

    if let Some(spend) = trained.spend() {
        println!(
            "trained {} epochs; spent epsilon = {:.4} over {} mechanism steps",
            trained.outcome().epochs_run,
            spend.epsilon_spent,
            spend.steps
        );
    }
    println!("released under: {}", service.privacy());
    println!("top 5 neighbors of node 0:");
    for n in &neighbors {
        println!("  node {:>3}  score {:+.4}", n.node, n.score);
    }
    std::fs::remove_file(&path)?;
    Ok(())
}
