//! The workload-variants evaluation harness (DESIGN.md §16).
//!
//! Trains every registered [`ModelVariant`] — the paper's five plus the
//! signed-graph and structure-preference workloads — on the signed
//! `Polarity` dataset, scores each on link prediction *and* sign
//! prediction, and writes the committed baseline
//! `results/BENCH_variants_eval.json` (schema in `docs/BENCHMARKS.md`).
//! Deterministic at the fixed seed: re-running reproduces the file byte
//! for byte on any host (the kernel backends are bitwise-identical).
//!
//! ```bash
//! cargo run --release --example variants_eval
//! ```

use advsgm::core::{AdvSgmConfig, ModelVariant, Trainer};
use advsgm::datasets::{synthesize, Dataset};
use advsgm::eval::auc_from_scores;
use advsgm::eval::linkpred::score_pairs;
use advsgm::eval::sign_prediction_auc;
use advsgm::graph::partition::{sample_non_edges, sign_prediction_split};
use advsgm::linalg::rng::seeded;

const SCALE: f64 = 0.1;
const SEED: u64 = 29;

/// One variant's scores: link AUC always, sign AUC for every variant (the
/// interesting part is that only the sign-aware one separates polarity),
/// plus the stamped privacy spend.
struct Row {
    variant: ModelVariant,
    link_auc: f64,
    sign_auc: f64,
    epsilon_spent: Option<f64>,
}

fn json_f64(x: f64) -> String {
    // `Display` for finite f64 is shortest-roundtrip, valid JSON.
    format!("{x}")
}

fn json_opt(x: Option<f64>) -> String {
    x.map_or_else(|| "null".into(), json_f64)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = Dataset::Polarity.spec().scaled(SCALE);
    let graph = synthesize(&spec, 0);
    let foe_fraction = graph.num_foe_edges() as f64 / graph.num_edges() as f64;
    println!(
        "dataset: {} (scale {SCALE}) — {} nodes, {} edges, {:.1}% foe\n",
        spec.name,
        graph.num_nodes(),
        graph.num_edges(),
        100.0 * foe_fraction
    );

    // One stratified 80/20 polarity split shared by every variant: train
    // on the (still signed) 80%, score sign AUC on the held-out friend vs
    // foe edges and link AUC on all held-out edges vs sampled non-edges.
    let mut rng = seeded(SEED);
    let split = sign_prediction_split(&graph, 0.2, &mut rng)?;
    let held: Vec<_> = split
        .test_friend
        .iter()
        .chain(&split.test_foe)
        .copied()
        .collect();
    let non_edges = sample_non_edges(&graph, held.len(), &mut rng)?;

    // Mild noise and an untripped budget so the private variants' *utility*
    // is visible (the paper-faithful σ = 5 grid is table5_private_skipgram's
    // territory); this artifact tracks the workload seam, not Table V.
    let cfg_for = |v: ModelVariant| -> AdvSgmConfig {
        let mut cfg = AdvSgmConfig::test_small(v);
        cfg.epochs = 40;
        cfg.disc_iters = 8;
        cfg.batch_size = 128;
        cfg.sigma = 1.0;
        cfg.epsilon = 1e9;
        cfg.seed = SEED;
        cfg
    };

    let mut rows: Vec<Row> = Vec::new();
    for v in ModelVariant::all() {
        let outcome = Trainer::fit(&split.train, cfg_for(v))?;
        let emb = &outcome.node_vectors;
        let pos = score_pairs(emb, &held);
        let neg = score_pairs(emb, &non_edges);
        rows.push(Row {
            variant: v,
            link_auc: auc_from_scores(&pos, &neg)?,
            sign_auc: sign_prediction_auc(emb, &split.test_friend, &split.test_foe)?,
            epsilon_spent: outcome.epsilon_spent,
        });
    }

    println!(
        "{:<16} {:>6} {:>10} {:>10} {:>12}",
        "variant", "code", "link AUC", "sign AUC", "eps spent"
    );
    for r in &rows {
        println!(
            "{:<16} {:>6} {:>10.4} {:>10.4} {:>12}",
            r.variant.to_string(),
            r.variant.wire_code(),
            r.link_auc,
            r.sign_auc,
            r.epsilon_spent
                .map_or_else(|| "-".into(), |e| format!("{e:.3}")),
        );
    }

    let aware = rows
        .iter()
        .find(|r| r.variant == ModelVariant::SignedAdvSgm)
        .expect("registered");
    let blind = rows
        .iter()
        .find(|r| r.variant == ModelVariant::AdvSgm)
        .expect("registered");
    println!(
        "\nsign separation: aware {:.4} vs blind {:.4} (gap {:+.4})",
        aware.sign_auc,
        blind.sign_auc,
        aware.sign_auc - blind.sign_auc
    );

    // The committed baseline document (docs/BENCHMARKS.md schema).
    let mut variants_json: Vec<String> = Vec::new();
    for r in &rows {
        variants_json.push(format!(
            "{{\"variant\":\"{}\",\"wire_code\":{},\"private\":{},\"sign_aware\":{},\
             \"link_auc\":{},\"sign_auc\":{},\"epsilon_spent\":{}}}",
            r.variant,
            r.variant.wire_code(),
            r.variant.is_private(),
            r.variant.is_sign_aware(),
            json_f64(r.link_auc),
            json_f64(r.sign_auc),
            json_opt(r.epsilon_spent),
        ));
    }
    let body = format!(
        "{{\"experiment\":\"variants_eval\",\"schema_version\":1,\
         \"dataset\":\"{}\",\"scale\":{},\"seed\":{},\
         \"graph\":{{\"nodes\":{},\"edges\":{},\"foe_fraction\":{}}},\
         \"train\":{{\"dim\":16,\"epochs\":40,\"disc_iters\":8,\"batch_size\":128,\
         \"negatives\":2,\"sigma\":1,\"epsilon_target\":1e9}},\
         \"variants\":[{}],\
         \"sign_separation\":{{\"aware\":{},\"blind\":{},\"gap\":{}}}}}",
        spec.name,
        json_f64(SCALE),
        SEED,
        graph.num_nodes(),
        graph.num_edges(),
        json_f64(foe_fraction),
        variants_json.join(","),
        json_f64(aware.sign_auc),
        json_f64(blind.sign_auc),
        json_f64(aware.sign_auc - blind.sign_auc),
    );
    let results_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("results");
    let path = results_dir.join("BENCH_variants_eval.json");
    std::fs::create_dir_all(&results_dir)?;
    std::fs::write(&path, body + "\n")?;
    println!("wrote {}", path.display());
    Ok(())
}
