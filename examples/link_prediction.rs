//! Link prediction across privacy budgets — the Fig. 3 story in miniature.
//!
//! Trains SGM (non-private), DP-SGM, and AdvSGM on a Facebook-like
//! synthetic social network through `advsgm::api` and prints AUC per
//! privacy budget.
//!
//! ```bash
//! cargo run --release --example link_prediction
//! ```

use advsgm::api::{Epsilon, ModelVariant, PipelineBuilder};
use advsgm::datasets::{synthesize, Dataset};
use advsgm::eval::linkpred::evaluate_split;
use advsgm::graph::partition::link_prediction_split;
use advsgm::linalg::rng::seeded;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 1/20-scale stand-in for the paper's Facebook graph.
    let spec = Dataset::Facebook.spec().scaled(0.05);
    let graph = synthesize(&spec, 1);
    println!(
        "dataset: {} (scaled) — {} nodes, {} edges",
        spec.name,
        graph.num_nodes(),
        graph.num_edges()
    );
    let mut rng = seeded(11);
    let split = link_prediction_split(&graph, 0.10, &mut rng)?;

    // Non-private reference.
    let sgm = PipelineBuilder::new(ModelVariant::Sgm)
        .epochs(10)
        .build(&split.train)?
        .train()?;
    let sgm_auc = evaluate_split(sgm.embeddings(), &split)?;
    println!("\nSGM (no DP):      AUC = {sgm_auc:.4}");

    println!("\n{:<8} {:>10} {:>10}", "epsilon", "DP-SGM", "AdvSGM");
    for eps in [1.0, 3.0, 6.0] {
        let mut row = format!("{eps:<8}");
        for variant in [ModelVariant::DpSgm, ModelVariant::AdvSgm] {
            let trained = PipelineBuilder::new(variant)
                .epochs(10)
                .epsilon(Epsilon::new(eps)?)
                .build(&split.train)?
                .train()?;
            let auc = evaluate_split(trained.embeddings(), &split)?;
            row.push_str(&format!(" {auc:>10.4}"));
        }
        println!("{row}");
    }
    println!("\nExpected shape: AUC grows with epsilon and AdvSGM dominates DP-SGM.");
    Ok(())
}
