//! Quickstart: train a differentially private AdvSGM embedding on
//! Zachary's karate club and evaluate link prediction.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use advsgm::core::{AdvSgmConfig, ModelVariant, Trainer};
use advsgm::eval::linkpred::evaluate_split;
use advsgm::graph::generators::classic::karate_club;
use advsgm::graph::partition::link_prediction_split;
use advsgm::linalg::rng::seeded;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A graph. Any `advsgm::graph::Graph` works; the karate club is the
    //    classic 34-node sanity check.
    let graph = karate_club();
    println!(
        "graph: {} nodes, {} edges, {} classes",
        graph.num_nodes(),
        graph.num_edges(),
        graph.num_classes()
    );

    // 2. Hold out 10% of edges for evaluation (the paper's protocol).
    let mut rng = seeded(7);
    let split = link_prediction_split(&graph, 0.10, &mut rng)?;

    // 3. Train AdvSGM under a node-level (epsilon = 6, delta = 1e-5) budget.
    //    `test_small` shrinks the model so this example runs in a second;
    //    see `AdvSgmConfig::default()` for the paper's full setup.
    let mut cfg = AdvSgmConfig::test_small(ModelVariant::AdvSgm);
    cfg.epochs = 10;
    cfg.epsilon = 6.0;
    let out = Trainer::fit(&split.train, cfg)?;
    println!(
        "trained: {} epochs, {} discriminator updates, stopped_by_budget = {}",
        out.epochs_run, out.disc_updates, out.stopped_by_budget
    );
    if let (Some(eps), Some(delta)) = (out.epsilon_spent, out.delta_spent) {
        println!(
            "privacy spent: epsilon = {eps:.3} at delta = 1e-5 (delta_hat at eps=6: {delta:.2e})"
        );
    }

    // 4. Score held-out pairs with embedding inner products.
    let auc = evaluate_split(&out.node_vectors, &split)?;
    println!("link prediction AUC = {auc:.4}");

    // 5. The released matrix is plain data — post-processing (Theorem 5)
    //    means anything you compute from it keeps the DP guarantee.
    let v0 = &out.node_vectors.row(0)[..4.min(out.node_vectors.cols())];
    println!("embedding of node 0 (first coords): {v0:?}");
    Ok(())
}
