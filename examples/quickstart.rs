//! Quickstart: train a differentially private AdvSGM embedding on
//! Zachary's karate club through `advsgm::api` and evaluate link
//! prediction.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use advsgm::api::{Dim, Epsilon, ModelVariant, PipelineBuilder};
use advsgm::eval::linkpred::evaluate_split;
use advsgm::graph::generators::classic::karate_club;
use advsgm::graph::partition::link_prediction_split;
use advsgm::linalg::rng::seeded;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A graph. Any `advsgm::graph::Graph` works; the karate club is the
    //    classic 34-node sanity check.
    let graph = karate_club();
    println!(
        "graph: {} nodes, {} edges, {} classes",
        graph.num_nodes(),
        graph.num_edges(),
        graph.num_classes()
    );

    // 2. Hold out 10% of edges for evaluation (the paper's protocol).
    let mut rng = seeded(7);
    let split = link_prediction_split(&graph, 0.10, &mut rng)?;

    // 3. Train AdvSGM under a node-level (epsilon = 6, delta = 1e-5)
    //    budget. `test_small` shrinks the model so this example runs in a
    //    second; `PipelineBuilder::new` starts from the paper's full
    //    setup. The typed `Epsilon`/`Dim` parameters cannot hold invalid
    //    values, and `build` validates the rest exactly once.
    let trained = PipelineBuilder::test_small(ModelVariant::AdvSgm)
        .dim(Dim::new(16)?)
        .epsilon(Epsilon::new(6.0)?)
        .epochs(10)
        .build(&split.train)?
        .train()?;
    let out = trained.outcome();
    println!(
        "trained: {} epochs, {} discriminator updates, stopped_by_budget = {}",
        out.epochs_run, out.disc_updates, out.stopped_by_budget
    );
    if let Some(spend) = trained.spend() {
        println!(
            "privacy spent: epsilon = {:.3} at delta = 1e-5 (delta_hat at eps=6: {:.2e})",
            spend.epsilon_spent, spend.delta_spent
        );
    }

    // 4. Score held-out pairs with embedding inner products.
    let auc = evaluate_split(trained.embeddings(), &split)?;
    println!("link prediction AUC = {auc:.4}");

    // 5. The released matrix is plain data — post-processing (Theorem 5)
    //    means anything you compute from it keeps the DP guarantee.
    let v0 = &trained.embeddings().row(0)[..4.min(trained.embeddings().cols())];
    println!("embedding of node 0 (first coords): {v0:?}");
    Ok(())
}
