//! Node clustering with Affinity Propagation — the Fig. 4 pipeline.
//!
//! Trains AdvSGM on a PPI-like labeled graph through `advsgm::api`,
//! clusters the embeddings with Affinity Propagation (the paper's
//! clusterer), and reports mutual information against the ground-truth
//! classes.
//!
//! ```bash
//! cargo run --release --example node_clustering
//! ```

use advsgm::api::{Epsilon, ModelVariant, PipelineBuilder};
use advsgm::datasets::{synthesize, Dataset};
use advsgm::eval::clustering::affinity::{AffinityPropagation, ApParams};
use advsgm::eval::clustering::metrics::{mutual_information, normalized_mutual_information};
use advsgm::linalg::rng::seeded;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = Dataset::Ppi.spec().scaled(0.05);
    let graph = synthesize(&spec, 3);
    println!(
        "dataset: {} (scaled) — {} nodes, {} edges, {} classes",
        spec.name,
        graph.num_nodes(),
        graph.num_edges(),
        graph.num_classes()
    );

    let trained = PipelineBuilder::new(ModelVariant::AdvSgm)
        .epochs(10)
        .epsilon(Epsilon::new(6.0)?)
        .build(&graph)?
        .train()?;
    println!(
        "trained AdvSGM: {} epochs, stopped_by_budget = {}",
        trained.outcome().epochs_run,
        trained.outcome().stopped_by_budget
    );

    // Affinity Propagation discovers the cluster count itself
    // (post-processing of the released matrix: no further budget).
    let emb = trained.embeddings();
    let views: Vec<&[f64]> = (0..emb.rows()).map(|i| emb.row(i)).collect();
    let mut rng = seeded(17);
    let ap = AffinityPropagation::fit(&views, &ApParams::default(), &mut rng)?;
    println!(
        "affinity propagation: {} clusters in {} iterations (converged = {})",
        ap.num_clusters(),
        ap.iterations,
        ap.converged
    );

    let labels = graph.labels().expect("PPI stand-in is labeled");
    let truth: Vec<usize> = ap
        .point_indices
        .iter()
        .map(|&i| labels[i] as usize)
        .collect();
    let mi = mutual_information(&truth, &ap.assignments)?;
    let nmi = normalized_mutual_information(&truth, &ap.assignments)?;
    println!("clustering quality: MI = {mi:.4} nats, NMI = {nmi:.4}");
    println!("(the paper reports MI; chance level is ~0, perfect recovery equals label entropy)");
    Ok(())
}
