//! All five private methods side by side — one row of Fig. 3.
//!
//! Runs DPGGAN, DPGVAE, GAP, DPAR (the baseline trainers) and AdvSGM
//! (through `advsgm::api`) on a Wiki-like graph at a fixed budget and
//! prints the link-prediction AUC of each.
//!
//! ```bash
//! cargo run --release --example compare_baselines
//! ```

use advsgm::api::{Epsilon, ModelVariant, PipelineBuilder};
use advsgm::baselines::{BaselineConfig, Dpar, DpgGan, DpgVae, Gap};
use advsgm::datasets::{synthesize, Dataset};
use advsgm::eval::linkpred::evaluate_split;
use advsgm::graph::partition::link_prediction_split;
use advsgm::linalg::rng::seeded;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = Dataset::Wiki.spec().scaled(0.05);
    let graph = synthesize(&spec, 5);
    println!(
        "dataset: {} (scaled) — {} nodes, {} edges; budget epsilon = 6, delta = 1e-5\n",
        spec.name,
        graph.num_nodes(),
        graph.num_edges()
    );
    let mut rng = seeded(23);
    let split = link_prediction_split(&graph, 0.10, &mut rng)?;

    let bcfg = BaselineConfig {
        epsilon: 6.0,
        epochs: 10,
        ..BaselineConfig::default()
    };

    let mut results: Vec<(&str, f64)> = vec![(
        "DPGGAN",
        evaluate_split(&DpgGan::train(&split.train, &bcfg)?, &split)?,
    )];
    results.push((
        "DPGVAE",
        evaluate_split(&DpgVae::train(&split.train, &bcfg)?, &split)?,
    ));
    results.push((
        "GAP",
        evaluate_split(&Gap::default().train(&split.train, &bcfg)?, &split)?,
    ));
    results.push((
        "DPAR",
        evaluate_split(&Dpar::default().train(&split.train, &bcfg)?, &split)?,
    ));

    let adv = PipelineBuilder::new(ModelVariant::AdvSgm)
        .epochs(10)
        .epsilon(Epsilon::new(6.0)?)
        .build(&split.train)?
        .train()?;
    results.push(("AdvSGM", evaluate_split(adv.embeddings(), &split)?));

    println!("{:<10} {:>8}", "method", "AUC");
    for (name, auc) in &results {
        println!("{name:<10} {auc:>8.4}");
    }
    println!("\nExpected shape (paper Fig. 3): AdvSGM on top, DPAR next, the rest near chance.");
    Ok(())
}
