//! Inside the privacy accountant — how Theorem 7's numbers arise.
//!
//! Shows (a) the RDP curve of one subsampled Gaussian step, (b) how epsilon
//! accumulates over training iterations, (c) how many discriminator
//! iterations each target budget affords on a PPI-sized graph — the
//! quantity that makes AdvSGM's utility grow with epsilon in Fig. 3 —
//! and (d) the same accounting surfaced through `advsgm::api` as a
//! `Trained::spend` snapshot.
//!
//! ```bash
//! cargo run --release --example privacy_budget
//! ```

use advsgm::api::{Epsilon, ModelVariant, PipelineBuilder};
use advsgm::graph::generators::classic::karate_club;
use advsgm::privacy::accountant::RdpAccountant;
use advsgm::privacy::subsampled::subsampled_gaussian_epsilon;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Paper-default setup on PPI: sigma = 5, B = 128, k = 5,
    // |E| = 76584, |V| = 3890 (Theorem 7's two sampling rates).
    let sigma = 5.0;
    let gamma_pos = 128.0 / 76_584.0;
    let gamma_neg = (128.0 * 5.0) / 3_890.0;
    let delta = 1e-5;

    println!("one subsampled-Gaussian step (sigma = 5):");
    println!(
        "{:>6} {:>14} {:>14}",
        "alpha", "eps @ gamma_pos", "eps @ gamma_neg"
    );
    for alpha in [2usize, 4, 8, 16, 32, 64] {
        let ep = subsampled_gaussian_epsilon(sigma, gamma_pos, alpha)?;
        let en = subsampled_gaussian_epsilon(sigma, gamma_neg, alpha)?;
        println!("{alpha:>6} {ep:>14.6} {en:>14.6}");
    }

    println!("\nepsilon(delta=1e-5) as training proceeds (Theorem 7 composition):");
    let mut acc = RdpAccountant::new();
    println!("{:>12} {:>12}", "iterations", "epsilon");
    for chunk in [10u64, 40, 50, 100, 300, 500] {
        acc.record_subsampled_gaussian(sigma, gamma_pos, chunk)?;
        acc.record_subsampled_gaussian(sigma, gamma_neg, chunk)?;
        let (eps, _) = acc.epsilon(delta)?;
        println!("{:>12} {eps:>12.4}", acc.steps() / 2);
    }

    println!("\ndiscriminator iterations affordable per target epsilon (Algorithm 3 stop):");
    println!("{:>8} {:>12}", "epsilon", "iterations");
    for eps in 1..=6 {
        let n = RdpAccountant::max_supported_iterations(
            sigma, gamma_pos, gamma_neg, eps as f64, delta,
        )?;
        println!("{eps:>8} {n:>12}");
    }
    println!("\nThis is why every private method sits near AUC 0.5 at epsilon = 1:");
    println!("the budget affords almost no training before the stopping rule fires.");

    // The same machinery through the public pipeline: a Trained handle
    // carries the accountant's final snapshot — the number every artifact
    // released from it is stamped with.
    let graph = karate_club();
    let trained = PipelineBuilder::test_small(ModelVariant::AdvSgm)
        .epsilon(Epsilon::new(2.0)?)
        .epochs(8)
        .build(&graph)?
        .train()?;
    let spend = trained.spend().expect("AdvSGM is private");
    println!(
        "\nthrough advsgm::api on the karate club: {} mechanism steps, \
         epsilon_spent = {:.4} (optimal RDP order {}), stopped_by_budget = {}",
        spend.steps,
        spend.epsilon_spent,
        spend.optimal_alpha,
        trained.outcome().stopped_by_budget
    );
    Ok(())
}
