//! Integration + property tests for the IVF approximate-nearest-neighbor
//! index (`.aidx`, DESIGN.md §12): calibrated recall on clustered stores,
//! bitwise-exact full-coverage mode (including non-finite rows and
//! tie-breaks), typed rejection of corrupted index files, and the
//! index↔store fingerprint binding.

use advsgm::core::ModelVariant;
use advsgm::linalg::rng::seeded;
use advsgm::linalg::DenseMatrix;
use advsgm::store::{EmbeddingStore, IndexParams, IvfIndex, PrivacyMeta, StoreError};
use proptest::prelude::*;
use rand::Rng;

/// A store with `groups` well-separated direction clusters — the regime
/// trained community embeddings live in and where pruning must both hit
/// its recall calibration and actually skip most rows.
fn clustered_store(n: usize, dim: usize, groups: usize, seed: u64) -> EmbeddingStore {
    let mut rng = seeded(seed);
    let m = DenseMatrix::from_fn(n, dim, |i, j| {
        let g = i % groups;
        let center = 3.0 * ((g * dim + j) as f64 * 0.7129).sin();
        center + rng.gen_range(-0.3..0.3)
    });
    EmbeddingStore::new(m, PrivacyMeta::non_private(ModelVariant::Sgm)).unwrap()
}

fn assert_bitwise_eq(a: &[advsgm::store::Neighbor], b: &[advsgm::store::Neighbor], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: lengths differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.node, y.node, "{context}");
        assert_eq!(x.score.to_bits(), y.score.to_bits(), "{context}");
    }
}

#[test]
fn calibrated_recall_holds_on_a_clustered_store() {
    let store = clustered_store(4000, 16, 32, 11);
    let index = IvfIndex::build(&store, IndexParams::default()).unwrap();
    let k = 10;
    for target in [0.8, 0.9, 0.95] {
        let nprobe = index.nprobe_for(target);
        let mut hits = 0usize;
        let mut total = 0usize;
        let mut scanned = 0usize;
        // Out-of-calibration-sample queries: every 7th row.
        for u in (0..store.len()).step_by(7) {
            let exact: std::collections::HashSet<usize> =
                store.top_k(u, k).unwrap().iter().map(|n| n.node).collect();
            let got = index.search(&store, u, k, nprobe).unwrap();
            hits += got
                .neighbors
                .iter()
                .filter(|n| exact.contains(&n.node))
                .count();
            total += exact.len();
            scanned += got.rows_scanned;
        }
        let recall = hits as f64 / total as f64;
        assert!(
            recall >= target - 0.03,
            "target {target}: measured recall@{k} {recall:.4} (nprobe={nprobe})"
        );
        // Pruning is real, not vacuous: well under the full scan.
        let queries = (0..store.len()).step_by(7).count();
        let fraction = scanned as f64 / (queries * (store.len() - 1)) as f64;
        assert!(
            fraction < 0.6,
            "target {target}: scanned {:.1}% of rows",
            100.0 * fraction
        );
    }
}

#[test]
fn full_coverage_search_is_bitwise_identical_to_top_k() {
    // Rows include NaN, +inf, -inf, and exact duplicates (tie-break by
    // lower index) — the cases where "approximately equal" answers would
    // hide real ordering bugs.
    let mut m = DenseMatrix::from_fn(300, 6, |i, j| ((i * 13 + j * 5) as f64 * 0.37).sin());
    for j in 0..6 {
        m.set(17, j, f64::NAN);
        m.set(54, j, f64::INFINITY);
        m.set(55, j, f64::NEG_INFINITY);
        // Duplicate rows: 90 and 91 tie bitwise on every score.
        let v = m.get(90, j);
        m.set(91, j, v);
    }
    let store = EmbeddingStore::new(m, PrivacyMeta::non_private(ModelVariant::Sgm)).unwrap();
    let index = IvfIndex::build(&store, IndexParams::default()).unwrap();
    let nlist = index.nlist();
    for u in [0usize, 17, 54, 55, 90, 91, 299] {
        for k in [1usize, 5, 13] {
            let exact = store.top_k(u, k).unwrap();
            let got = index.search(&store, u, k, nlist).unwrap();
            assert_bitwise_eq(&got.neighbors, &exact, &format!("u={u} k={k}"));
            // nprobe above nlist is clamped, still exact.
            let over = index.search(&store, u, k, nlist + 100).unwrap();
            assert_bitwise_eq(&over.neighbors, &exact, &format!("u={u} k={k} over"));
        }
    }
}

#[test]
fn index_roundtrips_bitwise_through_disk() {
    let store = clustered_store(500, 8, 10, 3);
    let index = IvfIndex::build(&store, IndexParams::default()).unwrap();
    let path = std::env::temp_dir().join("advsgm_it_index.aidx");
    index.save(&path).unwrap();
    let back = IvfIndex::load(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    assert_eq!(back, index);
    // Same answers after the roundtrip, bit for bit.
    let nprobe = index.nprobe_for(0.9);
    for u in [0usize, 123, 499] {
        let a = index.search(&store, u, 7, nprobe).unwrap();
        let b = back.search(&store, u, 7, nprobe).unwrap();
        assert_eq!(a, b, "u={u}");
    }
}

#[test]
fn index_rejects_a_different_store() {
    let store = clustered_store(400, 8, 10, 3);
    let index = IvfIndex::build(&store, IndexParams::default()).unwrap();

    // Same shape, different contents: fingerprint mismatch.
    let other = clustered_store(400, 8, 10, 4);
    assert!(matches!(
        index.validate_for(&other),
        Err(StoreError::IndexStoreMismatch { .. })
    ));
    // Different shape: caught before fingerprinting.
    let smaller = clustered_store(200, 8, 10, 3);
    assert!(matches!(
        index.validate_for(&smaller),
        Err(StoreError::IndexStoreMismatch { .. })
    ));
    // Search against the wrong store fails at the shape gate too.
    assert!(index.search(&smaller, 0, 5, 1).is_err());
    // The original store validates clean.
    index.validate_for(&store).unwrap();
}

#[test]
fn corrupted_index_files_fail_with_typed_errors() {
    let store = clustered_store(300, 8, 10, 3);
    let index = IvfIndex::build(&store, IndexParams::default()).unwrap();
    let bytes = index.to_bytes();

    let mut magic = bytes.clone();
    magic[0..4].copy_from_slice(b"NOPE");
    assert!(matches!(
        IvfIndex::from_bytes(&magic),
        Err(StoreError::BadMagic { .. })
    ));

    let mut ver = bytes.clone();
    ver[4..6].copy_from_slice(&9u16.to_le_bytes());
    assert!(matches!(
        IvfIndex::from_bytes(&ver),
        Err(StoreError::UnsupportedVersion { found: 9, .. })
    ));

    // Cuts shorter than the magic can't even identify the format...
    assert!(matches!(
        IvfIndex::from_bytes(&bytes[..2]),
        Err(StoreError::BadMagic { .. })
    ));
    // ...everything past it reports truncation.
    for cut in [10usize, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            matches!(
                IvfIndex::from_bytes(&bytes[..cut]),
                Err(StoreError::Truncated { .. })
            ),
            "cut={cut}"
        );
    }

    let mut payload = bytes.clone();
    let mid = bytes.len() / 2;
    payload[mid] ^= 0x01;
    assert!(IvfIndex::from_bytes(&payload).is_err(), "mid-file bit flip");

    IvfIndex::from_bytes(&bytes).unwrap();
}

proptest! {
    #[test]
    fn full_coverage_equals_exact_on_arbitrary_stores(
        n in 2usize..120,
        dim in 1usize..6,
        seed in 0u64..500,
        k in 1usize..15,
    ) {
        let mut rng = seeded(seed);
        let m = DenseMatrix::from_fn(n, dim, |_, _| {
            // Occasional non-finite rows keep the always-scan path hot.
            match rng.gen_range(0..20) {
                0 => f64::NAN,
                1 => f64::INFINITY,
                _ => rng.gen_range(-4.0..4.0),
            }
        });
        let store = EmbeddingStore::new(
            m, PrivacyMeta::non_private(ModelVariant::Sgm),
        ).unwrap();
        let index = IvfIndex::build(&store, IndexParams::default()).unwrap();
        let u = seed as usize % n;
        let exact = store.top_k(u, k).unwrap();
        let got = index.search(&store, u, k, index.nlist()).unwrap();
        prop_assert_eq!(got.neighbors.len(), exact.len());
        for (x, y) in got.neighbors.iter().zip(&exact) {
            prop_assert_eq!(x.node, y.node);
            prop_assert_eq!(x.score.to_bits(), y.score.to_bits());
        }
    }

    #[test]
    fn every_index_byte_flip_is_detected(pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let store = clustered_store(60, 4, 6, 9);
        let index = IvfIndex::build(&store, IndexParams {
            nlist: 4, kmeans_iters: 2, sample_queries: 8, calibration_k: 3,
        }).unwrap();
        let mut bytes = index.to_bytes();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        prop_assert!(
            IvfIndex::from_bytes(&bytes).is_err(),
            "flip at byte {} bit {} was accepted", pos, bit
        );
    }
}
