//! Property-based tests over the workspace's public invariants.

use advsgm::eval::auc::auc_from_scores;
use advsgm::eval::clustering::metrics::mutual_information;
use advsgm::graph::partition::{link_prediction_split, sample_non_edges};
use advsgm::graph::{GraphBuilder, GraphError};
use advsgm::linalg::activations::{exp_clip, sigmoid, ConstrainedSigmoid};
use advsgm::linalg::vector;
use advsgm::privacy::subsampled::subsampled_gaussian_epsilon;
use advsgm::privacy::RdpAccountant;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn clip_l2_postcondition(mut xs in proptest::collection::vec(-100.0f64..100.0, 1..32),
                             c in 0.01f64..10.0) {
        let before = xs.clone();
        let factor = vector::clip_l2(&mut xs, c);
        // Postcondition: norm <= c, direction preserved.
        prop_assert!(vector::norm2(&xs) <= c * (1.0 + 1e-9));
        prop_assert!(factor > 0.0 && factor <= 1.0);
        for (a, b) in xs.iter().zip(&before) {
            prop_assert!((a - b * factor).abs() < 1e-9);
        }
    }

    #[test]
    fn sigmoid_bounds_and_symmetry(x in -500.0f64..500.0) {
        let s = sigmoid(x);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!((sigmoid(-x) - (1.0 - s)).abs() < 1e-9);
    }

    #[test]
    fn exp_clip_stays_in_extended_range(x in -1e6f64..1e6,
                                        a in 0.0001f64..1.0,
                                        width in 1.0f64..200.0) {
        let b = a + width;
        let v = exp_clip(x, Some(a), Some(b));
        // Corner overshoot is bounded by 1/(2c).
        let c_tanh = 2.0 / (2.0f64.exp() + 1.0);
        let over = c_tanh * (b - a) / 2.0;
        prop_assert!(v >= a - over - 1e-9, "v={v} below {a}-{over}");
        prop_assert!(v <= b + over + 1e-9, "v={v} above {b}+{over}");
    }

    #[test]
    fn constrained_sigmoid_monotone_pairs(x in -50.0f64..50.0, dx in 0.001f64..10.0) {
        let s = ConstrainedSigmoid::new(1e-5, 120.0);
        prop_assert!(s.eval(x + dx) >= s.eval(x) - 1e-12);
    }

    #[test]
    fn auc_stays_in_unit_interval(pos in proptest::collection::vec(-10.0f64..10.0, 1..64),
                                  neg in proptest::collection::vec(-10.0f64..10.0, 1..64)) {
        let auc = auc_from_scores(&pos, &neg).unwrap();
        prop_assert!((0.0..=1.0).contains(&auc));
        // Complement symmetry.
        let swapped = auc_from_scores(&neg, &pos).unwrap();
        prop_assert!((auc + swapped - 1.0).abs() < 1e-9);
    }

    #[test]
    fn auc_invariant_under_shift_and_positive_scale(
        pos in proptest::collection::vec(-5.0f64..5.0, 1..32),
        neg in proptest::collection::vec(-5.0f64..5.0, 1..32),
        shift in -10.0f64..10.0,
        scale in 0.1f64..10.0)
    {
        let a = auc_from_scores(&pos, &neg).unwrap();
        let tp: Vec<f64> = pos.iter().map(|x| x * scale + shift).collect();
        let tn: Vec<f64> = neg.iter().map(|x| x * scale + shift).collect();
        let b = auc_from_scores(&tp, &tn).unwrap();
        prop_assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn signed_sampler_is_seed_deterministic(
        seed in 0u64..10_000,
        batch in 1usize..40,
        k in 1usize..6,
    ) {
        // Two independently constructed sign-aware providers, same seed:
        // identical pairs, identical foe flags — and each flag agrees
        // with the graph's own polarity channel.
        use advsgm::core::sampler::BatchProvider;
        use advsgm::core::ModelVariant;
        use advsgm::graph::sampling::negative::NegativeDistribution;
        use advsgm::graph::generators::classic::karate_club;

        let base = karate_club();
        let signs: Vec<bool> = (0..base.num_edges()).map(|i| i % 3 == 0).collect();
        let g = advsgm::graph::Graph::from_parts_signed(
            base.num_nodes(), base.edges().to_vec(), Some(signs), None);

        let draw = |seed: u64| {
            let mut p = BatchProvider::new_for_variant(
                &g, batch, k, NegativeDistribution::Uniform, ModelVariant::SignedAdvSgm,
            ).unwrap();
            let mut rng = SmallRng::seed_from_u64(seed);
            p.sample_disc_iteration(&g, &mut rng).unwrap()
        };
        let (pos_a, neg_a) = draw(seed);
        let (pos_b, neg_b) = draw(seed);
        prop_assert_eq!(&pos_a.pairs, &pos_b.pairs);
        prop_assert_eq!(&pos_a.signs, &pos_b.signs);
        prop_assert_eq!(&neg_a.pairs, &neg_b.pairs);
        prop_assert_eq!(pos_a.signs.len(), pos_a.pairs.len());
        for (i, &(u, v)) in pos_a.pairs.iter().enumerate() {
            // The oriented pair is a real edge whose canonical form
            // carries exactly this polarity.
            let (lo, hi) = (u.min(v) as u32, u.max(v) as u32);
            let idx = g.edges().iter().position(|e| {
                let (a, b) = e.endpoints();
                (a.0, b.0) == (lo, hi)
            }).unwrap();
            prop_assert_eq!(g.edge_is_foe(idx), pos_a.signs[i]);
        }
    }

    #[test]
    fn mutual_information_nonnegative_and_symmetric(
        a in proptest::collection::vec(0usize..5, 2..64),
        b_seed in 0usize..5)
    {
        let b: Vec<usize> = a.iter().map(|&x| (x + b_seed) % 3).collect();
        let ab = mutual_information(&a, &b).unwrap();
        let ba = mutual_information(&b, &a).unwrap();
        prop_assert!(ab >= 0.0);
        prop_assert!((ab - ba).abs() < 1e-9);
    }

    #[test]
    fn subsampled_rdp_capped_and_monotone(gamma in 0.0f64..1.0,
                                          sigma in 0.5f64..10.0,
                                          alpha in 2usize..64) {
        let amp = subsampled_gaussian_epsilon(sigma, gamma, alpha).unwrap();
        let base = alpha as f64 / (2.0 * sigma * sigma);
        prop_assert!(amp >= 0.0);
        prop_assert!(amp <= base + 1e-9, "amplified {amp} exceeds base {base}");
        // Shrinking gamma can only help.
        let half = subsampled_gaussian_epsilon(sigma, gamma / 2.0, alpha).unwrap();
        prop_assert!(half <= amp + 1e-9);
    }

    #[test]
    fn graph_builder_invariants(edges in proptest::collection::vec((0usize..30, 0usize..30), 0..120)) {
        let mut b = GraphBuilder::new(30);
        b.add_edges(edges.clone()).unwrap();
        let g = b.build();
        g.check_invariants().unwrap();
        // Edge count <= non-self-loop input count; adjacency is symmetric.
        let non_loops = edges.iter().filter(|(a, b)| a != b).count();
        prop_assert!(g.num_edges() <= non_loops);
        for e in g.edges() {
            prop_assert!(g.has_edge(e.u(), e.v()));
            prop_assert!(g.has_edge(e.v(), e.u()));
        }
    }

    #[test]
    fn near_complete_graphs_never_hang_non_edge_sampling(
        n in 2usize..8,
        missing in proptest::collection::vec((0usize..8, 0usize..8), 0..3),
        extra in 1usize..4)
    {
        // A complete graph minus at most two pairs: rejection sampling has
        // almost nothing left to find. Asking for more non-edges than exist
        // must return the typed error instead of spinning forever.
        let mut b = GraphBuilder::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                if missing.contains(&(u, v)) {
                    continue;
                }
                b.add_edge(u, v).unwrap();
            }
        }
        let g = b.build();
        let free = n * (n - 1) / 2 - g.num_edges();
        let mut rng = SmallRng::seed_from_u64(5);
        match sample_non_edges(&g, free + extra, &mut rng) {
            Err(GraphError::InvalidParameter { .. }) => {}
            Err(other) => prop_assert!(false, "wrong error type: {other}"),
            Ok(found) => prop_assert!(false, "found {} non-edges, only {free} exist", found.len()),
        }
        // Asking for exactly what exists still succeeds, and every sample
        // really is a non-edge.
        if free > 0 {
            let got = sample_non_edges(&g, free, &mut rng).unwrap();
            prop_assert_eq!(got.len(), free);
            for e in &got {
                prop_assert!(!g.has_edge(e.u(), e.v()));
            }
        }
    }

    #[test]
    fn link_prediction_split_is_seed_deterministic(
        edges in proptest::collection::vec((0usize..25, 0usize..25), 30..120),
        seed in 0u64..1_000_000,
        frac in 0.05f64..0.5)
    {
        let mut b = GraphBuilder::new(25);
        b.add_edges(edges).unwrap();
        let g = b.build();
        if g.num_edges() < 10 {
            return;
        }
        let a = link_prediction_split(&g, frac, &mut SmallRng::seed_from_u64(seed)).unwrap();
        let b = link_prediction_split(&g, frac, &mut SmallRng::seed_from_u64(seed)).unwrap();
        prop_assert_eq!(a.test_pos, b.test_pos);
        prop_assert_eq!(a.test_neg, b.test_neg);
        prop_assert_eq!(a.train_neg, b.train_neg);
        prop_assert_eq!(a.train.edges(), b.train.edges());
    }

    #[test]
    fn accountant_epsilon_monotone_in_steps_and_sigma(
        sigma in 1.0f64..10.0,
        gamma in 0.001f64..0.5,
        steps in 1u64..500,
        more in 1u64..500)
    {
        // epsilon_at is non-decreasing in the step count T ...
        let mut acc = RdpAccountant::new();
        acc.record_subsampled_gaussian(sigma, gamma, steps).unwrap();
        let eps_t = acc.epsilon_at(1e-5).unwrap();
        acc.record_subsampled_gaussian(sigma, gamma, more).unwrap();
        let eps_more = acc.epsilon_at(1e-5).unwrap();
        prop_assert!(eps_more >= eps_t - 1e-12, "T: {eps_t} -> {eps_more}");
        // ... and non-increasing in the noise multiplier sigma.
        let mut louder = RdpAccountant::new();
        louder.record_subsampled_gaussian(sigma * 1.5, gamma, steps).unwrap();
        let eps_louder = louder.epsilon_at(1e-5).unwrap();
        prop_assert!(eps_louder <= eps_t + 1e-12, "sigma: {eps_t} -> {eps_louder}");
    }

    #[test]
    fn degree_sum_is_twice_edges(edges in proptest::collection::vec((0usize..20, 0usize..20), 0..80)) {
        let mut b = GraphBuilder::new(20);
        b.add_edges(edges).unwrap();
        let g = b.build();
        let degree_sum: usize = (0..20)
            .map(|i| g.degree(advsgm::graph::NodeId::from_index(i)))
            .sum();
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
    }
}
