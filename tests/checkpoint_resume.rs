//! The session layer's headline contract (DESIGN.md §10, ISSUE 4):
//! **resume-after-interrupt is bitwise-identical to an uninterrupted
//! run, at 1 and N threads** — for interrupts at the first epoch, a
//! middle epoch, and the last epoch, through the full on-disk `.actk`
//! serialisation path, including the reported `epsilon`/`delta` spend.

use advsgm::core::session::{CheckpointState, EpochEvent, SessionControl, TrainHooks};
use advsgm::core::{AdvSgmConfig, CoreError, ModelVariant, ShardedTrainer, Trainer};
use advsgm::graph::generators::classic::karate_club;
use advsgm::graph::Graph;
use advsgm::store::{decode_checkpoint, encode_checkpoint, StoreError};

/// Simulates a crash: captures a checkpoint after `at` completed epochs
/// and stops the session right there.
struct InterruptAt {
    at: usize,
    taken: Option<CheckpointState>,
}

impl InterruptAt {
    fn new(at: usize) -> Self {
        Self { at, taken: None }
    }
}

impl TrainHooks for InterruptAt {
    fn on_epoch(&mut self, event: &EpochEvent) -> SessionControl {
        if event.epoch + 1 >= self.at {
            SessionControl::Stop
        } else {
            SessionControl::Continue
        }
    }

    fn wants_checkpoint(&mut self, epochs_done: usize) -> bool {
        epochs_done == self.at
    }

    fn on_checkpoint(&mut self, state: &CheckpointState) -> SessionControl {
        self.taken = Some(state.clone());
        SessionControl::Continue
    }
}

fn bits(m: &advsgm::linalg::DenseMatrix) -> Vec<u64> {
    m.as_slice().iter().map(|x| x.to_bits()).collect()
}

fn fbits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

fn test_cfg(threads: usize) -> AdvSgmConfig {
    let mut cfg = AdvSgmConfig::test_small(ModelVariant::AdvSgm).with_threads(threads);
    cfg.epochs = 5;
    cfg.seed = 11;
    cfg
}

/// Trains uninterrupted; then, for each interrupt epoch, trains a run
/// that stops at that epoch, serialises the captured checkpoint through
/// the `.actk` wire format, resumes it, and demands a bitwise-identical
/// outcome.
fn assert_resume_is_bitwise_exact(threads: usize) {
    let g = karate_club();
    let cfg = test_cfg(threads);
    let epochs = cfg.epochs;
    let full = ShardedTrainer::fit(&g, cfg.clone()).unwrap();
    assert_eq!(full.epochs_run, epochs, "fixture must run every epoch");

    // k = 1 (first), mid, and the last epoch.
    for k in [1usize, epochs / 2 + 1, epochs] {
        let mut hook = InterruptAt::new(k);
        let partial = ShardedTrainer::new(&g, cfg.clone())
            .unwrap()
            .train_with_hooks(&g, &mut hook)
            .unwrap();
        assert_eq!(partial.epochs_run, k, "threads={threads} k={k}: interrupt");
        let state = hook.taken.expect("checkpoint captured");
        assert_eq!(state.epochs_done, k as u64);

        // Through the on-disk format: the persisted bytes, not the live
        // struct, must carry the full contract.
        let wire = encode_checkpoint(&state).unwrap();
        let restored = decode_checkpoint(&wire).unwrap();
        let resumed = ShardedTrainer::resume(&g, &restored)
            .unwrap()
            .train(&g)
            .unwrap();

        let tag = format!("threads={threads} k={k}");
        assert_eq!(
            bits(&full.node_vectors),
            bits(&resumed.node_vectors),
            "{tag}: node vectors"
        );
        assert_eq!(
            bits(&full.context_vectors),
            bits(&resumed.context_vectors),
            "{tag}: context vectors"
        );
        assert_eq!(
            fbits(&full.epoch_losses),
            fbits(&resumed.epoch_losses),
            "{tag}: epoch losses"
        );
        assert_eq!(full.epochs_run, resumed.epochs_run, "{tag}");
        assert_eq!(full.disc_updates, resumed.disc_updates, "{tag}");
        assert_eq!(full.stopped_by_budget, resumed.stopped_by_budget, "{tag}");
        assert_eq!(
            full.epsilon_spent.map(f64::to_bits),
            resumed.epsilon_spent.map(f64::to_bits),
            "{tag}: epsilon_spent"
        );
        assert_eq!(
            full.delta_spent.map(f64::to_bits),
            resumed.delta_spent.map(f64::to_bits),
            "{tag}: delta_spent"
        );
    }
}

#[test]
fn resume_is_bitwise_exact_at_one_thread() {
    assert_resume_is_bitwise_exact(1);
}

#[test]
fn resume_is_bitwise_exact_at_four_threads() {
    assert_resume_is_bitwise_exact(4);
}

#[test]
fn resume_reproduces_a_budget_stop_exactly() {
    // A run that exhausts its budget mid-schedule: resuming from an
    // earlier checkpoint must stop at the same update with the same
    // spend, bit for bit.
    let g = karate_club();
    let mut cfg = AdvSgmConfig::test_small(ModelVariant::AdvSgm);
    cfg.epochs = 50;
    // Short epochs with the paper's sigma: epoch 1 completes (one
    // checkpointable boundary) and the budget trips mid-epoch 2.
    cfg.disc_iters = 2;
    cfg.sigma = 5.0;
    cfg.epsilon = 2.0;
    let full = Trainer::fit(&g, cfg.clone()).unwrap();
    assert!(full.stopped_by_budget, "fixture must exhaust its budget");
    assert!(
        full.epochs_run >= 1,
        "need at least one boundary to resume from"
    );

    let mut hook = InterruptAt::new(1);
    Trainer::new(&g, cfg)
        .unwrap()
        .run_with_hooks(&g, &mut hook)
        .unwrap();
    let state = hook.taken.expect("checkpoint captured");
    let resumed = Trainer::resume(&g, &state).unwrap().run(&g).unwrap();
    assert!(resumed.stopped_by_budget);
    assert_eq!(full.disc_updates, resumed.disc_updates);
    assert_eq!(full.epochs_run, resumed.epochs_run);
    assert_eq!(bits(&full.node_vectors), bits(&resumed.node_vectors));
    assert_eq!(
        full.delta_spent.map(f64::to_bits),
        resumed.delta_spent.map(f64::to_bits)
    );
}

#[test]
fn sequential_and_sharded_checkpoints_resume_on_their_own_engine() {
    let g = karate_club();
    let mut hook = InterruptAt::new(1);
    ShardedTrainer::new(&g, test_cfg(4))
        .unwrap()
        .train_with_hooks(&g, &mut hook)
        .unwrap();
    let sharded_state = hook.taken.unwrap();
    assert_eq!(sharded_state.config.num_threads, 4, "resolved width pinned");
    // A sharded checkpoint cannot be resumed by the sequential facade...
    let err = Trainer::resume(&g, &sharded_state)
        .err()
        .expect("must fail");
    assert!(matches!(err, CoreError::Checkpoint { .. }), "{err}");
    // ...but dispatches correctly through ShardedTrainer::resume.
    assert_eq!(
        ShardedTrainer::resume(&g, &sharded_state)
            .unwrap()
            .threads(),
        4
    );

    let mut hook = InterruptAt::new(1);
    Trainer::new(&g, test_cfg(0))
        .unwrap()
        .run_with_hooks(&g, &mut hook)
        .unwrap();
    let seq_state = hook.taken.unwrap();
    // A sequential checkpoint resumes sequentially even through the
    // sharded facade (the engine is pinned, not re-resolved).
    assert_eq!(ShardedTrainer::resume(&g, &seq_state).unwrap().threads(), 1);
}

#[test]
fn resume_rejects_the_wrong_graph() {
    let g = karate_club();
    let mut hook = InterruptAt::new(1);
    Trainer::new(&g, test_cfg(0))
        .unwrap()
        .run_with_hooks(&g, &mut hook)
        .unwrap();
    let state = hook.taken.unwrap();

    // Different size: rejected on the counts.
    let smaller = Graph::from_parts(g.num_nodes(), g.edges()[..g.num_edges() - 1].to_vec(), None);
    let err = Trainer::resume(&smaller, &state).err().expect("must fail");
    assert!(matches!(err, CoreError::Checkpoint { .. }), "{err}");

    // Same size, different edges: rejected on the fingerprint.
    let mut edges = g.edges().to_vec();
    edges.swap(0, 1);
    let reordered = Graph::from_parts(g.num_nodes(), edges, None);
    let err = Trainer::resume(&reordered, &state)
        .err()
        .expect("must fail");
    assert!(
        err.to_string().contains("fingerprint"),
        "expected fingerprint rejection, got: {err}"
    );
}

#[test]
fn wire_corruption_is_typed_never_a_panic() {
    let g = karate_club();
    let mut hook = InterruptAt::new(2);
    ShardedTrainer::new(&g, test_cfg(2))
        .unwrap()
        .train_with_hooks(&g, &mut hook)
        .unwrap();
    let bytes = encode_checkpoint(&hook.taken.unwrap()).unwrap();

    // Every single-byte truncation decodes to a typed error.
    for cut in (0..bytes.len()).step_by(997).chain([bytes.len() - 1]) {
        let err = decode_checkpoint(&bytes[..cut]).unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::Truncated { .. }
                    | StoreError::BadMagic { .. }
                    | StoreError::ChecksumMismatch { .. }
            ),
            "cut={cut}: {err}"
        );
    }
    // A flipped payload bit is caught by the checksum.
    let mut flipped = bytes.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x01;
    assert!(matches!(
        decode_checkpoint(&flipped).unwrap_err(),
        StoreError::ChecksumMismatch { .. }
    ));
}

#[test]
fn extending_epochs_on_resume_matches_a_longer_run() {
    // The CLI's `--resume --epochs N` path: a 2-epoch run extended to 5
    // must land exactly where an uninterrupted 5-epoch run does (batch
    // draws never depend on the configured total).
    let g = karate_club();
    for threads in [1usize, 4] {
        let mut short_cfg = test_cfg(threads);
        short_cfg.epochs = 2;
        let mut long_cfg = test_cfg(threads);
        long_cfg.epochs = 5;

        let mut hook = InterruptAt::new(2);
        ShardedTrainer::new(&g, short_cfg)
            .unwrap()
            .train_with_hooks(&g, &mut hook)
            .unwrap();
        let mut state = hook.taken.unwrap();
        state.config.epochs = 5;

        let extended = ShardedTrainer::resume(&g, &state)
            .unwrap()
            .train(&g)
            .unwrap();
        let full = ShardedTrainer::fit(&g, long_cfg).unwrap();
        assert_eq!(
            bits(&full.node_vectors),
            bits(&extended.node_vectors),
            "threads={threads}"
        );
        assert_eq!(
            full.epsilon_spent.map(f64::to_bits),
            extended.epsilon_spent.map(f64::to_bits)
        );
    }
}
