//! The `.agph` disk-resident graph format (docs/FORMAT.md, DESIGN.md
//! §14): exact roundtrips for awkward graphs (isolated nodes, maximum-
//! degree hubs, bucket counts past the node count), streaming reads that
//! match the one-shot decoder, and the corruption taxonomy — every
//! single-byte flip detected, truncation at every section boundary (and
//! every byte) typed, unknown versions and flags rejected — never a
//! panic.

use std::collections::BTreeSet;

use advsgm::graph::{Edge, Graph};
use advsgm::linalg::rng::seeded;
use advsgm::store::{
    agph::AGPH_FIXED_HEADER_LEN, decode_agph, encode_agph, format::crc32, load_agph, save_agph,
    AgphReader, StoreError,
};
use proptest::prelude::*;
use rand::Rng;

fn edge_set(g: &Graph) -> BTreeSet<(u32, u32)> {
    g.edges()
        .iter()
        .map(|e| {
            let (u, v) = e.endpoints();
            (u.0, v.0)
        })
        .collect()
}

fn assert_roundtrip(g: &Graph, buckets: usize) {
    let bytes = encode_agph(g, buckets).unwrap();
    let back = decode_agph(&bytes).unwrap();
    assert_eq!(back.num_nodes(), g.num_nodes(), "buckets={buckets}");
    assert_eq!(back.num_edges(), g.num_edges(), "buckets={buckets}");
    assert_eq!(edge_set(&back), edge_set(g), "buckets={buckets}");
}

/// A hub graph: node 0 touches every other node (maximum degree), the
/// worst case for a single bucket section.
fn hub_graph(n: usize) -> Graph {
    let edges: Vec<Edge> = (1..n).map(|v| Edge::from_raw(0, v as u32)).collect();
    Graph::from_parts(n, edges, None)
}

/// Mostly-isolated nodes: 50 nodes, edges only among the first 5, so
/// most bucket sections are empty.
fn sparse_graph() -> Graph {
    let edges = vec![
        Edge::from_raw(0, 1),
        Edge::from_raw(0, 2),
        Edge::from_raw(1, 3),
        Edge::from_raw(2, 4),
    ];
    Graph::from_parts(50, edges, None)
}

#[test]
fn awkward_graphs_roundtrip_at_every_bucket_count() {
    for buckets in [1usize, 2, 3, 7, 64, 1000] {
        // More buckets than nodes, empty sections, hub sections: all legal.
        assert_roundtrip(&sparse_graph(), buckets);
        assert_roundtrip(&hub_graph(33), buckets);
        assert_roundtrip(
            &Graph::from_parts(2, vec![Edge::from_raw(0, 1)], None),
            buckets,
        );
    }
}

#[test]
fn streaming_reader_matches_the_one_shot_decoder() {
    let g = hub_graph(40);
    let dir = std::env::temp_dir().join("advsgm_agph_format_stream");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("hub.agph");
    save_agph(&path, &g, 5).unwrap();

    let whole = load_agph(&path).unwrap();
    assert_eq!(edge_set(&whole), edge_set(&g));

    // One bucket's edges at a time, never the whole edge array.
    let mut reader = AgphReader::open(&path).unwrap();
    assert_eq!(reader.num_nodes(), g.num_nodes());
    assert_eq!(reader.num_edges(), g.num_edges());
    assert_eq!(reader.bucket_count(), 5);
    let mut streamed = BTreeSet::new();
    let mut total = 0usize;
    for b in 0..reader.bucket_count() {
        let edges = reader.bucket_edges(b).unwrap();
        assert_eq!(edges.len(), reader.bucket_edge_count(b).unwrap());
        total += edges.len();
        for e in edges {
            let (u, v) = e.endpoints();
            streamed.insert((u.0, v.0));
        }
    }
    assert_eq!(total, g.num_edges());
    assert_eq!(streamed, edge_set(&g));
    reader.verify_fingerprint().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncation_at_every_byte_is_typed_never_a_panic() {
    // Small enough to cut at *every* length — which subsumes every
    // section boundary: the fixed header's field edges, the section
    // table, the header CRC, and each per-bucket edge section.
    let g = sparse_graph();
    let bytes = encode_agph(&g, 4).unwrap();
    assert!(bytes.len() > AGPH_FIXED_HEADER_LEN + 4 * 12 + 4);
    for cut in 0..bytes.len() {
        let err = decode_agph(&bytes[..cut]).unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::Truncated { .. }
                    | StoreError::BadMagic { .. }
                    | StoreError::ChecksumMismatch { .. }
                    | StoreError::UnsupportedVersion { .. }
            ),
            "cut={cut}: {err}"
        );
    }
}

#[test]
fn unknown_version_and_flags_are_typed_rejections() {
    let g = sparse_graph();
    let good = encode_agph(&g, 2).unwrap();

    // A future version must be refused before anything else is trusted.
    let mut ver = good.clone();
    ver[4..6].copy_from_slice(&9u16.to_le_bytes());
    assert!(matches!(
        decode_agph(&ver),
        Err(StoreError::UnsupportedVersion { found: 9, .. })
    ));

    // Unknown flag bits: reserved for the append-only format family, so
    // a reader that does not understand them must reject, not ignore —
    // even when the header CRC is made to agree (a future writer, not
    // corruption). Bit 0 is the SIGNED flag now; bit 1 is still reserved.
    let mut flags = good.clone();
    flags[6] |= 0x02;
    let table = flags.len().min(AGPH_FIXED_HEADER_LEN + 2 * 12);
    let sum = crc32(&flags[..table]);
    flags[table..table + 4].copy_from_slice(&sum.to_le_bytes());
    let err = decode_agph(&flags).unwrap_err();
    assert!(
        err.to_string().contains("unknown flag"),
        "expected unknown-flag rejection, got: {err}"
    );
    // Without the CRC patch the checksum catches it first — still typed.
    let mut noisy = good.clone();
    noisy[6] |= 0x02;
    assert!(decode_agph(&noisy).is_err(), "unknown flags accepted");

    // A zero bucket count cannot describe any section table.
    let mut zero_p = good;
    zero_p[24..28].copy_from_slice(&0u32.to_le_bytes());
    assert!(decode_agph(&zero_p).is_err(), "P=0 accepted");
}

#[test]
fn empty_and_mismatched_inputs_are_errors() {
    assert!(decode_agph(&[]).is_err());
    assert!(decode_agph(b"AGPH").is_err());
    // An .aemb payload handed to the graph decoder: wrong magic, typed.
    assert!(matches!(
        decode_agph(b"AEMBxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"),
        Err(StoreError::BadMagic { .. })
    ));
    // encode rejects a zero bucket request up front.
    assert!(encode_agph(&sparse_graph(), 0).is_err());
}

/// A signed variant of the sparse fixture: alternating friend/foe edges.
fn signed_sparse_graph() -> Graph {
    let g = sparse_graph();
    let signs: Vec<bool> = (0..g.num_edges()).map(|i| i % 2 == 1).collect();
    Graph::from_parts_signed(g.num_nodes(), g.edges().to_vec(), Some(signs), None)
}

#[test]
fn signed_files_roundtrip_through_disk_and_streaming() {
    let g = signed_sparse_graph();
    let dir = std::env::temp_dir().join("advsgm_agph_format_signed");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("signed.agph");
    save_agph(&path, &g, 4).unwrap();

    // One-shot: the polarity channel survives the disk.
    let back = load_agph(&path).unwrap();
    assert!(back.is_signed());
    assert_eq!(back.num_foe_edges(), g.num_foe_edges());
    assert_eq!(edge_set(&back), edge_set(&g));

    // Streaming: the reader reports the flag and serves per-bucket signs
    // whose total foe count matches, without materialising the graph.
    let mut reader = AgphReader::open(&path).unwrap();
    assert!(reader.is_signed());
    let mut foes = 0usize;
    for b in 0..reader.bucket_count() {
        let signs = reader.bucket_signs(b).unwrap().expect("signed file");
        assert_eq!(signs.len(), reader.bucket_edge_count(b).unwrap());
        foes += signs.iter().filter(|&&s| s).count();
    }
    assert_eq!(foes, g.num_foe_edges());
    reader.verify_fingerprint().unwrap();

    // An unsigned reader contract: unsigned files answer None.
    let upath = dir.join("unsigned.agph");
    save_agph(&upath, &sparse_graph(), 4).unwrap();
    let mut ureader = AgphReader::open(&upath).unwrap();
    assert!(!ureader.is_signed());
    assert!(ureader.bucket_signs(0).unwrap().is_none());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn signed_truncation_at_every_byte_is_typed_never_a_panic() {
    // The sign region extends the file; every cut — including mid-bitmap
    // and mid-sign-CRC — must surface as a typed error.
    let bytes = encode_agph(&signed_sparse_graph(), 3).unwrap();
    for cut in 0..bytes.len() {
        let err = decode_agph(&bytes[..cut]).unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::Truncated { .. }
                    | StoreError::BadMagic { .. }
                    | StoreError::ChecksumMismatch { .. }
                    | StoreError::UnsupportedVersion { .. }
            ),
            "cut={cut}: {err}"
        );
    }
    // Trailing garbage after the sign region is rejected too.
    let mut padded = bytes;
    padded.push(0);
    assert!(decode_agph(&padded).is_err(), "trailing byte accepted");
}

proptest! {
    #[test]
    fn every_single_byte_flip_in_a_signed_file_is_detected(
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        // The sign bitmaps and their CRCs are covered like everything
        // else: no byte of a signed file can flip silently.
        let mut bytes = encode_agph(&signed_sparse_graph(), 3).unwrap();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        prop_assert!(
            decode_agph(&bytes).is_err(),
            "flip at byte {} bit {} was accepted", pos, bit
        );
    }
}

proptest! {
    #[test]
    fn arbitrary_graphs_roundtrip_exactly(
        num_nodes in 2usize..120,
        target_edges in 1usize..200,
        buckets in 1usize..12,
        seed in 0u64..500,
    ) {
        let mut rng = seeded(seed);
        let mut set = BTreeSet::new();
        for _ in 0..target_edges {
            let a = rng.gen_range(0..num_nodes) as u32;
            let b = rng.gen_range(0..num_nodes) as u32;
            if a != b {
                set.insert((a.min(b), a.max(b)));
            }
        }
        // Guarantee at least one edge (num_nodes >= 2 makes (0,1) legal).
        set.insert((0, 1));
        let edges: Vec<Edge> = set.iter().map(|&(u, v)| Edge::from_raw(u, v)).collect();
        let g = Graph::from_parts(num_nodes, edges, None);
        let bytes = encode_agph(&g, buckets).unwrap();
        let back = decode_agph(&bytes).unwrap();
        prop_assert_eq!(back.num_nodes(), g.num_nodes());
        prop_assert_eq!(edge_set(&back), edge_set(&g));

        // The same topology with an arbitrary polarity stamp: the
        // (edge, sign) pairing survives bucketing exactly.
        let signs: Vec<bool> = (0..g.num_edges()).map(|i| seed.wrapping_shr(i as u32 % 64) & 1 == 1).collect();
        let sg = Graph::from_parts_signed(g.num_nodes(), g.edges().to_vec(), Some(signs.clone()), None);
        let sback = decode_agph(&encode_agph(&sg, buckets).unwrap()).unwrap();
        prop_assert!(sback.is_signed());
        prop_assert_eq!(sback.num_foe_edges(), sg.num_foe_edges());
        let mut want: Vec<((u32, u32), bool)> = sg.edges().iter().enumerate()
            .map(|(i, e)| { let (u, v) = e.endpoints(); ((u.0, v.0), signs[i]) }).collect();
        let mut got: Vec<((u32, u32), bool)> = sback.edges().iter().enumerate()
            .map(|(i, e)| { let (u, v) = e.endpoints(); ((u.0, v.0), sback.edge_is_foe(i)) }).collect();
        want.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn every_single_byte_flip_is_detected(pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        // Every byte of the file is covered by the header CRC, a section
        // CRC, or a validated field — a flipped bit anywhere must surface
        // as a typed error, never silently altered edges.
        let bytes = encode_agph(&sparse_graph(), 3).unwrap();
        let mut bytes = bytes;
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        prop_assert!(
            decode_agph(&bytes).is_err(),
            "flip at byte {} bit {} was accepted", pos, bit
        );
    }
}
