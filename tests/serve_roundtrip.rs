//! End-to-end test of the serving front-end (DESIGN.md §12): a real
//! `Server` on an ephemeral TCP port, queried over the wire with
//! `ServeClient`, answers bitwise-identically to a local exact scan —
//! and a malformed peer cannot take the server down.

use std::io::{Read, Write};
use std::net::TcpStream;

use advsgm::api::EmbeddingService;
use advsgm::core::ModelVariant;
use advsgm::linalg::rng::seeded;
use advsgm::linalg::DenseMatrix;
use advsgm::serve::client::ServeClient;
use advsgm::serve::{ServeConfig, Server};
use advsgm::store::{EmbeddingStore, IndexParams, PrivacyMeta};
use rand::Rng;

fn fixture_store(n: usize, dim: usize) -> EmbeddingStore {
    let mut rng = seeded(29);
    let m = DenseMatrix::from_fn(n, dim, |i, j| {
        let g = i % 8;
        3.0 * ((g * dim + j) as f64 * 0.7129).sin() + rng.gen_range(-0.3..0.3)
    });
    EmbeddingStore::new(
        m,
        PrivacyMeta::private(ModelVariant::AdvSgm, 6.0, 1e-5, 5.0),
    )
    .unwrap()
}

#[test]
fn wire_answers_match_local_service_bitwise() {
    let store = fixture_store(600, 12);
    let local = EmbeddingService::from_store(store.clone());
    let mut service = EmbeddingService::from_store(store);
    service.build_index(IndexParams::default()).unwrap();

    let server = Server::bind(service, "127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.local_addr();
    let mut client = ServeClient::connect(addr).unwrap();
    client.ping().unwrap();

    for u in [0u64, 7, 300, 599] {
        // Exact top-k over the wire vs the local scan.
        let wire = client.top_k(u, 9).unwrap();
        let here = local.top_k(u as usize, 9).unwrap();
        assert_eq!(wire.len(), here.len(), "u={u}");
        for (w, h) in wire.iter().zip(&here) {
            assert_eq!(w.node, h.node, "u={u}");
            assert_eq!(w.score.to_bits(), h.score.to_bits(), "u={u}");
        }
        // Scores too.
        let s = client.score(u, (u + 1) % 600).unwrap();
        let l = local.score(u as usize, (u as usize + 1) % 600).unwrap();
        assert_eq!(s.to_bits(), l.to_bits(), "u={u}");
    }

    // Approximate serving over the wire: right count, plausible answers
    // (recall vs exact asserted precisely in tests/index_serving.rs).
    let approx = client.top_k_approx(42, 10, 0.95).unwrap();
    assert_eq!(approx.len(), 10);
    let exact: std::collections::HashSet<u64> = local
        .top_k(42, 10)
        .unwrap()
        .iter()
        .map(|n| n.node as u64)
        .collect();
    let hits = approx
        .iter()
        .filter(|n| exact.contains(&(n.node as u64)))
        .count();
    assert!(hits >= 8, "recall over the wire collapsed: {hits}/10");

    // Server-side errors come back as typed error responses, not hangups.
    assert!(client.top_k(600, 5).is_err());
    client.ping().unwrap(); // connection still healthy

    client.shutdown().unwrap();
    let stats = server.wait();
    assert!(stats.requests >= 10, "stats: {stats:?}");
}

#[test]
fn garbage_frames_do_not_kill_the_server() {
    let service = EmbeddingService::from_store(fixture_store(100, 6));
    let server = Server::bind(service, "127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.local_addr();

    // A peer speaking gibberish: valid frame, bogus opcode.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(&3u32.to_le_bytes()).unwrap();
    raw.write_all(&[0xEE, 0x01, 0x02]).unwrap();
    let mut len = [0u8; 4];
    raw.read_exact(&mut len).unwrap();
    let mut body = vec![0u8; u32::from_le_bytes(len) as usize];
    raw.read_exact(&mut body).unwrap();
    assert_eq!(body[0], 1, "garbage must get an ERR status, got {body:?}");

    // An unframeable peer (oversized length prefix) just gets dropped...
    let mut flood = TcpStream::connect(addr).unwrap();
    flood.write_all(&u32::MAX.to_le_bytes()).unwrap();
    drop(flood);

    // ...while real clients keep getting served.
    let mut client = ServeClient::connect(addr).unwrap();
    let got = client.top_k(3, 5).unwrap();
    assert_eq!(got.len(), 5);
    client.shutdown().unwrap();
    let stats = server.wait();
    assert!(stats.requests >= 1);
}

// ---- protocol fuzz: arbitrary bytes must never panic the decoders ----

use advsgm::serve::protocol::{Request, Response, MAX_K, OP_PING, OP_SCORE, OP_SHUTDOWN, OP_TOP_K};
use proptest::prelude::*;

proptest! {
    #[test]
    fn request_decoder_never_panics_and_ok_is_canonical(
        payload in proptest::collection::vec(0u8..=255, 0..64))
    {
        // Decoding is total: any byte string yields Ok or a typed reason,
        // never a panic — and an accepted payload is exactly the encoding
        // of the request it parsed to (the wire format has no slack).
        match Request::decode(&payload) {
            Ok(req) => prop_assert_eq!(req.encode(), payload),
            Err(reason) => prop_assert!(!reason.is_empty()),
        }
    }

    #[test]
    fn malformed_but_framed_requests_get_typed_errors(
        which in 0usize..4,
        body in proptest::collection::vec(0u8..=255, 0..40))
    {
        // A known opcode with a wrong-sized body is the malformed-but-
        // framed case the server answers with Response::Error: it must be
        // an Err naming the problem, not a panic or a bogus Ok.
        let op = [OP_PING, OP_TOP_K, OP_SCORE, OP_SHUTDOWN][which];
        let wrong_size = match op {
            OP_TOP_K => body.len() != 21,
            OP_SCORE => body.len() != 16,
            _ => !body.is_empty(),
        };
        let mut payload = vec![op];
        payload.extend_from_slice(&body);
        let decoded = Request::decode(&payload);
        if wrong_size {
            let reason = decoded.unwrap_err();
            prop_assert!(!reason.is_empty());
        }
    }

    #[test]
    fn response_decoder_never_panics(
        op in 0u8..=255,
        payload in proptest::collection::vec(0u8..=255, 0..96))
    {
        match Response::decode(op, &payload) {
            Ok(_) => {}
            Err(reason) => prop_assert!(!reason.is_empty()),
        }
    }

    #[test]
    fn request_roundtrips_through_the_wire_format(
        node in 0u64..=u64::MAX,
        k in 0u32..=MAX_K as u32,
        approx_bit in 0u8..2,
        recall in 0.0f64..=1.0,
        u in 0u64..=u64::MAX,
        v in 0u64..=u64::MAX)
    {
        for req in [
            Request::Ping,
            Request::Shutdown,
            Request::TopK { node, k, approx: approx_bit == 1, recall_target: recall },
            Request::Score { u, v },
        ] {
            prop_assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
    }
}
