//! Acceptance tests for the workload variants behind the variants seam
//! (DESIGN.md §16): signed-graph training (`Signed-AdvSGM`) and
//! structure-preference weighting (`SP-AdvSGM`).
//!
//! Four contracts:
//!
//! 1. **Golden regression** — the five pre-seam variants release bytes
//!    bitwise-identical to the committed `tests/golden/*.aemb` files at 1
//!    and 4 threads (the seam's uniform path changed *nothing*);
//! 2. **Engine invariance** — both new variants obey the same trinity as
//!    the paper variants: sequential == sharded@1 bitwise, sharded@N
//!    run-to-run deterministic, partitioned == sequential bitwise;
//! 3. **Checkpoint/resume** — interrupt + `.actk` roundtrip + resume is
//!    bitwise-identical to an uninterrupted run for both new variants;
//! 4. **Workload signal** — on a planted-polarity graph, `Signed-AdvSGM`
//!    separates friend from foe edges (sign AUC) while the sign-blind
//!    `AdvSGM` cannot, and the released `.aemb` carries the new wire codes.

use advsgm::api::PipelineBuilder;
use advsgm::core::session::{CheckpointState, EpochEvent, SessionControl, TrainHooks};
use advsgm::core::{AdvSgmConfig, ModelVariant, PartitionedTrainer, ShardedTrainer, Trainer};
use advsgm::eval::evaluate_sign_split;
use advsgm::graph::generators::classic::karate_club;
use advsgm::graph::generators::sbm::SbmConfig;
use advsgm::graph::generators::signed::{signed_sbm, SignedSbmConfig};
use advsgm::graph::partition::sign_prediction_split;
use advsgm::graph::Graph;
use advsgm::store::{decode_checkpoint, encode_checkpoint, EmbeddingStore};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bits(m: &advsgm::linalg::DenseMatrix) -> Vec<u64> {
    m.as_slice().iter().map(|x| x.to_bits()).collect()
}

/// A signed planted-polarity graph: two blocks, intra-block friends,
/// inter-block foes, no flip noise.
fn planted_polarity() -> Graph {
    signed_sbm(
        &SignedSbmConfig {
            base: SbmConfig {
                num_nodes: 120,
                num_edges: 600,
                num_blocks: 2,
                mixing: 0.4,
                degree_exponent: 2.5,
            },
            flip_probability: 0.0,
        },
        &mut SmallRng::seed_from_u64(3),
    )
}

// ---------------------------------------------------------------------------
// 1. Golden regression: the pre-seam variants are bitwise-unchanged.
// ---------------------------------------------------------------------------

/// The five pre-seam variants must produce release bytes identical to the
/// `.aemb` files committed before the variants seam landed — at one thread
/// (sequential engine) and four (sharded engine). Uniform weighting and the
/// empty sign channel are contractually invisible.
#[test]
fn pre_seam_variants_match_golden_releases() {
    let graph = karate_club();
    for v in [
        ModelVariant::Sgm,
        ModelVariant::DpSgm,
        ModelVariant::DpAsgm,
        ModelVariant::AdvSgm,
        ModelVariant::AdvSgmNoDp,
    ] {
        for threads in [1usize, 4] {
            let stem = v
                .to_string()
                .to_ascii_lowercase()
                .replace([' ', '(', ')', '-'], "");
            let path = format!("tests/golden/{stem}_t{threads}.aemb");
            let golden = std::fs::read(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
            let trained = PipelineBuilder::test_small(v)
                .threads(threads)
                .build(&graph)
                .unwrap()
                .train()
                .unwrap();
            assert_eq!(
                trained.release_bytes(),
                golden,
                "{v} at {threads} threads drifted from {path}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// 2. Engine invariance for the new variants.
// ---------------------------------------------------------------------------

fn workload_cfg(v: ModelVariant, threads: usize) -> AdvSgmConfig {
    let mut cfg = AdvSgmConfig::test_small(v).with_threads(threads);
    cfg.epochs = 3;
    cfg.seed = 17;
    cfg
}

/// Sequential == sharded@1 == partitioned, bitwise, for both workload
/// variants on a signed graph; sharded@4 is run-to-run deterministic.
#[test]
fn workload_variants_hold_the_engine_invariance_trinity() {
    let g = planted_polarity();
    for v in [ModelVariant::SignedAdvSgm, ModelVariant::SpAdvSgm] {
        let seq = Trainer::fit(&g, workload_cfg(v, 0)).unwrap();
        let sharded1 = ShardedTrainer::fit(&g, workload_cfg(v, 1)).unwrap();
        assert_eq!(
            bits(&seq.node_vectors),
            bits(&sharded1.node_vectors),
            "{v}: sequential vs sharded@1"
        );
        assert_eq!(
            seq.epsilon_spent.map(f64::to_bits),
            sharded1.epsilon_spent.map(f64::to_bits),
            "{v}: spend"
        );

        let part = PartitionedTrainer::fit(&g, workload_cfg(v, 1), 3).unwrap();
        assert_eq!(
            bits(&seq.node_vectors),
            bits(&part.node_vectors),
            "{v}: sequential vs partitioned"
        );

        let a = ShardedTrainer::fit(&g, workload_cfg(v, 4)).unwrap();
        let b = ShardedTrainer::fit(&g, workload_cfg(v, 4)).unwrap();
        assert_eq!(
            bits(&a.node_vectors),
            bits(&b.node_vectors),
            "{v}: sharded@4 run-to-run"
        );
    }
}

// ---------------------------------------------------------------------------
// 3. Checkpoint/resume byte-identity for the new variants.
// ---------------------------------------------------------------------------

/// Simulates a crash: captures a checkpoint after `at` completed epochs
/// and stops the session right there.
struct InterruptAt {
    at: usize,
    taken: Option<CheckpointState>,
}

impl TrainHooks for InterruptAt {
    fn on_epoch(&mut self, event: &EpochEvent) -> SessionControl {
        if event.epoch + 1 >= self.at {
            SessionControl::Stop
        } else {
            SessionControl::Continue
        }
    }

    fn wants_checkpoint(&mut self, epochs_done: usize) -> bool {
        epochs_done == self.at
    }

    fn on_checkpoint(&mut self, state: &CheckpointState) -> SessionControl {
        self.taken = Some(state.clone());
        SessionControl::Continue
    }
}

/// Interrupt mid-run, roundtrip the checkpoint through the `.actk` wire
/// format, resume: bitwise-identical outcome for both workload variants,
/// at one and four threads.
#[test]
fn workload_variant_resume_is_bitwise_exact() {
    let g = planted_polarity();
    for v in [ModelVariant::SignedAdvSgm, ModelVariant::SpAdvSgm] {
        for threads in [1usize, 4] {
            let cfg = workload_cfg(v, threads);
            let full = ShardedTrainer::fit(&g, cfg.clone()).unwrap();

            let mut hook = InterruptAt { at: 2, taken: None };
            ShardedTrainer::new(&g, cfg)
                .unwrap()
                .train_with_hooks(&g, &mut hook)
                .unwrap();
            let state = hook.taken.expect("checkpoint captured");
            let wire = encode_checkpoint(&state).unwrap();
            let restored = decode_checkpoint(&wire).unwrap();
            assert_eq!(restored.config.variant, v, "variant survives the wire");
            let resumed = ShardedTrainer::resume(&g, &restored)
                .unwrap()
                .train(&g)
                .unwrap();

            let tag = format!("{v} threads={threads}");
            assert_eq!(
                bits(&full.node_vectors),
                bits(&resumed.node_vectors),
                "{tag}: node vectors"
            );
            assert_eq!(
                bits(&full.context_vectors),
                bits(&resumed.context_vectors),
                "{tag}: context vectors"
            );
            assert_eq!(
                full.epsilon_spent.map(f64::to_bits),
                resumed.epsilon_spent.map(f64::to_bits),
                "{tag}: epsilon_spent"
            );
        }
    }
}

/// A sign-aware checkpoint is pinned to the *signed* graph: resuming
/// against the same topology with the polarity stripped must be rejected
/// (the fingerprint folds the sign channel).
#[test]
fn signed_checkpoint_rejects_the_unsigned_twin() {
    let g = planted_polarity();
    let mut hook = InterruptAt { at: 1, taken: None };
    ShardedTrainer::new(&g, workload_cfg(ModelVariant::SignedAdvSgm, 1))
        .unwrap()
        .train_with_hooks(&g, &mut hook)
        .unwrap();
    let state = hook.taken.unwrap();

    let unsigned = Graph::from_parts(g.num_nodes(), g.edges().to_vec(), None);
    let err = ShardedTrainer::resume(&unsigned, &state)
        .err()
        .expect("must reject the sign-stripped twin");
    assert!(
        err.to_string().contains("fingerprint"),
        "expected fingerprint rejection, got: {err}"
    );
}

// ---------------------------------------------------------------------------
// 4. Workload signal + release metadata.
// ---------------------------------------------------------------------------

/// Training config for the separation fixture: enough epochs to learn the
/// polarity structure, mild noise so the DP machinery runs without
/// drowning the signal, and a budget that never trips early.
fn separation_cfg(v: ModelVariant) -> AdvSgmConfig {
    let mut cfg = AdvSgmConfig::test_small(v);
    cfg.epochs = 12;
    cfg.disc_iters = 8;
    cfg.batch_size = 64;
    cfg.sigma = if v.is_private() { 1.0 } else { cfg.sigma };
    cfg.epsilon = 1e9;
    cfg.seed = 29;
    cfg
}

/// The headline workload claim (arXiv 2512.00307 §IV): on a graph with
/// planted polarity, the sign-aware variant ranks held-out friend edges
/// above foe edges (AUC well over 0.5), while the sign-blind `AdvSGM` —
/// which attracts along *every* edge — cannot separate them. Both are
/// trained on the identical train split at the identical seed.
#[test]
fn signed_advsgm_separates_polarity_where_sign_blind_advsgm_cannot() {
    let g = planted_polarity();
    let split = sign_prediction_split(&g, 0.2, &mut SmallRng::seed_from_u64(41)).unwrap();

    let aware = Trainer::fit(&split.train, separation_cfg(ModelVariant::SignedAdvSgm)).unwrap();
    let blind = Trainer::fit(&split.train, separation_cfg(ModelVariant::AdvSgm)).unwrap();

    let auc_aware = evaluate_sign_split(&aware.node_vectors, &split).unwrap();
    let auc_blind = evaluate_sign_split(&blind.node_vectors, &split).unwrap();

    assert!(
        auc_aware > 0.6,
        "sign-aware AUC {auc_aware} should clear chance decisively"
    );
    assert!(
        auc_aware > auc_blind + 0.1,
        "sign-aware ({auc_aware}) must beat sign-blind ({auc_blind})"
    );
}

/// The released `.aemb` bytes of the new variants decode to stores whose
/// provenance names the right variant — i.e. the new wire codes (5, 6)
/// roundtrip through the release boundary.
#[test]
fn workload_releases_carry_their_wire_codes() {
    let g = planted_polarity();
    for (v, code) in [
        (ModelVariant::SignedAdvSgm, 5u8),
        (ModelVariant::SpAdvSgm, 6u8),
    ] {
        assert_eq!(v.wire_code(), code);
        let trained = PipelineBuilder::test_small(v)
            .epochs(1)
            .build(&g)
            .unwrap()
            .train()
            .unwrap();
        let bytes = trained.release_bytes();
        let store = EmbeddingStore::from_bytes(&bytes).unwrap();
        assert_eq!(store.meta().variant, v, "decoded provenance");
        assert!(store.meta().is_private(), "{v} is a private variant");
        assert_eq!(bytes[20], code, "wire code stamped at header byte 20");
    }
}

/// The sign-aware provider is `Send + Sync` (the sharded engine moves it
/// onto the producer thread) and draws identically from every thread at
/// the same seed — concurrency cannot perturb the sign channel.
#[test]
fn signed_sampler_draws_identically_across_threads() {
    use advsgm::core::sampler::BatchProvider;
    use advsgm::graph::sampling::negative::NegativeDistribution;

    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<BatchProvider>();

    let g = planted_polarity();
    let provider = BatchProvider::new_for_variant(
        &g,
        16,
        3,
        NegativeDistribution::Uniform,
        ModelVariant::SignedAdvSgm,
    )
    .unwrap();

    let results: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let mut p = provider.clone();
                let g = &g;
                scope.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(99);
                    let (pos, neg) = p.sample_disc_iteration(g, &mut rng).unwrap();
                    (pos.pairs, pos.signs, neg.pairs)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for r in &results[1..] {
        assert_eq!(r, &results[0], "concurrent draws diverged");
    }
    assert!(results[0].1.iter().any(|&s| s), "foe flags present");
}

/// `SP-AdvSGM` differs from `AdvSGM` only through the pair-weighting seam
/// — same batches, same noise draws — so its trajectory must *diverge*
/// (the weights actually bite) while staying deterministic.
#[test]
fn structure_preference_weights_change_the_trajectory() {
    let g = planted_polarity();
    let mut sp_cfg = workload_cfg(ModelVariant::SpAdvSgm, 1);
    let mut uni_cfg = workload_cfg(ModelVariant::AdvSgm, 1);
    // Identical hyperparameters; only the variant (and thus weighting)
    // differs.
    sp_cfg.seed = 7;
    uni_cfg.seed = 7;
    let sp = Trainer::fit(&g, sp_cfg).unwrap();
    let uni = Trainer::fit(&g, uni_cfg).unwrap();
    assert_ne!(
        bits(&sp.node_vectors),
        bits(&uni.node_vectors),
        "structure-preference weighting must actually scale gradients"
    );
}
