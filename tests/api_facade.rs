//! The `advsgm::api` facade contract (ISSUE 5): a `Pipeline` run is
//! **bitwise-identical** to the equivalent hand-wired
//! `Trainer`/`ShardedTrainer` run at 1 and 4 threads, checkpoint/resume
//! through `Pipeline::resume` stays bitwise-exact, and the whole
//! train → save → load → top-k lifecycle is expressible against the api
//! alone — no `advsgm_core`/`advsgm_store` imports, one error type.

use advsgm::api::{
    Checkpoint, Delta, Dim, EmbeddingService, Epsilon, ModelVariant, NoiseSigma, Pipeline,
    PipelineBuilder, PipelineEvent,
};
use advsgm::graph::generators::classic::karate_club;

// The hand-wired internals surface, used only as the reference the
// facade must reproduce bit-for-bit.
use advsgm::core::{AdvSgmConfig, ShardedTrainer, Trainer};

fn bits(m: &advsgm::linalg::DenseMatrix) -> Vec<u64> {
    m.as_slice().iter().map(|x| x.to_bits()).collect()
}

fn test_builder(threads: usize) -> PipelineBuilder {
    PipelineBuilder::test_small(ModelVariant::AdvSgm)
        .epochs(5)
        .seed(11)
        .threads(threads)
}

/// The facade must add nothing to the trajectory: same embeddings, same
/// losses, same accounting, same released bytes as the hand-wired
/// engines, at the sequential width and a parallel one.
#[test]
fn pipeline_is_bitwise_identical_to_hand_wired_engines() {
    let g = karate_club();
    for threads in [1usize, 4] {
        let builder = test_builder(threads);
        let cfg: AdvSgmConfig = builder.config().clone();
        let trained = builder.build(&g).unwrap().train().unwrap();

        // Reference A: the ShardedTrainer facade (auto-selects exactly
        // like the pipeline must).
        let hand = ShardedTrainer::fit(&g, cfg.clone()).unwrap();
        assert_eq!(
            bits(trained.embeddings()),
            bits(&hand.node_vectors),
            "threads={threads}: pipeline must match the hand-wired engine bit-for-bit"
        );
        assert_eq!(trained.outcome().epoch_losses, hand.epoch_losses);
        assert_eq!(trained.outcome().disc_updates, hand.disc_updates);
        assert_eq!(trained.outcome().epsilon_spent, hand.epsilon_spent);
        assert_eq!(trained.outcome().delta_spent, hand.delta_spent);

        // Reference B at threads=1: the sequential Trainer itself.
        if threads == 1 {
            let seq = Trainer::fit(&g, cfg).unwrap();
            assert_eq!(bits(trained.embeddings()), bits(&seq.node_vectors));
        }

        // The released artifact (embeddings + privacy stamp) must also be
        // byte-identical to one exported by hand.
        let by_hand =
            advsgm::store::EmbeddingStore::from_outcome(&hand, test_builder(threads).config())
                .unwrap();
        assert_eq!(trained.store().to_bytes(), by_hand.to_bytes());
    }
}

/// The observer is purely observational: installing one changes nothing.
#[test]
fn observer_does_not_perturb_the_trajectory() {
    let g = karate_club();
    let silent = test_builder(1).build(&g).unwrap().train().unwrap();
    let mut events = 0usize;
    let observed = test_builder(1)
        .build(&g)
        .unwrap()
        .observe(|e| {
            if matches!(e, PipelineEvent::Epoch(_)) {
                events += 1;
            }
        })
        .train()
        .unwrap();
    assert_eq!(events, observed.outcome().epochs_run);
    assert_eq!(bits(silent.embeddings()), bits(observed.embeddings()));
}

/// `Trained::spend` must agree with the outcome's reported spend.
#[test]
fn spend_snapshot_matches_the_outcome() {
    let g = karate_club();
    let trained = test_builder(1).build(&g).unwrap().train().unwrap();
    let spend = trained.spend().expect("AdvSGM is private");
    assert_eq!(Some(spend.epsilon_spent), trained.outcome().epsilon_spent);
    assert_eq!(Some(spend.delta_spent), trained.outcome().delta_spent);
    assert!(spend.steps > 0);

    let non_private = PipelineBuilder::test_small(ModelVariant::Sgm)
        .build(&g)
        .unwrap()
        .train()
        .unwrap();
    assert!(non_private.spend().is_none());
}

/// Interrupt-shaped resume through the api: train a shortened schedule,
/// persist its final checkpoint, extend, resume — the tail must be
/// bitwise-identical to an uninterrupted full run, at 1 and 4 threads.
#[test]
fn resume_through_pipeline_is_bitwise_exact() {
    let g = karate_club();
    let dir = std::env::temp_dir().join("advsgm_api_facade_resume");
    std::fs::create_dir_all(&dir).unwrap();
    for threads in [1usize, 4] {
        let full = test_builder(threads).build(&g).unwrap().train().unwrap();
        assert_eq!(
            full.outcome().epochs_run,
            5,
            "fixture must run every epoch (no budget stop)"
        );

        for k in [1usize, 3, 5] {
            let path = dir.join(format!("t{threads}_k{k}.actk"));
            // A run whose schedule *ends* at epoch k, with the final
            // boundary captured for resumption.
            let partial = test_builder(threads)
                .epochs(k)
                .build(&g)
                .unwrap()
                .keep_checkpoint()
                .train()
                .unwrap();
            partial.save_checkpoint(&path).unwrap();

            // Extend the schedule back to 5 epochs and resume.
            let mut ckpt = Checkpoint::load(&path).unwrap();
            assert_eq!(ckpt.epochs_done(), k as u64);
            assert_eq!(ckpt.seed(), 11);
            ckpt.extend_epochs(5).unwrap();
            let resumed = Pipeline::resume_from(&g, ckpt).unwrap().train().unwrap();

            assert_eq!(
                bits(resumed.embeddings()),
                bits(full.embeddings()),
                "threads={threads} k={k}: resumed tail must be bitwise-exact"
            );
            assert_eq!(resumed.outcome().epoch_losses, full.outcome().epoch_losses);
            assert_eq!(
                resumed.outcome().epsilon_spent,
                full.outcome().epsilon_spent
            );
            assert_eq!(resumed.outcome().delta_spent, full.outcome().delta_spent);
            assert_eq!(resumed.store().to_bytes(), full.store().to_bytes());
            std::fs::remove_file(&path).unwrap();
        }
    }
}

/// Periodic checkpoints written by the pipeline's own policy resume
/// through `Pipeline::resume` (the path-based entry point).
#[test]
fn periodic_checkpoints_resume_from_disk() {
    let g = karate_club();
    let dir = std::env::temp_dir().join("advsgm_api_facade_periodic");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("periodic.actk");

    let full = test_builder(1).build(&g).unwrap().train().unwrap();

    let mut saved_epochs = Vec::new();
    let with_ckpts = test_builder(1)
        .build(&g)
        .unwrap()
        .checkpoint_every(std::num::NonZeroUsize::new(2).unwrap(), &path)
        .observe(|e| {
            if let PipelineEvent::CheckpointSaved { epochs_done, .. } = e {
                saved_epochs.push(epochs_done);
            }
        })
        .train()
        .unwrap();
    assert_eq!(with_ckpts.checkpoints_written(), 2);
    assert_eq!(saved_epochs, vec![2, 4]);
    // The policy must not perturb the trajectory either.
    assert_eq!(bits(with_ckpts.embeddings()), bits(full.embeddings()));

    // The file on disk holds the epoch-4 boundary; resuming it replays
    // the final epoch to the identical outcome.
    let resumed = Pipeline::resume(&g, &path).unwrap().train().unwrap();
    assert_eq!(bits(resumed.embeddings()), bits(full.embeddings()));
    assert_eq!(resumed.store().to_bytes(), full.store().to_bytes());
    std::fs::remove_file(&path).unwrap();
}

/// A private run resumed at an already-complete schedule replays zero
/// epochs — its spend must still come back, seeded from the
/// checkpointed accountant, and match the outcome exactly.
#[test]
fn resume_of_completed_schedule_still_reports_spend() {
    let g = karate_club();
    let dir = std::env::temp_dir().join("advsgm_api_facade_done");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("done.actk");

    let first = test_builder(1)
        .build(&g)
        .unwrap()
        .keep_checkpoint()
        .train()
        .unwrap();
    first.save_checkpoint(&path).unwrap();

    // No extend_epochs: all 5 epochs are already done.
    let replay = Pipeline::resume(&g, &path).unwrap().train().unwrap();
    assert_eq!(replay.outcome().epochs_run, 5);
    let spend = replay.spend().expect("private resume must report spend");
    assert_eq!(Some(spend.epsilon_spent), replay.outcome().epsilon_spent);
    assert_eq!(Some(spend.delta_spent), replay.outcome().delta_spent);
    assert_eq!(spend.epsilon_spent, first.spend().unwrap().epsilon_spent);
    assert_eq!(spend.steps, first.spend().unwrap().steps);
    assert_eq!(bits(replay.embeddings()), bits(first.embeddings()));
    std::fs::remove_file(&path).unwrap();
}

/// Without a checkpoint policy, `save_checkpoint` is a typed error, not
/// a silent no-op.
#[test]
fn save_checkpoint_requires_a_captured_state() {
    let g = karate_club();
    let trained = test_builder(1).build(&g).unwrap().train().unwrap();
    let err = trained
        .save_checkpoint("/tmp/never_written.actk")
        .unwrap_err();
    assert!(err.to_string().contains("no checkpoint captured"), "{err}");
}

/// The full acceptance flow: train → save → load → top-k in a handful of
/// lines against `advsgm::api` alone (no `advsgm_core`/`advsgm_store`
/// types), with the loaded service agreeing bitwise with the in-memory
/// one.
#[test]
fn whole_lifecycle_through_the_api_only() {
    let graph = karate_club();
    let path = std::env::temp_dir().join("advsgm_api_facade_lifecycle.aemb");
    let trained = PipelineBuilder::test_small(ModelVariant::AdvSgm)
        .dim(Dim::new(16).unwrap())
        .epsilon(Epsilon::new(6.0).unwrap())
        .delta(Delta::new(1e-5).unwrap())
        .sigma(NoiseSigma::new(5.0).unwrap())
        .seed(7)
        .build(&graph)
        .unwrap()
        .train()
        .unwrap();
    trained.save_embeddings(&path).unwrap();
    let service = EmbeddingService::open(&path).unwrap();
    let neighbors = service.top_k(0, 5).unwrap();
    // ---- end of the quickstart flow ----

    assert_eq!(neighbors.len(), 5);
    assert!(service.privacy().is_private());
    assert_eq!(service.len(), graph.num_nodes());
    assert_eq!(service.dim(), 16);

    // The loaded service is bitwise the released store.
    let in_memory = trained.serve();
    for k in [1usize, 5] {
        for u in [0usize, 7, 33] {
            let a = service.top_k(u, k).unwrap();
            let b = in_memory.top_k(u, k).unwrap();
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.node, y.node);
                assert_eq!(x.score.to_bits(), y.score.to_bits());
            }
        }
    }
    std::fs::remove_file(&path).unwrap();
}

/// Batched serving through the api is bitwise pool-width-invariant.
#[test]
fn service_batching_is_thread_invariant() {
    let graph = karate_club();
    let trained = PipelineBuilder::test_small(ModelVariant::Sgm)
        .build(&graph)
        .unwrap()
        .train()
        .unwrap();
    let queries: Vec<usize> = (0..graph.num_nodes()).step_by(3).collect();
    let one = advsgm::api::EmbeddingService::with_threads(trained.store().clone(), 1);
    let four = advsgm::api::EmbeddingService::with_threads(trained.store().clone(), 4);
    let a = one.batch_top_k(&queries, 4).unwrap();
    let b = four.batch_top_k(&queries, 4).unwrap();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        for (m, n) in x.iter().zip(y) {
            assert_eq!(m.node, n.node);
            assert_eq!(m.score.to_bits(), n.score.to_bits());
        }
    }
}

/// Everything the builder can reject is rejected before an engine exists.
#[test]
fn invalid_configurations_cannot_pass_the_builder() {
    // Typed parameters: unrepresentable.
    assert!(Epsilon::new(0.0).is_err());
    assert!(Delta::new(1.0).is_err());
    assert!(NoiseSigma::new(f64::NAN).is_err());
    assert!(Dim::new(0).is_err());
    // Cross-field constraints: caught by the builder's single validate.
    let g = karate_club();
    assert!(PipelineBuilder::test_small(ModelVariant::AdvSgm)
        .gen_iters(0)
        .build(&g)
        .is_err());
    assert!(PipelineBuilder::test_small(ModelVariant::Sgm)
        .batch_size(0)
        .build(&g)
        .is_err());
}
