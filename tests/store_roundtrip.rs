//! Integration tests for the embedding persistence + serving subsystem:
//! exact `.aemb` roundtrips, typed rejection of corrupted files, and the
//! thread-count invariance of batched serving (DESIGN.md §9).

use advsgm::core::{AdvSgmConfig, ModelVariant, ShardedTrainer, Trainer};
use advsgm::graph::generators::sbm::{degree_corrected_sbm, SbmConfig};
use advsgm::linalg::rng::seeded;
use advsgm::linalg::DenseMatrix;
use advsgm::store::{EmbeddingStore, ExportEmbeddings, PrivacyMeta, StoreError};
use proptest::prelude::*;

fn small_graph() -> advsgm::graph::Graph {
    let mut rng = seeded(7);
    degree_corrected_sbm(
        &SbmConfig {
            num_nodes: 150,
            num_edges: 800,
            num_blocks: 5,
            mixing: 0.1,
            degree_exponent: 2.5,
        },
        &mut rng,
    )
}

fn bits(m: &DenseMatrix) -> Vec<u64> {
    m.as_slice().iter().map(|x| x.to_bits()).collect()
}

#[test]
fn trained_store_roundtrips_bitwise_through_disk() {
    let g = small_graph();
    let cfg = AdvSgmConfig::test_small(ModelVariant::AdvSgm);
    let store = Trainer::new(&g, cfg).unwrap().export(&g).unwrap();
    let path = std::env::temp_dir().join("advsgm_it_roundtrip.aemb");
    store.save(&path).unwrap();
    let back = EmbeddingStore::load(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    assert_eq!(bits(back.matrix()), bits(store.matrix()));
    assert_eq!(back.meta(), store.meta());
    assert_eq!(back.node_ids(), store.node_ids());
    // The privacy stamp survived: spent epsilon, target delta, sigma.
    assert!(back.meta().epsilon.unwrap() > 0.0);
    assert_eq!(back.meta().delta, Some(1e-5));
    assert_eq!(back.meta().sigma, Some(5.0));
}

#[test]
fn exported_store_serves_the_training_graph() {
    // Non-private skip-gram: real edges must outscore random pairs on
    // average when served from a loaded store — the end-to-end check that
    // persistence does not degrade what training learned.
    let g = small_graph();
    let mut cfg = AdvSgmConfig::test_small(ModelVariant::Sgm);
    cfg.epochs = 10;
    cfg.disc_iters = 20;
    cfg.batch_size = 64;
    let store = ShardedTrainer::new(&g, cfg).unwrap().export(&g).unwrap();
    let served = EmbeddingStore::from_bytes(&store.to_bytes()).unwrap();
    let mut pos = 0.0;
    for e in g.edges() {
        pos += served.score(e.u().index(), e.v().index()).unwrap();
    }
    pos /= g.num_edges() as f64;
    let mut rng = seeded(3);
    let mut neg = 0.0;
    let trials = 2000;
    for _ in 0..trials {
        use rand::Rng;
        let a = rng.gen_range(0..g.num_nodes());
        let b = rng.gen_range(0..g.num_nodes());
        neg += served.score(a, b).unwrap();
    }
    neg /= trials as f64;
    assert!(
        pos > neg,
        "edges ({pos}) must outscore random pairs ({neg})"
    );
}

#[test]
fn batch_top_k_is_thread_count_invariant() {
    let g = small_graph();
    let cfg = AdvSgmConfig::test_small(ModelVariant::AdvSgm);
    let store = Trainer::new(&g, cfg).unwrap().export(&g).unwrap();
    let queries: Vec<usize> = (0..store.len()).collect();
    let base = store.batch_top_k(&queries, 7, 1).unwrap();
    for threads in [2usize, 4, 8] {
        let got = store.batch_top_k(&queries, 7, threads).unwrap();
        assert_eq!(got.len(), base.len());
        for (q, (a, b)) in base.iter().zip(&got).enumerate() {
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.node, y.node, "threads={threads} query={q}");
                assert_eq!(
                    x.score.to_bits(),
                    y.score.to_bits(),
                    "threads={threads} query={q}"
                );
            }
        }
    }
}

#[test]
fn corrupted_and_truncated_files_fail_with_typed_errors() {
    let g = small_graph();
    let cfg = AdvSgmConfig::test_small(ModelVariant::Sgm);
    let store = Trainer::new(&g, cfg).unwrap().export(&g).unwrap();
    let bytes = store.to_bytes();

    // Header corruption: flipped byte inside the fixed header.
    let mut hdr = bytes.clone();
    hdr[9] ^= 0xFF;
    assert!(
        matches!(
            EmbeddingStore::from_bytes(&hdr),
            Err(StoreError::Truncated { .. } | StoreError::ChecksumMismatch { .. })
        ),
        "header corruption must be typed"
    );

    // Payload corruption: checksum catches a single flipped bit.
    let mut payload = bytes.clone();
    let mid = bytes.len() / 2;
    payload[mid] ^= 0x01;
    assert!(matches!(
        EmbeddingStore::from_bytes(&payload),
        Err(StoreError::ChecksumMismatch { .. })
    ));

    // Truncation at several cut points.
    for frac in [1usize, 4, 2] {
        let cut = bytes.len() * (frac.min(3)) / 4;
        let err = EmbeddingStore::from_bytes(&bytes[..cut]).unwrap_err();
        assert!(
            matches!(err, StoreError::Truncated { .. }),
            "cut={cut}: {err}"
        );
    }

    // Wrong magic / future version.
    let mut magic = bytes.clone();
    magic[0..4].copy_from_slice(b"NOPE");
    assert!(matches!(
        EmbeddingStore::from_bytes(&magic),
        Err(StoreError::BadMagic { .. })
    ));
    let mut ver = bytes;
    ver[4..6].copy_from_slice(&7u16.to_le_bytes());
    assert!(matches!(
        EmbeddingStore::from_bytes(&ver),
        Err(StoreError::UnsupportedVersion { found: 7, .. })
    ));
}

#[test]
fn load_expecting_guards_dimension() {
    let g = small_graph();
    let cfg = AdvSgmConfig::test_small(ModelVariant::Sgm); // dim 16
    let store = Trainer::new(&g, cfg).unwrap().export(&g).unwrap();
    let path = std::env::temp_dir().join("advsgm_it_dim.aemb");
    store.save(&path).unwrap();
    assert!(EmbeddingStore::load_expecting(&path, 16).is_ok());
    let err = EmbeddingStore::load_expecting(&path, 128).unwrap_err();
    std::fs::remove_file(&path).unwrap();
    assert!(matches!(
        err,
        StoreError::DimMismatch {
            expected: 128,
            found: 16
        }
    ));
}

#[test]
fn empty_graph_cannot_export_and_empty_store_roundtrips() {
    // Training rejects an edgeless graph before export begins...
    let g = advsgm::graph::Graph::from_parts(4, vec![], None);
    assert!(Trainer::new(&g, AdvSgmConfig::test_small(ModelVariant::Sgm)).is_err());
    // ...but an empty *store* is a well-defined artifact that roundtrips.
    let empty = EmbeddingStore::new(
        DenseMatrix::zeros(0, 8),
        PrivacyMeta::non_private(ModelVariant::Sgm),
    )
    .unwrap();
    let back = EmbeddingStore::from_bytes(&empty.to_bytes()).unwrap();
    assert!(back.is_empty());
    assert_eq!(back.dim(), 8);
    assert!(back.batch_top_k(&[], 3, 4).unwrap().is_empty());
}

proptest! {
    #[test]
    fn arbitrary_matrices_roundtrip_bitwise(
        rows in 0usize..12,
        cols in 1usize..9,
        seed in 0u64..1000,
        eps in 0.0f64..100.0,
    ) {
        // Fill with awkward magnitudes spanning many exponents.
        let mut rng = seeded(seed);
        let m = DenseMatrix::from_fn(rows, cols, |_, _| {
            use rand::Rng;
            let mag: f64 = rng.gen_range(-300.0..300.0);
            let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
            sign * mag.exp2()
        });
        // eps < 1 doubles as the "non-private release" case so the flag
        // bits of both metadata layouts get exercised.
        let meta = if eps >= 1.0 {
            PrivacyMeta::private(ModelVariant::AdvSgm, eps, 1e-5, 5.0)
        } else {
            PrivacyMeta::non_private(ModelVariant::DpAsgm)
        };
        let store = EmbeddingStore::new(m, meta).unwrap();
        let back = EmbeddingStore::from_bytes(&store.to_bytes()).unwrap();
        prop_assert_eq!(bits(back.matrix()), bits(store.matrix()));
        prop_assert_eq!(back.meta(), store.meta());
        prop_assert_eq!(back.node_ids(), store.node_ids());
    }

    #[test]
    fn every_single_byte_flip_is_detected(pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        // One store, one flipped bit anywhere in the file: the reader must
        // reject it with a typed error (structure check or checksum),
        // never accept silently altered bytes... except flips that cancel
        // in fields the format re-validates (none exist: every byte is
        // covered by the CRC).
        let m = DenseMatrix::from_fn(6, 4, |i, j| (i * 4 + j) as f64 * 0.5 - 3.0);
        let store = EmbeddingStore::new(
            m, PrivacyMeta::private(ModelVariant::AdvSgm, 2.0, 1e-5, 5.0),
        ).unwrap();
        let mut bytes = store.to_bytes();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        prop_assert!(
            EmbeddingStore::from_bytes(&bytes).is_err(),
            "flip at byte {} bit {} was accepted", pos, bit
        );
    }
}
