//! Integration tests of the empirical privacy audit (DESIGN.md §13):
//! the committed `results/AUDIT_membership.json` artifact stays schema-
//! valid and internally consistent, and a rerun of the audit at a fixed
//! seed reproduces its report byte-for-byte regardless of fan-out width.
//!
//! The artifact itself is generated in release mode by the documented
//! CLI invocation (see BENCHMARKS.md); these tests rerun the pipeline
//! only at the scaled-down `test_small` shape so the suite stays fast in
//! debug builds. The full-strength separation claim (σ→0 ablation at
//! near-perfect TPR) is asserted against the committed artifact.

use std::path::Path;

use advsgm::api::{audit_membership, AuditConfig, AuditReport, ModelVariant, PipelineBuilder};
use advsgm::graph::io::read_edge_list_file;
use advsgm::graph::Graph;

fn repo_path(rel: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

fn fixture_graph() -> Graph {
    read_edge_list_file(repo_path("data/audit_sbm60.edges"), None).unwrap()
}

fn small_audit_config() -> AuditConfig {
    let mut cfg = AuditConfig::new(42);
    cfg.targets = 2;
    cfg.runs_per_world = 2;
    cfg
}

#[test]
fn committed_artifact_is_schema_valid_and_consistent() {
    let raw = std::fs::read_to_string(repo_path("results/AUDIT_membership.json")).unwrap();
    let report: AuditReport = serde_json::from_str(&raw).unwrap();

    assert_eq!(report.schema_version, 1);
    assert_eq!(report.experiment, "audit_membership");
    assert_eq!(report.verdict, "consistent");

    // The headline claim: the attack's certified lower bound sits below
    // the accountant's stamped spend.
    let stamp = report
        .audit
        .stamped_epsilon
        .expect("private run is stamped");
    assert!(
        report.audit.empirical_epsilon <= stamp,
        "empirical {} exceeds stamped {stamp}",
        report.audit.empirical_epsilon
    );

    // The σ→0 ablation proves the harness has teeth: without noise the
    // attack reaches near-perfect TPR and certifies a substantial bound.
    let ablation = report
        .ablation
        .as_ref()
        .expect("artifact carries the ablation");
    assert!(
        ablation.empirical_epsilon > 1.0,
        "ablation bound too weak: {}",
        ablation.empirical_epsilon
    );
    let best_tpr = ablation.attacks.iter().map(|a| a.tpr).fold(0.0, f64::max);
    assert!(best_tpr >= 0.9, "ablation TPR not near-perfect: {best_tpr}");
    assert_eq!(ablation.stamped_epsilon, None, "ablation must be unstamped");

    // Internal consistency of the counts.
    let trials = (report.panel.targets * report.panel.runs_per_world) as u64;
    assert_eq!(report.panel.trials_per_world, trials);
    for a in report.audit.attacks.iter().chain(&ablation.attacks) {
        assert_eq!(a.true_positives + a.false_negatives, trials, "{}", a.name);
        assert_eq!(a.false_positives + a.true_negatives, trials, "{}", a.name);
        assert!(a.tpr_lo <= a.tpr && a.fpr <= a.fpr_hi, "{}", a.name);
    }
}

#[test]
fn committed_artifact_matches_its_own_pretty_renderer() {
    // The committed bytes are exactly what `AuditReport::write` renders —
    // no hand edits, no foreign formatter.
    let raw = std::fs::read_to_string(repo_path("results/AUDIT_membership.json")).unwrap();
    let report: AuditReport = serde_json::from_str(&raw).unwrap();
    assert_eq!(report.to_json_pretty(), raw);
}

#[test]
fn audit_report_roundtrips_through_json() {
    let graph = fixture_graph();
    let builder = PipelineBuilder::test_small(ModelVariant::AdvSgm);
    let report = audit_membership(&graph, &builder, &small_audit_config(), false).unwrap();

    let back: AuditReport = serde_json::from_str(&report.to_json_pretty()).unwrap();
    assert_eq!(back, report);
}

#[test]
fn audit_rerun_at_fixed_seed_is_byte_identical() {
    let graph = fixture_graph();
    let builder = PipelineBuilder::test_small(ModelVariant::AdvSgm);

    let mut cfg = small_audit_config();
    cfg.threads = 1;
    let a = audit_membership(&graph, &builder, &cfg, false).unwrap();
    // A different fan-out width must not change a single byte.
    cfg.threads = 4;
    let b = audit_membership(&graph, &builder, &cfg, false).unwrap();
    assert_eq!(a.to_json_pretty(), b.to_json_pretty());

    // A different base seed draws a different panel and different runs.
    let mut other = small_audit_config();
    other.seed = 43;
    let c = audit_membership(&graph, &builder, &other, false).unwrap();
    assert_ne!(a.to_json_pretty(), c.to_json_pretty());
}
