//! The sharded engine's determinism contract (DESIGN.md §7), end-to-end:
//!
//! * `threads = 1` is bitwise-identical to the sequential `Trainer`;
//! * `threads = N` is run-to-run deterministic under a fixed seed;
//! * shard-reduction structure (threads, shard size) never changes what
//!   the privacy accountant records.

use advsgm::core::{AdvSgmConfig, ModelVariant, ShardedTrainer, Trainer};
use advsgm::graph::generators::classic::karate_club;
use proptest::prelude::*;

fn bits_of(m: &advsgm::linalg::matrix::DenseMatrix) -> Vec<u64> {
    m.as_slice().iter().map(|x| x.to_bits()).collect()
}

#[test]
fn sharded_matches_sequential() {
    let g = karate_club();
    for variant in ModelVariant::all() {
        // threads = 1: the sharded engine must reproduce the sequential
        // trainer bit-for-bit (it delegates — there is no second
        // single-threaded code path to drift).
        let mut cfg = AdvSgmConfig::test_small(variant).with_threads(1);
        cfg.seed = 42;
        let seq = Trainer::fit(&g, cfg.clone()).unwrap();
        let sharded = ShardedTrainer::fit(&g, cfg.clone()).unwrap();
        assert_eq!(
            bits_of(&seq.node_vectors),
            bits_of(&sharded.node_vectors),
            "{variant}: threads=1 not bitwise-identical to Trainer"
        );
        assert_eq!(seq.disc_updates, sharded.disc_updates);
        assert_eq!(seq.epsilon_spent, sharded.epsilon_spent);

        // threads = 4: a different (parallel) trajectory, but run-to-run
        // deterministic under the same seed.
        let par_cfg = cfg.with_threads(4);
        let a = ShardedTrainer::fit(&g, par_cfg.clone()).unwrap();
        let b = ShardedTrainer::fit(&g, par_cfg).unwrap();
        assert_eq!(
            bits_of(&a.node_vectors),
            bits_of(&b.node_vectors),
            "{variant}: threads=4 not run-to-run deterministic"
        );
        assert_eq!(a.disc_updates, b.disc_updates);
        assert_eq!(a.epoch_losses, b.epoch_losses);
    }
}

proptest! {
    /// Shard-reduction order is a pure execution detail: however the batch
    /// is cut (threads) and re-associated (shard_size), the accountant
    /// must record exactly the sequential engine's update count and spend.
    #[test]
    fn shard_reduction_never_changes_accounting(
        threads in 1usize..=4,
        shard_size in 0usize..=48,
        batch_size in 4usize..=32,
        seed in 0u64..1000,
    ) {
        let g = karate_club();
        let mut cfg = AdvSgmConfig::test_small(ModelVariant::AdvSgm);
        cfg.batch_size = batch_size;
        cfg.seed = seed;
        let reference = Trainer::fit(&g, cfg.clone()).unwrap();
        let sharded = ShardedTrainer::fit(
            &g,
            cfg.with_threads(threads).with_shard_size(shard_size),
        )
        .unwrap();
        prop_assert_eq!(reference.disc_updates, sharded.disc_updates);
        prop_assert_eq!(reference.epochs_run, sharded.epochs_run);
        prop_assert_eq!(reference.stopped_by_budget, sharded.stopped_by_budget);
        // Identical (sigma, gamma) schedule => bitwise-equal spend.
        prop_assert_eq!(reference.epsilon_spent, sharded.epsilon_spent);
        prop_assert_eq!(reference.delta_spent, sharded.delta_spent);
    }
}
