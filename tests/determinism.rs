//! End-to-end determinism: the entire training pipeline — graph generation,
//! initialisation, edge/negative sampling, DP noise, adversarial updates —
//! is driven by the single `AdvSgmConfig::seed`, so identical seeds must
//! produce bitwise-identical embeddings and different seeds must not.

use advsgm::core::{AdvSgmConfig, ModelVariant, Trainer};
use advsgm::graph::generators::classic::karate_club;

fn bits_of(m: &advsgm::linalg::matrix::DenseMatrix) -> Vec<u64> {
    m.as_slice().iter().map(|x| x.to_bits()).collect()
}

#[test]
fn same_seed_is_bitwise_identical() {
    let g = karate_club();
    let mut cfg = AdvSgmConfig::test_small(ModelVariant::AdvSgm);
    cfg.seed = 42;
    let a = Trainer::fit(&g, cfg.clone()).unwrap();
    let b = Trainer::fit(&g, cfg).unwrap();
    assert_eq!(
        bits_of(&a.node_vectors),
        bits_of(&b.node_vectors),
        "same seed must reproduce embeddings bit-for-bit"
    );
    assert_eq!(a.disc_updates, b.disc_updates);
}

#[test]
fn different_seeds_differ() {
    let g = karate_club();
    let mut cfg = AdvSgmConfig::test_small(ModelVariant::AdvSgm);
    cfg.seed = 1;
    let a = Trainer::fit(&g, cfg.clone()).unwrap();
    cfg.seed = 2;
    let b = Trainer::fit(&g, cfg).unwrap();
    assert_ne!(
        bits_of(&a.node_vectors),
        bits_of(&b.node_vectors),
        "different seeds should explore different trajectories"
    );
}

#[test]
fn determinism_holds_for_every_variant() {
    let g = karate_club();
    for variant in ModelVariant::all() {
        let mut cfg = AdvSgmConfig::test_small(variant);
        cfg.seed = 7;
        let a = Trainer::fit(&g, cfg.clone()).unwrap();
        let b = Trainer::fit(&g, cfg).unwrap();
        assert_eq!(
            bits_of(&a.node_vectors),
            bits_of(&b.node_vectors),
            "variant {variant} not deterministic"
        );
    }
}
