//! Cross-crate integration tests: dataset synthesis → training →
//! evaluation, exercising every variant and both downstream tasks through
//! the public facade API.

use advsgm::core::{AdvSgmConfig, ModelVariant, Trainer};
use advsgm::datasets::{synthesize, Dataset};
use advsgm::eval::clustering::affinity::{AffinityPropagation, ApParams};
use advsgm::eval::clustering::metrics::mutual_information;
use advsgm::eval::linkpred::evaluate_split;
use advsgm::graph::partition::link_prediction_split;
use advsgm::linalg::rng::seeded;

fn fast(cfg: &mut AdvSgmConfig) {
    cfg.dim = 24;
    cfg.epochs = 6;
    cfg.disc_iters = 8;
    cfg.gen_iters = 2;
    cfg.batch_size = 64;
}

#[test]
fn full_link_prediction_pipeline_for_all_variants() {
    let spec = Dataset::Ppi.spec().scaled(0.05);
    let graph = synthesize(&spec, 0);
    let mut rng = seeded(1);
    let split = link_prediction_split(&graph, 0.10, &mut rng).unwrap();
    for variant in ModelVariant::all() {
        let mut cfg = AdvSgmConfig::for_variant(variant);
        fast(&mut cfg);
        let out = Trainer::fit(&split.train, cfg).unwrap();
        let auc = evaluate_split(&out.node_vectors, &split).unwrap();
        assert!(
            (0.0..=1.0).contains(&auc),
            "{variant}: AUC {auc} out of range"
        );
    }
}

#[test]
fn non_private_skipgram_learns_structure() {
    // On a strongly clustered graph, non-private skip-gram must beat chance
    // by a clear margin — the baseline sanity check behind every table.
    let spec = Dataset::Facebook.spec().scaled(0.05);
    let graph = synthesize(&spec, 7);
    let mut rng = seeded(2);
    let split = link_prediction_split(&graph, 0.10, &mut rng).unwrap();
    let mut cfg = AdvSgmConfig::for_variant(ModelVariant::Sgm);
    fast(&mut cfg);
    cfg.epochs = 15;
    let out = Trainer::fit(&split.train, cfg).unwrap();
    let auc = evaluate_split(&out.node_vectors, &split).unwrap();
    assert!(
        auc > 0.60,
        "SGM(No DP) AUC {auc} should be well above chance"
    );
}

#[test]
fn clustering_pipeline_recovers_signal_without_privacy() {
    let spec = Dataset::Ppi.spec().scaled(0.05);
    let graph = synthesize(&spec, 3);
    let mut cfg = AdvSgmConfig::for_variant(ModelVariant::Sgm);
    fast(&mut cfg);
    cfg.epochs = 15;
    let out = Trainer::fit(&graph, cfg).unwrap();
    let views: Vec<&[f64]> = (0..out.node_vectors.rows())
        .map(|i| out.node_vectors.row(i))
        .collect();
    let params = ApParams {
        max_points: 400,
        ..ApParams::default()
    };
    let mut rng = seeded(4);
    let ap = AffinityPropagation::fit(&views, &params, &mut rng).unwrap();
    let labels = graph.labels().unwrap();
    let truth: Vec<usize> = ap
        .point_indices
        .iter()
        .map(|&i| labels[i] as usize)
        .collect();
    let mi = mutual_information(&truth, &ap.assignments).unwrap();
    assert!(mi >= 0.0);
    assert!(ap.num_clusters() >= 2, "expected multiple clusters");
}

#[test]
fn budget_ordering_matches_figure3_shape() {
    // More budget -> at least as many training iterations. This is the
    // mechanism behind the monotone curves of Fig. 3.
    let spec = Dataset::Ppi.spec().scaled(0.05);
    let graph = synthesize(&spec, 9);
    let mut updates = Vec::new();
    for eps in [1.0, 3.0, 6.0] {
        let mut cfg = AdvSgmConfig::for_variant(ModelVariant::AdvSgm);
        fast(&mut cfg);
        cfg.epochs = 50;
        cfg.epsilon = eps;
        let out = Trainer::fit(&graph, cfg).unwrap();
        updates.push(out.disc_updates);
    }
    assert!(
        updates[0] <= updates[1] && updates[1] <= updates[2],
        "updates not monotone in epsilon: {updates:?}"
    );
}

#[test]
fn unlabeled_datasets_refuse_clustering() {
    let spec = Dataset::Epinions.spec().scaled(0.01);
    let graph = synthesize(&spec, 0);
    assert!(graph.labels().is_none());
}

#[test]
fn released_embeddings_are_post_processable() {
    // Theorem 5: any function of the released matrix stays private. Check
    // the released matrix is a plain value independent of the trainer.
    let spec = Dataset::Wiki.spec().scaled(0.05);
    let graph = synthesize(&spec, 2);
    let mut cfg = AdvSgmConfig::for_variant(ModelVariant::AdvSgm);
    fast(&mut cfg);
    let out = Trainer::fit(&graph, cfg).unwrap();
    // Arbitrary post-processing: norms and means — must be finite.
    let mean: f64 =
        out.node_vectors.as_slice().iter().sum::<f64>() / out.node_vectors.as_slice().len() as f64;
    assert!(mean.is_finite());
    assert_eq!(out.node_vectors.rows(), graph.num_nodes());
    assert_eq!(out.context_vectors.rows(), graph.num_nodes());
}
