//! Error-display consistency across the workspace (ISSUE 5): every
//! crate error renders a lowercase, no-trailing-period message, and the
//! unified `advsgm::api::Error` names the originating layer while
//! preserving the source chain. The exact strings below are snapshots —
//! a change here is a user-visible change and should be deliberate.

use std::error::Error as _;

use advsgm::api::Error;
use advsgm::attack::AttackError;
use advsgm::baselines::BaselineError;
use advsgm::core::CoreError;
use advsgm::eval::EvalError;
use advsgm::graph::GraphError;
use advsgm::linalg::LinalgError;
use advsgm::privacy::PrivacyError;
use advsgm::store::StoreError;

/// One representative error per layer with its exact expected rendering
/// through `advsgm::api::Error`.
fn snapshots() -> Vec<(Error, &'static str)> {
    vec![
        (
            Error::from(GraphError::EmptyGraph { op: "train" }),
            "graph: train requires a non-empty graph",
        ),
        (
            Error::from(GraphError::Io(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                "gone",
            ))),
            "graph: i/o error: gone",
        ),
        (
            Error::from(LinalgError::DimensionMismatch {
                op: "dot",
                lhs: (3, 1),
                rhs: (4, 1),
            }),
            "linalg: dimension mismatch in dot: lhs 3x1 vs rhs 4x1",
        ),
        (
            Error::from(PrivacyError::InvalidParameter {
                name: "sigma",
                reason: "must be positive".into(),
            }),
            "privacy: invalid parameter sigma: must be positive",
        ),
        (
            Error::from(CoreError::Config {
                field: "dim",
                reason: "embedding dimension must be positive".into(),
            }),
            "core: invalid configuration dim: embedding dimension must be positive",
        ),
        (
            Error::from(BaselineError::Config {
                field: "hops",
                reason: "zero".into(),
            }),
            "baselines: invalid baseline configuration hops: zero",
        ),
        (
            Error::from(EvalError::DidNotConverge {
                algorithm: "affinity propagation",
                iterations: 200,
            }),
            "eval: affinity propagation did not converge after 200 iterations",
        ),
        (
            Error::from(StoreError::Truncated {
                expected: 100,
                found: 60,
            }),
            "store: truncated store file: header implies 100 bytes, found 60",
        ),
        (
            Error::from(StoreError::DimMismatch {
                expected: 128,
                found: 64,
            }),
            "store: embedding dimension mismatch: expected 128, file has 64",
        ),
        (
            Error::from(std::io::Error::new(
                std::io::ErrorKind::PermissionDenied,
                "denied",
            )),
            "io: denied",
        ),
        (
            advsgm::api::Epsilon::new(-1.0).unwrap_err(),
            "api: invalid parameter epsilon: privacy budget must be finite and positive, got -1",
        ),
        (
            advsgm::api::Delta::new(2.0).unwrap_err(),
            "api: invalid parameter delta: failure probability must be in (0, 1), got 2",
        ),
        (
            advsgm::api::NoiseSigma::new(0.0).unwrap_err(),
            "api: invalid parameter sigma: noise multiplier must be finite and positive, got 0",
        ),
        (
            advsgm::api::Dim::new(0).unwrap_err(),
            "api: invalid parameter dim: embedding dimension must be positive, got 0",
        ),
        (
            Error::from(AttackError::invalid(
                "targets",
                "need at least one target edge",
            )),
            "attack: invalid audit parameter targets: need at least one target edge",
        ),
        (
            Error::from(AttackError::release("engine exploded")),
            "attack: release failed: engine exploded",
        ),
    ]
}

#[test]
fn unified_error_names_the_originating_layer() {
    for (err, expected) in snapshots() {
        assert_eq!(err.to_string(), expected);
    }
}

#[test]
fn messages_are_lowercase_with_no_trailing_period() {
    // The workspace-wide display convention, checked both on the unified
    // error and on the raw layer errors it wraps.
    let mut all: Vec<String> = snapshots().iter().map(|(e, _)| e.to_string()).collect();
    all.extend(
        snapshots()
            .iter()
            .filter_map(|(e, _)| e.source().map(|s| s.to_string())),
    );
    // Additional layer errors not in the snapshot menu.
    all.push(
        GraphError::Parse {
            line: 3,
            reason: "bad token".into(),
        }
        .to_string(),
    );
    all.push(
        StoreError::ChecksumMismatch {
            stored: 1,
            computed: 2,
        }
        .to_string(),
    );
    all.push(StoreError::BadMagic { found: *b"PNG\0" }.to_string());
    all.push(
        PrivacyError::BudgetExhausted {
            delta_spent: 2e-5,
            delta_target: 1e-5,
        }
        .to_string(),
    );
    all.push(
        CoreError::Checkpoint {
            reason: "graph fingerprint differs".into(),
        }
        .to_string(),
    );
    all.push(
        LinalgError::IndexOutOfBounds {
            axis: "row",
            index: 9,
            len: 3,
        }
        .to_string(),
    );
    all.push(
        EvalError::InvalidInput {
            reason: "empty embedding set".into(),
        }
        .to_string(),
    );
    for msg in &all {
        let first = msg.chars().next().unwrap();
        assert!(
            !first.is_alphabetic() || first.is_lowercase(),
            "message must start lowercase: {msg:?}"
        );
        assert!(
            !msg.trim_end().ends_with('.'),
            "message must not end with a period: {msg:?}"
        );
    }
}

#[test]
fn source_chain_is_preserved_through_the_facade() {
    // Two hops: api::Error -> StoreError -> CoreError.
    let inner = CoreError::Config {
        field: "dim",
        reason: "zero".into(),
    };
    let err = Error::from(StoreError::Train(inner));
    let store_layer = err.source().expect("store layer present");
    assert!(store_layer.to_string().contains("training failed"));
    let core_layer = store_layer.source().expect("core layer present");
    assert!(core_layer.to_string().contains("invalid configuration dim"));
    assert!(core_layer.source().is_none());

    // Api-level parameter errors are leaves.
    let leaf = advsgm::api::Epsilon::new(f64::NAN).unwrap_err();
    assert!(leaf.source().is_none());
}
