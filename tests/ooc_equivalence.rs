//! ISSUE 8 headline contract (DESIGN.md §14): **out-of-core partitioned
//! training is bitwise-identical to in-RAM sequential training** — the
//! released `.aemb` bytes, the epoch losses, and the accountant's spend
//! — for `P ∈ {1, 2, 4}` node buckets at 1 and 4 worker threads, while
//! resident embedding memory stays bounded by two bucket partitions
//! (slot-pool high-water mark ≤ 2). Checkpoints taken by the partitioned
//! engine resume bitwise-exactly through the `.actk` wire format, under
//! a *different* partition count than they were captured with.

use advsgm::api::{ModelVariant as ApiVariant, PipelineBuilder};
use advsgm::core::session::{CheckpointState, EpochEvent, SessionControl, TrainHooks};
use advsgm::core::{AdvSgmConfig, ModelVariant, PartitionedTrainer, Trainer};
use advsgm::graph::generators::classic::karate_club;
use advsgm::store::{decode_checkpoint, encode_checkpoint};

fn bits(m: &advsgm::linalg::DenseMatrix) -> Vec<u64> {
    m.as_slice().iter().map(|x| x.to_bits()).collect()
}

fn fbits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

fn test_cfg(threads: usize) -> AdvSgmConfig {
    let mut cfg = AdvSgmConfig::test_small(ModelVariant::AdvSgm).with_threads(threads);
    cfg.epochs = 5;
    cfg.seed = 11;
    cfg
}

/// The full matrix of the headline contract: every outcome field that
/// crosses the release boundary is bitwise-identical to the sequential
/// engine, and the slot pool never held more than two partitions.
#[test]
fn partitioned_matches_sequential_bitwise_for_every_p_and_thread_count() {
    let g = karate_club();
    let full = Trainer::fit(&g, test_cfg(1)).unwrap();
    assert_eq!(full.epochs_run, 5, "fixture must run every epoch");

    for threads in [1usize, 4] {
        for p in [1usize, 2, 4] {
            let trainer = PartitionedTrainer::new(&g, test_cfg(threads), p).unwrap();
            let stats = trainer.slot_stats();
            let out = trainer.train(&g).unwrap();

            let tag = format!("threads={threads} P={p}");
            assert_eq!(
                bits(&full.node_vectors),
                bits(&out.node_vectors),
                "{tag}: node vectors"
            );
            assert_eq!(
                bits(&full.context_vectors),
                bits(&out.context_vectors),
                "{tag}: context vectors"
            );
            assert_eq!(
                fbits(&full.epoch_losses),
                fbits(&out.epoch_losses),
                "{tag}: epoch losses"
            );
            assert_eq!(full.disc_updates, out.disc_updates, "{tag}");
            assert_eq!(full.stopped_by_budget, out.stopped_by_budget, "{tag}");
            assert_eq!(
                full.epsilon_spent.map(f64::to_bits),
                out.epsilon_spent.map(f64::to_bits),
                "{tag}: epsilon_spent"
            );
            assert_eq!(
                full.delta_spent.map(f64::to_bits),
                out.delta_spent.map(f64::to_bits),
                "{tag}: delta_spent"
            );
            // The residency bound: 2/P of the embeddings, by construction
            // of the two-role slot pool.
            assert!(
                stats.high_water() <= 2,
                "{tag}: {} partitions resident",
                stats.high_water()
            );
            if p >= 2 {
                assert!(stats.loads() > 0, "{tag}: pool never loaded a partition");
                assert!(stats.evictions() > 0, "{tag}: pool never evicted");
            }
        }
    }
}

/// The same contract one layer up, over the *released artifact*: the
/// `.aemb` bytes a partitioned pipeline releases are the bytes the
/// in-RAM pipeline releases — the Theorem-5 adversary cannot tell how
/// the run was executed.
#[test]
fn released_aemb_bytes_are_identical_through_the_api() {
    let g = karate_club();
    let baseline = PipelineBuilder::test_small(ApiVariant::AdvSgm)
        .threads(1)
        .seed(11)
        .build(&g)
        .unwrap()
        .train()
        .unwrap();

    for threads in [1usize, 4] {
        for p in [1usize, 2, 4] {
            let trained = PipelineBuilder::test_small(ApiVariant::AdvSgm)
                .threads(threads)
                .seed(11)
                .partitions(p)
                .build(&g)
                .unwrap()
                .train()
                .unwrap();
            let tag = format!("threads={threads} P={p}");
            assert_eq!(
                baseline.release_bytes(),
                trained.release_bytes(),
                "{tag}: released bytes"
            );
            let (a, b) = (baseline.spend().unwrap(), trained.spend().unwrap());
            assert_eq!(
                a.epsilon_spent.to_bits(),
                b.epsilon_spent.to_bits(),
                "{tag}: spend"
            );
            assert_eq!(
                a.delta_spent.to_bits(),
                b.delta_spent.to_bits(),
                "{tag}: spend delta"
            );
        }
    }
}

/// Simulates a crash: captures a checkpoint after `at` completed epochs
/// and stops the session right there.
struct InterruptAt {
    at: usize,
    taken: Option<CheckpointState>,
}

impl TrainHooks for InterruptAt {
    fn on_epoch(&mut self, event: &EpochEvent) -> SessionControl {
        if event.epoch + 1 >= self.at {
            SessionControl::Stop
        } else {
            SessionControl::Continue
        }
    }

    fn wants_checkpoint(&mut self, epochs_done: usize) -> bool {
        epochs_done == self.at
    }

    fn on_checkpoint(&mut self, state: &CheckpointState) -> SessionControl {
        self.taken = Some(state.clone());
        SessionControl::Continue
    }
}

/// Interrupt at the first, a middle, and the last epoch; push the
/// captured state through the `.actk` wire format; resume on the
/// partitioned engine under a *different* bucket count. The trajectory
/// is partition-invariant, so every resumed run must land exactly where
/// the uninterrupted sequential run does.
#[test]
fn partitioned_checkpoints_resume_bitwise_under_any_partition_count() {
    let g = karate_club();
    for threads in [1usize, 4] {
        let cfg = test_cfg(threads);
        let epochs = cfg.epochs;
        let full = Trainer::fit(&g, test_cfg(1)).unwrap();

        for k in [1usize, epochs / 2 + 1, epochs] {
            let mut hook = InterruptAt { at: k, taken: None };
            let partial = PartitionedTrainer::new(&g, cfg.clone(), 2)
                .unwrap()
                .train_with_hooks(&g, &mut hook)
                .unwrap();
            assert_eq!(partial.epochs_run, k, "threads={threads} k={k}: interrupt");
            let state = hook.taken.expect("checkpoint captured");
            assert_eq!(state.epochs_done, k as u64);

            // Through the persisted bytes, resumed with P=3 (captured
            // with P=2): the bucket count is a residency choice, not
            // part of the trajectory.
            let wire = encode_checkpoint(&state).unwrap();
            let restored = decode_checkpoint(&wire).unwrap();
            let resumed = PartitionedTrainer::resume(&g, &restored, 3)
                .unwrap()
                .train(&g)
                .unwrap();

            let tag = format!("threads={threads} k={k}");
            assert_eq!(
                bits(&full.node_vectors),
                bits(&resumed.node_vectors),
                "{tag}: node vectors"
            );
            assert_eq!(
                bits(&full.context_vectors),
                bits(&resumed.context_vectors),
                "{tag}: context vectors"
            );
            assert_eq!(
                fbits(&full.epoch_losses),
                fbits(&resumed.epoch_losses),
                "{tag}: epoch losses"
            );
            assert_eq!(full.disc_updates, resumed.disc_updates, "{tag}");
            assert_eq!(
                full.epsilon_spent.map(f64::to_bits),
                resumed.epsilon_spent.map(f64::to_bits),
                "{tag}: epsilon_spent"
            );
            assert_eq!(
                full.delta_spent.map(f64::to_bits),
                resumed.delta_spent.map(f64::to_bits),
                "{tag}: delta_spent"
            );
        }
    }
}

/// The api-level resume dispatch: a partitioned `.actk` loaded through
/// [`advsgm::api::Checkpoint`] resumes on the partitioned engine (with
/// the caller's bucket-count hint) and completes the schedule exactly.
#[test]
fn api_resume_dispatches_partitioned_checkpoints() {
    use advsgm::api::{Checkpoint, Pipeline};

    let g = karate_club();
    let dir = std::env::temp_dir().join("advsgm_ooc_equivalence_api_resume");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ooc.actk");

    let baseline = PipelineBuilder::test_small(ApiVariant::AdvSgm)
        .threads(1)
        .seed(11)
        .build(&g)
        .unwrap()
        .train()
        .unwrap();

    PipelineBuilder::test_small(ApiVariant::AdvSgm)
        .threads(1)
        .seed(11)
        .partitions(2)
        .build(&g)
        .unwrap()
        .keep_checkpoint()
        .train()
        .unwrap()
        .save_checkpoint(&path)
        .unwrap();

    let mut ckpt = Checkpoint::load(&path).unwrap();
    ckpt.set_partitions(4);
    let resumed = Pipeline::resume_from(&g, ckpt).unwrap().train().unwrap();
    // The schedule was already complete, so resuming replays nothing —
    // and must still release the identical bytes and spend.
    assert_eq!(baseline.release_bytes(), resumed.release_bytes());
    assert_eq!(
        baseline.spend().unwrap().epsilon_spent.to_bits(),
        resumed.spend().unwrap().epsilon_spent.to_bits()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
