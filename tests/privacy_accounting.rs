//! Integration tests for the privacy guarantees: the trainer's online
//! accounting must agree with an independent replay of Theorem 7, and the
//! stopping rule must actually bound the spend.

use advsgm::core::{AdvSgmConfig, ModelVariant, Trainer};
use advsgm::datasets::{synthesize, Dataset};
use advsgm::privacy::accountant::RdpAccountant;

fn fast(cfg: &mut AdvSgmConfig) {
    cfg.dim = 16;
    cfg.epochs = 4;
    cfg.disc_iters = 6;
    cfg.gen_iters = 1;
    cfg.batch_size = 64;
}

#[test]
fn trainer_accounting_matches_theorem7_replay() {
    let spec = Dataset::Ppi.spec().scaled(0.05);
    let graph = synthesize(&spec, 0);
    let mut cfg = AdvSgmConfig::for_variant(ModelVariant::AdvSgm);
    fast(&mut cfg);
    cfg.epsilon = 1e9; // never stop: we want a full, predictable run
    let sigma = cfg.sigma;
    let delta = cfg.delta;
    let (b, k) = (cfg.batch_size, cfg.negatives);
    let iters = (cfg.epochs * cfg.disc_iters) as u64;
    let out = Trainer::fit(&graph, cfg).unwrap();
    assert_eq!(out.disc_updates, 2 * iters);

    // Independent replay: n_epoch * n_D steps at each of the two rates.
    let gamma_pos = b as f64 / graph.num_edges() as f64;
    let gamma_neg = (b * k) as f64 / graph.num_nodes() as f64;
    let mut acc = RdpAccountant::new();
    acc.record_subsampled_gaussian(sigma, gamma_pos, iters)
        .unwrap();
    acc.record_subsampled_gaussian(sigma, gamma_neg, iters)
        .unwrap();
    let (replay_eps, _) = acc.epsilon(delta).unwrap();
    let trainer_eps = out.epsilon_spent.unwrap();
    assert!(
        (replay_eps - trainer_eps).abs() < 1e-9,
        "trainer eps {trainer_eps} != replay {replay_eps}"
    );
}

#[test]
fn stopping_rule_bounds_the_overshoot_to_one_iteration() {
    // When training stops, the spend may exceed the target by at most the
    // final iteration's cost (the paper applies the update, then checks).
    let spec = Dataset::Ppi.spec().scaled(0.05);
    let graph = synthesize(&spec, 1);
    let mut cfg = AdvSgmConfig::for_variant(ModelVariant::AdvSgm);
    fast(&mut cfg);
    cfg.epochs = 100;
    cfg.epsilon = 2.0;
    let sigma = cfg.sigma;
    let delta = cfg.delta;
    let (b, k) = (cfg.batch_size, cfg.negatives);
    let out = Trainer::fit(&graph, cfg).unwrap();
    assert!(out.stopped_by_budget);
    // delta_hat crossed the target...
    assert!(out.delta_spent.unwrap() >= delta);
    // ...but removing one iteration's worth of steps goes back under.
    let gamma_pos = b as f64 / graph.num_edges() as f64;
    let gamma_neg = (b * k) as f64 / graph.num_nodes() as f64;
    let total_iter_pairs = out.disc_updates / 2;
    let mut acc = RdpAccountant::new();
    if total_iter_pairs > 1 {
        acc.record_subsampled_gaussian(sigma, gamma_pos, total_iter_pairs - 1)
            .unwrap();
        acc.record_subsampled_gaussian(sigma, gamma_neg, total_iter_pairs - 1)
            .unwrap();
        assert!(
            acc.delta(2.0).unwrap() < delta,
            "budget was already exhausted more than one iteration earlier"
        );
    }
}

#[test]
fn epsilon_spent_scales_with_training_length() {
    let spec = Dataset::Ppi.spec().scaled(0.05);
    let graph = synthesize(&spec, 2);
    let mut spent = Vec::new();
    for epochs in [2usize, 6] {
        let mut cfg = AdvSgmConfig::for_variant(ModelVariant::DpSgm);
        fast(&mut cfg);
        cfg.epochs = epochs;
        cfg.epsilon = 1e9;
        let out = Trainer::fit(&graph, cfg).unwrap();
        spent.push(out.epsilon_spent.unwrap());
    }
    assert!(spent[1] > spent[0], "spend not increasing: {spent:?}");
}

#[test]
fn non_private_run_is_unaccounted_and_full_length() {
    let spec = Dataset::Wiki.spec().scaled(0.05);
    let graph = synthesize(&spec, 3);
    let mut cfg = AdvSgmConfig::for_variant(ModelVariant::AdvSgmNoDp);
    fast(&mut cfg);
    let epochs = cfg.epochs;
    let out = Trainer::fit(&graph, cfg).unwrap();
    assert!(out.epsilon_spent.is_none());
    assert_eq!(out.epochs_run, epochs);
}

#[test]
fn larger_sigma_spends_less_epsilon() {
    let spec = Dataset::Ppi.spec().scaled(0.05);
    let graph = synthesize(&spec, 4);
    let mut spent = Vec::new();
    for sigma in [2.0, 8.0] {
        let mut cfg = AdvSgmConfig::for_variant(ModelVariant::AdvSgm);
        fast(&mut cfg);
        cfg.sigma = sigma;
        cfg.epsilon = 1e9;
        let out = Trainer::fit(&graph, cfg).unwrap();
        spent.push(out.epsilon_spent.unwrap());
    }
    assert!(
        spent[1] < spent[0],
        "sigma=8 should spend less than sigma=2: {spent:?}"
    );
}
