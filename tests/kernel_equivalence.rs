//! The kernel backend's two-tier arithmetic contract (DESIGN.md §15).
//!
//! **Bitwise tier:** every dispatched kernel (`dot`, `dot2`, `dot4`,
//! `norm2_sq`, `axpy`, `scale`, `fused_axpy_scale`) must be
//! bit-for-bit equal to the scalar reference in `linalg::vector` on
//! every backend the host supports — over hostile values (NaN
//! payloads, ±inf, subnormals, signed zeros, huge/tiny magnitudes) and
//! every SIMD remainder length 0..=17. NaN *results* are compared as
//! "both NaN" rather than payload-exact: Rust's scalar semantics leave
//! the propagated payload unspecified (LLVM commutes `fmul`), so
//! payload-exactness is unimplementable even scalar-vs-scalar — see the
//! caveat in `linalg::backend`'s docs. On top of the per-kernel
//! property, full training must release bitwise-identical `.aemb`
//! bytes whichever backend is active, at 1 and 4 threads.
//!
//! **Relaxed tier:** `RelaxedKernels::dot` may reassociate (FMA lanes)
//! but must be deterministic per backend and within the documented
//! ~`n·eps` relative bound of the scalar sum — and must be *unreachable*
//! from the training crate: `Pipeline::train` bottoms out in
//! `advsgm-core`, whose sources this suite scans for any mention of the
//! opt-in type.

use advsgm::core::{AdvSgmConfig, ModelVariant, ShardedTrainer, Trainer};
use advsgm::graph::generators::classic::karate_club;
use advsgm::linalg::backend::{self, Backend, RelaxedKernels};
use advsgm::linalg::vector;
use proptest::prelude::*;
use proptest::strategy::Strategy;
use proptest::TestRng;

/// Strategy over awkward `f64`s: quiet NaNs with distinct payloads,
/// ±inf, ±0, subnormals, boundary magnitudes, and ordinary mixed-sign
/// values. Heavily weighted toward the specials — the point is payload
/// and sign-of-zero propagation, not average-case arithmetic.
struct Awkward;

impl Strategy for Awkward {
    type Value = f64;
    fn sample_value(&self, rng: &mut TestRng) -> f64 {
        match rng.below(12) {
            0 => f64::from_bits(0x7ff8_0000_0000_0001), // quiet NaN, payload 1
            1 => f64::from_bits(0xfff8_dead_beef_cafe), // negative NaN, junk payload
            2 => f64::INFINITY,
            3 => f64::NEG_INFINITY,
            4 => 0.0,
            5 => -0.0,
            6 => f64::MIN_POSITIVE / 8.0, // subnormal
            7 => -f64::MIN_POSITIVE,
            8 => f64::MAX / 4.0,
            9 => -f64::MIN_POSITIVE * 3.0, // negative subnormal
            _ => rng.gen_range(-1e3f64..1e3),
        }
    }
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

/// Bit-equality with the documented NaN caveat: non-NaN results must be
/// bit-exact; NaN results need only both be NaN (payload unspecified).
fn same_bits_mod_nan(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan())
}

fn all_same_bits_mod_nan(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(&x, &y)| same_bits_mod_nan(x, y))
}

fn supported_backends() -> Vec<Backend> {
    Backend::ALL
        .into_iter()
        .filter(|b| b.is_supported())
        .collect()
}

proptest! {
    /// Per-kernel bitwise equality: scalar reference vs every supported
    /// backend, across all remainder lengths 0..=17 (prefixes of one
    /// 17-element draw) and awkward values.
    #[test]
    fn bitwise_tier_matches_scalar_on_awkward_values(
        x in proptest::collection::vec(Awkward, 17),
        a in proptest::collection::vec(Awkward, 17),
        b in proptest::collection::vec(Awkward, 17),
        c in proptest::collection::vec(Awkward, 17),
        d in proptest::collection::vec(Awkward, 17),
        alpha in Awkward,
        beta in Awkward,
    ) {
        for backend in supported_backends() {
            for n in 0..=17usize {
                let (x, a, b, c, d) = (&x[..n], &a[..n], &b[..n], &c[..n], &d[..n]);

                prop_assert!(
                    same_bits_mod_nan(backend::dot_with(backend, x, a), vector::dot(x, a)),
                    "dot: backend {} n {}", backend, n
                );
                prop_assert!(
                    same_bits_mod_nan(
                        backend::norm2_sq_with(backend, x),
                        vector::norm2_sq(x)
                    ),
                    "norm2_sq: backend {} n {}", backend, n
                );

                let (da, db) = backend::dot2_with(backend, x, a, b);
                let (ra, rb) = vector::dot2(x, a, b);
                prop_assert!(same_bits_mod_nan(da, ra), "dot2.0: backend {} n {}", backend, n);
                prop_assert!(same_bits_mod_nan(db, rb), "dot2.1: backend {} n {}", backend, n);

                let quad = backend::dot4_with(backend, x, a, b, c, d);
                let refq = vector::dot4(x, a, b, c, d);
                for lane in 0..4 {
                    prop_assert!(
                        same_bits_mod_nan(quad[lane], refq[lane]),
                        "dot4 lane {}: backend {} n {}", lane, backend, n
                    );
                }

                let mut y_fast = a.to_vec();
                let mut y_ref = a.to_vec();
                backend::axpy_with(backend, alpha, x, &mut y_fast);
                vector::axpy(alpha, x, &mut y_ref);
                prop_assert!(
                    all_same_bits_mod_nan(&y_fast, &y_ref),
                    "axpy: backend {} n {}", backend, n
                );

                let mut s_fast = b.to_vec();
                let mut s_ref = b.to_vec();
                backend::scale_with(backend, &mut s_fast, alpha);
                vector::scale(&mut s_ref, alpha);
                prop_assert!(
                    all_same_bits_mod_nan(&s_fast, &s_ref),
                    "scale: backend {} n {}", backend, n
                );

                let mut f_fast = c.to_vec();
                let mut f_ref = c.to_vec();
                backend::fused_axpy_scale_with(backend, &mut f_fast, alpha, x, beta);
                vector::fused_axpy_scale(&mut f_ref, alpha, x, beta);
                prop_assert!(
                    all_same_bits_mod_nan(&f_fast, &f_ref),
                    "fused_axpy_scale: backend {} n {}", backend, n
                );
            }
        }
    }

    /// The relaxed tier is deterministic per backend and within the
    /// documented relative bound of the scalar sum on finite inputs.
    #[test]
    fn relaxed_tier_is_deterministic_and_within_bound(
        x in proptest::collection::vec(-100.0f64..100.0, 17),
        y in proptest::collection::vec(-100.0f64..100.0, 17),
    ) {
        for backend in supported_backends() {
            let kernels = RelaxedKernels::with_backend(backend);
            for n in 0..=17usize {
                let (x, y) = (&x[..n], &y[..n]);
                let fast = kernels.dot(x, y);
                prop_assert_eq!(
                    fast.to_bits(),
                    kernels.dot(x, y).to_bits(),
                    "relaxed dot not deterministic: backend {} n {}", backend, n
                );
                let exact = vector::dot(x, y);
                // Documented bound: ~n * machine-eps relative; 1e-12 is
                // orders of magnitude of slack at n <= 17.
                let tolerance = 1e-12 * exact.abs().max(1.0);
                prop_assert!(
                    (fast - exact).abs() <= tolerance,
                    "relaxed dot drift {} vs {} (backend {}, n {})",
                    fast, exact, backend, n
                );
            }
        }
    }
}

/// Compile-visibility guard: the relaxed tier must be unreachable from
/// `Pipeline::train`. Training bottoms out in `advsgm-core` (the three
/// engines) over `advsgm-linalg`'s bitwise surface, so *no* source file
/// of the core crate — and none of the training-side pipeline module —
/// may name the opt-in type. (Rust privacy can't express "this crate
/// must not use that public type", so the boundary is enforced by scan;
/// the type's only constructors are `opt_in`/`with_backend`, making any
/// use textually visible.)
#[test]
fn relaxed_kernels_unreachable_from_training() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut offenders = Vec::new();
    let mut stack = vec![root.join("crates/core/src")];
    let mut files = Vec::new();
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).expect("readable source tree") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.push(root.join("src/api/pipeline.rs"));
    files.push(root.join("src/api/builder.rs"));
    assert!(
        files.len() > 10,
        "source scan found too few files to be credible"
    );
    for path in files {
        let source = std::fs::read_to_string(&path).expect("readable source file");
        if source.contains("RelaxedKernels") || source.contains("dot_relaxed") {
            offenders.push(path);
        }
    }
    assert!(
        offenders.is_empty(),
        "relaxed-tier kernels referenced from training-side sources: {offenders:?}"
    );
}

/// The acceptance gate: a full train→release is bitwise-identical under
/// the scalar backend and the host's strongest backend, at 1 and 4
/// threads, down to the released `.aemb` bytes. On a scalar-only host
/// the two backends coincide and the assertions are trivially true
/// (still exercised — `force` is always valid for supported backends).
#[test]
fn training_release_is_backend_invariant() {
    let g = karate_club();
    let native = Backend::detect();

    for threads in [1usize, 4] {
        let mut cfg = AdvSgmConfig::test_small(ModelVariant::AdvSgm).with_threads(threads);
        cfg.seed = 42;

        backend::force(Backend::Scalar);
        let scalar_run = if threads == 1 {
            Trainer::fit(&g, cfg.clone()).unwrap()
        } else {
            ShardedTrainer::fit(&g, cfg.clone()).unwrap()
        };
        let scalar_bytes = advsgm::api::PipelineBuilder::from_config(cfg.clone())
            .build(&g)
            .unwrap()
            .train()
            .unwrap()
            .release_bytes();

        backend::force(native);
        let native_run = if threads == 1 {
            Trainer::fit(&g, cfg.clone()).unwrap()
        } else {
            ShardedTrainer::fit(&g, cfg.clone()).unwrap()
        };
        let native_bytes = advsgm::api::PipelineBuilder::from_config(cfg)
            .build(&g)
            .unwrap()
            .train()
            .unwrap()
            .release_bytes();

        assert_eq!(
            bits(native_run.node_vectors.as_slice()),
            bits(scalar_run.node_vectors.as_slice()),
            "embeddings differ between scalar and {native} at {threads} thread(s)"
        );
        assert_eq!(
            native_bytes, scalar_bytes,
            ".aemb release bytes differ between scalar and {native} at {threads} thread(s)"
        );
    }
}

/// Exact serving is backend-invariant too: the full fused top-k scan
/// returns bit-identical scores under scalar and the native backend
/// (including a 4k+1 store, exercising the dispatched remainder row).
#[test]
fn exact_topk_is_backend_invariant() {
    use advsgm::linalg::topk::top_k_rows;
    use advsgm::linalg::DenseMatrix;

    let n = 4 * 6 + 1; // remainder row exercised
    let dim = 24;
    let m = DenseMatrix::from_fn(n, dim, |i, j| ((i * 37 + j * 11) as f64 * 0.173).sin());
    let q: Vec<f64> = (0..dim).map(|j| (j as f64 * 0.71).cos()).collect();

    backend::force(Backend::Scalar);
    let scalar = top_k_rows(&m, &q, n, None);
    backend::force(Backend::detect());
    let native = top_k_rows(&m, &q, n, None);

    assert_eq!(scalar.len(), native.len());
    for (s, f) in scalar.iter().zip(&native) {
        assert_eq!(s.index, f.index);
        assert_eq!(s.score.to_bits(), f.score.to_bits());
    }
}
