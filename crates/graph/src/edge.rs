//! Undirected edges in canonical form.

use std::fmt;

use crate::node::NodeId;

/// An undirected edge stored in canonical orientation (`u <= v`).
///
/// Canonicalising at construction makes deduplication, hashing, and set
/// membership trivial: `(a, b)` and `(b, a)` are the same edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge {
    u: NodeId,
    v: NodeId,
}

impl Edge {
    /// Creates a canonical undirected edge between two distinct nodes.
    ///
    /// # Panics
    /// Panics on a self-loop; the paper works with simple graphs
    /// ("all datasets are pre-processed to remove self-loops"), so a
    /// self-loop reaching this type is a logic error upstream.
    #[inline]
    pub fn new(a: NodeId, b: NodeId) -> Self {
        assert_ne!(a, b, "self-loop at {a} is not allowed in a simple graph");
        if a <= b {
            Edge { u: a, v: b }
        } else {
            Edge { u: b, v: a }
        }
    }

    /// Creates an edge from raw `u32` endpoints.
    #[inline]
    pub fn from_raw(a: u32, b: u32) -> Self {
        Edge::new(NodeId(a), NodeId(b))
    }

    /// The smaller endpoint.
    #[inline]
    pub fn u(&self) -> NodeId {
        self.u
    }

    /// The larger endpoint.
    #[inline]
    pub fn v(&self) -> NodeId {
        self.v
    }

    /// Both endpoints as a tuple `(u, v)` with `u <= v`.
    #[inline]
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        (self.u, self.v)
    }

    /// Whether `n` is one of the endpoints.
    #[inline]
    pub fn touches(&self, n: NodeId) -> bool {
        self.u == n || self.v == n
    }

    /// Given one endpoint, returns the other; `None` if `n` is not incident.
    #[inline]
    pub fn other(&self, n: NodeId) -> Option<NodeId> {
        if n == self.u {
            Some(self.v)
        } else if n == self.v {
            Some(self.u)
        } else {
            None
        }
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.u, self.v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_orientation() {
        let e1 = Edge::from_raw(5, 2);
        let e2 = Edge::from_raw(2, 5);
        assert_eq!(e1, e2);
        assert_eq!(e1.u(), NodeId(2));
        assert_eq!(e1.v(), NodeId(5));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        Edge::from_raw(3, 3);
    }

    #[test]
    fn touches_and_other() {
        let e = Edge::from_raw(1, 4);
        assert!(e.touches(NodeId(1)));
        assert!(e.touches(NodeId(4)));
        assert!(!e.touches(NodeId(2)));
        assert_eq!(e.other(NodeId(1)), Some(NodeId(4)));
        assert_eq!(e.other(NodeId(4)), Some(NodeId(1)));
        assert_eq!(e.other(NodeId(9)), None);
    }

    #[test]
    fn display_format() {
        assert_eq!(Edge::from_raw(4, 1).to_string(), "(v1, v4)");
    }

    #[test]
    fn hash_equality_for_reversed_pairs() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(Edge::from_raw(1, 2));
        assert!(s.contains(&Edge::from_raw(2, 1)));
    }
}
