//! Link-prediction edge splits (Section VI-A of the paper).
//!
//! "All existing links in each dataset are randomly split into a training
//! set 90% and a test set 10%. For the test set, we sample the same number
//! of node pairs without connected edges as negative test links [...] For
//! the training set, we additionally sample the same number of node pairs
//! without edges to construct negative training data."

use std::collections::HashSet;

use rand::Rng;

use crate::edge::Edge;
use crate::error::GraphError;
use crate::graph::Graph;

/// The output of a link-prediction split.
#[derive(Debug, Clone)]
pub struct LinkPredictionSplit {
    /// Training graph (the retained edges; same node set and labels).
    pub train: Graph,
    /// Held-out positive test edges.
    pub test_pos: Vec<Edge>,
    /// Sampled non-edges used as negative test pairs (same count as
    /// `test_pos`).
    pub test_neg: Vec<Edge>,
    /// Sampled non-edges matching the training-set size, for classifiers
    /// that need negative training data.
    pub train_neg: Vec<Edge>,
}

/// Splits `graph` into train/test for link prediction.
///
/// `test_fraction` is the held-out share of edges (the paper uses 0.10).
/// Negative pairs are distinct, are non-edges of the *full* graph, and do
/// not collide with each other.
///
/// # Errors
/// Returns [`GraphError::EmptyGraph`] if the graph has no edges, or
/// [`GraphError::InvalidParameter`] for an out-of-range fraction or when the
/// graph is too dense to supply the requested number of non-edges.
pub fn link_prediction_split(
    graph: &Graph,
    test_fraction: f64,
    rng: &mut impl Rng,
) -> Result<LinkPredictionSplit, GraphError> {
    if graph.num_edges() == 0 {
        return Err(GraphError::EmptyGraph {
            op: "link prediction split",
        });
    }
    if !(0.0..1.0).contains(&test_fraction) {
        return Err(GraphError::InvalidParameter {
            name: "test_fraction",
            reason: format!("must be in [0,1), got {test_fraction}"),
        });
    }
    let m = graph.num_edges();
    let n_test = ((m as f64) * test_fraction).round() as usize;
    let n_train = m - n_test;
    // Rounding on small graphs can silently defeat the split: a positive
    // fraction that rounds to zero held-out edges, or one that rounds to
    // holding out *every* edge. Both make the caller's evaluation
    // meaningless, so reject them instead of returning a degenerate split.
    if test_fraction > 0.0 && n_test == 0 {
        return Err(GraphError::InvalidParameter {
            name: "test_fraction",
            reason: format!(
                "{test_fraction} of {m} edges rounds to zero held-out test \
                 edges; use a larger fraction or a larger graph"
            ),
        });
    }
    if n_train == 0 {
        return Err(GraphError::InvalidParameter {
            name: "test_fraction",
            reason: format!(
                "{test_fraction} of {m} edges rounds to holding out every \
                 edge, leaving an empty training graph"
            ),
        });
    }

    // Shuffle edge indices, take the prefix as test.
    let mut idx: Vec<usize> = (0..m).collect();
    for i in (1..m).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    let test_pos: Vec<Edge> = idx[..n_test].iter().map(|&i| graph.edges()[i]).collect();
    let train_edges: Vec<Edge> = idx[n_test..].iter().map(|&i| graph.edges()[i]).collect();

    let max_pairs = graph.num_nodes() * (graph.num_nodes() - 1) / 2;
    let needed = n_test + n_train;
    if needed + m > max_pairs {
        return Err(GraphError::InvalidParameter {
            name: "graph",
            reason: format!(
                "cannot sample {needed} distinct non-edges: graph has {m} edges \
                 of {max_pairs} possible pairs"
            ),
        });
    }
    let negs = sample_non_edges(graph, needed, rng)?;
    let (test_neg, train_neg) = negs.split_at(n_test);

    Ok(LinkPredictionSplit {
        train: graph.with_edges(train_edges),
        test_pos,
        test_neg: test_neg.to_vec(),
        train_neg: train_neg.to_vec(),
    })
}

/// The output of a sign-prediction split over a signed graph.
#[derive(Debug, Clone)]
pub struct SignPredictionSplit {
    /// Training graph: the retained edges with their signs (same node set
    /// and labels).
    pub train: Graph,
    /// Held-out friend edges (the "positive" class of sign prediction).
    pub test_friend: Vec<Edge>,
    /// Held-out foe edges (the "negative" class).
    pub test_foe: Vec<Edge>,
}

/// Splits a **signed** graph into train/test for sign prediction (arXiv
/// 2512.00307 protocol): a `test_fraction` share of edges is held out,
/// stratified so friend and foe edges are held out at the same rate, and
/// the evaluator scores held-out friend edges against held-out foe edges.
///
/// # Errors
/// Returns [`GraphError::InvalidParameter`] when the graph is unsigned,
/// has no edges of one polarity, the fraction is out of range, or rounding
/// would leave either held-out class empty;
/// [`GraphError::EmptyGraph`] when the graph has no edges.
pub fn sign_prediction_split(
    graph: &Graph,
    test_fraction: f64,
    rng: &mut impl Rng,
) -> Result<SignPredictionSplit, GraphError> {
    if graph.num_edges() == 0 {
        return Err(GraphError::EmptyGraph {
            op: "sign prediction split",
        });
    }
    let signs = graph.signs().ok_or(GraphError::InvalidParameter {
        name: "graph",
        reason: "sign prediction needs a signed graph (no sign channel attached)".into(),
    })?;
    if !(0.0..1.0).contains(&test_fraction) || test_fraction == 0.0 {
        return Err(GraphError::InvalidParameter {
            name: "test_fraction",
            reason: format!("must be in (0,1), got {test_fraction}"),
        });
    }
    // Stratify: shuffle friend and foe edge indices independently so the
    // held-out set preserves the polarity mix.
    let mut friend_idx: Vec<usize> = Vec::new();
    let mut foe_idx: Vec<usize> = Vec::new();
    for (i, &foe) in signs.iter().enumerate() {
        if foe {
            foe_idx.push(i);
        } else {
            friend_idx.push(i);
        }
    }
    let mut held = |name: &'static str, idx: &mut Vec<usize>| -> Result<usize, GraphError> {
        let n = idx.len();
        let k = ((n as f64) * test_fraction).round() as usize;
        if k == 0 || k == n {
            return Err(GraphError::InvalidParameter {
                name: "test_fraction",
                reason: format!(
                    "{test_fraction} of {n} {name} edges rounds to a degenerate \
                     held-out set ({k} of {n})"
                ),
            });
        }
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            idx.swap(i, j);
        }
        Ok(k)
    };
    let k_friend = held("friend", &mut friend_idx)?;
    let k_foe = held("foe", &mut foe_idx)?;

    let test_friend: Vec<Edge> = friend_idx[..k_friend]
        .iter()
        .map(|&i| graph.edges()[i])
        .collect();
    let test_foe: Vec<Edge> = foe_idx[..k_foe].iter().map(|&i| graph.edges()[i]).collect();
    let mut train_idx: Vec<usize> = friend_idx[k_friend..]
        .iter()
        .chain(&foe_idx[k_foe..])
        .copied()
        .collect();
    // Keep the training edge order deterministic and independent of the
    // shuffles above: restore original edge-list order.
    train_idx.sort_unstable();

    Ok(SignPredictionSplit {
        train: graph.with_edge_subset(&train_idx),
        test_friend,
        test_foe,
    })
}

/// Samples `count` distinct node pairs that are not edges of `graph`.
///
/// # Errors
/// Returns [`GraphError::InvalidParameter`] if rejection sampling cannot
/// find enough non-edges (pathologically dense graphs).
pub fn sample_non_edges(
    graph: &Graph,
    count: usize,
    rng: &mut impl Rng,
) -> Result<Vec<Edge>, GraphError> {
    let n = graph.num_nodes();
    if n < 2 {
        return Err(GraphError::InvalidParameter {
            name: "graph",
            reason: "need at least two nodes to sample non-edges".into(),
        });
    }
    let mut seen: HashSet<Edge> = HashSet::with_capacity(count * 2);
    let mut out = Vec::with_capacity(count);
    let max_attempts = count.saturating_mul(500).max(10_000);
    let mut attempts = 0usize;
    while out.len() < count {
        attempts += 1;
        if attempts > max_attempts {
            return Err(GraphError::InvalidParameter {
                name: "count",
                reason: format!(
                    "found only {} of {count} non-edges after {max_attempts} attempts",
                    out.len()
                ),
            });
        }
        let a = rng.gen_range(0..n as u32);
        let b = rng.gen_range(0..n as u32);
        if a == b {
            continue;
        }
        let e = Edge::from_raw(a, b);
        if graph.has_edge(e.u(), e.v()) {
            continue;
        }
        if seen.insert(e) {
            out.push(e);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::erdos_renyi::gnm_random_graph;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn fixture() -> Graph {
        let mut rng = SmallRng::seed_from_u64(42);
        gnm_random_graph(200, 1000, &mut rng)
    }

    #[test]
    fn split_sizes_match_paper_protocol() {
        let g = fixture();
        let mut rng = SmallRng::seed_from_u64(1);
        let s = link_prediction_split(&g, 0.10, &mut rng).unwrap();
        assert_eq!(s.test_pos.len(), 100);
        assert_eq!(s.train.num_edges(), 900);
        assert_eq!(s.test_neg.len(), s.test_pos.len());
        assert_eq!(s.train_neg.len(), s.train.num_edges());
    }

    #[test]
    fn test_and_train_edges_are_disjoint() {
        let g = fixture();
        let mut rng = SmallRng::seed_from_u64(2);
        let s = link_prediction_split(&g, 0.10, &mut rng).unwrap();
        let train_set: HashSet<Edge> = s.train.edges().iter().copied().collect();
        for e in &s.test_pos {
            assert!(!train_set.contains(e), "test edge {e} leaked into train");
        }
        // Union reconstructs the original edge set.
        assert_eq!(train_set.len() + s.test_pos.len(), g.num_edges());
    }

    #[test]
    fn negatives_are_true_non_edges() {
        let g = fixture();
        let mut rng = SmallRng::seed_from_u64(3);
        let s = link_prediction_split(&g, 0.10, &mut rng).unwrap();
        for e in s.test_neg.iter().chain(&s.train_neg) {
            assert!(!g.has_edge(e.u(), e.v()), "negative {e} is a real edge");
        }
    }

    #[test]
    fn negatives_are_distinct() {
        let g = fixture();
        let mut rng = SmallRng::seed_from_u64(4);
        let s = link_prediction_split(&g, 0.10, &mut rng).unwrap();
        let all: Vec<Edge> = s.test_neg.iter().chain(&s.train_neg).copied().collect();
        let set: HashSet<Edge> = all.iter().copied().collect();
        assert_eq!(set.len(), all.len(), "duplicate negatives");
    }

    #[test]
    fn labels_survive_split() {
        let mut rng = SmallRng::seed_from_u64(5);
        let g = crate::generators::sbm::degree_corrected_sbm(
            &crate::generators::sbm::SbmConfig {
                num_nodes: 100,
                num_edges: 400,
                num_blocks: 4,
                mixing: 0.1,
                degree_exponent: 2.5,
            },
            &mut rng,
        );
        let s = link_prediction_split(&g, 0.10, &mut rng).unwrap();
        assert_eq!(s.train.labels(), g.labels());
    }

    #[test]
    fn empty_graph_rejected() {
        let g = Graph::from_parts(5, vec![], None);
        let mut rng = SmallRng::seed_from_u64(6);
        assert!(link_prediction_split(&g, 0.1, &mut rng).is_err());
    }

    #[test]
    fn bad_fraction_rejected() {
        let g = fixture();
        let mut rng = SmallRng::seed_from_u64(7);
        assert!(link_prediction_split(&g, 1.0, &mut rng).is_err());
        assert!(link_prediction_split(&g, -0.1, &mut rng).is_err());
    }

    #[test]
    fn fraction_rounding_to_zero_test_edges_is_rejected() {
        // 4 edges at 10%: round(0.4) == 0 held-out edges used to be
        // returned silently; it must now be a typed error.
        let g = {
            let mut rng = SmallRng::seed_from_u64(9);
            gnm_random_graph(10, 4, &mut rng)
        };
        let mut rng = SmallRng::seed_from_u64(10);
        let err = link_prediction_split(&g, 0.10, &mut rng).unwrap_err();
        assert!(
            matches!(err, GraphError::InvalidParameter { name, ref reason }
                if name == "test_fraction" && reason.contains("zero held-out")),
            "{err}"
        );
    }

    #[test]
    fn fraction_rounding_to_empty_training_graph_is_rejected() {
        // A single edge at 50%: round(0.5) == 1 holds out the only edge,
        // leaving nothing to train on.
        let g = Graph::from_parts(4, vec![Edge::from_raw(0, 1)], None);
        let mut rng = SmallRng::seed_from_u64(11);
        let err = link_prediction_split(&g, 0.5, &mut rng).unwrap_err();
        assert!(
            matches!(err, GraphError::InvalidParameter { name, ref reason }
                if name == "test_fraction" && reason.contains("empty training graph")),
            "{err}"
        );
    }

    #[test]
    fn zero_fraction_is_still_an_explicit_no_split() {
        // test_fraction == 0.0 asks for no held-out edges; that is not a
        // rounding accident and must keep working.
        let g = fixture();
        let mut rng = SmallRng::seed_from_u64(12);
        let s = link_prediction_split(&g, 0.0, &mut rng).unwrap();
        assert!(s.test_pos.is_empty());
        assert_eq!(s.train.num_edges(), g.num_edges());
    }

    #[test]
    fn non_edge_sampler_respects_count() {
        let g = fixture();
        let mut rng = SmallRng::seed_from_u64(8);
        let negs = sample_non_edges(&g, 250, &mut rng).unwrap();
        assert_eq!(negs.len(), 250);
    }

    fn signed_fixture() -> Graph {
        use crate::generators::signed::{signed_sbm, SignedSbmConfig};
        let mut rng = SmallRng::seed_from_u64(77);
        signed_sbm(
            &SignedSbmConfig {
                base: crate::generators::sbm::SbmConfig {
                    num_nodes: 150,
                    num_edges: 600,
                    num_blocks: 3,
                    mixing: 0.3,
                    degree_exponent: 2.5,
                },
                flip_probability: 0.05,
            },
            &mut rng,
        )
    }

    #[test]
    fn sign_split_is_stratified_and_sign_preserving() {
        let g = signed_fixture();
        let mut rng = SmallRng::seed_from_u64(20);
        let s = sign_prediction_split(&g, 0.2, &mut rng).unwrap();
        assert!(s.train.is_signed());
        assert_eq!(
            s.train.num_edges() + s.test_friend.len() + s.test_foe.len(),
            g.num_edges()
        );
        // Held-out rates match the fraction per class.
        let friends = g.num_edges() - g.num_foe_edges();
        let foes = g.num_foe_edges();
        assert_eq!(s.test_friend.len(), (friends as f64 * 0.2).round() as usize);
        assert_eq!(s.test_foe.len(), (foes as f64 * 0.2).round() as usize);
        // Training signs still agree with the original graph's.
        let originals: std::collections::HashMap<Edge, bool> = g
            .edges()
            .iter()
            .zip(g.signs().unwrap())
            .map(|(e, &f)| (*e, f))
            .collect();
        for (i, e) in s.train.edges().iter().enumerate() {
            assert_eq!(s.train.edge_is_foe(i), originals[e], "sign drift on {e}");
        }
        s.train.check_invariants().unwrap();
    }

    #[test]
    fn sign_split_rejects_unsigned_graphs() {
        let g = fixture();
        let mut rng = SmallRng::seed_from_u64(21);
        let err = sign_prediction_split(&g, 0.2, &mut rng).unwrap_err();
        assert!(err.to_string().contains("signed graph"), "{err}");
    }

    #[test]
    fn sign_split_rejects_degenerate_fractions() {
        let g = signed_fixture();
        let mut rng = SmallRng::seed_from_u64(22);
        assert!(sign_prediction_split(&g, 0.0, &mut rng).is_err());
        assert!(sign_prediction_split(&g, 1.0, &mut rng).is_err());
        // One foe edge at 10%: rounds to zero held-out foes → typed error.
        let tiny = Graph::from_parts_signed(
            6,
            vec![
                Edge::from_raw(0, 1),
                Edge::from_raw(1, 2),
                Edge::from_raw(2, 3),
                Edge::from_raw(3, 4),
                Edge::from_raw(4, 5),
            ],
            Some(vec![false, false, false, false, true]),
            None,
        );
        let err = sign_prediction_split(&tiny, 0.1, &mut rng).unwrap_err();
        assert!(err.to_string().contains("degenerate"), "{err}");
    }

    #[test]
    fn sign_split_deterministic_under_seed() {
        let g = signed_fixture();
        let a = sign_prediction_split(&g, 0.2, &mut SmallRng::seed_from_u64(30)).unwrap();
        let b = sign_prediction_split(&g, 0.2, &mut SmallRng::seed_from_u64(30)).unwrap();
        assert_eq!(a.test_friend, b.test_friend);
        assert_eq!(a.test_foe, b.test_foe);
        assert_eq!(a.train.edges(), b.train.edges());
        assert_eq!(a.train.signs(), b.train.signs());
    }
}
