//! # advsgm-graph
//!
//! Graph substrate for the AdvSGM workspace: storage, synthetic generators,
//! and the sampling primitives the paper's training loop consumes.
//!
//! * [`graph::Graph`] — an undirected simple graph (self-loops removed, as in
//!   the paper's pre-processing) with CSR adjacency and optional node labels;
//! * [`builder::GraphBuilder`] — ingestion with dedup/self-loop removal;
//! * [`generators`] — Erdős–Rényi, Barabási–Albert, Watts–Strogatz, planted
//!   partition / degree-corrected SBM (the synthetic stand-ins for the six
//!   evaluation datasets), plus small deterministic graphs for tests;
//! * [`sampling`] — alias tables, uniform edge batches, the paper's
//!   Algorithm 2 negative sampling, and DeepWalk/node2vec random walks;
//! * [`partition`] — the 90/10 link-prediction edge split of Section VI-A;
//! * [`buckets`] — contiguous node buckets and the `P x P` bucket-pair
//!   schedule behind out-of-core partitioned training;
//! * [`io`] — plain-text edge-list and label readers/writers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buckets;
pub mod builder;
pub mod csr;
pub mod edge;
pub mod error;
pub mod generators;
pub mod graph;
pub mod io;
pub mod node;
pub mod partition;
pub mod sampling;

pub use buckets::NodeBuckets;
pub use builder::GraphBuilder;
pub use edge::Edge;
pub use error::GraphError;
pub use graph::Graph;
pub use node::NodeId;
