//! Degree-corrected planted-partition (stochastic block model) generator.
//!
//! This is the dataset stand-in for the paper's six real graphs (DESIGN.md
//! §1): it produces graphs with (a) a prescribed node/edge count, (b)
//! heavy-tailed degrees (Chung–Lu weights with a power-law profile), and
//! (c) planted community structure whose block ids double as class labels
//! for the node-clustering task.

use std::collections::HashSet;

use rand::Rng;

use crate::edge::Edge;
use crate::graph::Graph;
use crate::sampling::alias::AliasTable;

/// Configuration for [`degree_corrected_sbm`].
#[derive(Debug, Clone, PartialEq)]
pub struct SbmConfig {
    /// Number of nodes `|V|`.
    pub num_nodes: usize,
    /// Target number of undirected edges `|E|` (achieved exactly unless the
    /// graph would need to be denser than the model supports).
    pub num_edges: usize,
    /// Number of planted blocks (class labels); `>= 1`.
    pub num_blocks: usize,
    /// Probability that a sampled edge crosses blocks, in `[0, 1)`.
    /// Small values give strong, clusterable communities.
    pub mixing: f64,
    /// Degree power-law exponent `gamma > 1`; node weights follow
    /// `w_i ~ rank^{-1/(gamma-1)}` (Chung–Lu). Typical social graphs: 2.2–3.
    pub degree_exponent: f64,
}

impl SbmConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics on out-of-domain parameters; configuration errors here are
    /// programming bugs, not runtime conditions.
    fn validate(&self) {
        assert!(self.num_nodes >= 2, "need at least 2 nodes");
        assert!(self.num_blocks >= 1, "need at least one block");
        assert!(self.num_blocks <= self.num_nodes, "more blocks than nodes");
        assert!(
            (0.0..1.0).contains(&self.mixing),
            "mixing must be in [0,1), got {}",
            self.mixing
        );
        assert!(
            self.degree_exponent > 1.0,
            "degree exponent must exceed 1, got {}",
            self.degree_exponent
        );
        let max_edges = self.num_nodes * (self.num_nodes - 1) / 2;
        assert!(
            self.num_edges <= max_edges / 2,
            "edge target {} too dense for {} nodes (max supported {})",
            self.num_edges,
            self.num_nodes,
            max_edges / 2
        );
    }
}

/// Generates a degree-corrected planted-partition graph.
///
/// Nodes are assigned to `num_blocks` balanced blocks (block id = label).
/// Each edge first decides intra- vs inter-block by `mixing`, then samples
/// both endpoints weight-proportionally (weights are power-law distributed,
/// shuffled so hubs appear throughout blocks). Duplicate edges and
/// self-loops are rejected, so exactly `num_edges` distinct edges result.
pub fn degree_corrected_sbm(cfg: &SbmConfig, rng: &mut impl Rng) -> Graph {
    cfg.validate();
    let n = cfg.num_nodes;
    let k = cfg.num_blocks;

    // Balanced block assignment by shuffled round-robin, so block sizes
    // differ by at most one and block membership is independent of node id.
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    let mut labels = vec![0u32; n];
    let mut blocks: Vec<Vec<u32>> = vec![Vec::new(); k];
    for (pos, &node) in perm.iter().enumerate() {
        let b = pos % k;
        labels[node] = b as u32;
        blocks[b].push(node as u32);
    }

    // Chung-Lu power-law weights: w(rank) = (rank + r0)^{-1/(gamma-1)}.
    // The offset r0 bounds the ratio between the largest and smallest
    // weight, keeping rejection rates low while preserving a heavy tail.
    let power = 1.0 / (cfg.degree_exponent - 1.0);
    let r0 = 10.0;
    let mut weights = vec![0.0f64; n];
    let mut rank_perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        rank_perm.swap(i, j);
    }
    for (rank, &node) in rank_perm.iter().enumerate() {
        weights[node] = (rank as f64 + r0).powf(-power);
    }

    // Weight-proportional samplers: one global, one per block.
    let global = AliasTable::new(&weights).expect("positive weights");
    let per_block: Vec<AliasTable> = blocks
        .iter()
        .map(|members| {
            let w: Vec<f64> = members.iter().map(|&m| weights[m as usize]).collect();
            AliasTable::new(&w).expect("positive weights")
        })
        .collect();

    let mut seen: HashSet<Edge> = HashSet::with_capacity(cfg.num_edges * 2);
    let mut edges: Vec<Edge> = Vec::with_capacity(cfg.num_edges);
    let max_attempts = cfg.num_edges.saturating_mul(200).max(10_000);
    let mut attempts = 0usize;
    while edges.len() < cfg.num_edges {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "SBM rejection sampling exceeded {max_attempts} attempts; \
             configuration too dense or too concentrated"
        );
        let intra = k == 1 || rng.gen::<f64>() >= cfg.mixing;
        let (a, b) = if intra {
            let blk = rng.gen_range(0..k);
            let members = &blocks[blk];
            if members.len() < 2 {
                continue;
            }
            let s = &per_block[blk];
            (members[s.sample(rng)], members[s.sample(rng)])
        } else {
            (global.sample(rng) as u32, global.sample(rng) as u32)
        };
        if a == b {
            continue;
        }
        if !intra && labels[a as usize] == labels[b as usize] {
            // The global sampler can land in one block; resample to keep the
            // inter-block fraction honest.
            continue;
        }
        let e = Edge::from_raw(a, b);
        if seen.insert(e) {
            edges.push(e);
        }
    }
    Graph::from_parts(n, edges, Some(labels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn cfg(n: usize, m: usize, k: usize, mix: f64) -> SbmConfig {
        SbmConfig {
            num_nodes: n,
            num_edges: m,
            num_blocks: k,
            mixing: mix,
            degree_exponent: 2.5,
        }
    }

    #[test]
    fn exact_counts_and_labels() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = degree_corrected_sbm(&cfg(500, 2000, 5, 0.1), &mut rng);
        assert_eq!(g.num_nodes(), 500);
        assert_eq!(g.num_edges(), 2000);
        assert_eq!(g.num_classes(), 5);
        g.check_invariants().unwrap();
    }

    #[test]
    fn blocks_are_balanced() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = degree_corrected_sbm(&cfg(103, 300, 4, 0.2), &mut rng);
        let labels = g.labels().unwrap();
        let mut counts = [0usize; 4];
        for &l in labels {
            counts[l as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max - min <= 1, "unbalanced blocks: {counts:?}");
    }

    #[test]
    fn mixing_controls_inter_block_fraction() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = degree_corrected_sbm(&cfg(400, 3000, 4, 0.1), &mut rng);
        let labels = g.labels().unwrap();
        let inter = g
            .edges()
            .iter()
            .filter(|e| labels[e.u().index()] != labels[e.v().index()])
            .count() as f64
            / g.num_edges() as f64;
        assert!(
            (inter - 0.1).abs() < 0.03,
            "inter-block fraction {inter} far from mixing 0.1"
        );
    }

    #[test]
    fn degrees_are_heavy_tailed() {
        let mut rng = SmallRng::seed_from_u64(4);
        let g = degree_corrected_sbm(&cfg(2000, 10_000, 8, 0.15), &mut rng);
        assert!(
            g.max_degree() as f64 > 4.0 * g.mean_degree(),
            "max {} vs mean {}",
            g.max_degree(),
            g.mean_degree()
        );
    }

    #[test]
    fn single_block_is_plain_chung_lu() {
        let mut rng = SmallRng::seed_from_u64(5);
        let g = degree_corrected_sbm(&cfg(200, 800, 1, 0.0), &mut rng);
        assert_eq!(g.num_classes(), 1);
        assert_eq!(g.num_edges(), 800);
    }

    #[test]
    fn deterministic_under_seed() {
        let c = cfg(300, 1200, 3, 0.2);
        let g1 = degree_corrected_sbm(&c, &mut SmallRng::seed_from_u64(9));
        let g2 = degree_corrected_sbm(&c, &mut SmallRng::seed_from_u64(9));
        assert_eq!(g1.edges(), g2.edges());
        assert_eq!(g1.labels(), g2.labels());
    }

    #[test]
    #[should_panic(expected = "too dense")]
    fn overly_dense_config_rejected() {
        let mut rng = SmallRng::seed_from_u64(6);
        degree_corrected_sbm(&cfg(10, 40, 2, 0.1), &mut rng);
    }
}
