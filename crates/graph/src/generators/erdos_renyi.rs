//! Erdős–Rényi random graphs.

use std::collections::HashSet;

use rand::Rng;

use crate::edge::Edge;
use crate::graph::Graph;

/// `G(n, m)`: exactly `m` distinct edges sampled uniformly at random.
///
/// # Panics
/// Panics if `m` exceeds the number of possible edges `n(n-1)/2`.
pub fn gnm_random_graph(n: usize, m: usize, rng: &mut impl Rng) -> Graph {
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(
        m <= max_edges,
        "requested {m} edges but only {max_edges} possible for n={n}"
    );
    let mut seen: HashSet<Edge> = HashSet::with_capacity(m);
    let mut edges = Vec::with_capacity(m);
    // Rejection sampling is efficient while m is well below max_edges; for
    // very dense requests fall back to enumerating and shuffling.
    if m * 3 < max_edges || n < 2 {
        while edges.len() < m {
            let a = rng.gen_range(0..n as u32);
            let b = rng.gen_range(0..n as u32);
            if a == b {
                continue;
            }
            let e = Edge::from_raw(a, b);
            if seen.insert(e) {
                edges.push(e);
            }
        }
    } else {
        let mut all = Vec::with_capacity(max_edges);
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                all.push(Edge::from_raw(i, j));
            }
        }
        // Partial Fisher-Yates: draw m items.
        for i in 0..m {
            let j = rng.gen_range(i..all.len());
            all.swap(i, j);
        }
        all.truncate(m);
        edges = all;
    }
    Graph::from_parts(n, edges, None)
}

/// `G(n, p)`: every possible edge included independently with probability `p`.
///
/// Uses the geometric skipping trick so the cost is proportional to the
/// number of generated edges rather than `n^2`.
///
/// # Panics
/// Panics if `p` is outside `[0, 1]`.
pub fn gnp_random_graph(n: usize, p: f64, rng: &mut impl Rng) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
    let mut edges = Vec::new();
    if p > 0.0 && n >= 2 {
        if p >= 1.0 {
            for i in 0..n as u32 {
                for j in (i + 1)..n as u32 {
                    edges.push(Edge::from_raw(i, j));
                }
            }
        } else {
            // Iterate over the implicit index of the upper triangle using
            // geometric jumps: skip ~Geom(p) candidates between edges.
            let lp = (1.0 - p).ln();
            let total = n * (n - 1) / 2;
            let mut idx: f64 = -1.0;
            loop {
                let u: f64 = 1.0 - rng.gen::<f64>(); // in (0, 1]
                idx += 1.0 + (u.ln() / lp).floor();
                if idx >= total as f64 {
                    break;
                }
                let k = idx as usize;
                let (i, j) = triangle_unrank(k, n);
                edges.push(Edge::from_raw(i as u32, j as u32));
            }
        }
    }
    Graph::from_parts(n, edges, None)
}

/// Maps a linear index `k` in `0..n(n-1)/2` to the pair `(i, j)` with
/// `i < j` in the row-major upper triangle.
fn triangle_unrank(k: usize, n: usize) -> (usize, usize) {
    // Row i starts at offset i*n - i(i+3)/2 ... solve by scanning from a
    // closed-form initial guess to stay exact with integers.
    let mut i = 0usize;
    let mut row_start = 0usize;
    loop {
        let row_len = n - i - 1;
        if k < row_start + row_len {
            let j = i + 1 + (k - row_start);
            return (i, j);
        }
        row_start += row_len;
        i += 1;
        debug_assert!(i < n, "triangle index out of range");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn gnm_exact_edge_count() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = gnm_random_graph(50, 200, &mut rng);
        assert_eq!(g.num_edges(), 200);
        g.check_invariants().unwrap();
    }

    #[test]
    fn gnm_dense_path_uses_enumeration() {
        let mut rng = SmallRng::seed_from_u64(2);
        // 10 nodes -> 45 possible; ask for 40 (dense branch).
        let g = gnm_random_graph(10, 40, &mut rng);
        assert_eq!(g.num_edges(), 40);
        g.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "only")]
    fn gnm_too_many_edges_panics() {
        let mut rng = SmallRng::seed_from_u64(3);
        gnm_random_graph(4, 100, &mut rng);
    }

    #[test]
    fn gnp_zero_and_one() {
        let mut rng = SmallRng::seed_from_u64(4);
        assert_eq!(gnp_random_graph(20, 0.0, &mut rng).num_edges(), 0);
        assert_eq!(gnp_random_graph(20, 1.0, &mut rng).num_edges(), 190);
    }

    #[test]
    fn gnp_expected_density() {
        let mut rng = SmallRng::seed_from_u64(5);
        let n = 200;
        let p = 0.05;
        let g = gnp_random_graph(n, p, &mut rng);
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.num_edges() as f64;
        // 5 sigma tolerance.
        let sigma = (expected * (1.0 - p)).sqrt();
        assert!(
            (got - expected).abs() < 5.0 * sigma,
            "edges={got} expected~{expected}"
        );
        g.check_invariants().unwrap();
    }

    #[test]
    fn triangle_unrank_covers_all_pairs() {
        let n = 7;
        let mut seen = std::collections::HashSet::new();
        for k in 0..(n * (n - 1) / 2) {
            let (i, j) = triangle_unrank(k, n);
            assert!(i < j && j < n, "bad pair ({i},{j})");
            assert!(seen.insert((i, j)), "duplicate pair ({i},{j})");
        }
        assert_eq!(seen.len(), n * (n - 1) / 2);
    }

    #[test]
    fn deterministic_under_seed() {
        let g1 = gnm_random_graph(30, 60, &mut SmallRng::seed_from_u64(7));
        let g2 = gnm_random_graph(30, 60, &mut SmallRng::seed_from_u64(7));
        assert_eq!(g1.edges(), g2.edges());
    }
}
