//! Signed planted-polarity generator (the arXiv 2512.00307 workload).
//!
//! Reuses the degree-corrected SBM machinery ([`degree_corrected_sbm`])
//! for topology, then stamps a friend/foe sign on every edge from the
//! planted communities: intra-block edges are friends, inter-block edges
//! are foes, and an independent flip coin per edge injects label noise.
//! With `flip_probability = 0` the signs are a deterministic function of
//! the block labels, so the polarity structure is perfectly recoverable —
//! the fixture used to check that a sign-aware model separates from a
//! sign-blind one.

use rand::Rng;

use crate::generators::sbm::{degree_corrected_sbm, SbmConfig};
use crate::graph::Graph;

/// Configuration for [`signed_sbm`].
#[derive(Debug, Clone, PartialEq)]
pub struct SignedSbmConfig {
    /// Topology parameters (node/edge counts, blocks, mixing, degrees).
    pub base: SbmConfig,
    /// Probability that an edge's planted sign is flipped, in `[0, 1)`.
    /// `0` gives perfectly block-aligned polarity.
    pub flip_probability: f64,
}

/// Generates a signed degree-corrected planted-partition graph.
///
/// Topology comes from [`degree_corrected_sbm`] (same RNG draw sequence,
/// so at a fixed seed the edge set equals the unsigned generator's); signs
/// are stamped afterwards from the planted block labels plus per-edge flip
/// coins, in edge order. Labels stay attached: the blocks double as both
/// clustering classes and polarity communities.
///
/// # Panics
/// Panics on out-of-domain parameters, matching [`degree_corrected_sbm`].
pub fn signed_sbm(cfg: &SignedSbmConfig, rng: &mut impl Rng) -> Graph {
    assert!(
        (0.0..1.0).contains(&cfg.flip_probability),
        "flip probability must be in [0,1), got {}",
        cfg.flip_probability
    );
    let g = degree_corrected_sbm(&cfg.base, rng);
    let labels = g
        .labels()
        .expect("degree_corrected_sbm always attaches block labels")
        .to_vec();
    let signs: Vec<bool> = g
        .edges()
        .iter()
        .map(|e| {
            let planted_foe = labels[e.u().index()] != labels[e.v().index()];
            let flip = cfg.flip_probability > 0.0 && rng.gen::<f64>() < cfg.flip_probability;
            planted_foe != flip
        })
        .collect();
    Graph::from_parts_signed(g.num_nodes(), g.edges().to_vec(), Some(signs), Some(labels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn cfg(flip: f64) -> SignedSbmConfig {
        SignedSbmConfig {
            base: SbmConfig {
                num_nodes: 200,
                num_edges: 800,
                num_blocks: 4,
                mixing: 0.3,
                degree_exponent: 2.5,
            },
            flip_probability: flip,
        }
    }

    #[test]
    fn signs_align_with_blocks_at_zero_flip() {
        let mut rng = SmallRng::seed_from_u64(7);
        let g = signed_sbm(&cfg(0.0), &mut rng);
        assert!(g.is_signed());
        g.check_invariants().unwrap();
        let labels = g.labels().unwrap();
        for (i, e) in g.edges().iter().enumerate() {
            let inter = labels[e.u().index()] != labels[e.v().index()];
            assert_eq!(g.edge_is_foe(i), inter, "edge {e} sign off");
        }
        // Mixing 0.3 plants a substantial foe fraction.
        let foe_frac = g.num_foe_edges() as f64 / g.num_edges() as f64;
        assert!((foe_frac - 0.3).abs() < 0.06, "foe fraction {foe_frac}");
    }

    #[test]
    fn topology_matches_unsigned_generator_at_same_seed() {
        let c = cfg(0.1);
        let signed = signed_sbm(&c, &mut SmallRng::seed_from_u64(11));
        let unsigned = degree_corrected_sbm(&c.base, &mut SmallRng::seed_from_u64(11));
        assert_eq!(signed.edges(), unsigned.edges());
        assert_eq!(signed.labels(), unsigned.labels());
    }

    #[test]
    fn flip_noise_perturbs_some_signs() {
        let c = cfg(0.2);
        let noisy = signed_sbm(&c, &mut SmallRng::seed_from_u64(13));
        let clean = signed_sbm(&cfg(0.0), &mut SmallRng::seed_from_u64(13));
        assert_eq!(noisy.edges(), clean.edges());
        let differing = noisy
            .signs()
            .unwrap()
            .iter()
            .zip(clean.signs().unwrap())
            .filter(|(a, b)| a != b)
            .count();
        let frac = differing as f64 / noisy.num_edges() as f64;
        assert!((frac - 0.2).abs() < 0.06, "flip fraction {frac}");
    }

    #[test]
    fn deterministic_under_seed() {
        let c = cfg(0.15);
        let a = signed_sbm(&c, &mut SmallRng::seed_from_u64(21));
        let b = signed_sbm(&c, &mut SmallRng::seed_from_u64(21));
        assert_eq!(a.edges(), b.edges());
        assert_eq!(a.signs(), b.signs());
    }

    #[test]
    #[should_panic(expected = "flip probability")]
    fn out_of_range_flip_rejected() {
        signed_sbm(&cfg(1.0), &mut SmallRng::seed_from_u64(1));
    }
}
