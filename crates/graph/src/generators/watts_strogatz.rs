//! Watts–Strogatz small-world graphs.

use std::collections::HashSet;

use rand::Rng;

use crate::edge::Edge;
use crate::graph::Graph;

/// Watts–Strogatz small-world graph: a ring lattice where each node connects
/// to its `k` nearest neighbors (`k` even), with each edge rewired to a
/// uniform random endpoint with probability `beta`.
///
/// # Panics
/// Panics if `k` is odd, `k >= n`, or `beta` is outside `[0, 1]`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, rng: &mut impl Rng) -> Graph {
    assert!(k.is_multiple_of(2), "k must be even, got {k}");
    assert!(k < n, "need k < n, got k={k}, n={n}");
    assert!((0.0..=1.0).contains(&beta), "beta must be in [0,1]");
    let mut seen: HashSet<Edge> = HashSet::new();
    // Ring lattice.
    for i in 0..n {
        for d in 1..=(k / 2) {
            let j = (i + d) % n;
            seen.insert(Edge::from_raw(i as u32, j as u32));
        }
    }
    // Rewire each lattice edge with probability beta.
    let lattice: Vec<Edge> = seen.iter().copied().collect();
    for e in lattice {
        if rng.gen::<f64>() < beta {
            let u = e.u();
            // Try a handful of random new endpoints; keep the old edge if the
            // neighborhood is saturated.
            for _ in 0..32 {
                let w = rng.gen_range(0..n as u32);
                if w == u.0 {
                    continue;
                }
                let candidate = Edge::from_raw(u.0, w);
                if !seen.contains(&candidate) {
                    seen.remove(&e);
                    seen.insert(candidate);
                    break;
                }
            }
        }
    }
    let mut edges: Vec<Edge> = seen.into_iter().collect();
    edges.sort_unstable();
    Graph::from_parts(n, edges, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn beta_zero_is_ring_lattice() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = watts_strogatz(20, 4, 0.0, &mut rng);
        assert_eq!(g.num_edges(), 20 * 2);
        for i in 0..20 {
            assert_eq!(g.degree(crate::node::NodeId::from_index(i)), 4);
        }
        g.check_invariants().unwrap();
    }

    #[test]
    fn edge_count_preserved_under_rewiring() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = watts_strogatz(100, 6, 0.3, &mut rng);
        assert_eq!(g.num_edges(), 100 * 3);
        g.check_invariants().unwrap();
    }

    #[test]
    fn full_rewiring_changes_structure() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = watts_strogatz(60, 4, 1.0, &mut rng);
        assert_eq!(g.num_edges(), 120);
        // With total rewiring some node should deviate from lattice degree 4.
        let deviates = (0..60).any(|i| g.degree(crate::node::NodeId::from_index(i)) != 4);
        assert!(
            deviates,
            "rewiring left a perfect lattice (astronomically unlikely)"
        );
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_k_rejected() {
        let mut rng = SmallRng::seed_from_u64(4);
        watts_strogatz(10, 3, 0.1, &mut rng);
    }
}
