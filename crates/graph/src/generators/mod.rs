//! Synthetic graph generators.
//!
//! Two roles:
//!
//! 1. **Test fixtures** — deterministic small graphs ([`classic`]) and the
//!    standard random models ([`erdos_renyi`], [`barabasi_albert()`],
//!    [`watts_strogatz()`]) for unit/property tests;
//! 2. **Dataset stand-ins** — the degree-corrected planted-partition model
//!    ([`sbm`]) used by `advsgm-datasets` to synthesise graphs with the same
//!    scale, heavy-tailed degrees, and community structure as the paper's
//!    six real datasets (see DESIGN.md §1 for the substitution argument),
//!    and its signed planted-polarity extension ([`signed`]) for the
//!    signed-graph workload (DESIGN.md §16).

pub mod barabasi_albert;
pub mod classic;
pub mod erdos_renyi;
pub mod sbm;
pub mod signed;
pub mod watts_strogatz;

pub use barabasi_albert::barabasi_albert;
pub use classic::{complete_graph, cycle_graph, karate_club, path_graph, star_graph};
pub use erdos_renyi::{gnm_random_graph, gnp_random_graph};
pub use sbm::{degree_corrected_sbm, SbmConfig};
pub use signed::{signed_sbm, SignedSbmConfig};
pub use watts_strogatz::watts_strogatz;
