//! Barabási–Albert preferential attachment.

use rand::Rng;

use crate::builder::GraphBuilder;
use crate::graph::Graph;

/// Barabási–Albert graph: starts from a star on `m + 1` nodes, then each new
/// node attaches to `m` existing nodes chosen preferentially by degree
/// (implemented with the repeated-endpoint trick: sampling uniformly from the
/// flattened edge-endpoint list is exactly degree-proportional sampling).
///
/// Produces a connected graph with a power-law degree tail — the qualitative
/// degree profile of the paper's social-network datasets.
///
/// # Panics
/// Panics if `m == 0` or `n <= m`.
pub fn barabasi_albert(n: usize, m: usize, rng: &mut impl Rng) -> Graph {
    assert!(m >= 1, "attachment count m must be >= 1");
    assert!(n > m, "need n > m, got n={n}, m={m}");
    let mut builder = GraphBuilder::new(n);
    // Repeated-endpoint pool: node i appears once per incident edge.
    let mut pool: Vec<usize> = Vec::with_capacity(2 * n * m);
    // Seed: star on nodes 0..=m centred at 0 guarantees every early node has
    // positive degree so preferential attachment is well-defined.
    for i in 1..=m {
        builder.add_edge(0, i).expect("in range");
        pool.push(0);
        pool.push(i);
    }
    let mut targets: Vec<usize> = Vec::with_capacity(m);
    for v in (m + 1)..n {
        targets.clear();
        // Draw m distinct targets degree-proportionally.
        let mut guard = 0usize;
        while targets.len() < m {
            let t = pool[rng.gen_range(0..pool.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
            guard += 1;
            assert!(
                guard < 10_000,
                "failed to find {m} distinct attachment targets"
            );
        }
        for &t in &targets {
            builder.add_edge(v, t).expect("in range");
            pool.push(v);
            pool.push(t);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn edge_count_formula() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 200;
        let m = 3;
        let g = barabasi_albert(n, m, &mut rng);
        // m seed edges + m per each of the (n - m - 1) later nodes.
        assert_eq!(g.num_edges(), m + (n - m - 1) * m);
        g.check_invariants().unwrap();
    }

    #[test]
    fn no_isolated_nodes() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = barabasi_albert(100, 2, &mut rng);
        assert_eq!(g.num_isolated(), 0);
    }

    #[test]
    fn has_heavy_tail() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = barabasi_albert(2000, 2, &mut rng);
        // Hubs should greatly exceed the mean degree (~4).
        assert!(
            g.max_degree() > 8 * g.mean_degree() as usize,
            "max degree {} vs mean {}",
            g.max_degree(),
            g.mean_degree()
        );
    }

    #[test]
    #[should_panic(expected = "n > m")]
    fn rejects_small_n() {
        let mut rng = SmallRng::seed_from_u64(4);
        barabasi_albert(3, 3, &mut rng);
    }
}
