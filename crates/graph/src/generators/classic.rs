//! Small deterministic graphs for tests and examples.

use crate::builder::GraphBuilder;
use crate::graph::Graph;

/// Path graph `0 - 1 - ... - (n-1)`.
pub fn path_graph(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge(i - 1, i).expect("in range");
    }
    b.build()
}

/// Cycle graph on `n >= 3` nodes.
///
/// # Panics
/// Panics if `n < 3` (smaller cycles are not simple graphs).
pub fn cycle_graph(n: usize) -> Graph {
    assert!(n >= 3, "cycle requires at least 3 nodes, got {n}");
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        b.add_edge(i, (i + 1) % n).expect("in range");
    }
    b.build()
}

/// Complete graph `K_n`.
pub fn complete_graph(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            b.add_edge(i, j).expect("in range");
        }
    }
    b.build()
}

/// Star graph: node 0 connected to `1..n`.
pub fn star_graph(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge(0, i).expect("in range");
    }
    b.build()
}

/// Zachary's karate club (34 nodes, 78 edges) with the canonical two-faction
/// labels. The classic sanity-check graph for community-sensitive embeddings.
pub fn karate_club() -> Graph {
    // Edge list from the original study (0-indexed).
    const EDGES: [(usize, usize); 78] = [
        (0, 1),
        (0, 2),
        (0, 3),
        (0, 4),
        (0, 5),
        (0, 6),
        (0, 7),
        (0, 8),
        (0, 10),
        (0, 11),
        (0, 12),
        (0, 13),
        (0, 17),
        (0, 19),
        (0, 21),
        (0, 31),
        (1, 2),
        (1, 3),
        (1, 7),
        (1, 13),
        (1, 17),
        (1, 19),
        (1, 21),
        (1, 30),
        (2, 3),
        (2, 7),
        (2, 8),
        (2, 9),
        (2, 13),
        (2, 27),
        (2, 28),
        (2, 32),
        (3, 7),
        (3, 12),
        (3, 13),
        (4, 6),
        (4, 10),
        (5, 6),
        (5, 10),
        (5, 16),
        (6, 16),
        (8, 30),
        (8, 32),
        (8, 33),
        (9, 33),
        (13, 33),
        (14, 32),
        (14, 33),
        (15, 32),
        (15, 33),
        (18, 32),
        (18, 33),
        (19, 33),
        (20, 32),
        (20, 33),
        (22, 32),
        (22, 33),
        (23, 25),
        (23, 27),
        (23, 29),
        (23, 32),
        (23, 33),
        (24, 25),
        (24, 27),
        (24, 31),
        (25, 31),
        (26, 29),
        (26, 33),
        (27, 33),
        (28, 31),
        (28, 33),
        (29, 32),
        (29, 33),
        (30, 32),
        (30, 33),
        (31, 32),
        (31, 33),
        (32, 33),
    ];
    // Faction labels (0 = Mr. Hi, 1 = Officer) from the canonical split.
    const LABELS: [u32; 34] = [
        0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 0, 0, 0, 0, 1, 1, 0, 0, 1, 0, 1, 0, 1, 1, 1, 1, 1, 1, 1, 1,
        1, 1, 1, 1,
    ];
    let mut b = GraphBuilder::new(34);
    b.add_edges(EDGES).expect("static edges are in range");
    b.with_labels(LABELS.to_vec()).expect("34 labels");
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;

    #[test]
    fn path_counts() {
        let g = path_graph(6);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn path_trivial_sizes() {
        assert_eq!(path_graph(0).num_edges(), 0);
        assert_eq!(path_graph(1).num_edges(), 0);
    }

    #[test]
    fn cycle_every_degree_two() {
        let g = cycle_graph(7);
        assert_eq!(g.num_edges(), 7);
        for i in 0..7 {
            assert_eq!(g.degree(NodeId::from_index(i)), 2);
        }
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_cycle_panics() {
        cycle_graph(2);
    }

    #[test]
    fn complete_edge_count() {
        let g = complete_graph(6);
        assert_eq!(g.num_edges(), 15);
        assert_eq!(g.max_degree(), 5);
    }

    #[test]
    fn star_hub_degree() {
        let g = star_graph(9);
        assert_eq!(g.num_edges(), 8);
        assert_eq!(g.degree(NodeId(0)), 8);
        assert_eq!(g.degree(NodeId(3)), 1);
    }

    #[test]
    fn karate_club_canonical_counts() {
        let g = karate_club();
        assert_eq!(g.num_nodes(), 34);
        assert_eq!(g.num_edges(), 78);
        assert_eq!(g.num_classes(), 2);
        // Node 33 ("Officer") has the highest degree, 17.
        assert_eq!(g.degree(NodeId(33)), 17);
        assert_eq!(g.degree(NodeId(0)), 16);
        g.check_invariants().unwrap();
    }
}
