//! Node identifiers.

use std::fmt;

/// A dense node identifier in `0..|V|`.
///
/// Stored as `u32`: the largest paper dataset (DBLP) has 2.24M nodes, well
/// within range, and halving the index width keeps edge lists and CSR arrays
/// cache-friendly (the graph substrate is traversal-bound).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The identifier as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs from a `usize` index.
    ///
    /// # Panics
    /// Panics if `i` does not fit in `u32`.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        assert!(i <= u32::MAX as usize, "node index {i} exceeds u32 range");
        NodeId(i as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let n = NodeId::from_index(42);
        assert_eq!(n.index(), 42);
        assert_eq!(n, NodeId(42));
    }

    #[test]
    fn display_format() {
        assert_eq!(NodeId(7).to_string(), "v7");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId(1) < NodeId(2));
    }

    #[test]
    #[should_panic(expected = "exceeds u32 range")]
    fn from_index_overflow_panics() {
        NodeId::from_index(u32::MAX as usize + 1);
    }
}
