//! Compressed sparse row adjacency.
//!
//! CSR gives O(1) access to a node's neighbor slice and is the layout every
//! traversal in the workspace (random walks, negative-sample rejection,
//! baseline message passing) iterates over.

use crate::edge::Edge;
use crate::node::NodeId;

/// Compressed sparse row adjacency for an undirected simple graph.
///
/// Each undirected edge `(u, v)` appears twice: `v` in `u`'s neighbor list
/// and `u` in `v`'s. Neighbor lists are sorted, enabling binary-search
/// membership tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    /// `offsets[i]..offsets[i+1]` indexes `neighbors` for node `i`.
    offsets: Vec<usize>,
    /// Concatenated sorted neighbor lists.
    neighbors: Vec<u32>,
}

impl Csr {
    /// Builds CSR adjacency from a canonical edge list.
    ///
    /// # Panics
    /// Panics (debug assertion) if an edge endpoint is `>= num_nodes`.
    pub fn from_edges(num_nodes: usize, edges: &[Edge]) -> Self {
        let mut degree = vec![0usize; num_nodes];
        for e in edges {
            debug_assert!(e.v().index() < num_nodes, "edge endpoint out of range");
            degree[e.u().index()] += 1;
            degree[e.v().index()] += 1;
        }
        let mut offsets = Vec::with_capacity(num_nodes + 1);
        offsets.push(0usize);
        for d in &degree {
            offsets.push(offsets.last().unwrap() + d);
        }
        let mut neighbors = vec![0u32; offsets[num_nodes]];
        let mut cursor = offsets[..num_nodes].to_vec();
        for e in edges {
            let (u, v) = (e.u().index(), e.v().index());
            neighbors[cursor[u]] = e.v().0;
            cursor[u] += 1;
            neighbors[cursor[v]] = e.u().0;
            cursor[v] += 1;
        }
        // Sort each neighbor list for binary-search membership checks.
        for i in 0..num_nodes {
            neighbors[offsets[i]..offsets[i + 1]].sort_unstable();
        }
        Csr { offsets, neighbors }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Degree of node `i`.
    #[inline]
    pub fn degree(&self, i: NodeId) -> usize {
        let i = i.index();
        self.offsets[i + 1] - self.offsets[i]
    }

    /// Sorted neighbor slice of node `i`.
    #[inline]
    pub fn neighbors(&self, i: NodeId) -> &[u32] {
        let i = i.index();
        &self.neighbors[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Whether the undirected edge `(a, b)` exists. O(log degree).
    #[inline]
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        // Search the shorter list.
        let (s, t) = if self.degree(a) <= self.degree(b) {
            (a, b)
        } else {
            (b, a)
        };
        self.neighbors(s).binary_search(&t.0).is_ok()
    }

    /// Total neighbor entries (= 2 |E|).
    #[inline]
    pub fn num_directed_entries(&self) -> usize {
        self.neighbors.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_pendant() -> Csr {
        // 0-1, 1-2, 0-2, 2-3
        let edges = vec![
            Edge::from_raw(0, 1),
            Edge::from_raw(1, 2),
            Edge::from_raw(0, 2),
            Edge::from_raw(2, 3),
        ];
        Csr::from_edges(4, &edges)
    }

    #[test]
    fn degrees_match() {
        let c = triangle_plus_pendant();
        assert_eq!(c.degree(NodeId(0)), 2);
        assert_eq!(c.degree(NodeId(1)), 2);
        assert_eq!(c.degree(NodeId(2)), 3);
        assert_eq!(c.degree(NodeId(3)), 1);
    }

    #[test]
    fn neighbor_lists_sorted() {
        let c = triangle_plus_pendant();
        assert_eq!(c.neighbors(NodeId(2)), &[0, 1, 3]);
        assert_eq!(c.neighbors(NodeId(3)), &[2]);
    }

    #[test]
    fn has_edge_symmetric() {
        let c = triangle_plus_pendant();
        assert!(c.has_edge(NodeId(0), NodeId(2)));
        assert!(c.has_edge(NodeId(2), NodeId(0)));
        assert!(!c.has_edge(NodeId(0), NodeId(3)));
    }

    #[test]
    fn entries_count_twice_edges() {
        let c = triangle_plus_pendant();
        assert_eq!(c.num_directed_entries(), 8);
    }

    #[test]
    fn isolated_nodes_have_zero_degree() {
        let c = Csr::from_edges(3, &[Edge::from_raw(0, 1)]);
        assert_eq!(c.degree(NodeId(2)), 0);
        assert!(c.neighbors(NodeId(2)).is_empty());
    }

    #[test]
    fn empty_graph() {
        let c = Csr::from_edges(0, &[]);
        assert_eq!(c.num_nodes(), 0);
        assert_eq!(c.num_directed_entries(), 0);
    }
}
