//! Random walks for walk-based skip-gram front-ends.
//!
//! AdvSGM's skip-gram module can be instantiated with any skip-gram graph
//! embedding; the paper's experiments use LINE-style edge sampling, but
//! DeepWalk \[1\] and node2vec \[3\] walks are the other canonical front-ends,
//! so the substrate provides them: uniform walks and p/q-biased second-order
//! walks, plus a corpus generator that turns walks into training pairs.

use rand::Rng;

use crate::graph::Graph;
use crate::node::NodeId;

/// Parameters for walk-corpus generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalkParams {
    /// Walks started per node.
    pub walks_per_node: usize,
    /// Length of each walk (number of nodes).
    pub walk_length: usize,
    /// Skip-gram window size for pair extraction.
    pub window: usize,
    /// node2vec return parameter `p` (1.0 = DeepWalk).
    pub p: f64,
    /// node2vec in-out parameter `q` (1.0 = DeepWalk).
    pub q: f64,
}

impl Default for WalkParams {
    fn default() -> Self {
        Self {
            walks_per_node: 10,
            walk_length: 40,
            window: 5,
            p: 1.0,
            q: 1.0,
        }
    }
}

/// A uniform (DeepWalk) random walk of up to `length` nodes starting at
/// `start`; stops early at a node with no neighbors.
pub fn random_walk(graph: &Graph, start: NodeId, length: usize, rng: &mut impl Rng) -> Vec<NodeId> {
    let mut walk = Vec::with_capacity(length);
    if length == 0 {
        return walk;
    }
    walk.push(start);
    let mut current = start;
    while walk.len() < length {
        let nbrs = graph.neighbors(current);
        if nbrs.is_empty() {
            break;
        }
        current = NodeId(nbrs[rng.gen_range(0..nbrs.len())]);
        walk.push(current);
    }
    walk
}

/// A node2vec second-order biased walk with return parameter `p` and in-out
/// parameter `q`, using rejection sampling (Grover & Leskovec's unnormalised
/// weights: 1/p to return, 1 for common neighbors, 1/q otherwise).
///
/// # Panics
/// Panics if `p <= 0` or `q <= 0`.
pub fn node2vec_walk(
    graph: &Graph,
    start: NodeId,
    length: usize,
    p: f64,
    q: f64,
    rng: &mut impl Rng,
) -> Vec<NodeId> {
    assert!(p > 0.0 && q > 0.0, "node2vec requires p, q > 0");
    let mut walk = Vec::with_capacity(length);
    if length == 0 {
        return walk;
    }
    walk.push(start);
    if length == 1 {
        return walk;
    }
    // First hop is uniform.
    let nbrs = graph.neighbors(start);
    if nbrs.is_empty() {
        return walk;
    }
    let mut prev = start;
    let mut current = NodeId(nbrs[rng.gen_range(0..nbrs.len())]);
    walk.push(current);
    let max_w = (1.0 / p).max(1.0).max(1.0 / q);
    while walk.len() < length {
        let nbrs = graph.neighbors(current);
        if nbrs.is_empty() {
            break;
        }
        // Rejection sampling against the envelope max_w.
        let next = loop {
            let cand = NodeId(nbrs[rng.gen_range(0..nbrs.len())]);
            let w = if cand == prev {
                1.0 / p
            } else if graph.has_edge(cand, prev) {
                1.0
            } else {
                1.0 / q
            };
            if rng.gen::<f64>() * max_w <= w {
                break cand;
            }
        };
        prev = current;
        current = next;
        walk.push(current);
    }
    walk
}

/// A corpus of skip-gram training pairs extracted from random walks.
#[derive(Debug, Clone)]
pub struct WalkCorpus {
    /// Center/context pairs (both directions of each co-occurrence).
    pub pairs: Vec<(NodeId, NodeId)>,
}

impl WalkCorpus {
    /// Generates walks from every node and extracts windowed pairs.
    pub fn generate(graph: &Graph, params: &WalkParams, rng: &mut impl Rng) -> Self {
        let mut pairs = Vec::new();
        for _ in 0..params.walks_per_node {
            for s in 0..graph.num_nodes() {
                let start = NodeId::from_index(s);
                let walk = if (params.p - 1.0).abs() < f64::EPSILON
                    && (params.q - 1.0).abs() < f64::EPSILON
                {
                    random_walk(graph, start, params.walk_length, rng)
                } else {
                    node2vec_walk(graph, start, params.walk_length, params.p, params.q, rng)
                };
                for (i, &center) in walk.iter().enumerate() {
                    let lo = i.saturating_sub(params.window);
                    let hi = (i + params.window + 1).min(walk.len());
                    for &ctx in &walk[lo..hi] {
                        if ctx != center {
                            pairs.push((center, ctx));
                        }
                    }
                }
            }
        }
        Self { pairs }
    }

    /// Number of training pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic::{karate_club, path_graph};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn walk_steps_follow_edges() {
        let g = karate_club();
        let mut rng = SmallRng::seed_from_u64(1);
        let w = random_walk(&g, NodeId(0), 20, &mut rng);
        assert_eq!(w.len(), 20);
        for pair in w.windows(2) {
            assert!(g.has_edge(pair[0], pair[1]), "non-edge step {pair:?}");
        }
    }

    #[test]
    fn walk_stops_at_isolated_node() {
        let g = Graph::from_parts(3, vec![], None);
        let mut rng = SmallRng::seed_from_u64(2);
        let w = random_walk(&g, NodeId(1), 10, &mut rng);
        assert_eq!(w, vec![NodeId(1)]);
    }

    #[test]
    fn zero_length_walk_is_empty() {
        let g = karate_club();
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(random_walk(&g, NodeId(0), 0, &mut rng).is_empty());
    }

    #[test]
    fn node2vec_steps_follow_edges() {
        let g = karate_club();
        let mut rng = SmallRng::seed_from_u64(4);
        let w = node2vec_walk(&g, NodeId(0), 25, 0.5, 2.0, &mut rng);
        for pair in w.windows(2) {
            assert!(g.has_edge(pair[0], pair[1]));
        }
    }

    #[test]
    fn low_p_returns_often() {
        // On a path graph with tiny p the walk keeps backtracking, so it
        // stays near the start; with huge p it marches away.
        let g = path_graph(200);
        let mut rng = SmallRng::seed_from_u64(5);
        let sticky = node2vec_walk(&g, NodeId(100), 50, 0.01, 1.0, &mut rng);
        let roaming = node2vec_walk(&g, NodeId(100), 50, 100.0, 1.0, &mut rng);
        let spread = |w: &[NodeId]| {
            w.iter()
                .map(|n| (n.index() as i64 - 100).abs())
                .max()
                .unwrap()
        };
        assert!(
            spread(&sticky) < spread(&roaming),
            "sticky={} roaming={}",
            spread(&sticky),
            spread(&roaming)
        );
    }

    #[test]
    fn corpus_pairs_within_window() {
        let g = path_graph(30);
        let mut rng = SmallRng::seed_from_u64(6);
        let params = WalkParams {
            walks_per_node: 1,
            walk_length: 10,
            window: 2,
            p: 1.0,
            q: 1.0,
        };
        let corpus = WalkCorpus::generate(&g, &params, &mut rng);
        assert!(!corpus.is_empty());
        // On a path graph, window-2 co-occurrences are at distance <= 2.
        for &(a, b) in &corpus.pairs {
            let d = (a.index() as i64 - b.index() as i64).abs();
            assert!(d <= 2, "pair ({a}, {b}) outside window");
            assert_ne!(a, b);
        }
    }
}
