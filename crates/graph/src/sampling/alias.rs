//! Vose's alias method for O(1) categorical sampling.
//!
//! Negative sampling and the degree-corrected SBM both need millions of
//! draws from fixed categorical distributions; the alias method pays O(n)
//! setup for O(1) draws.
//!
//! The table is immutable after construction and [`AliasTable::sample`]
//! takes `&self` with a caller-supplied RNG, so one table can be shared by
//! reference across the sharded trainer's worker threads (each worker
//! brings its own derived RNG stream); a compile-time assertion below pins
//! the `Send + Sync` guarantee.

use rand::Rng;

use crate::error::GraphError;

/// An alias table over `0..n` built from non-negative weights.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasTable {
    /// Builds the table from `weights` (need not be normalised).
    ///
    /// # Errors
    /// Returns [`GraphError::InvalidParameter`] if `weights` is empty, has a
    /// negative/non-finite entry, or sums to zero.
    pub fn new(weights: &[f64]) -> Result<Self, GraphError> {
        if weights.is_empty() {
            return Err(GraphError::InvalidParameter {
                name: "weights",
                reason: "alias table requires at least one weight".into(),
            });
        }
        let mut total = 0.0;
        for (i, &w) in weights.iter().enumerate() {
            if !w.is_finite() || w < 0.0 {
                return Err(GraphError::InvalidParameter {
                    name: "weights",
                    reason: format!("weight {w} at index {i} is negative or non-finite"),
                });
            }
            total += w;
        }
        if total <= 0.0 {
            return Err(GraphError::InvalidParameter {
                name: "weights",
                reason: "weights sum to zero".into(),
            });
        }
        let n = weights.len();
        let mut prob: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::with_capacity(n);
        let mut large: Vec<usize> = Vec::with_capacity(n);
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s] = l;
            prob[l] = (prob[l] + prob[s]) - 1.0;
            if prob[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Leftovers are 1.0 up to rounding.
        for i in large.into_iter().chain(small) {
            prob[i] = 1.0;
        }
        Ok(AliasTable { prob, alias })
    }

    /// Number of categories.
    #[inline]
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one category index.
    #[inline]
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

/// Compile-time proof that a built table can be shared across the training
/// pool's worker threads by reference.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<AliasTable>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_inputs() {
        assert!(AliasTable::new(&[]).is_err());
        assert!(AliasTable::new(&[1.0, -0.5]).is_err());
        assert!(AliasTable::new(&[0.0, 0.0]).is_err());
        assert!(AliasTable::new(&[f64::NAN]).is_err());
    }

    #[test]
    fn uniform_weights_sample_uniformly() {
        let t = AliasTable::new(&[1.0; 4]).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        let n = 40_000;
        for _ in 0..n {
            counts[t.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            let f = c as f64 / n as f64;
            assert!((f - 0.25).abs() < 0.02, "count fraction {f}");
        }
    }

    #[test]
    fn skewed_weights_respected() {
        let t = AliasTable::new(&[8.0, 1.0, 1.0]).unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        let mut counts = [0usize; 3];
        let n = 50_000;
        for _ in 0..n {
            counts[t.sample(&mut rng)] += 1;
        }
        let f0 = counts[0] as f64 / n as f64;
        assert!((f0 - 0.8).abs() < 0.02, "f0={f0}");
    }

    #[test]
    fn zero_weight_category_never_sampled() {
        let t = AliasTable::new(&[1.0, 0.0, 1.0]).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert_ne!(t.sample(&mut rng), 1);
        }
    }

    #[test]
    fn concurrent_draws_with_per_thread_rngs_match_sequential() {
        // Shared-by-reference sampling: each thread draws with its own
        // seeded RNG; the result must equal the same draws made
        // sequentially, proving &self sampling has no hidden state.
        let t = AliasTable::new(&[5.0, 1.0, 2.0, 0.5]).unwrap();
        let draws_with = |seed: u64| -> Vec<usize> {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..500).map(|_| t.sample(&mut rng)).collect()
        };
        let sequential: Vec<Vec<usize>> = (0..4).map(draws_with).collect();
        let concurrent: Vec<Vec<usize>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4u64)
                .map(|seed| {
                    let t = &t;
                    s.spawn(move || {
                        let mut rng = SmallRng::seed_from_u64(seed);
                        (0..500).map(|_| t.sample(&mut rng)).collect::<Vec<usize>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(sequential, concurrent);
    }

    #[test]
    fn single_category() {
        let t = AliasTable::new(&[3.7]).unwrap();
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..10 {
            assert_eq!(t.sample(&mut rng), 0);
        }
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }
}
