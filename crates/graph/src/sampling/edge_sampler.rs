//! Uniform edge batches without replacement (Algorithm 2, line 1).
//!
//! Each discriminator step samples `B` edges uniformly **without
//! replacement** from `E`. This is the "subsampling without replacement"
//! event of Theorem 4, with sampling probability `gamma = B/|E|`, so
//! correctness here is privacy-relevant, not just statistical.

use rand::Rng;

use crate::edge::Edge;
use crate::error::GraphError;
use crate::graph::Graph;

/// Samples uniform edge batches without replacement.
///
/// Keeps a reusable index permutation; each call performs a partial
/// Fisher–Yates shuffle over the first `B` slots, giving O(B) work per batch
/// independent of `|E|`.
#[derive(Debug, Clone)]
pub struct EdgeBatchSampler {
    indices: Vec<u32>,
}

impl EdgeBatchSampler {
    /// Creates a sampler over `num_edges` edges.
    ///
    /// # Errors
    /// Returns [`GraphError::EmptyGraph`] if there are no edges.
    pub fn new(num_edges: usize) -> Result<Self, GraphError> {
        if num_edges == 0 {
            return Err(GraphError::EmptyGraph {
                op: "edge batch sampling",
            });
        }
        Ok(Self {
            indices: (0..num_edges as u32).collect(),
        })
    }

    /// Population size `|E|`.
    pub fn num_edges(&self) -> usize {
        self.indices.len()
    }

    /// Draws `batch` distinct edge indices uniformly at random.
    ///
    /// # Errors
    /// Returns [`GraphError::SampleTooLarge`] if `batch > |E|`.
    pub fn sample_indices(
        &mut self,
        batch: usize,
        rng: &mut impl Rng,
    ) -> Result<&[u32], GraphError> {
        if batch > self.indices.len() {
            return Err(GraphError::SampleTooLarge {
                requested: batch,
                available: self.indices.len(),
            });
        }
        for i in 0..batch {
            let j = rng.gen_range(i..self.indices.len());
            self.indices.swap(i, j);
        }
        Ok(&self.indices[..batch])
    }

    /// Draws a batch of edges from `graph` (whose edge list must be the
    /// population this sampler was sized for).
    ///
    /// # Errors
    /// Returns [`GraphError::SampleTooLarge`] if `batch > |E|`, or
    /// [`GraphError::InvalidParameter`] if the graph's edge count changed.
    pub fn sample_edges(
        &mut self,
        graph: &Graph,
        batch: usize,
        rng: &mut impl Rng,
    ) -> Result<Vec<Edge>, GraphError> {
        let idx = self.sample_indices_for(graph, batch, rng)?;
        Ok(idx.iter().map(|&i| graph.edges()[i as usize]).collect())
    }

    /// Draws a batch of edge *indices* into `graph.edges()`, with the
    /// exact validation and RNG draws of [`Self::sample_edges`] — callers
    /// that need per-edge side channels (signs, precomputed weights) can
    /// look them up by index without perturbing the draw sequence.
    ///
    /// # Errors
    /// As [`Self::sample_edges`].
    pub fn sample_indices_for(
        &mut self,
        graph: &Graph,
        batch: usize,
        rng: &mut impl Rng,
    ) -> Result<&[u32], GraphError> {
        if graph.num_edges() != self.indices.len() {
            return Err(GraphError::InvalidParameter {
                name: "graph",
                reason: format!(
                    "sampler sized for {} edges, graph has {}",
                    self.indices.len(),
                    graph.num_edges()
                ),
            });
        }
        self.sample_indices(batch, rng)
    }

    /// The subsampling probability `gamma = B/|E|` for the accountant.
    pub fn sampling_probability(&self, batch: usize) -> f64 {
        batch as f64 / self.indices.len() as f64
    }

    /// The sampler's internal index permutation.
    ///
    /// The partial Fisher–Yates shuffle mutates this array across calls,
    /// so it is *state*: a bitwise-exact training resume must restore it
    /// (via [`Self::restore_permutation`]) alongside the RNG, or the next
    /// batch after resume would differ from an uninterrupted run.
    pub fn permutation(&self) -> &[u32] {
        &self.indices
    }

    /// Restores the internal permutation captured by
    /// [`Self::permutation`].
    ///
    /// # Errors
    /// Returns [`GraphError::InvalidParameter`] unless `perm` is exactly a
    /// permutation of `0..|E|` for this sampler's population.
    pub fn restore_permutation(&mut self, perm: Vec<u32>) -> Result<(), GraphError> {
        let n = self.indices.len();
        let bad = |reason: String| {
            Err(GraphError::InvalidParameter {
                name: "permutation",
                reason,
            })
        };
        if perm.len() != n {
            return bad(format!("length {} != population {n}", perm.len()));
        }
        let mut seen = vec![false; n];
        for &i in &perm {
            match seen.get_mut(i as usize) {
                Some(s) if !*s => *s = true,
                Some(_) => return bad(format!("index {i} appears twice")),
                None => return bad(format!("index {i} out of range for population {n}")),
            }
        }
        self.indices = perm;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic::complete_graph;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn batch_is_distinct() {
        let mut s = EdgeBatchSampler::new(100).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let idx = s.sample_indices(40, &mut rng).unwrap().to_vec();
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 40, "batch contained duplicates");
    }

    #[test]
    fn full_population_batch_is_permutation() {
        let mut s = EdgeBatchSampler::new(10).unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        let mut idx = s.sample_indices(10, &mut rng).unwrap().to_vec();
        idx.sort_unstable();
        assert_eq!(idx, (0..10).collect::<Vec<u32>>());
    }

    #[test]
    fn oversized_batch_rejected() {
        let mut s = EdgeBatchSampler::new(5).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(matches!(
            s.sample_indices(6, &mut rng),
            Err(GraphError::SampleTooLarge { .. })
        ));
    }

    #[test]
    fn empty_population_rejected() {
        assert!(EdgeBatchSampler::new(0).is_err());
    }

    #[test]
    fn marginal_inclusion_is_uniform() {
        // Each edge should appear in a B-of-n batch with probability B/n.
        let n = 20;
        let b = 5;
        let trials = 20_000;
        let mut s = EdgeBatchSampler::new(n).unwrap();
        let mut rng = SmallRng::seed_from_u64(4);
        let mut counts = vec![0usize; n];
        for _ in 0..trials {
            for &i in s.sample_indices(b, &mut rng).unwrap() {
                counts[i as usize] += 1;
            }
        }
        let expected = trials as f64 * b as f64 / n as f64;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.1, "edge {i} inclusion off by {dev}");
        }
    }

    #[test]
    fn sample_edges_matches_graph() {
        let g = complete_graph(8);
        let mut s = EdgeBatchSampler::new(g.num_edges()).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        let edges = s.sample_edges(&g, 10, &mut rng).unwrap();
        assert_eq!(edges.len(), 10);
        for e in &edges {
            assert!(g.has_edge(e.u(), e.v()));
        }
    }

    #[test]
    fn sampling_probability() {
        let s = EdgeBatchSampler::new(200).unwrap();
        assert!((s.sampling_probability(50) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn permutation_roundtrip_resumes_exactly() {
        // Restoring the permutation + reusing the same RNG stream must
        // reproduce the draws an uninterrupted sampler would make.
        let mut a = EdgeBatchSampler::new(50).unwrap();
        let mut rng_a = SmallRng::seed_from_u64(9);
        a.sample_indices(20, &mut rng_a).unwrap();
        let saved = a.permutation().to_vec();

        let mut b = EdgeBatchSampler::new(50).unwrap();
        b.restore_permutation(saved).unwrap();
        let mut rng_b = rng_a.clone();
        assert_eq!(
            a.sample_indices(20, &mut rng_a).unwrap(),
            b.sample_indices(20, &mut rng_b).unwrap()
        );
    }

    #[test]
    fn bad_permutations_rejected() {
        let mut s = EdgeBatchSampler::new(4).unwrap();
        assert!(s.restore_permutation(vec![0, 1, 2]).is_err()); // short
        assert!(s.restore_permutation(vec![0, 1, 2, 2]).is_err()); // dup
        assert!(s.restore_permutation(vec![0, 1, 2, 9]).is_err()); // range
        s.restore_permutation(vec![3, 1, 0, 2]).unwrap();
        assert_eq!(s.permutation(), &[3, 1, 0, 2]);
    }

    #[test]
    fn mismatched_graph_rejected() {
        let g = complete_graph(4); // 6 edges
        let mut s = EdgeBatchSampler::new(10).unwrap();
        let mut rng = SmallRng::seed_from_u64(6);
        assert!(s.sample_edges(&g, 2, &mut rng).is_err());
    }
}
