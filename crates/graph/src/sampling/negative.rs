//! Negative sampling (Algorithm 2, lines 2–8).
//!
//! For each positive edge `(v_i, v_j)` in the batch, the paper pairs the
//! *starting node* `v_i` with `k` nodes sampled from the node set (Remark 1:
//! negative pairs may or may not be actual edges — no rejection against `E`).
//! The sampled node count `B*k` drives the second amplification rate
//! `gamma = Bk/|V|` in Theorem 7.
//!
//! The paper's Algorithm 2 samples nodes **uniformly**; classical skip-gram
//! (word2vec/LINE) uses the unigram distribution raised to 3/4. Both are
//! provided; AdvSGM defaults to the paper's uniform choice.
//!
//! The sampler is immutable after construction (`&self` sampling with a
//! caller-supplied RNG), so the sharded training engine shares one
//! instance by reference across its batch-production and worker threads;
//! the `Send + Sync` guarantee is pinned by a compile-time assertion.

use rand::Rng;

use crate::edge::Edge;
use crate::error::GraphError;
use crate::graph::Graph;
use crate::node::NodeId;
use crate::sampling::alias::AliasTable;

/// The distribution negatives are drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NegativeDistribution {
    /// Uniform over `V` — the paper's Algorithm 2.
    #[default]
    Uniform,
    /// `P_n(v) proportional to deg(v)^{3/4}` — the word2vec/LINE convention.
    Unigram34,
}

/// A negative pair `(source, negative)` produced for the skip-gram loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NegativePair {
    /// The positive pair's starting node `v_i`.
    pub source: NodeId,
    /// The sampled negative node `v_n`.
    pub negative: NodeId,
}

/// Samples negative pairs for batches of positive edges.
#[derive(Debug, Clone)]
pub struct NegativeSampler {
    num_nodes: usize,
    distribution: NegativeDistribution,
    unigram: Option<AliasTable>,
}

impl NegativeSampler {
    /// Creates a sampler for `graph` under the given distribution.
    ///
    /// # Errors
    /// Returns [`GraphError::EmptyGraph`] for a graph with no nodes, or an
    /// alias-construction error if all degrees are zero under
    /// [`NegativeDistribution::Unigram34`].
    pub fn new(graph: &Graph, distribution: NegativeDistribution) -> Result<Self, GraphError> {
        if graph.num_nodes() == 0 {
            return Err(GraphError::EmptyGraph {
                op: "negative sampling",
            });
        }
        let unigram = match distribution {
            NegativeDistribution::Uniform => None,
            NegativeDistribution::Unigram34 => {
                let w: Vec<f64> = (0..graph.num_nodes())
                    .map(|i| (graph.degree(NodeId::from_index(i)) as f64).powf(0.75))
                    .collect();
                Some(AliasTable::new(&w)?)
            }
        };
        Ok(Self {
            num_nodes: graph.num_nodes(),
            distribution,
            unigram,
        })
    }

    /// The configured distribution.
    pub fn distribution(&self) -> NegativeDistribution {
        self.distribution
    }

    /// Draws one negative node.
    #[inline]
    pub fn sample_node(&self, rng: &mut impl Rng) -> NodeId {
        match &self.unigram {
            None => NodeId::from_index(rng.gen_range(0..self.num_nodes)),
            Some(t) => NodeId::from_index(t.sample(rng)),
        }
    }

    /// Algorithm 2, lines 2–8: for each positive edge, pairs its starting
    /// node with `k` sampled nodes, yielding `B*k` negative pairs.
    pub fn sample_for_batch(
        &self,
        positives: &[Edge],
        k: usize,
        rng: &mut impl Rng,
    ) -> Vec<NegativePair> {
        // "the starting node of a positive sample" — the canonical edge
        // stores endpoints sorted, u is the start.
        let sources: Vec<NodeId> = positives.iter().map(|e| e.u()).collect();
        self.sample_for_sources(&sources, k, rng)
    }

    /// Negative sampling for explicit source nodes — the trainer uses this
    /// with *randomly oriented* positive pairs so that every node trains
    /// both its input and output vector (an undirected edge contributes in
    /// both directions, as in LINE/word2vec).
    pub fn sample_for_sources(
        &self,
        sources: &[NodeId],
        k: usize,
        rng: &mut impl Rng,
    ) -> Vec<NegativePair> {
        let mut out = Vec::with_capacity(sources.len() * k);
        for &source in sources {
            for _ in 0..k {
                out.push(NegativePair {
                    source,
                    negative: self.sample_node(rng),
                });
            }
        }
        out
    }

    /// The amplification rate `gamma = B*k/|V|` for the accountant
    /// (Theorem 7). Values above 1 are clamped by the caller's accountant.
    pub fn sampling_probability(&self, batch: usize, k: usize) -> f64 {
        (batch * k) as f64 / self.num_nodes as f64
    }
}

/// Compile-time proof the sampler can be shared across worker threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<NegativeSampler>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic::{karate_club, star_graph};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn batch_size_is_bk() {
        let g = karate_club();
        let s = NegativeSampler::new(&g, NegativeDistribution::Uniform).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let pos = &g.edges()[..8];
        let negs = s.sample_for_batch(pos, 5, &mut rng);
        assert_eq!(negs.len(), 40);
        for (b, chunk) in negs.chunks(5).enumerate() {
            for n in chunk {
                assert_eq!(n.source, pos[b].u(), "source must be the start node");
            }
        }
    }

    #[test]
    fn uniform_covers_all_nodes() {
        let g = karate_club();
        let s = NegativeSampler::new(&g, NegativeDistribution::Uniform).unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = vec![false; g.num_nodes()];
        for _ in 0..5_000 {
            seen[s.sample_node(&mut rng).index()] = true;
        }
        assert!(seen.iter().all(|&b| b), "some node never sampled");
    }

    #[test]
    fn unigram_prefers_hubs() {
        // Star graph: hub 0 has degree n-1, leaves degree 1.
        let g = star_graph(50);
        let s = NegativeSampler::new(&g, NegativeDistribution::Unigram34).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut hub = 0usize;
        let n = 20_000;
        for _ in 0..n {
            if s.sample_node(&mut rng) == NodeId(0) {
                hub += 1;
            }
        }
        // Hub weight 49^0.75 ~ 18.6 vs 49 leaves at 1.0 -> expected ~0.275.
        let f = hub as f64 / n as f64;
        assert!((f - 0.275).abs() < 0.03, "hub fraction {f}");
    }

    #[test]
    fn negatives_may_include_real_edges() {
        // Remark 1: negatives are NOT rejected against E. On a complete-ish
        // graph most sampled pairs are real edges; just assert no panic and
        // that sources come from the batch.
        let g = karate_club();
        let s = NegativeSampler::new(&g, NegativeDistribution::Uniform).unwrap();
        let mut rng = SmallRng::seed_from_u64(4);
        let negs = s.sample_for_batch(&g.edges()[..3], 10, &mut rng);
        assert_eq!(negs.len(), 30);
    }

    #[test]
    fn shared_sampler_draws_match_sequential_across_threads() {
        // One sampler, four threads, per-thread seeded RNGs: concurrent
        // draws must be exactly the draws each RNG would produce alone.
        let g = karate_club();
        let s = NegativeSampler::new(&g, NegativeDistribution::Unigram34).unwrap();
        let sources: Vec<NodeId> = (0..8).map(NodeId::from_index).collect();
        let draws_with = |seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            s.sample_for_sources(&sources, 5, &mut rng)
        };
        let sequential: Vec<_> = (10..14).map(draws_with).collect();
        let concurrent: Vec<_> = std::thread::scope(|sc| {
            let handles: Vec<_> = (10..14u64)
                .map(|seed| {
                    let s = &s;
                    let sources = &sources;
                    sc.spawn(move || {
                        let mut rng = SmallRng::seed_from_u64(seed);
                        s.sample_for_sources(sources, 5, &mut rng)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(sequential, concurrent);
    }

    #[test]
    fn sampling_probability_formula() {
        let g = karate_club();
        let s = NegativeSampler::new(&g, NegativeDistribution::Uniform).unwrap();
        let p = s.sampling_probability(17, 2);
        assert!((p - 1.0).abs() < 1e-12); // 34 samples over 34 nodes
    }

    #[test]
    fn empty_graph_rejected() {
        let g = Graph::from_parts(0, vec![], None);
        assert!(NegativeSampler::new(&g, NegativeDistribution::Uniform).is_err());
    }
}
