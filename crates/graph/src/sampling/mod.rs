//! Sampling primitives for skip-gram training.
//!
//! * [`alias`] — Vose alias tables for O(1) categorical sampling;
//! * [`edge_sampler`] — uniform edge batches without replacement
//!   (Algorithm 2, line 1 — the event whose probability `B/|E|` drives
//!   privacy amplification in Theorem 7);
//! * [`negative`] — negative sampling (Algorithm 2, lines 2–8; probability
//!   `Bk/|V|` in Theorem 7), with both the paper's uniform distribution and
//!   the standard unigram^0.75 used by LINE/word2vec;
//! * [`walks`] — DeepWalk/node2vec random walks for walk-based front-ends.

pub mod alias;
pub mod edge_sampler;
pub mod negative;
pub mod walks;

pub use alias::AliasTable;
pub use edge_sampler::EdgeBatchSampler;
pub use negative::{NegativeDistribution, NegativeSampler};
pub use walks::{node2vec_walk, random_walk, WalkCorpus, WalkParams};
