//! Node-set bucketing for out-of-core partitioned training.
//!
//! The out-of-core path (DESIGN.md §14) partitions `0..|V|` into `P`
//! contiguous *buckets* so that the embedding matrices can be split into
//! `P` row blocks, only two of which (one input-role, one output-role)
//! are resident in memory at a time. An edge `(u, v)` then belongs to the
//! *bucket pair* `(bucket(u), bucket(v))`; iterating pairs in the fixed
//! row-major [`NodeBuckets::pair_schedule`] order visits every edge while
//! swapping at most one resident partition per transition.
//!
//! Buckets are contiguous index ranges rather than hashed shards so that
//! the `.agph` on-disk sections (see `advsgm-store`) are defined by the
//! node id alone and the mapping needs no lookup table: with
//! `s = ceil(|V| / P)`, node `i` lives in bucket `i / s`.

use std::ops::Range;

use crate::error::GraphError;

/// A partition of the node set `0..num_nodes` into `buckets` contiguous
/// ranges of equal size `ceil(num_nodes / buckets)` (the last ranges may
/// be shorter or empty).
///
/// # Examples
/// ```
/// use advsgm_graph::buckets::NodeBuckets;
///
/// let b = NodeBuckets::new(10, 4).unwrap();
/// assert_eq!(b.bucket_size(), 3);
/// assert_eq!(b.bucket_of(0), 0);
/// assert_eq!(b.bucket_of(9), 3);
/// assert_eq!(b.range(3), 9..10);
/// assert_eq!(b.pair_schedule().len(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeBuckets {
    num_nodes: usize,
    buckets: usize,
    bucket_size: usize,
}

impl NodeBuckets {
    /// Partitions `0..num_nodes` into `buckets` contiguous ranges.
    ///
    /// `buckets` may exceed `num_nodes`; trailing buckets are then empty
    /// (every node still maps to a bucket below `buckets`).
    ///
    /// # Errors
    /// [`GraphError::InvalidParameter`] when `buckets == 0`.
    pub fn new(num_nodes: usize, buckets: usize) -> Result<Self, GraphError> {
        if buckets == 0 {
            return Err(GraphError::InvalidParameter {
                name: "buckets",
                reason: "bucket count must be at least 1".into(),
            });
        }
        // `max(1)` keeps `bucket_of` well-defined for the empty node set.
        let bucket_size = num_nodes.div_ceil(buckets).max(1);
        Ok(Self {
            num_nodes,
            buckets,
            bucket_size,
        })
    }

    /// Number of nodes being partitioned.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of buckets `P`.
    #[inline]
    pub fn count(&self) -> usize {
        self.buckets
    }

    /// Nodes per bucket `ceil(num_nodes / P)` (the last buckets may hold
    /// fewer).
    #[inline]
    pub fn bucket_size(&self) -> usize {
        self.bucket_size
    }

    /// The bucket holding node `node` (callers guarantee
    /// `node < num_nodes`).
    #[inline]
    pub fn bucket_of(&self, node: usize) -> usize {
        debug_assert!(node < self.num_nodes, "node {node} out of range");
        node / self.bucket_size
    }

    /// The node-index range of bucket `b` (empty for trailing buckets when
    /// `P` does not divide the node count evenly).
    #[inline]
    pub fn range(&self, b: usize) -> Range<usize> {
        debug_assert!(b < self.buckets, "bucket {b} out of range");
        let start = (b * self.bucket_size).min(self.num_nodes);
        let end = ((b + 1) * self.bucket_size).min(self.num_nodes);
        start..end
    }

    /// Number of nodes in bucket `b`.
    #[inline]
    pub fn len_of(&self, b: usize) -> usize {
        self.range(b).len()
    }

    /// The deterministic `P x P` bucket-pair visitation order: row-major
    /// `(0,0), (0,1), ..., (0,P-1), (1,0), ...` — each transition within a
    /// row swaps only the second (output-role) partition, and each row
    /// change swaps only the first.
    pub fn pair_schedule(&self) -> Vec<(usize, usize)> {
        let p = self.buckets;
        let mut out = Vec::with_capacity(p * p);
        for a in 0..p {
            for b in 0..p {
                out.push((a, b));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_buckets_rejected() {
        let err = NodeBuckets::new(10, 0).unwrap_err();
        assert!(matches!(err, GraphError::InvalidParameter { name, .. } if name == "buckets"));
    }

    #[test]
    fn ranges_tile_the_node_set() {
        for (n, p) in [(0, 1), (1, 1), (10, 1), (10, 3), (10, 4), (12, 4), (5, 7)] {
            let b = NodeBuckets::new(n, p).unwrap();
            let mut covered = 0;
            for k in 0..p {
                let r = b.range(k);
                assert_eq!(r.start, covered, "n={n} p={p} bucket {k}");
                covered = r.end;
                for i in r {
                    assert_eq!(b.bucket_of(i), k, "n={n} p={p} node {i}");
                }
            }
            assert_eq!(covered, n, "n={n} p={p}: ranges must tile 0..n");
        }
    }

    #[test]
    fn every_node_maps_below_bucket_count() {
        for (n, p) in [(10, 3), (10, 4), (1, 5), (120, 4), (7, 7)] {
            let b = NodeBuckets::new(n, p).unwrap();
            for i in 0..n {
                assert!(b.bucket_of(i) < p, "n={n} p={p} node {i}");
            }
        }
    }

    #[test]
    fn more_buckets_than_nodes_leaves_trailing_buckets_empty() {
        let b = NodeBuckets::new(3, 5).unwrap();
        assert_eq!(b.bucket_size(), 1);
        assert_eq!(b.len_of(0), 1);
        assert_eq!(b.len_of(2), 1);
        assert_eq!(b.len_of(3), 0);
        assert_eq!(b.len_of(4), 0);
    }

    #[test]
    fn single_bucket_holds_everything() {
        let b = NodeBuckets::new(9, 1).unwrap();
        assert_eq!(b.range(0), 0..9);
        assert_eq!(b.bucket_of(8), 0);
        assert_eq!(b.pair_schedule(), vec![(0, 0)]);
    }

    #[test]
    fn pair_schedule_is_row_major_and_complete() {
        let b = NodeBuckets::new(10, 3).unwrap();
        let s = b.pair_schedule();
        assert_eq!(s.len(), 9);
        assert_eq!(s[0], (0, 0));
        assert_eq!(s[1], (0, 1));
        assert_eq!(s[3], (1, 0));
        assert_eq!(s[8], (2, 2));
        // Each transition swaps at most one side.
        for w in s.windows(2) {
            let swaps = usize::from(w[0].0 != w[1].0) + usize::from(w[0].1 != w[1].1);
            assert!(swaps >= 1, "{w:?}");
        }
    }

    #[test]
    fn empty_node_set_is_well_defined() {
        let b = NodeBuckets::new(0, 3).unwrap();
        assert_eq!(b.bucket_size(), 1);
        for k in 0..3 {
            assert_eq!(b.len_of(k), 0);
        }
    }
}
