//! The central undirected simple graph type.

use crate::csr::Csr;
use crate::edge::Edge;
use crate::error::GraphError;
use crate::node::NodeId;

/// An undirected simple graph `G = (V, E)` with dense node ids `0..|V|`,
/// CSR adjacency, and optional per-node class labels.
///
/// This mirrors the paper's setting exactly: simple graphs (self-loops
/// removed in pre-processing), positive samples drawn from `E`, and labels
/// available only on the datasets used for node clustering (PPI, Wiki, Blog).
#[derive(Debug, Clone)]
pub struct Graph {
    num_nodes: usize,
    edges: Vec<Edge>,
    csr: Csr,
    labels: Option<Vec<u32>>,
}

impl Graph {
    /// Assembles a graph from pre-normalised parts (used by
    /// [`crate::builder::GraphBuilder`] and the generators; edges must
    /// already be deduplicated and self-loop free).
    pub fn from_parts(num_nodes: usize, edges: Vec<Edge>, labels: Option<Vec<u32>>) -> Self {
        let csr = Csr::from_edges(num_nodes, &edges);
        if let Some(l) = &labels {
            assert_eq!(l.len(), num_nodes, "label count must equal node count");
        }
        Graph {
            num_nodes,
            edges,
            csr,
            labels,
        }
    }

    /// Number of nodes `|V|`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of undirected edges `|E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The canonical edge list.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// CSR adjacency.
    #[inline]
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    /// Per-node labels, if attached.
    #[inline]
    pub fn labels(&self) -> Option<&[u32]> {
        self.labels.as_deref()
    }

    /// Number of distinct label classes (0 when unlabeled).
    pub fn num_classes(&self) -> usize {
        match &self.labels {
            None => 0,
            Some(l) => {
                let mut seen: Vec<u32> = l.clone();
                seen.sort_unstable();
                seen.dedup();
                seen.len()
            }
        }
    }

    /// Degree of a node.
    #[inline]
    pub fn degree(&self, n: NodeId) -> usize {
        self.csr.degree(n)
    }

    /// Sorted neighbors of a node.
    #[inline]
    pub fn neighbors(&self, n: NodeId) -> &[u32] {
        self.csr.neighbors(n)
    }

    /// Whether the undirected edge `(a, b)` exists.
    #[inline]
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.csr.has_edge(a, b)
    }

    /// Mean degree `2|E| / |V|` (0 for an empty graph).
    pub fn mean_degree(&self) -> f64 {
        if self.num_nodes == 0 {
            0.0
        } else {
            2.0 * self.num_edges() as f64 / self.num_nodes as f64
        }
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes)
            .map(|i| self.degree(NodeId::from_index(i)))
            .max()
            .unwrap_or(0)
    }

    /// Number of isolated (degree-zero) nodes.
    pub fn num_isolated(&self) -> usize {
        (0..self.num_nodes)
            .filter(|&i| self.degree(NodeId::from_index(i)) == 0)
            .count()
    }

    /// Returns a new graph restricted to the given edge subset (same node
    /// set, labels carried over). Used by the link-prediction split.
    pub fn with_edges(&self, edges: Vec<Edge>) -> Graph {
        Graph::from_parts(self.num_nodes, edges, self.labels.clone())
    }

    /// Validates internal invariants; used by tests and debug assertions.
    ///
    /// # Errors
    /// Returns a descriptive [`GraphError`] on the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), GraphError> {
        for e in &self.edges {
            if e.v().index() >= self.num_nodes {
                return Err(GraphError::NodeOutOfRange {
                    node: e.v().index(),
                    num_nodes: self.num_nodes,
                });
            }
        }
        if self.csr.num_directed_entries() != 2 * self.edges.len() {
            return Err(GraphError::InvalidParameter {
                name: "csr",
                reason: "CSR entry count != 2|E| (duplicate or missing edges)".into(),
            });
        }
        // Adjacency symmetry: every stored edge must be visible from both ends.
        for e in &self.edges {
            if !self.csr.has_edge(e.u(), e.v()) || !self.csr.has_edge(e.v(), e.u()) {
                return Err(GraphError::InvalidParameter {
                    name: "csr",
                    reason: format!("edge {e} missing from adjacency"),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn path_graph(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n.saturating_sub(1) {
            b.add_edge(i, i + 1).unwrap();
        }
        b.build()
    }

    #[test]
    fn counts_and_degrees() {
        let g = path_graph(5);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(NodeId(0)), 1);
        assert_eq!(g.degree(NodeId(2)), 2);
        assert_eq!(g.mean_degree(), 1.6);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.num_isolated(), 0);
    }

    #[test]
    fn invariants_hold_for_builder_output() {
        let g = path_graph(10);
        g.check_invariants().unwrap();
    }

    #[test]
    fn with_edges_restricts() {
        let g = path_graph(4);
        let sub = g.with_edges(vec![Edge::from_raw(0, 1)]);
        assert_eq!(sub.num_edges(), 1);
        assert_eq!(sub.num_nodes(), 4);
        assert!(sub.has_edge(NodeId(0), NodeId(1)));
        assert!(!sub.has_edge(NodeId(1), NodeId(2)));
        sub.check_invariants().unwrap();
    }

    #[test]
    fn num_classes_counts_distinct() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1).unwrap();
        b.with_labels(vec![0, 3, 3, 7]).unwrap();
        let g = b.build();
        assert_eq!(g.num_classes(), 3);
        assert_eq!(path_graph(2).num_classes(), 0);
    }

    #[test]
    fn isolated_nodes_counted() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1).unwrap();
        let g = b.build();
        assert_eq!(g.num_isolated(), 3);
    }
}
