//! The central undirected simple graph type.

use crate::csr::Csr;
use crate::edge::Edge;
use crate::error::GraphError;
use crate::node::NodeId;

/// An undirected simple graph `G = (V, E)` with dense node ids `0..|V|`,
/// CSR adjacency, optional per-node class labels, and optional per-edge
/// friend/foe signs.
///
/// This mirrors the paper's setting exactly: simple graphs (self-loops
/// removed in pre-processing), positive samples drawn from `E`, and labels
/// available only on the datasets used for node clustering (PPI, Wiki, Blog).
/// The sign channel is the signed-graph extension (arXiv 2512.00307): when
/// present, `signs[i]` records whether `edges[i]` is antagonistic (`true` =
/// foe, `false` = friend); when absent every edge is a friend edge and the
/// graph behaves exactly as before the extension.
#[derive(Debug, Clone)]
pub struct Graph {
    num_nodes: usize,
    edges: Vec<Edge>,
    csr: Csr,
    labels: Option<Vec<u32>>,
    signs: Option<Vec<bool>>,
}

impl Graph {
    /// Assembles a graph from pre-normalised parts (used by
    /// [`crate::builder::GraphBuilder`] and the generators; edges must
    /// already be deduplicated and self-loop free).
    pub fn from_parts(num_nodes: usize, edges: Vec<Edge>, labels: Option<Vec<u32>>) -> Self {
        Graph::from_parts_signed(num_nodes, edges, None, labels)
    }

    /// [`Graph::from_parts`] with a per-edge sign channel: `signs[i]` is
    /// `true` when `edges[i]` carries foe (antagonistic) polarity.
    ///
    /// # Panics
    /// Panics when the sign vector length differs from the edge count (a
    /// construction bug, matching the label-length assertion).
    pub fn from_parts_signed(
        num_nodes: usize,
        edges: Vec<Edge>,
        signs: Option<Vec<bool>>,
        labels: Option<Vec<u32>>,
    ) -> Self {
        let csr = Csr::from_edges(num_nodes, &edges);
        if let Some(l) = &labels {
            assert_eq!(l.len(), num_nodes, "label count must equal node count");
        }
        if let Some(s) = &signs {
            assert_eq!(s.len(), edges.len(), "sign count must equal edge count");
        }
        Graph {
            num_nodes,
            edges,
            csr,
            labels,
            signs,
        }
    }

    /// Number of nodes `|V|`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of undirected edges `|E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The canonical edge list.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// CSR adjacency.
    #[inline]
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    /// Per-node labels, if attached.
    #[inline]
    pub fn labels(&self) -> Option<&[u32]> {
        self.labels.as_deref()
    }

    /// Per-edge foe flags aligned with [`Graph::edges`], if attached
    /// (`true` = foe/antagonistic edge, `false` = friend edge).
    #[inline]
    pub fn signs(&self) -> Option<&[bool]> {
        self.signs.as_deref()
    }

    /// Whether this graph carries a sign channel.
    #[inline]
    pub fn is_signed(&self) -> bool {
        self.signs.is_some()
    }

    /// Whether edge `idx` (an index into [`Graph::edges`]) is a foe edge.
    /// Unsigned graphs are all-friend, so this returns `false` for them.
    #[inline]
    pub fn edge_is_foe(&self, idx: usize) -> bool {
        self.signs.as_ref().is_some_and(|s| s[idx])
    }

    /// Number of foe edges (0 for unsigned graphs).
    pub fn num_foe_edges(&self) -> usize {
        self.signs
            .as_ref()
            .map_or(0, |s| s.iter().filter(|&&f| f).count())
    }

    /// Number of distinct label classes (0 when unlabeled).
    pub fn num_classes(&self) -> usize {
        match &self.labels {
            None => 0,
            Some(l) => {
                let mut seen: Vec<u32> = l.clone();
                seen.sort_unstable();
                seen.dedup();
                seen.len()
            }
        }
    }

    /// Degree of a node.
    #[inline]
    pub fn degree(&self, n: NodeId) -> usize {
        self.csr.degree(n)
    }

    /// Sorted neighbors of a node.
    #[inline]
    pub fn neighbors(&self, n: NodeId) -> &[u32] {
        self.csr.neighbors(n)
    }

    /// Whether the undirected edge `(a, b)` exists.
    #[inline]
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.csr.has_edge(a, b)
    }

    /// Mean degree `2|E| / |V|` (0 for an empty graph).
    pub fn mean_degree(&self) -> f64 {
        if self.num_nodes == 0 {
            0.0
        } else {
            2.0 * self.num_edges() as f64 / self.num_nodes as f64
        }
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes)
            .map(|i| self.degree(NodeId::from_index(i)))
            .max()
            .unwrap_or(0)
    }

    /// Number of isolated (degree-zero) nodes.
    pub fn num_isolated(&self) -> usize {
        (0..self.num_nodes)
            .filter(|&i| self.degree(NodeId::from_index(i)) == 0)
            .count()
    }

    /// Returns a new graph restricted to the given edge subset (same node
    /// set, labels carried over). Used by the link-prediction split.
    ///
    /// The sign channel is **not** carried over: the caller supplies an
    /// arbitrary edge list with no index correspondence to this graph's,
    /// so signs could not be realigned safely. Sign-preserving restriction
    /// goes through [`Graph::with_edge_subset`] instead.
    pub fn with_edges(&self, edges: Vec<Edge>) -> Graph {
        Graph::from_parts(self.num_nodes, edges, self.labels.clone())
    }

    /// Returns a new graph restricted to the edges at the given indices of
    /// [`Graph::edges`] (same node set; labels and signs carried over).
    /// Used by the sign-prediction split, where held-out edges must keep
    /// their polarity.
    ///
    /// # Panics
    /// Panics when an index is out of range for the edge list.
    pub fn with_edge_subset(&self, indices: &[usize]) -> Graph {
        let edges: Vec<Edge> = indices.iter().map(|&i| self.edges[i]).collect();
        let signs = self
            .signs
            .as_ref()
            .map(|s| indices.iter().map(|&i| s[i]).collect());
        Graph::from_parts_signed(self.num_nodes, edges, signs, self.labels.clone())
    }

    /// Validates internal invariants; used by tests and debug assertions.
    ///
    /// # Errors
    /// Returns a descriptive [`GraphError`] on the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), GraphError> {
        for e in &self.edges {
            if e.v().index() >= self.num_nodes {
                return Err(GraphError::NodeOutOfRange {
                    node: e.v().index(),
                    num_nodes: self.num_nodes,
                });
            }
        }
        if self.csr.num_directed_entries() != 2 * self.edges.len() {
            return Err(GraphError::InvalidParameter {
                name: "csr",
                reason: "CSR entry count != 2|E| (duplicate or missing edges)".into(),
            });
        }
        if let Some(s) = &self.signs {
            if s.len() != self.edges.len() {
                return Err(GraphError::InvalidParameter {
                    name: "signs",
                    reason: format!("{} signs for {} edges", s.len(), self.edges.len()),
                });
            }
        }
        // Adjacency symmetry: every stored edge must be visible from both ends.
        for e in &self.edges {
            if !self.csr.has_edge(e.u(), e.v()) || !self.csr.has_edge(e.v(), e.u()) {
                return Err(GraphError::InvalidParameter {
                    name: "csr",
                    reason: format!("edge {e} missing from adjacency"),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn path_graph(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n.saturating_sub(1) {
            b.add_edge(i, i + 1).unwrap();
        }
        b.build()
    }

    #[test]
    fn counts_and_degrees() {
        let g = path_graph(5);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(NodeId(0)), 1);
        assert_eq!(g.degree(NodeId(2)), 2);
        assert_eq!(g.mean_degree(), 1.6);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.num_isolated(), 0);
    }

    #[test]
    fn invariants_hold_for_builder_output() {
        let g = path_graph(10);
        g.check_invariants().unwrap();
    }

    #[test]
    fn with_edges_restricts() {
        let g = path_graph(4);
        let sub = g.with_edges(vec![Edge::from_raw(0, 1)]);
        assert_eq!(sub.num_edges(), 1);
        assert_eq!(sub.num_nodes(), 4);
        assert!(sub.has_edge(NodeId(0), NodeId(1)));
        assert!(!sub.has_edge(NodeId(1), NodeId(2)));
        sub.check_invariants().unwrap();
    }

    #[test]
    fn num_classes_counts_distinct() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1).unwrap();
        b.with_labels(vec![0, 3, 3, 7]).unwrap();
        let g = b.build();
        assert_eq!(g.num_classes(), 3);
        assert_eq!(path_graph(2).num_classes(), 0);
    }

    #[test]
    fn isolated_nodes_counted() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1).unwrap();
        let g = b.build();
        assert_eq!(g.num_isolated(), 3);
    }

    #[test]
    fn unsigned_graphs_are_all_friend() {
        let g = path_graph(4);
        assert!(!g.is_signed());
        assert!(g.signs().is_none());
        assert!(!g.edge_is_foe(0));
        assert_eq!(g.num_foe_edges(), 0);
    }

    #[test]
    fn signs_attach_and_survive_subset() {
        let edges = vec![
            Edge::from_raw(0, 1),
            Edge::from_raw(1, 2),
            Edge::from_raw(2, 3),
        ];
        let g = Graph::from_parts_signed(4, edges, Some(vec![false, true, false]), None);
        assert!(g.is_signed());
        assert_eq!(g.num_foe_edges(), 1);
        assert!(g.edge_is_foe(1));
        assert!(!g.edge_is_foe(2));
        g.check_invariants().unwrap();

        let sub = g.with_edge_subset(&[1, 2]);
        assert_eq!(sub.num_edges(), 2);
        assert_eq!(sub.signs(), Some(&[true, false][..]));
        sub.check_invariants().unwrap();

        // `with_edges` drops the channel by contract.
        let dropped = g.with_edges(vec![Edge::from_raw(0, 1)]);
        assert!(!dropped.is_signed());
    }

    #[test]
    #[should_panic(expected = "sign count")]
    fn mismatched_sign_length_panics() {
        Graph::from_parts_signed(3, vec![Edge::from_raw(0, 1)], Some(vec![true, false]), None);
    }
}
