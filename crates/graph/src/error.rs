//! Error type for graph construction, I/O, and sampling.

use std::fmt;

/// Errors produced by the graph substrate.
#[derive(Debug)]
pub enum GraphError {
    /// A node index referenced a node outside `0..|V|`.
    NodeOutOfRange {
        /// The offending index.
        node: usize,
        /// Number of nodes in the graph.
        num_nodes: usize,
    },
    /// An operation required a non-empty graph/edge set but got none.
    EmptyGraph {
        /// The operation that failed.
        op: &'static str,
    },
    /// A batch request exceeded the available population.
    SampleTooLarge {
        /// Requested sample size.
        requested: usize,
        /// Available population size.
        available: usize,
    },
    /// A parameter was outside its legal domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Explanation of the violated constraint.
        reason: String,
    },
    /// Parsing an edge-list or label file failed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        reason: String,
    },
    /// An underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(
                    f,
                    "node {node} out of range for graph with {num_nodes} nodes"
                )
            }
            GraphError::EmptyGraph { op } => write!(f, "{op} requires a non-empty graph"),
            GraphError::SampleTooLarge {
                requested,
                available,
            } => write!(
                f,
                "requested sample of {requested} exceeds population of {available}"
            ),
            GraphError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter {name}: {reason}")
            }
            GraphError::Parse { line, reason } => write!(f, "parse error on line {line}: {reason}"),
            // Lowercase by workspace convention (see tests/error_display.rs).
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = GraphError::NodeOutOfRange {
            node: 9,
            num_nodes: 3,
        };
        assert!(e.to_string().contains("node 9"));
        let e = GraphError::SampleTooLarge {
            requested: 10,
            available: 2,
        };
        assert!(e.to_string().contains("10"));
        let e = GraphError::Parse {
            line: 3,
            reason: "bad token".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn io_error_source_chains() {
        use std::error::Error;
        let inner = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e = GraphError::from(inner);
        assert!(e.source().is_some());
    }
}
