//! Plain-text graph I/O.
//!
//! Format: one edge per line, two whitespace-separated node ids; lines
//! starting with `#` or `%` are comments (the SNAP convention, so the real
//! Facebook/Epinions files can be dropped in directly). Labels use one
//! `node label` pair per line. Signed edge lists append a third token per
//! line — `+`/`1` for friend edges, `-`/`-1` for foe edges — matching the
//! SNAP signed-network convention (e.g. soc-sign-epinions).

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::Graph;

/// Reads an edge list from any reader. `num_nodes` of `None` infers the node
/// count as `max id + 1`; self-loops and duplicates are dropped per the
/// paper's pre-processing.
///
/// # Errors
/// Returns [`GraphError::Parse`] on malformed lines, or propagates I/O
/// errors.
pub fn read_edge_list(reader: impl Read, num_nodes: Option<usize>) -> Result<Graph, GraphError> {
    let buf = BufReader::new(reader);
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    let mut max_id = 0usize;
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let a = parse_id(it.next(), lineno + 1)?;
        let b = parse_id(it.next(), lineno + 1)?;
        max_id = max_id.max(a).max(b);
        pairs.push((a, b));
    }
    let n = num_nodes.unwrap_or(if pairs.is_empty() { 0 } else { max_id + 1 });
    let mut builder = GraphBuilder::new(n);
    builder.add_edges(pairs)?;
    Ok(builder.build())
}

fn parse_id(tok: Option<&str>, line: usize) -> Result<usize, GraphError> {
    let tok = tok.ok_or(GraphError::Parse {
        line,
        reason: "expected two node ids".into(),
    })?;
    tok.parse::<usize>().map_err(|e| GraphError::Parse {
        line,
        reason: format!("bad node id {tok:?}: {e}"),
    })
}

/// Reads an edge list from a file path.
///
/// # Errors
/// See [`read_edge_list`].
pub fn read_edge_list_file(
    path: impl AsRef<Path>,
    num_nodes: Option<usize>,
) -> Result<Graph, GraphError> {
    let f = std::fs::File::open(path)?;
    read_edge_list(f, num_nodes)
}

/// Reads a signed edge list: `u v sign` per line, where `sign` is `+`/`1`
/// for a friend edge or `-`/`-1` for a foe edge. Normalisation as in
/// [`read_edge_list`]; the first occurrence of a duplicated edge pins its
/// sign.
///
/// # Errors
/// Returns [`GraphError::Parse`] on malformed lines or unknown sign
/// tokens, or propagates I/O errors.
pub fn read_signed_edge_list(
    reader: impl Read,
    num_nodes: Option<usize>,
) -> Result<Graph, GraphError> {
    let buf = BufReader::new(reader);
    let mut triples: Vec<(usize, usize, bool)> = Vec::new();
    let mut max_id = 0usize;
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let a = parse_id(it.next(), lineno + 1)?;
        let b = parse_id(it.next(), lineno + 1)?;
        let foe = parse_sign(it.next(), lineno + 1)?;
        max_id = max_id.max(a).max(b);
        triples.push((a, b, foe));
    }
    let n = num_nodes.unwrap_or(if triples.is_empty() { 0 } else { max_id + 1 });
    let mut builder = GraphBuilder::new(n);
    for (a, b, foe) in triples {
        builder.add_signed_edge(a, b, foe)?;
    }
    Ok(builder.build())
}

fn parse_sign(tok: Option<&str>, line: usize) -> Result<bool, GraphError> {
    let tok = tok.ok_or(GraphError::Parse {
        line,
        reason: "expected two node ids and a sign".into(),
    })?;
    match tok {
        "+" | "1" | "+1" => Ok(false),
        "-" | "-1" => Ok(true),
        other => Err(GraphError::Parse {
            line,
            reason: format!("bad sign token {other:?} (expected +, 1, +1, -, or -1)"),
        }),
    }
}

/// Reads a signed edge list from a file path.
///
/// # Errors
/// See [`read_signed_edge_list`].
pub fn read_signed_edge_list_file(
    path: impl AsRef<Path>,
    num_nodes: Option<usize>,
) -> Result<Graph, GraphError> {
    let f = std::fs::File::open(path)?;
    read_signed_edge_list(f, num_nodes)
}

/// Writes the edge list of `graph` (one `u v` pair per line).
///
/// # Errors
/// Propagates I/O errors.
pub fn write_edge_list(graph: &Graph, writer: impl Write) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    for e in graph.edges() {
        writeln!(w, "{} {}", e.u().0, e.v().0)?;
    }
    w.flush()?;
    Ok(())
}

/// Writes the signed edge list of `graph` (one `u v sign` triple per line,
/// `+` for friend and `-` for foe). Unsigned graphs write every edge as a
/// friend edge.
///
/// # Errors
/// Propagates I/O errors.
pub fn write_signed_edge_list(graph: &Graph, writer: impl Write) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    for (i, e) in graph.edges().iter().enumerate() {
        let sign = if graph.edge_is_foe(i) { '-' } else { '+' };
        writeln!(w, "{} {} {sign}", e.u().0, e.v().0)?;
    }
    w.flush()?;
    Ok(())
}

/// Reads per-node labels: lines of `node label`; nodes not listed get label
/// 0. Comments as in [`read_edge_list`].
///
/// # Errors
/// Returns [`GraphError::Parse`] on malformed lines or out-of-range nodes.
pub fn read_labels(reader: impl Read, num_nodes: usize) -> Result<Vec<u32>, GraphError> {
    let buf = BufReader::new(reader);
    let mut labels = vec![0u32; num_nodes];
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let node = parse_id(it.next(), lineno + 1)?;
        let label = parse_id(it.next(), lineno + 1)?;
        if node >= num_nodes {
            return Err(GraphError::Parse {
                line: lineno + 1,
                reason: format!("node {node} out of range ({num_nodes} nodes)"),
            });
        }
        labels[node] = label as u32;
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic::karate_club;

    #[test]
    fn roundtrip_through_text() {
        let g = karate_club();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..], Some(34)).unwrap();
        assert_eq!(g.edges(), g2.edges());
        assert_eq!(g2.num_nodes(), 34);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# comment\n\n% another\n0 1\n1 2\n";
        let g = read_edge_list(text.as_bytes(), None).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_nodes(), 3);
    }

    #[test]
    fn self_loops_and_duplicates_dropped() {
        let text = "0 0\n0 1\n1 0\n";
        let g = read_edge_list(text.as_bytes(), None).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn malformed_line_reports_position() {
        let text = "0 1\nbad line here\n";
        let err = read_edge_list(text.as_bytes(), None).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn missing_second_id_is_error() {
        let err = read_edge_list("7\n".as_bytes(), None).unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }));
    }

    #[test]
    fn labels_parse_with_default_zero() {
        let text = "0 3\n2 1\n";
        let labels = read_labels(text.as_bytes(), 4).unwrap();
        assert_eq!(labels, vec![3, 0, 1, 0]);
    }

    #[test]
    fn label_node_out_of_range() {
        let err = read_labels("9 1\n".as_bytes(), 3).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let g = read_edge_list("".as_bytes(), None).unwrap();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn signed_roundtrip_through_text() {
        use crate::edge::Edge;
        use crate::graph::Graph;
        let g = Graph::from_parts_signed(
            3,
            vec![Edge::from_raw(0, 1), Edge::from_raw(1, 2)],
            Some(vec![false, true]),
            None,
        );
        let mut buf = Vec::new();
        write_signed_edge_list(&g, &mut buf).unwrap();
        assert_eq!(String::from_utf8(buf.clone()).unwrap(), "0 1 +\n1 2 -\n");
        let g2 = read_signed_edge_list(&buf[..], Some(3)).unwrap();
        assert_eq!(g2.edges(), g.edges());
        assert_eq!(g2.signs(), g.signs());
    }

    #[test]
    fn signed_reader_accepts_numeric_tokens() {
        let text = "# signed\n0 1 1\n1 2 -1\n2 3 +1\n";
        let g = read_signed_edge_list(text.as_bytes(), None).unwrap();
        assert_eq!(g.signs(), Some(&[false, true, false][..]));
    }

    #[test]
    fn signed_reader_rejects_bad_tokens() {
        let err = read_signed_edge_list("0 1 friend\n".as_bytes(), None).unwrap_err();
        assert!(err.to_string().contains("bad sign token"), "{err}");
        let err = read_signed_edge_list("0 1\n".as_bytes(), None).unwrap_err();
        assert!(err.to_string().contains("and a sign"), "{err}");
    }

    #[test]
    fn unsigned_graph_writes_all_friend() {
        let g = karate_club();
        let mut buf = Vec::new();
        write_signed_edge_list(&g, &mut buf).unwrap();
        let g2 = read_signed_edge_list(&buf[..], Some(34)).unwrap();
        assert_eq!(g2.num_foe_edges(), 0);
        assert_eq!(g2.edges(), g.edges());
    }
}
