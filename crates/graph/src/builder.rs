//! Graph ingestion with normalisation.

use std::collections::HashSet;

use crate::edge::Edge;
use crate::error::GraphError;
use crate::graph::Graph;
use crate::node::NodeId;

/// Builds a [`Graph`] from raw edges, applying the paper's pre-processing:
/// self-loops are dropped, duplicate edges (in either orientation) are
/// deduplicated, and node labels may be attached for clustering evaluation.
/// Edges added through [`GraphBuilder::add_signed_edge`] carry friend/foe
/// polarity; the built graph gets a sign channel as soon as any signed
/// edge was added (plain [`GraphBuilder::add_edge`] records a friend edge).
#[derive(Debug, Default)]
pub struct GraphBuilder {
    num_nodes: usize,
    edges: Vec<Edge>,
    signs: Vec<bool>,
    any_signed: bool,
    seen: HashSet<Edge>,
    labels: Option<Vec<u32>>,
    dropped_self_loops: usize,
    dropped_duplicates: usize,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `num_nodes` nodes (`0..num_nodes`).
    pub fn new(num_nodes: usize) -> Self {
        Self {
            num_nodes,
            ..Self::default()
        }
    }

    /// Adds an undirected edge; self-loops and duplicates are silently
    /// dropped (counted in [`GraphBuilder::dropped_self_loops`] /
    /// [`GraphBuilder::dropped_duplicates`]).
    ///
    /// # Errors
    /// Returns [`GraphError::NodeOutOfRange`] if either endpoint is out of
    /// range.
    pub fn add_edge(&mut self, a: usize, b: usize) -> Result<&mut Self, GraphError> {
        self.push_edge(a, b, false)
    }

    /// Adds an undirected edge with friend/foe polarity (`foe = true` for
    /// antagonistic edges); normalisation as in [`GraphBuilder::add_edge`].
    /// The first occurrence of a duplicated edge pins its sign.
    ///
    /// # Errors
    /// Returns [`GraphError::NodeOutOfRange`] if either endpoint is out of
    /// range.
    pub fn add_signed_edge(
        &mut self,
        a: usize,
        b: usize,
        foe: bool,
    ) -> Result<&mut Self, GraphError> {
        self.any_signed = true;
        self.push_edge(a, b, foe)
    }

    fn push_edge(&mut self, a: usize, b: usize, foe: bool) -> Result<&mut Self, GraphError> {
        if a >= self.num_nodes {
            return Err(GraphError::NodeOutOfRange {
                node: a,
                num_nodes: self.num_nodes,
            });
        }
        if b >= self.num_nodes {
            return Err(GraphError::NodeOutOfRange {
                node: b,
                num_nodes: self.num_nodes,
            });
        }
        if a == b {
            self.dropped_self_loops += 1;
            return Ok(self);
        }
        let e = Edge::new(NodeId::from_index(a), NodeId::from_index(b));
        if self.seen.insert(e) {
            self.edges.push(e);
            self.signs.push(foe);
        } else {
            self.dropped_duplicates += 1;
        }
        Ok(self)
    }

    /// Adds many edges; stops at the first out-of-range endpoint.
    ///
    /// # Errors
    /// Propagates the first [`GraphError::NodeOutOfRange`].
    pub fn add_edges(
        &mut self,
        it: impl IntoIterator<Item = (usize, usize)>,
    ) -> Result<&mut Self, GraphError> {
        for (a, b) in it {
            self.add_edge(a, b)?;
        }
        Ok(self)
    }

    /// Attaches per-node class labels (for the clustering task).
    ///
    /// # Errors
    /// Returns [`GraphError::InvalidParameter`] if the label vector length
    /// does not equal the node count.
    pub fn with_labels(&mut self, labels: Vec<u32>) -> Result<&mut Self, GraphError> {
        if labels.len() != self.num_nodes {
            return Err(GraphError::InvalidParameter {
                name: "labels",
                reason: format!("expected {} labels, got {}", self.num_nodes, labels.len()),
            });
        }
        self.labels = Some(labels);
        Ok(self)
    }

    /// Number of self-loops dropped so far.
    pub fn dropped_self_loops(&self) -> usize {
        self.dropped_self_loops
    }

    /// Number of duplicate edges dropped so far.
    pub fn dropped_duplicates(&self) -> usize {
        self.dropped_duplicates
    }

    /// Finalises the graph. A sign channel is attached iff any edge came
    /// through [`GraphBuilder::add_signed_edge`].
    pub fn build(self) -> Graph {
        let signs = self.any_signed.then_some(self.signs);
        Graph::from_parts_signed(self.num_nodes, self.edges, signs, self.labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedupes_and_drops_self_loops() {
        let mut b = GraphBuilder::new(4);
        b.add_edges([(0, 1), (1, 0), (2, 2), (1, 2)]).unwrap();
        assert_eq!(b.dropped_duplicates(), 1);
        assert_eq!(b.dropped_self_loops(), 1);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_nodes(), 4);
    }

    #[test]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        assert!(b.add_edge(0, 5).is_err());
        assert!(b.add_edge(5, 0).is_err());
    }

    #[test]
    fn labels_must_match_node_count() {
        let mut b = GraphBuilder::new(3);
        assert!(b.with_labels(vec![0, 1]).is_err());
        assert!(b.with_labels(vec![0, 1, 0]).is_ok());
        let g = b.build();
        assert_eq!(g.labels().unwrap(), &[0, 1, 0]);
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn unsigned_adds_build_an_unsigned_graph() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).unwrap().add_edge(1, 2).unwrap();
        assert!(!b.build().is_signed());
    }

    #[test]
    fn signed_adds_attach_the_channel() {
        let mut b = GraphBuilder::new(4);
        b.add_signed_edge(0, 1, false).unwrap();
        b.add_signed_edge(1, 2, true).unwrap();
        b.add_edge(2, 3).unwrap(); // mixed: plain add = friend
        let g = b.build();
        assert_eq!(g.signs(), Some(&[false, true, false][..]));
    }

    #[test]
    fn duplicate_signed_edge_keeps_first_sign() {
        let mut b = GraphBuilder::new(3);
        b.add_signed_edge(0, 1, true).unwrap();
        b.add_signed_edge(1, 0, false).unwrap(); // duplicate, dropped
        b.add_signed_edge(2, 2, true).unwrap(); // self-loop, dropped
        assert_eq!(b.dropped_duplicates(), 1);
        assert_eq!(b.dropped_self_loops(), 1);
        let g = b.build();
        assert_eq!(g.signs(), Some(&[true][..]));
    }
}
