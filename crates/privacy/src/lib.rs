//! # advsgm-privacy
//!
//! Differential-privacy substrate for AdvSGM: the Gaussian mechanism, Rényi
//! differential privacy (RDP) accounting with subsampling amplification, and
//! the conversions between RDP and `(epsilon, delta)`-DP.
//!
//! The paper's privacy argument (Theorems 6 and 7) decomposes as:
//!
//! 1. each discriminator update adds `N(0, (B C sigma)^2 I)` noise to a
//!    batch-gradient sum of sensitivity `B C` — i.e. a Gaussian mechanism
//!    with *noise multiplier* `sigma`, whose RDP curve is
//!    `eps(alpha) = alpha / (2 sigma^2)` ([`rdp`]);
//! 2. the batch is subsampled without replacement at rate `gamma = B/|E|`
//!    (positives) or `gamma = Bk/|V|` (negatives), amplifying the per-step
//!    curve via Theorem 4 of the paper (Wang et al., 2019) ([`subsampled`]);
//! 3. steps compose additively in RDP and convert to `(epsilon, delta)`-DP
//!    via Mironov's Proposition 3 ([`conversion`]);
//! 4. the [`accountant::RdpAccountant`] tracks the composition online and
//!    implements Algorithm 3's stopping rule (lines 9–11).
//!
//! All accounting runs in log-space so large orders `alpha` and tiny
//! sampling rates never overflow.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod accountant;
pub mod clipping;
pub mod conversion;
pub mod error;
pub mod mechanisms;
pub mod rdp;
pub mod subsampled;

pub use accountant::{AccountantState, RdpAccountant, SpendSnapshot};
pub use error::PrivacyError;
pub use mechanisms::GaussianMechanism;
pub use rdp::GaussianRdp;
