//! The Gaussian mechanism.
//!
//! `A(G) = f(G) + N(0, (Delta_f * sigma)^2 I)`: noise is calibrated to the
//! `L2` sensitivity of the released quantity times the noise multiplier.
//! In AdvSGM the released quantity per step is the *sum* of `B` clipped
//! per-pair gradients, whose sensitivity under bounded node-level DP is
//! `B * C` (Theorem 6), so the noise std is `B * C * sigma` (Eqs. 22–23).

use rand::Rng;

use crate::error::PrivacyError;

/// A Gaussian mechanism with a fixed noise multiplier and sensitivity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianMechanism {
    noise_multiplier: f64,
    sensitivity: f64,
}

impl GaussianMechanism {
    /// Creates a mechanism with noise multiplier `sigma > 0` and
    /// `L2` sensitivity `delta_f > 0`.
    ///
    /// # Errors
    /// Returns [`PrivacyError::InvalidParameter`] on out-of-domain inputs.
    pub fn new(noise_multiplier: f64, sensitivity: f64) -> Result<Self, PrivacyError> {
        if noise_multiplier.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
            || !noise_multiplier.is_finite()
        {
            return Err(PrivacyError::InvalidParameter {
                name: "noise_multiplier",
                reason: format!("must be positive and finite, got {noise_multiplier}"),
            });
        }
        if sensitivity.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
            || !sensitivity.is_finite()
        {
            return Err(PrivacyError::InvalidParameter {
                name: "sensitivity",
                reason: format!("must be positive and finite, got {sensitivity}"),
            });
        }
        Ok(Self {
            noise_multiplier,
            sensitivity,
        })
    }

    /// The noise standard deviation `Delta_f * sigma`.
    #[inline]
    pub fn noise_std(&self) -> f64 {
        self.noise_multiplier * self.sensitivity
    }

    /// The noise multiplier `sigma`.
    pub fn noise_multiplier(&self) -> f64 {
        self.noise_multiplier
    }

    /// The calibrated sensitivity `Delta_f`.
    pub fn sensitivity(&self) -> f64 {
        self.sensitivity
    }

    /// Adds calibrated Gaussian noise to `values` in place.
    pub fn perturb(&self, values: &mut [f64], rng: &mut impl Rng) {
        let std = self.noise_std();
        for v in values.iter_mut() {
            *v += gaussian(rng, std);
        }
    }

    /// Returns a noisy copy of `values`.
    pub fn perturbed(&self, values: &[f64], rng: &mut impl Rng) -> Vec<f64> {
        let mut out = values.to_vec();
        self.perturb(&mut out, rng);
        out
    }

    /// Draws a fresh noise vector of length `n` (used where the paper treats
    /// the noise itself as an optimizable term, e.g. `N_{D,1}(C^2 sigma^2 I)`).
    pub fn sample_noise(&self, n: usize, rng: &mut impl Rng) -> Vec<f64> {
        let std = self.noise_std();
        (0..n).map(|_| gaussian(rng, std)).collect()
    }
}

/// Box–Muller standard-normal sample scaled by `std` (duplicated from
/// `advsgm-linalg` to keep this crate dependency-light; both are tested
/// against each other in the workspace integration tests).
#[inline]
fn gaussian(rng: &mut impl Rng, std: f64) -> f64 {
    if std == 0.0 {
        return 0.0;
    }
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn noise_std_is_product() {
        let m = GaussianMechanism::new(5.0, 2.0).unwrap();
        assert_eq!(m.noise_std(), 10.0);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(GaussianMechanism::new(0.0, 1.0).is_err());
        assert!(GaussianMechanism::new(1.0, 0.0).is_err());
        assert!(GaussianMechanism::new(f64::INFINITY, 1.0).is_err());
    }

    #[test]
    fn perturb_changes_values_with_right_scale() {
        let m = GaussianMechanism::new(2.0, 1.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 100_000;
        let noisy = m.perturbed(&vec![0.0; n], &mut rng);
        let mean = noisy.iter().sum::<f64>() / n as f64;
        let var = noisy.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        assert!(mean.abs() < 0.05, "mean={mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "std={}", var.sqrt());
    }

    #[test]
    fn sample_noise_length() {
        let m = GaussianMechanism::new(5.0, 1.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        assert_eq!(m.sample_noise(17, &mut rng).len(), 17);
    }

    #[test]
    fn perturbation_is_additive() {
        // Same seed: perturbed(x) - x must equal the pure noise draw.
        let m = GaussianMechanism::new(3.0, 1.0).unwrap();
        let x = vec![5.0, -2.0, 0.5];
        let noisy = m.perturbed(&x, &mut SmallRng::seed_from_u64(3));
        let noise = m.sample_noise(3, &mut SmallRng::seed_from_u64(3));
        for i in 0..3 {
            assert!((noisy[i] - x[i] - noise[i]).abs() < 1e-12);
        }
    }
}
