//! Error type for privacy accounting.

use std::fmt;

/// Errors produced by the privacy substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum PrivacyError {
    /// A parameter was outside its legal domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Explanation of the violated constraint.
        reason: String,
    },
    /// The privacy budget was exhausted (Algorithm 3, line 11).
    BudgetExhausted {
        /// Achievable delta at the target epsilon.
        delta_spent: f64,
        /// The target delta.
        delta_target: f64,
    },
}

impl fmt::Display for PrivacyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrivacyError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter {name}: {reason}")
            }
            PrivacyError::BudgetExhausted {
                delta_spent,
                delta_target,
            } => write!(
                f,
                "privacy budget exhausted: delta spent {delta_spent:.3e} >= target {delta_target:.3e}"
            ),
        }
    }
}

impl std::error::Error for PrivacyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_budget_exhausted() {
        let e = PrivacyError::BudgetExhausted {
            delta_spent: 2e-5,
            delta_target: 1e-5,
        };
        let s = e.to_string();
        assert!(s.contains("exhausted"), "{s}");
    }
}
