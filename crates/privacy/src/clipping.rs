//! Gradient clipping and the batch-sum sensitivity argument.
//!
//! DPSGD (Eq. 5 of the paper) clips each per-example gradient to `L2` norm
//! `C` before summation. For i.i.d. tabular data the batch sum then has
//! sensitivity `C` under add/remove DP. **Graphs break this**: changing one
//! node can alter every pair in the batch (Section III-B), so under bounded
//! node-level DP the sensitivity of the clipped-gradient sum is taken as
//! `B * C` — every one of the `B` clipped summands may change, each bounded
//! by `C` (Theorem 6 and the discussion around Eq. 6). Remark 3 notes
//! AdvSGM does not reduce this sensitivity; the utility win comes from the
//! adversarial module, not from a smaller noise scale.

/// Clips `g` to `L2` norm at most `c` in place; returns the applied factor.
///
/// # Panics
/// Panics if `c <= 0`.
#[inline]
pub fn clip_gradient(g: &mut [f64], c: f64) -> f64 {
    assert!(c > 0.0, "clip threshold must be positive, got {c}");
    let norm: f64 = g.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm > c {
        let f = c / norm;
        for v in g.iter_mut() {
            *v *= f;
        }
        f
    } else {
        1.0
    }
}

/// Clips every gradient in `grads` and accumulates their sum into `sum`
/// (which must be zeroed or pre-loaded by the caller). Returns the number of
/// gradients that were actually rescaled.
///
/// # Panics
/// Panics if widths disagree or `c <= 0`.
pub fn clip_and_sum(grads: &mut [Vec<f64>], c: f64, sum: &mut [f64]) -> usize {
    let mut clipped = 0usize;
    for g in grads.iter_mut() {
        assert_eq!(g.len(), sum.len(), "gradient width mismatch");
        if clip_gradient(g, c) < 1.0 {
            clipped += 1;
        }
        for (s, v) in sum.iter_mut().zip(g.iter()) {
            *s += v;
        }
    }
    clipped
}

/// The paper's batch-sum sensitivity under bounded node-level DP:
/// `Delta = B * C` (Theorem 6; Eq. 6 for the DP-ASGM first cut).
#[inline]
pub fn batch_sum_sensitivity(batch_size: usize, c: f64) -> f64 {
    assert!(c > 0.0, "clip threshold must be positive");
    batch_size as f64 * c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clip_noop_inside_ball() {
        let mut g = vec![0.3, 0.4];
        assert_eq!(clip_gradient(&mut g, 1.0), 1.0);
        assert_eq!(g, vec![0.3, 0.4]);
    }

    #[test]
    fn clip_rescales_outside_ball() {
        let mut g = vec![6.0, 8.0];
        let f = clip_gradient(&mut g, 5.0);
        assert!((f - 0.5).abs() < 1e-12);
        let n: f64 = g.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!((n - 5.0).abs() < 1e-12);
    }

    #[test]
    fn clip_and_sum_bounds_every_summand() {
        let mut grads = vec![vec![10.0, 0.0], vec![0.0, 0.1], vec![3.0, 4.0]];
        let mut sum = vec![0.0, 0.0];
        let clipped = clip_and_sum(&mut grads, 1.0, &mut sum);
        assert_eq!(clipped, 2);
        for g in &grads {
            let n: f64 = g.iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!(n <= 1.0 + 1e-12);
        }
        // The sum's norm is at most B*C (the sensitivity bound).
        let n: f64 = sum.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(n <= batch_sum_sensitivity(3, 1.0) + 1e-12);
    }

    #[test]
    fn sensitivity_formula() {
        assert_eq!(batch_sum_sensitivity(128, 1.0), 128.0);
        assert_eq!(batch_sum_sensitivity(16, 0.5), 8.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threshold_rejected() {
        clip_gradient(&mut [1.0], 0.0);
    }
}
