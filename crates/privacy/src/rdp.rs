//! Rényi-DP curves for the Gaussian mechanism.
//!
//! A Gaussian mechanism releasing `f(G) + N(0, (Delta sigma)^2 I)` for an
//! `L2`-sensitivity-`Delta` function satisfies `(alpha, alpha/(2 sigma^2))`-
//! RDP for every `alpha > 1` (Section II-C of the paper). Note the curve
//! depends only on the *noise multiplier* `sigma = noise_std / Delta`:
//! AdvSGM's batch update adds `N(0, (B C sigma)^2)` to a sum of sensitivity
//! `B C`, so its per-step curve is `alpha/(2 sigma^2)` regardless of `B`, `C`.

use crate::error::PrivacyError;

/// The default integer order grid used throughout the workspace.
///
/// Theorem 4 (subsampling) requires integer orders; this grid covers the
/// regimes where the optimum lands for all paper configurations.
pub fn default_alpha_grid() -> Vec<usize> {
    let mut g: Vec<usize> = (2..=64).collect();
    g.extend([80, 96, 128, 192, 256]);
    g
}

/// The RDP curve of a Gaussian mechanism with noise multiplier `sigma`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianRdp {
    noise_multiplier: f64,
}

impl GaussianRdp {
    /// Creates the curve for noise multiplier `sigma > 0`.
    ///
    /// # Errors
    /// Returns [`PrivacyError::InvalidParameter`] for non-positive `sigma`.
    pub fn new(noise_multiplier: f64) -> Result<Self, PrivacyError> {
        if noise_multiplier.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
            || !noise_multiplier.is_finite()
        {
            return Err(PrivacyError::InvalidParameter {
                name: "noise_multiplier",
                reason: format!("must be positive and finite, got {noise_multiplier}"),
            });
        }
        Ok(Self { noise_multiplier })
    }

    /// The noise multiplier `sigma`.
    pub fn noise_multiplier(&self) -> f64 {
        self.noise_multiplier
    }

    /// `eps(alpha) = alpha / (2 sigma^2)` for `alpha > 1`.
    ///
    /// # Panics
    /// Panics (debug) if `alpha <= 1`.
    #[inline]
    pub fn epsilon(&self, alpha: f64) -> f64 {
        debug_assert!(alpha > 1.0, "RDP order must exceed 1, got {alpha}");
        alpha / (2.0 * self.noise_multiplier * self.noise_multiplier)
    }

    /// Evaluates the curve over an integer order grid.
    pub fn curve(&self, alphas: &[usize]) -> Vec<(usize, f64)> {
        alphas
            .iter()
            .map(|&a| (a, self.epsilon(a as f64)))
            .collect()
    }
}

/// Additive RDP composition: point-wise sum of two curves defined on the
/// same order grid (Theorem 1 carried to RDP).
///
/// # Panics
/// Panics if the grids disagree.
pub fn compose(a: &[(usize, f64)], b: &[(usize, f64)]) -> Vec<(usize, f64)> {
    assert_eq!(a.len(), b.len(), "compose: grids differ in length");
    a.iter()
        .zip(b)
        .map(|(&(ord_a, ea), &(ord_b, eb))| {
            assert_eq!(ord_a, ord_b, "compose: order grids disagree");
            (ord_a, ea + eb)
        })
        .collect()
}

/// Scales a curve by an integer number of identical steps.
pub fn compose_n(curve: &[(usize, f64)], steps: u64) -> Vec<(usize, f64)> {
    curve.iter().map(|&(a, e)| (a, e * steps as f64)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_formula() {
        let g = GaussianRdp::new(5.0).unwrap();
        // alpha / (2 * 25) = alpha / 50
        assert!((g.epsilon(2.0) - 0.04).abs() < 1e-12);
        assert!((g.epsilon(10.0) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn epsilon_linear_in_alpha() {
        let g = GaussianRdp::new(2.0).unwrap();
        assert!((g.epsilon(8.0) - 4.0 * g.epsilon(2.0)).abs() < 1e-12);
    }

    #[test]
    fn larger_sigma_means_smaller_epsilon() {
        let weak = GaussianRdp::new(1.0).unwrap();
        let strong = GaussianRdp::new(10.0).unwrap();
        assert!(strong.epsilon(4.0) < weak.epsilon(4.0));
    }

    #[test]
    fn rejects_bad_sigma() {
        assert!(GaussianRdp::new(0.0).is_err());
        assert!(GaussianRdp::new(-1.0).is_err());
        assert!(GaussianRdp::new(f64::NAN).is_err());
    }

    #[test]
    fn curve_covers_grid() {
        let g = GaussianRdp::new(5.0).unwrap();
        let grid = default_alpha_grid();
        let c = g.curve(&grid);
        assert_eq!(c.len(), grid.len());
        assert_eq!(c[0].0, 2);
        assert_eq!(c.last().unwrap().0, 256);
    }

    #[test]
    fn compose_adds_pointwise() {
        let g = GaussianRdp::new(5.0).unwrap();
        let c = g.curve(&[2, 3, 4]);
        let d = compose(&c, &c);
        for (i, &(a, e)) in d.iter().enumerate() {
            assert_eq!(a, c[i].0);
            assert!((e - 2.0 * c[i].1).abs() < 1e-12);
        }
    }

    #[test]
    fn compose_n_matches_repeated_compose() {
        let g = GaussianRdp::new(3.0).unwrap();
        let c = g.curve(&[2, 8, 32]);
        let mut acc = c.clone();
        for _ in 0..4 {
            acc = compose(&acc, &c);
        }
        let direct = compose_n(&c, 5);
        for (x, y) in acc.iter().zip(&direct) {
            assert!((x.1 - y.1).abs() < 1e-9);
        }
    }

    #[test]
    fn default_grid_is_sorted_unique() {
        let g = default_alpha_grid();
        let mut s = g.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(g, s);
        assert!(g[0] >= 2);
    }
}
