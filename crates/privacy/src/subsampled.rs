//! Privacy amplification by subsampling without replacement.
//!
//! Implements Theorem 4 of the paper (Wang, Balle & Kasiviswanathan 2019,
//! Theorem 27): for integer `alpha >= 2`, a mechanism that is
//! `(j, eps(j))`-RDP for all `j <= alpha` composed with without-replacement
//! subsampling at rate `gamma` satisfies `(alpha, eps'(alpha))`-RDP with
//!
//! ```text
//! eps'(alpha) <= 1/(alpha-1) * ln( 1
//!     + gamma^2 C(alpha,2) min{ 4(e^{eps(2)}-1), e^{eps(2)} min{2, (e^{eps(inf)}-1)^2} }
//!     + sum_{j=3}^{alpha} gamma^j C(alpha,j) e^{(j-1) eps(j)} min{2, (e^{eps(inf)}-1)^j } )
//! ```
//!
//! For the Gaussian mechanism `eps(inf) = inf`, so both inner `min`s resolve
//! to the constant branches (`4(e^{eps(2)}-1)` vs `2 e^{eps(2)}`, and `2`).
//! The sum is evaluated entirely in log-space (log-binomials + log-sum-exp)
//! so that large orders and tiny rates never overflow `f64`.

use crate::error::PrivacyError;
use crate::rdp::GaussianRdp;

/// Log-factorials `ln(0!), ln(1!), ..., ln(n!)` by direct summation (exact
/// to f64 rounding; `n` is at most a few hundred here).
fn ln_factorials(n: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(n + 1);
    out.push(0.0);
    let mut acc = 0.0f64;
    for i in 1..=n {
        acc += (i as f64).ln();
        out.push(acc);
    }
    out
}

/// `ln C(n, k)` from a precomputed log-factorial table.
fn ln_binom(table: &[f64], n: usize, k: usize) -> f64 {
    debug_assert!(k <= n && n < table.len());
    table[n] - table[k] - table[n - k]
}

/// Numerically stable `ln(sum_i e^{x_i})`.
fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    m + xs.iter().map(|&x| (x - m).exp()).sum::<f64>().ln()
}

/// Amplified RDP of a subsampled Gaussian mechanism at integer order
/// `alpha`, for noise multiplier `sigma` and sampling rate `gamma`.
///
/// Returns `min(theorem-4 bound, unamplified alpha/(2 sigma^2))`: the cap is
/// sound because without-replacement subsampling is a mixture over subsets,
/// and pairing subsets that agree on the differing element shows the
/// subsampled divergence never exceeds the base mechanism's.
///
/// # Errors
/// Returns [`PrivacyError::InvalidParameter`] for `alpha < 2`, `sigma <= 0`,
/// or `gamma` outside `[0, 1]`.
pub fn subsampled_gaussian_epsilon(
    sigma: f64,
    gamma: f64,
    alpha: usize,
) -> Result<f64, PrivacyError> {
    if alpha < 2 {
        return Err(PrivacyError::InvalidParameter {
            name: "alpha",
            reason: format!("Theorem 4 needs integer alpha >= 2, got {alpha}"),
        });
    }
    if !(0.0..=1.0).contains(&gamma) {
        return Err(PrivacyError::InvalidParameter {
            name: "gamma",
            reason: format!("sampling rate must be in [0,1], got {gamma}"),
        });
    }
    let base = GaussianRdp::new(sigma)?; // validates sigma
    let base_eps = base.epsilon(alpha as f64);
    if gamma == 0.0 {
        // The differing element is never sampled: no privacy loss.
        return Ok(0.0);
    }
    if gamma == 1.0 {
        return Ok(base_eps);
    }

    let ln_gamma = gamma.ln();
    let table = ln_factorials(alpha);
    let eps = |j: usize| base.epsilon(j as f64);

    // Collect log-terms of the bracketed series, starting with ln(1) = 0.
    let mut ln_terms: Vec<f64> = Vec::with_capacity(alpha);
    ln_terms.push(0.0);

    // j = 2 term: gamma^2 C(alpha,2) min{ 4(e^{eps2}-1), 2 e^{eps2} }.
    let eps2 = eps(2);
    let ln_4_expm1 = if eps2 > 30.0 {
        // e^{eps2} - 1 ~ e^{eps2}
        (4.0f64).ln() + eps2
    } else {
        (4.0 * eps2.exp_m1()).ln()
    };
    let ln_2_exp = (2.0f64).ln() + eps2;
    let ln_min2 = ln_4_expm1.min(ln_2_exp);
    ln_terms.push(2.0 * ln_gamma + ln_binom(&table, alpha, 2) + ln_min2);

    // j = 3..alpha terms: gamma^j C(alpha,j) e^{(j-1) eps(j)} * 2.
    for j in 3..=alpha {
        ln_terms.push(
            j as f64 * ln_gamma
                + ln_binom(&table, alpha, j)
                + (j as f64 - 1.0) * eps(j)
                + (2.0f64).ln(),
        );
    }

    let bound = log_sum_exp(&ln_terms) / (alpha as f64 - 1.0);
    Ok(bound.min(base_eps))
}

/// Evaluates the amplified curve over an integer order grid.
///
/// # Errors
/// Propagates [`subsampled_gaussian_epsilon`] errors.
pub fn subsampled_gaussian_curve(
    sigma: f64,
    gamma: f64,
    alphas: &[usize],
) -> Result<Vec<(usize, f64)>, PrivacyError> {
    alphas
        .iter()
        .map(|&a| Ok((a, subsampled_gaussian_epsilon(sigma, gamma, a)?)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_binom_small_values() {
        let t = ln_factorials(10);
        assert!((ln_binom(&t, 5, 2) - (10.0f64).ln()).abs() < 1e-12);
        assert!((ln_binom(&t, 10, 0)).abs() < 1e-12);
        assert!((ln_binom(&t, 10, 10)).abs() < 1e-12);
    }

    #[test]
    fn log_sum_exp_matches_direct() {
        let xs = [0.0f64, 1.0, -2.0];
        let direct: f64 = xs.iter().map(|x| x.exp()).sum::<f64>().ln();
        assert!((log_sum_exp(&xs) - direct).abs() < 1e-12);
    }

    #[test]
    fn log_sum_exp_huge_inputs() {
        let v = log_sum_exp(&[1000.0, 1000.0]);
        assert!((v - (1000.0 + (2.0f64).ln())).abs() < 1e-9);
    }

    #[test]
    fn gamma_zero_is_free() {
        assert_eq!(subsampled_gaussian_epsilon(5.0, 0.0, 16).unwrap(), 0.0);
    }

    #[test]
    fn gamma_one_is_base_curve() {
        let e = subsampled_gaussian_epsilon(5.0, 1.0, 8).unwrap();
        assert!((e - 8.0 / 50.0).abs() < 1e-12);
    }

    #[test]
    fn amplification_strictly_helps_for_small_gamma() {
        let base = 16.0 / (2.0 * 25.0);
        let amp = subsampled_gaussian_epsilon(5.0, 0.01, 16).unwrap();
        assert!(amp < base / 10.0, "amp={amp} base={base}");
    }

    #[test]
    fn monotone_in_gamma() {
        let mut prev = 0.0;
        for &g in &[0.001, 0.01, 0.05, 0.1, 0.3, 0.6, 0.9] {
            let e = subsampled_gaussian_epsilon(5.0, g, 32).unwrap();
            assert!(e >= prev, "not monotone at gamma={g}: {e} < {prev}");
            prev = e;
        }
    }

    #[test]
    fn monotone_in_alpha() {
        // RDP curves are non-decreasing in order.
        let mut prev = 0.0;
        for a in [2usize, 4, 8, 16, 32, 64, 128] {
            let e = subsampled_gaussian_epsilon(5.0, 0.05, a).unwrap();
            assert!(e >= prev - 1e-12, "not monotone at alpha={a}: {e} < {prev}");
            prev = e;
        }
    }

    #[test]
    fn decreasing_in_sigma() {
        let lo = subsampled_gaussian_epsilon(1.0, 0.05, 16).unwrap();
        let hi = subsampled_gaussian_epsilon(10.0, 0.05, 16).unwrap();
        assert!(hi < lo);
    }

    #[test]
    fn small_gamma_quadratic_regime() {
        // For tiny gamma the j=2 term dominates: eps' ~ gamma^2 * C(a,2) *
        // 4(e^{eps2}-1) / (a-1). Halving gamma should shrink eps' by ~4x.
        let e1 = subsampled_gaussian_epsilon(5.0, 2e-4, 8).unwrap();
        let e2 = subsampled_gaussian_epsilon(5.0, 1e-4, 8).unwrap();
        let ratio = e1 / e2;
        assert!((ratio - 4.0).abs() < 0.2, "ratio={ratio}");
    }

    #[test]
    fn capped_by_base_curve() {
        for &g in &[0.2, 0.5, 0.8, 0.99] {
            for &a in &[2usize, 8, 64, 256] {
                let amp = subsampled_gaussian_epsilon(2.0, g, a).unwrap();
                let base = a as f64 / (2.0 * 4.0);
                assert!(amp <= base + 1e-12, "gamma={g} alpha={a}: {amp} > {base}");
            }
        }
    }

    #[test]
    fn large_alpha_does_not_overflow() {
        let e = subsampled_gaussian_epsilon(5.0, 0.1, 256).unwrap();
        assert!(e.is_finite());
        assert!(e > 0.0);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(subsampled_gaussian_epsilon(5.0, -0.1, 8).is_err());
        assert!(subsampled_gaussian_epsilon(5.0, 1.1, 8).is_err());
        assert!(subsampled_gaussian_epsilon(5.0, 0.1, 1).is_err());
        assert!(subsampled_gaussian_epsilon(0.0, 0.1, 8).is_err());
    }

    #[test]
    fn curve_over_grid() {
        let c = subsampled_gaussian_curve(5.0, 0.05, &[2, 4, 8]).unwrap();
        assert_eq!(c.len(), 3);
        assert!(c[0].1 <= c[1].1 && c[1].1 <= c[2].1);
    }
}
