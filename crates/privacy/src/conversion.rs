//! Conversion between RDP and `(epsilon, delta)`-DP.
//!
//! Theorem 3 of the paper (Mironov 2017, Proposition 3): an
//! `(alpha, eps)`-RDP mechanism satisfies
//! `(eps + ln(1/delta)/(alpha - 1), delta)`-DP for every `delta` in (0, 1).
//! Optimising the free order `alpha` over a grid gives both directions:
//! the tightest `epsilon` for a target `delta`, and the smallest achievable
//! `delta` for a target `epsilon` (the paper's `get_privacy_spent`).

use crate::error::PrivacyError;

/// Best `(epsilon, alpha)` at a target `delta`, minimising
/// `eps(alpha) + ln(1/delta)/(alpha-1)` over the curve's grid.
///
/// # Errors
/// Returns [`PrivacyError::InvalidParameter`] for an empty curve or a
/// `delta` outside `(0, 1)`.
pub fn rdp_to_epsilon(curve: &[(usize, f64)], delta: f64) -> Result<(f64, usize), PrivacyError> {
    if curve.is_empty() {
        return Err(PrivacyError::InvalidParameter {
            name: "curve",
            reason: "empty RDP curve".into(),
        });
    }
    if !(delta > 0.0 && delta < 1.0) {
        return Err(PrivacyError::InvalidParameter {
            name: "delta",
            reason: format!("must be in (0,1), got {delta}"),
        });
    }
    let ln_inv_delta = (1.0 / delta).ln();
    let mut best = (f64::INFINITY, 0usize);
    for &(alpha, eps) in curve {
        debug_assert!(alpha >= 2, "orders must be >= 2");
        let dp = eps + ln_inv_delta / (alpha as f64 - 1.0);
        if dp < best.0 {
            best = (dp, alpha);
        }
    }
    Ok(best)
}

/// Smallest achievable `delta` at a target `epsilon`:
/// `delta = min_alpha exp(-(alpha-1)(epsilon - eps(alpha)))`, clamped to 1
/// when the target epsilon is below the curve everywhere.
///
/// This is the `get_privacy_spent given the target epsilon` call in
/// Algorithm 3, line 10.
///
/// # Errors
/// Returns [`PrivacyError::InvalidParameter`] for an empty curve or a
/// non-positive `epsilon`.
pub fn rdp_to_delta(curve: &[(usize, f64)], epsilon: f64) -> Result<f64, PrivacyError> {
    if curve.is_empty() {
        return Err(PrivacyError::InvalidParameter {
            name: "curve",
            reason: "empty RDP curve".into(),
        });
    }
    if epsilon.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return Err(PrivacyError::InvalidParameter {
            name: "epsilon",
            reason: format!("must be positive, got {epsilon}"),
        });
    }
    let mut best_ln_delta = f64::INFINITY;
    for &(alpha, eps) in curve {
        let ln_delta = -(alpha as f64 - 1.0) * (epsilon - eps);
        if ln_delta < best_ln_delta {
            best_ln_delta = ln_delta;
        }
    }
    Ok(best_ln_delta.exp().min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rdp::{default_alpha_grid, GaussianRdp};

    fn gaussian_curve(sigma: f64, steps: f64) -> Vec<(usize, f64)> {
        let g = GaussianRdp::new(sigma).unwrap();
        default_alpha_grid()
            .into_iter()
            .map(|a| (a, steps * g.epsilon(a as f64)))
            .collect()
    }

    #[test]
    fn single_gaussian_release_reference_value() {
        // For sigma and delta, eps = min_a a/(2 s^2) + ln(1/d)/(a-1).
        // Analytic optimum over continuous a: eps* = 1/(2s^2) + sqrt(2 ln(1/d))/s.
        // The integer grid should land within a few percent.
        let sigma = 5.0;
        let delta = 1e-5;
        let (eps, alpha) = rdp_to_epsilon(&gaussian_curve(sigma, 1.0), delta).unwrap();
        let analytic = 1.0 / (2.0 * sigma * sigma) + (2.0 * (1.0f64 / delta).ln()).sqrt() / sigma;
        assert!(
            (eps - analytic).abs() / analytic < 0.05,
            "eps={eps} analytic={analytic} (alpha={alpha})"
        );
    }

    #[test]
    fn epsilon_grows_with_composition() {
        let delta = 1e-5;
        let e1 = rdp_to_epsilon(&gaussian_curve(5.0, 10.0), delta).unwrap().0;
        let e2 = rdp_to_epsilon(&gaussian_curve(5.0, 100.0), delta)
            .unwrap()
            .0;
        assert!(e2 > e1);
        // Composition in RDP scales like sqrt(T) in the DP epsilon: the
        // 10x step increase should cost well below 10x epsilon.
        assert!(e2 < 6.0 * e1, "e1={e1} e2={e2}");
    }

    #[test]
    fn smaller_delta_costs_more_epsilon() {
        let c = gaussian_curve(5.0, 50.0);
        let tight = rdp_to_epsilon(&c, 1e-8).unwrap().0;
        let loose = rdp_to_epsilon(&c, 1e-3).unwrap().0;
        assert!(tight > loose);
    }

    #[test]
    fn delta_epsilon_roundtrip() {
        // delta(epsilon(delta0)) <= delta0 (grid optimisation is consistent).
        let c = gaussian_curve(5.0, 25.0);
        let delta0 = 1e-5;
        let (eps, _) = rdp_to_epsilon(&c, delta0).unwrap();
        let delta1 = rdp_to_delta(&c, eps).unwrap();
        assert!(
            delta1 <= delta0 * 1.0001,
            "roundtrip delta {delta1} > {delta0}"
        );
    }

    #[test]
    fn delta_monotone_decreasing_in_epsilon() {
        let c = gaussian_curve(5.0, 100.0);
        let d1 = rdp_to_delta(&c, 1.0).unwrap();
        let d2 = rdp_to_delta(&c, 2.0).unwrap();
        let d3 = rdp_to_delta(&c, 4.0).unwrap();
        assert!(d1 >= d2 && d2 >= d3, "d1={d1} d2={d2} d3={d3}");
    }

    #[test]
    fn delta_clamped_to_one() {
        // Massive composition with a tiny epsilon target: delta saturates at 1.
        let c = gaussian_curve(0.5, 10_000.0);
        let d = rdp_to_delta(&c, 0.01).unwrap();
        assert_eq!(d, 1.0);
    }

    #[test]
    fn rejects_bad_inputs() {
        let c = gaussian_curve(5.0, 1.0);
        assert!(rdp_to_epsilon(&[], 1e-5).is_err());
        assert!(rdp_to_epsilon(&c, 0.0).is_err());
        assert!(rdp_to_epsilon(&c, 1.0).is_err());
        assert!(rdp_to_delta(&[], 1.0).is_err());
        assert!(rdp_to_delta(&c, 0.0).is_err());
    }

    #[test]
    fn reports_optimal_alpha_from_grid() {
        let c = gaussian_curve(5.0, 1.0);
        let (_, alpha) = rdp_to_epsilon(&c, 1e-5).unwrap();
        assert!(default_alpha_grid().contains(&alpha));
    }
}
