//! Online RDP accountant with the paper's stopping rule.
//!
//! Theorem 7: after `n_epoch * n_D` discriminator iterations, each consuming
//! one subsampled-Gaussian step at rate `B/|E|` (positive batch) and one at
//! rate `Bk/|V|` (negative batch), the discriminator is
//! `(alpha, n_epoch n_D (eps_{B/|E|}(alpha) + eps_{Bk/|V|}(alpha)))`-RDP;
//! the generator inherits the guarantee by post-processing (Theorem 2).
//!
//! The accountant accumulates per-step curves online and implements
//! Algorithm 3 lines 9–11: after each update compute
//! `delta_hat = get_privacy_spent(target epsilon)` and stop when
//! `delta_hat >= delta`.

use std::collections::HashMap;

use crate::conversion::{rdp_to_delta, rdp_to_epsilon};
use crate::error::PrivacyError;
use crate::rdp::default_alpha_grid;
use crate::subsampled::subsampled_gaussian_curve;

/// A frozen reading of an accountant's spend against a `(epsilon, delta)`
/// target — the accounting metadata that travels with a released artifact.
///
/// Post-processing is free under DP (Theorem 2), so once training ends this
/// snapshot is the *complete* privacy story of the released embeddings:
/// downstream consumers (the `.aemb` store, serving layers, evaluators) can
/// query the vectors freely while citing exactly these numbers. Produced by
/// [`RdpAccountant::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpendSnapshot {
    /// Mechanism invocations recorded so far.
    pub steps: u64,
    /// Tightest `epsilon` achievable at the target `delta`.
    pub epsilon_spent: f64,
    /// The RDP order at which `epsilon_spent` is attained.
    pub optimal_alpha: usize,
    /// Smallest achievable `delta` at the target `epsilon`
    /// (`delta_hat` in Algorithm 3's stopping rule).
    pub delta_spent: f64,
}

/// The complete serialisable state of an [`RdpAccountant`] — the
/// accumulated RDP curve plus the step counter.
///
/// `totals` are raw `f64` values; a caller persisting them bit-exactly
/// (e.g. the training checkpoint format in `advsgm-store`) restores an
/// accountant whose every future query — `epsilon`, `delta`, the
/// Algorithm-3 stopping rule — is bitwise-identical to the original's.
/// The per-`(sigma, gamma)` curve cache is *not* part of the state: it is
/// a pure function of its keys and rebuilds on demand.
#[derive(Debug, Clone, PartialEq)]
pub struct AccountantState {
    /// Mechanism invocations recorded so far.
    pub steps: u64,
    /// The integer RDP order grid.
    pub alphas: Vec<usize>,
    /// Accumulated `eps(alpha)` per grid order (same length as `alphas`).
    pub totals: Vec<f64>,
}

/// Online Rényi-DP accountant over the workspace's integer order grid.
#[derive(Debug, Clone)]
pub struct RdpAccountant {
    alphas: Vec<usize>,
    /// Accumulated `eps(alpha)` per grid order.
    totals: Vec<f64>,
    /// Cache of per-step curves keyed by (sigma, gamma) bits.
    cache: HashMap<(u64, u64), Vec<f64>>,
    steps_recorded: u64,
}

impl RdpAccountant {
    /// Creates an empty accountant on the default order grid.
    pub fn new() -> Self {
        Self::with_orders(default_alpha_grid())
    }

    /// Creates an accountant on a caller-supplied integer order grid.
    ///
    /// # Panics
    /// Panics if the grid is empty or contains an order below 2.
    pub fn with_orders(alphas: Vec<usize>) -> Self {
        assert!(!alphas.is_empty(), "order grid must be non-empty");
        assert!(
            alphas.iter().all(|&a| a >= 2),
            "all orders must be >= 2 for Theorem 4"
        );
        let n = alphas.len();
        Self {
            alphas,
            totals: vec![0.0; n],
            cache: HashMap::new(),
            steps_recorded: 0,
        }
    }

    /// Number of recorded mechanism invocations.
    pub fn steps(&self) -> u64 {
        self.steps_recorded
    }

    /// Records `count` invocations of a subsampled Gaussian mechanism with
    /// noise multiplier `sigma` and sampling rate `gamma` (clamped to 1).
    ///
    /// # Errors
    /// Propagates parameter validation from the amplification bound.
    pub fn record_subsampled_gaussian(
        &mut self,
        sigma: f64,
        gamma: f64,
        count: u64,
    ) -> Result<(), PrivacyError> {
        if count == 0 {
            return Ok(());
        }
        let gamma = gamma.min(1.0);
        let key = (sigma.to_bits(), gamma.to_bits());
        if !self.cache.contains_key(&key) {
            let curve = subsampled_gaussian_curve(sigma, gamma, &self.alphas)?;
            self.cache
                .insert(key, curve.into_iter().map(|(_, e)| e).collect());
        }
        let step = &self.cache[&key];
        for (t, &e) in self.totals.iter_mut().zip(step) {
            *t += e * count as f64;
        }
        self.steps_recorded += count;
        Ok(())
    }

    /// The accumulated RDP curve as `(alpha, eps)` pairs.
    pub fn curve(&self) -> Vec<(usize, f64)> {
        self.alphas
            .iter()
            .copied()
            .zip(self.totals.iter().copied())
            .collect()
    }

    /// Tightest `(epsilon, alpha)` at the target `delta`.
    ///
    /// # Errors
    /// Propagates conversion validation errors.
    pub fn epsilon(&self, delta: f64) -> Result<(f64, usize), PrivacyError> {
        rdp_to_epsilon(&self.curve(), delta)
    }

    /// The tightest `epsilon` achievable at the target `delta`, without the
    /// optimal order that [`Self::epsilon`] also reports — the quantity the
    /// paper's tables print.
    ///
    /// # Errors
    /// Propagates conversion validation errors (e.g. `delta` outside
    /// `(0, 1)`).
    ///
    /// # Examples
    /// ```
    /// use advsgm_privacy::RdpAccountant;
    ///
    /// let mut acc = RdpAccountant::new();
    /// // 100 subsampled-Gaussian steps at sigma = 5, gamma = 0.05.
    /// acc.record_subsampled_gaussian(5.0, 0.05, 100).unwrap();
    /// let eps = acc.epsilon_at(1e-5).unwrap();
    /// assert!(eps > 0.0);
    /// // More steps can only spend more budget.
    /// acc.record_subsampled_gaussian(5.0, 0.05, 900).unwrap();
    /// assert!(acc.epsilon_at(1e-5).unwrap() > eps);
    /// ```
    pub fn epsilon_at(&self, delta: f64) -> Result<f64, PrivacyError> {
        self.epsilon(delta).map(|(eps, _alpha)| eps)
    }

    /// Smallest achievable `delta` at the target `epsilon`
    /// (`get_privacy_spent` in Algorithm 3, line 10).
    ///
    /// # Errors
    /// Propagates conversion validation errors.
    pub fn delta(&self, epsilon: f64) -> Result<f64, PrivacyError> {
        rdp_to_delta(&self.curve(), epsilon)
    }

    /// Algorithm 3, line 11: returns `Err(BudgetExhausted)` once the
    /// achievable `delta_hat` at `target_epsilon` reaches `target_delta`.
    ///
    /// # Errors
    /// [`PrivacyError::BudgetExhausted`] when training must stop;
    /// validation errors for out-of-domain targets.
    pub fn check_budget(&self, target_epsilon: f64, target_delta: f64) -> Result<(), PrivacyError> {
        let delta_hat = self.delta(target_epsilon)?;
        if delta_hat >= target_delta {
            Err(PrivacyError::BudgetExhausted {
                delta_spent: delta_hat,
                delta_target: target_delta,
            })
        } else {
            Ok(())
        }
    }

    /// Freezes the current spend against a `(target_epsilon, target_delta)`
    /// pair into a [`SpendSnapshot`] — both conversion directions in one
    /// call, for stamping released artifacts with their accounting
    /// metadata.
    ///
    /// # Errors
    /// Propagates conversion validation errors (targets outside their
    /// domains).
    ///
    /// # Examples
    /// ```
    /// use advsgm_privacy::RdpAccountant;
    ///
    /// let mut acc = RdpAccountant::new();
    /// acc.record_subsampled_gaussian(5.0, 0.05, 200).unwrap();
    /// let snap = acc.snapshot(6.0, 1e-5).unwrap();
    /// assert_eq!(snap.steps, 200);
    /// assert_eq!(snap.epsilon_spent, acc.epsilon_at(1e-5).unwrap());
    /// assert_eq!(snap.delta_spent, acc.delta(6.0).unwrap());
    /// ```
    pub fn snapshot(
        &self,
        target_epsilon: f64,
        target_delta: f64,
    ) -> Result<SpendSnapshot, PrivacyError> {
        let (epsilon_spent, optimal_alpha) = self.epsilon(target_delta)?;
        let delta_spent = self.delta(target_epsilon)?;
        Ok(SpendSnapshot {
            steps: self.steps_recorded,
            epsilon_spent,
            optimal_alpha,
            delta_spent,
        })
    }

    /// Captures the accountant's complete state for checkpointing.
    ///
    /// # Examples
    /// ```
    /// use advsgm_privacy::{AccountantState, RdpAccountant};
    ///
    /// let mut acc = RdpAccountant::new();
    /// acc.record_subsampled_gaussian(5.0, 0.05, 40).unwrap();
    /// let state = acc.state();
    /// let restored = RdpAccountant::from_state(state).unwrap();
    /// assert_eq!(restored.delta(2.0).unwrap(), acc.delta(2.0).unwrap());
    /// ```
    pub fn state(&self) -> AccountantState {
        AccountantState {
            steps: self.steps_recorded,
            alphas: self.alphas.clone(),
            totals: self.totals.clone(),
        }
    }

    /// Rebuilds an accountant from a state captured by [`Self::state`].
    /// All subsequent queries and recordings are bitwise-identical to the
    /// accountant the state was taken from (the curve cache rebuilds
    /// deterministically on demand).
    ///
    /// # Errors
    /// [`PrivacyError::InvalidParameter`] when the grid is empty, contains
    /// an order below 2, mismatches `totals` in length, or any total is
    /// negative or non-finite.
    pub fn from_state(state: AccountantState) -> Result<Self, PrivacyError> {
        let bad = |reason: String| {
            Err(PrivacyError::InvalidParameter {
                name: "accountant_state",
                reason,
            })
        };
        if state.alphas.is_empty() {
            return bad("order grid must be non-empty".into());
        }
        if let Some(&a) = state.alphas.iter().find(|&&a| a < 2) {
            return bad(format!("all orders must be >= 2, got {a}"));
        }
        if state.alphas.len() != state.totals.len() {
            return bad(format!(
                "grid has {} orders but {} totals",
                state.alphas.len(),
                state.totals.len()
            ));
        }
        if let Some(&t) = state.totals.iter().find(|t| !(t.is_finite() && **t >= 0.0)) {
            return bad(format!("accumulated eps must be finite and >= 0, got {t}"));
        }
        Ok(Self {
            alphas: state.alphas,
            totals: state.totals,
            cache: HashMap::new(),
            steps_recorded: state.steps,
        })
    }

    /// Clears all accumulated privacy loss (cache retained).
    pub fn reset(&mut self) {
        self.totals.iter_mut().for_each(|t| *t = 0.0);
        self.steps_recorded = 0;
    }

    /// Plans ahead: the largest number of *iterations* (each = one step at
    /// `gamma_pos` plus one at `gamma_neg`) that keeps
    /// `delta(target_epsilon) < target_delta`. Binary searches the additive
    /// composition, so cost is `O(log n * |grid|)`.
    ///
    /// # Errors
    /// Propagates parameter validation errors.
    pub fn max_supported_iterations(
        sigma: f64,
        gamma_pos: f64,
        gamma_neg: f64,
        target_epsilon: f64,
        target_delta: f64,
    ) -> Result<u64, PrivacyError> {
        let alphas = default_alpha_grid();
        let pos = subsampled_gaussian_curve(sigma, gamma_pos.min(1.0), &alphas)?;
        let neg = subsampled_gaussian_curve(sigma, gamma_neg.min(1.0), &alphas)?;
        let per_iter: Vec<(usize, f64)> = pos
            .iter()
            .zip(&neg)
            .map(|(&(a, ep), &(_, en))| (a, ep + en))
            .collect();
        let fits = |iters: u64| -> Result<bool, PrivacyError> {
            let scaled: Vec<(usize, f64)> = per_iter
                .iter()
                .map(|&(a, e)| (a, e * iters as f64))
                .collect();
            Ok(rdp_to_delta(&scaled, target_epsilon)? < target_delta)
        };
        if !fits(1)? {
            return Ok(0);
        }
        let mut lo = 1u64; // known to fit
        let mut hi = 2u64;
        while fits(hi)? {
            lo = hi;
            hi = hi.saturating_mul(2);
            if hi > 1 << 40 {
                return Ok(hi); // effectively unbounded for our workloads
            }
        }
        while lo + 1 < hi {
            let mid = lo + (hi - lo) / 2;
            if fits(mid)? {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(lo)
    }
}

impl Default for RdpAccountant {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_accountant_spends_nothing() {
        let acc = RdpAccountant::new();
        assert_eq!(acc.steps(), 0);
        let d = acc.delta(1.0).unwrap();
        assert!(d < 1e-100, "fresh delta should be tiny, got {d}");
    }

    #[test]
    fn recording_accumulates_linearly() {
        let mut a = RdpAccountant::new();
        a.record_subsampled_gaussian(5.0, 0.05, 10).unwrap();
        let c10 = a.curve();
        a.record_subsampled_gaussian(5.0, 0.05, 10).unwrap();
        let c20 = a.curve();
        for (x, y) in c10.iter().zip(&c20) {
            assert!((y.1 - 2.0 * x.1).abs() < 1e-12);
        }
        assert_eq!(a.steps(), 20);
    }

    #[test]
    fn epsilon_at_matches_full_epsilon_query() {
        let mut a = RdpAccountant::new();
        a.record_subsampled_gaussian(5.0, 0.05, 250).unwrap();
        assert_eq!(a.epsilon_at(1e-5).unwrap(), a.epsilon(1e-5).unwrap().0);
    }

    #[test]
    fn epsilon_grows_with_steps() {
        let mut a = RdpAccountant::new();
        a.record_subsampled_gaussian(5.0, 0.05, 100).unwrap();
        let e1 = a.epsilon(1e-5).unwrap().0;
        a.record_subsampled_gaussian(5.0, 0.05, 900).unwrap();
        let e2 = a.epsilon(1e-5).unwrap().0;
        assert!(e2 > e1);
    }

    #[test]
    fn budget_check_trips_at_exhaustion() {
        let mut a = RdpAccountant::new();
        // Tiny sigma + full sampling: budget burns fast.
        a.record_subsampled_gaussian(0.5, 1.0, 10_000).unwrap();
        let err = a.check_budget(1.0, 1e-5).unwrap_err();
        assert!(matches!(err, PrivacyError::BudgetExhausted { .. }));
    }

    #[test]
    fn budget_check_passes_when_fresh() {
        let mut a = RdpAccountant::new();
        a.record_subsampled_gaussian(5.0, 0.01, 1).unwrap();
        a.check_budget(6.0, 1e-5).unwrap();
    }

    #[test]
    fn reset_clears_spend() {
        let mut a = RdpAccountant::new();
        a.record_subsampled_gaussian(5.0, 0.1, 500).unwrap();
        a.reset();
        assert_eq!(a.steps(), 0);
        assert!(a.delta(1.0).unwrap() < 1e-100);
    }

    #[test]
    fn zero_count_is_noop() {
        let mut a = RdpAccountant::new();
        a.record_subsampled_gaussian(5.0, 0.1, 0).unwrap();
        assert_eq!(a.steps(), 0);
    }

    #[test]
    fn gamma_above_one_is_clamped() {
        let mut a = RdpAccountant::new();
        // Bk/|V| can exceed 1 on small graphs; the accountant clamps.
        a.record_subsampled_gaussian(5.0, 1.7, 5).unwrap();
        assert_eq!(a.steps(), 5);
    }

    #[test]
    fn max_iterations_consistent_with_online_accounting() {
        let sigma = 5.0;
        let (gp, gn) = (0.02, 0.2);
        let (eps, delta) = (2.0, 1e-5);
        let n = RdpAccountant::max_supported_iterations(sigma, gp, gn, eps, delta).unwrap();
        assert!(n > 0, "paper-scale config should afford at least one step");
        // Replay n iterations online: budget must still be open.
        let mut a = RdpAccountant::new();
        a.record_subsampled_gaussian(sigma, gp, n).unwrap();
        a.record_subsampled_gaussian(sigma, gn, n).unwrap();
        a.check_budget(eps, delta).unwrap();
        // One more iteration must close it.
        a.record_subsampled_gaussian(sigma, gp, 1).unwrap();
        a.record_subsampled_gaussian(sigma, gn, 1).unwrap();
        assert!(a.check_budget(eps, delta).is_err());
    }

    #[test]
    fn larger_epsilon_budget_allows_more_iterations() {
        let n1 = RdpAccountant::max_supported_iterations(5.0, 0.02, 0.2, 1.0, 1e-5).unwrap();
        let n6 = RdpAccountant::max_supported_iterations(5.0, 0.02, 0.2, 6.0, 1e-5).unwrap();
        assert!(n6 > n1, "n1={n1} n6={n6}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_grid_rejected() {
        RdpAccountant::with_orders(vec![]);
    }

    #[test]
    fn snapshot_agrees_with_point_queries() {
        let mut a = RdpAccountant::new();
        a.record_subsampled_gaussian(5.0, 0.05, 123).unwrap();
        let snap = a.snapshot(2.0, 1e-5).unwrap();
        assert_eq!(snap.steps, 123);
        let (eps, alpha) = a.epsilon(1e-5).unwrap();
        assert_eq!(snap.epsilon_spent, eps);
        assert_eq!(snap.optimal_alpha, alpha);
        assert_eq!(snap.delta_spent, a.delta(2.0).unwrap());
    }

    #[test]
    fn snapshot_rejects_out_of_domain_targets() {
        let mut a = RdpAccountant::new();
        a.record_subsampled_gaussian(5.0, 0.05, 1).unwrap();
        assert!(a.snapshot(2.0, 0.0).is_err());
    }
}
