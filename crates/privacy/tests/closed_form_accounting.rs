//! Closed-form regression tests for the privacy accounting stack.
//!
//! The RDP-to-DP conversion (Theorem 3) is checked against exactly
//! hand-computable curves, and the subsampled-RDP accountant (Theorem 4
//! composition) against literal values derived from the theorem's formula
//! at three `(sigma, q, T)` operating points. On a single order `alpha`
//! the whole pipeline collapses to
//!
//! ```text
//! eps_dp = T * eps'(alpha) + ln(1/delta) / (alpha - 1)
//! eps'(alpha) = min( ln(1 + sum_j q^j C(alpha,j) ...) / (alpha-1),
//!                    alpha / (2 sigma^2) )
//! ```
//!
//! so every expected number below is reproducible by hand (or a few lines
//! of arithmetic) straight from the paper's statements.

use advsgm_privacy::accountant::RdpAccountant;
use advsgm_privacy::conversion::{rdp_to_delta, rdp_to_epsilon};
use advsgm_privacy::subsampled::subsampled_gaussian_epsilon;

const TOL: f64 = 1e-9;

// ---- Theorem 3: RDP -> (epsilon, delta) ------------------------------------

#[test]
fn theorem3_epsilon_on_explicit_two_point_curve() {
    // dp(alpha) = eps + ln(1/delta)/(alpha-1) with delta = 1e-2:
    //   alpha=2: 0.5 + ln(100)/1 = 0.5 + 4.605170185988091 = 5.105170185988091
    //   alpha=4: 1.0 + ln(100)/3 = 1.0 + 1.535056728662697 = 2.535056728662697
    // The optimiser must pick alpha = 4.
    let curve = [(2usize, 0.5f64), (4usize, 1.0f64)];
    let (eps, alpha) = rdp_to_epsilon(&curve, 1e-2).unwrap();
    assert_eq!(alpha, 4);
    assert!((eps - 2.535_056_728_662_697).abs() < TOL, "eps={eps}");
}

#[test]
fn theorem3_epsilon_prefers_small_alpha_for_loose_delta() {
    // With delta = 0.5, ln(1/delta) = ln 2 and the tail penalty is small:
    //   alpha=2: 0.5 + 0.6931471805599453     = 1.1931471805599454
    //   alpha=4: 1.0 + 0.6931471805599453 / 3 = 1.2310490601866484
    // Now alpha = 2 wins.
    let curve = [(2usize, 0.5f64), (4usize, 1.0f64)];
    let (eps, alpha) = rdp_to_epsilon(&curve, 0.5).unwrap();
    assert_eq!(alpha, 2);
    assert!((eps - 1.193_147_180_559_945_4).abs() < TOL, "eps={eps}");
}

#[test]
fn theorem3_delta_single_point_closed_form() {
    // delta = exp(-(alpha-1)(eps_target - eps_rdp))
    //       = exp(-(3-1)(1.5 - 0.5)) = e^{-2} = 0.1353352832366127.
    let curve = [(3usize, 0.5f64)];
    let d = rdp_to_delta(&curve, 1.5).unwrap();
    assert!((d - 0.135_335_283_236_612_7).abs() < TOL, "delta={d}");
}

#[test]
fn theorem3_delta_saturates_at_one_below_the_curve() {
    // Target epsilon below the RDP epsilon: the exponent is positive and
    // the bound clamps to 1.
    let curve = [(3usize, 2.0f64)];
    assert_eq!(rdp_to_delta(&curve, 0.5).unwrap(), 1.0);
}

// ---- Theorem 4: subsampled Gaussian at alpha = 2, closed form --------------

#[test]
fn theorem4_alpha2_closed_form() {
    // At alpha = 2 the series has a single term:
    //   eps'(2) = ln(1 + q^2 * min{4(e^{eps(2)}-1), 2 e^{eps(2)}})
    // with eps(2) = 1/sigma^2. For sigma = 2, q = 0.1:
    //   eps(2) = 0.25, 4(e^0.25 - 1) = 1.13610111... < 2 e^0.25,
    //   eps'   = ln(1 + 0.01 * 1.13610111...) = 0.011296964989239761.
    let e = subsampled_gaussian_epsilon(2.0, 0.1, 2).unwrap();
    assert!((e - 0.011_296_964_989_239_761).abs() < TOL, "eps'={e}");
}

// ---- full accountant pipeline at three (sigma, q, T) points ----------------

/// Runs T steps through a single-order accountant and converts at delta.
fn pipeline_epsilon(sigma: f64, q: f64, alpha: usize, t: u64, delta: f64) -> f64 {
    let mut acc = RdpAccountant::with_orders(vec![alpha]);
    acc.record_subsampled_gaussian(sigma, q, t).unwrap();
    acc.epsilon(delta).unwrap().0
}

#[test]
fn accountant_point_1_sigma2_q01_t100() {
    // sigma=2, q=0.1, alpha=2, T=100, delta=1e-5:
    //   eps_dp = 100 * 0.011296964989239761 + ln(1e5)/1
    //          = 1.1296964989239761 + 11.512925464970229
    //          = 12.642621963894205.
    let eps = pipeline_epsilon(2.0, 0.1, 2, 100, 1e-5);
    assert!(
        (eps - 12.642_621_963_894_205).abs() < 1e-6,
        "point 1: eps={eps}"
    );
}

#[test]
fn accountant_point_2_sigma5_q005_t1000() {
    // sigma=5, q=0.05, alpha=4, T=1000, delta=1e-6. Theorem-4 series:
    //   j=2: q^2 C(4,2) * 4(e^{0.04}-1)      = 0.0025*6*0.16324...
    //   j=3: q^3 C(4,3) * e^{2*0.06} * 2
    //   j=4: q^4 C(4,4) * e^{3*0.08} * 2
    //   eps'(4) = ln(1 + sum)/3 = 0.001195199323718801 (< base 0.08)
    //   eps_dp  = 1000 * eps' + ln(1e6)/3 = 5.800369509706892.
    let eps = pipeline_epsilon(5.0, 0.05, 4, 1000, 1e-6);
    assert!(
        (eps - 5.800_369_509_706_892).abs() < 1e-6,
        "point 2: eps={eps}"
    );
}

#[test]
fn accountant_point_3_sigma1_q1_t50() {
    // sigma=1, q=1 (no subsampling, exact base curve), alpha=8, T=50,
    // delta=1e-5:
    //   eps'(8) = 8/(2*1) = 4 exactly,
    //   eps_dp  = 50*4 + ln(1e5)/7 = 200 + 1.644703637852890
    //           = 201.6447036378529.
    let eps = pipeline_epsilon(1.0, 1.0, 8, 50, 1e-5);
    assert!(
        (eps - 201.644_703_637_852_9).abs() < 1e-6,
        "point 3: eps={eps}"
    );
}

#[test]
fn accountant_composition_is_exactly_linear_in_t() {
    // RDP composes additively, so on a fixed order the accumulated epsilon
    // before conversion is exactly T * per-step.
    let per_step = subsampled_gaussian_epsilon(2.0, 0.1, 2).unwrap();
    let mut acc = RdpAccountant::with_orders(vec![2]);
    acc.record_subsampled_gaussian(2.0, 0.1, 100).unwrap();
    let total = acc.curve()[0].1;
    assert!(
        (total - 100.0 * per_step).abs() < 1e-12,
        "total={total} expected={}",
        100.0 * per_step
    );
}

#[test]
fn accountant_grid_conversion_never_worse_than_single_order() {
    // The default grid contains many orders, so its optimised epsilon is at
    // most the single-order pipeline value at any shared alpha.
    let mut grid = RdpAccountant::new();
    grid.record_subsampled_gaussian(2.0, 0.1, 100).unwrap();
    let eps_grid = grid.epsilon(1e-5).unwrap().0;
    let eps_single = pipeline_epsilon(2.0, 0.1, 2, 100, 1e-5);
    assert!(
        eps_grid <= eps_single + 1e-12,
        "grid {eps_grid} > single-order {eps_single}"
    );
}
