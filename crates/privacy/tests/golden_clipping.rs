//! Golden-value tests for the DPSGD gradient clipping primitives
//! (Eq. 5 / Theorem 6): exact rescale factors, batch-sum sensitivity
//! saturation at `B * C`, and NaN-freedom at extreme magnitudes.

use advsgm_privacy::clipping::{batch_sum_sensitivity, clip_and_sum, clip_gradient};

fn norm2(xs: &[f64]) -> f64 {
    xs.iter().map(|v| v * v).sum::<f64>().sqrt()
}

#[test]
fn clip_golden_345_triangle() {
    // ||(3,4)|| = 5; clipping to C=1 applies factor exactly 0.2.
    let mut g = vec![3.0, 4.0];
    let f = clip_gradient(&mut g, 1.0);
    assert!((f - 0.2).abs() < 1e-15, "f={f}");
    assert!((g[0] - 0.6).abs() < 1e-15);
    assert!((g[1] - 0.8).abs() < 1e-15);
}

#[test]
fn clip_inside_ball_is_exact_identity() {
    let mut g = vec![0.6, 0.8]; // norm exactly 1.0
    let f = clip_gradient(&mut g, 1.0);
    assert_eq!(f, 1.0);
    assert_eq!(g, vec![0.6, 0.8]);
}

#[test]
fn clip_monotone_in_threshold() {
    // Larger C never shrinks the clipped norm.
    let base = vec![7.0, -24.0]; // norm 25
    let mut prev = 0.0;
    for &c in &[0.5, 1.0, 5.0, 24.9, 25.0, 100.0] {
        let mut g = base.clone();
        clip_gradient(&mut g, c);
        let n = norm2(&g);
        assert!(n >= prev - 1e-12, "norm not monotone at C={c}");
        assert!(n <= c + 1e-12, "norm {n} exceeds C={c}");
        prev = n;
    }
    // At and beyond the true norm, clipping is a no-op.
    let mut g = base.clone();
    clip_gradient(&mut g, 100.0);
    assert_eq!(g, base);
}

#[test]
fn clip_no_nan_at_extreme_inputs() {
    // Large but square-summable magnitudes.
    let mut g = vec![1e150, -1e150];
    let f = clip_gradient(&mut g, 1.0);
    assert!(!f.is_nan());
    assert!((norm2(&g) - 1.0).abs() < 1e-9, "norm={}", norm2(&g));
    // Magnitudes whose squares overflow to infinity: factor degenerates to
    // 0 but must never produce NaN in the gradient.
    let mut h = vec![1e200, 1e200, -1e200];
    let f = clip_gradient(&mut h, 1.0);
    assert!(!f.is_nan());
    assert!(h.iter().all(|v| !v.is_nan()), "h={h:?}");
    // Zero gradient is untouched.
    let mut z = vec![0.0; 4];
    assert_eq!(clip_gradient(&mut z, 1.0), 1.0);
    assert!(z.iter().all(|&v| v == 0.0));
}

#[test]
fn batch_sum_saturates_at_sensitivity_bound() {
    // B aligned worst-case gradients: the clipped sum's norm reaches
    // exactly B*C — the Theorem-6 sensitivity — and never exceeds it.
    let b = 8;
    let c = 0.5;
    let mut grads: Vec<Vec<f64>> = (0..b).map(|_| vec![100.0, 0.0]).collect();
    let mut sum = vec![0.0; 2];
    let clipped = clip_and_sum(&mut grads, c, &mut sum);
    assert_eq!(clipped, b);
    let bound = batch_sum_sensitivity(b, c);
    assert!((bound - 4.0).abs() < 1e-15);
    assert!((norm2(&sum) - bound).abs() < 1e-12, "norm={}", norm2(&sum));
}

#[test]
fn batch_sum_never_exceeds_sensitivity_for_adversarial_directions() {
    // Mixed directions still respect the bound (triangle inequality).
    let c = 1.0;
    let dirs = [
        vec![5.0, 0.0],
        vec![-3.0, 4.0],
        vec![0.0, -9.0],
        vec![1.0, 1.0],
        vec![-0.1, 0.0],
    ];
    let mut grads = dirs.to_vec();
    let mut sum = vec![0.0; 2];
    clip_and_sum(&mut grads, c, &mut sum);
    assert!(norm2(&sum) <= batch_sum_sensitivity(dirs.len(), c) + 1e-12);
}

#[test]
fn sensitivity_golden_values() {
    assert_eq!(batch_sum_sensitivity(128, 1.0), 128.0);
    assert_eq!(batch_sum_sensitivity(64, 0.25), 16.0);
    assert_eq!(batch_sum_sensitivity(1, 3.5), 3.5);
    assert_eq!(batch_sum_sensitivity(0, 1.0), 0.0);
}
