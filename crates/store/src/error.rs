//! Error type for embedding persistence and serving.
//!
//! Every failure mode of the `.aemb` reader is a distinct variant — a
//! corrupted or truncated file must surface as a typed, matchable error,
//! never a panic, because store files cross process and machine boundaries
//! and the reader cannot trust them.

use std::fmt;

use advsgm_core::CoreError;

/// Errors produced while building, saving, loading, or querying an
/// embedding store.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying I/O failure (file system, permissions, ...).
    Io(std::io::Error),
    /// The file does not start with the magic of the format being read
    /// (`AEMB` for embedding stores, `ACKP` for training checkpoints,
    /// `AGPH` for partitioned graphs) — not one of this crate's files at
    /// all.
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The file's format version is newer than this reader understands
    /// (both formats are strictly versioned; see `docs/FORMAT.md`).
    UnsupportedVersion {
        /// Version stamped in the file.
        found: u16,
        /// Highest version this reader supports.
        supported: u16,
    },
    /// The file ends before the length implied by its own header.
    Truncated {
        /// Bytes the header says the file must contain.
        expected: u64,
        /// Bytes actually present.
        found: u64,
    },
    /// The stored CRC-32 does not match the recomputed one: the bytes
    /// were altered after writing.
    ChecksumMismatch {
        /// Checksum stored in the file's trailer.
        stored: u32,
        /// Checksum recomputed over the file's contents.
        computed: u32,
    },
    /// A structural inconsistency other than truncation or a checksum
    /// failure (unknown flags, trailing bytes, ...).
    Corrupted {
        /// What was wrong.
        reason: String,
    },
    /// The file stamps a model-variant wire code this reader's registry
    /// ([`advsgm_core::ModelVariant::from_wire_code`]) does not know —
    /// either corruption or a file written by a newer release (codes are
    /// append-only, so the raw code is preserved for diagnostics).
    UnknownVariantCode {
        /// The unrecognised code byte.
        code: u8,
    },
    /// The file's embedding dimension differs from the one the caller
    /// required ([`crate::EmbeddingStore::load_expecting`]).
    DimMismatch {
        /// Dimension the caller required.
        expected: usize,
        /// Dimension stamped in the file.
        found: usize,
    },
    /// A query referenced a node row the store does not hold.
    NodeOutOfRange {
        /// The offending row index.
        node: usize,
        /// Number of rows in the store.
        num_nodes: usize,
    },
    /// A count exceeds what the on-disk format can represent; writing
    /// would silently truncate it (`docs/FORMAT.md`, "Format limits").
    LimitExceeded {
        /// The field that overflowed (e.g. `"embedding dimension"`).
        what: &'static str,
        /// The value that was asked for.
        value: u64,
        /// The largest value the format can carry.
        max: u64,
    },
    /// An ANN index was presented together with a store it was not built
    /// from ([`crate::IvfIndex`] binds to one released matrix).
    IndexStoreMismatch {
        /// What failed to line up (fingerprint, row count, dimension).
        reason: String,
    },
    /// The store could not be constructed from the given parts.
    Invalid {
        /// What was wrong.
        reason: String,
    },
    /// Training failed while exporting ([`crate::ExportEmbeddings`]).
    Train(CoreError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::BadMagic { found } => {
                write!(
                    f,
                    "unrecognised file magic {found:?} (expected b\"AEMB\" for \
                     embedding stores, b\"ACKP\" for checkpoints, or b\"AGPH\" \
                     for partitioned graphs)"
                )
            }
            StoreError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported format version {found} (this reader supports <= {supported})"
            ),
            StoreError::Truncated { expected, found } => write!(
                f,
                "truncated store file: header implies {expected} bytes, found {found}"
            ),
            StoreError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            StoreError::Corrupted { reason } => write!(f, "corrupted store file: {reason}"),
            StoreError::UnknownVariantCode { code } => write!(
                f,
                "unknown model-variant code {code} (corrupt file, or written \
                 by a newer release of this format)"
            ),
            StoreError::DimMismatch { expected, found } => write!(
                f,
                "embedding dimension mismatch: expected {expected}, file has {found}"
            ),
            StoreError::NodeOutOfRange { node, num_nodes } => {
                write!(
                    f,
                    "node {node} out of range (store holds {num_nodes} nodes)"
                )
            }
            StoreError::LimitExceeded { what, value, max } => write!(
                f,
                "{what} {value} exceeds the format limit of {max} (refusing to \
                 truncate on write)"
            ),
            StoreError::IndexStoreMismatch { reason } => {
                write!(f, "index does not match the store: {reason}")
            }
            StoreError::Invalid { reason } => write!(f, "invalid store: {reason}"),
            StoreError::Train(e) => write!(f, "training failed during export: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Train(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<CoreError> for StoreError {
    fn from(e: CoreError) -> Self {
        StoreError::Train(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let cases: Vec<(StoreError, &str)> = vec![
            (
                StoreError::BadMagic { found: *b"PNG\0" },
                "unrecognised file magic",
            ),
            (
                StoreError::UnsupportedVersion {
                    found: 9,
                    supported: 1,
                },
                "version 9",
            ),
            (
                StoreError::Truncated {
                    expected: 100,
                    found: 60,
                },
                "100 bytes, found 60",
            ),
            (
                StoreError::ChecksumMismatch {
                    stored: 1,
                    computed: 2,
                },
                "checksum mismatch",
            ),
            (
                StoreError::DimMismatch {
                    expected: 128,
                    found: 64,
                },
                "expected 128",
            ),
            (
                StoreError::NodeOutOfRange {
                    node: 9,
                    num_nodes: 5,
                },
                "node 9 out of range",
            ),
            (
                StoreError::LimitExceeded {
                    what: "embedding dimension",
                    value: 1 << 33,
                    max: u32::MAX as u64,
                },
                "exceeds the format limit",
            ),
            (
                StoreError::IndexStoreMismatch {
                    reason: "fingerprint".into(),
                },
                "index does not match the store",
            ),
            (
                StoreError::UnknownVariantCode { code: 200 },
                "unknown model-variant code 200",
            ),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }

    #[test]
    fn io_and_train_chain_sources() {
        use std::error::Error;
        let io = StoreError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(io.source().is_some());
        let bad = StoreError::Corrupted { reason: "x".into() };
        assert!(bad.source().is_none());
    }
}
