//! Training → store wiring: `export()` on both training engines.
//!
//! The release boundary (Theorem 5) sits exactly here: a trainer runs
//! Algorithm 3, the accountant's spend is snapshot into the outcome, and
//! the node vectors leave the training process as an [`EmbeddingStore`]
//! stamped with that accounting metadata. Everything downstream of an
//! exported store — saving, loading, serving any number of queries — is
//! post-processing and spends no additional budget.

use advsgm_core::{PartitionedTrainer, ShardedTrainer, Trainer};
use advsgm_graph::Graph;

use crate::error::StoreError;
use crate::store::EmbeddingStore;

/// Runs a training engine to completion and packages the released vectors
/// as an [`EmbeddingStore`] with privacy metadata attached.
///
/// Implemented for [`Trainer`], [`ShardedTrainer`], and
/// [`PartitionedTrainer`]; all consume the engine the way
/// [`Trainer::run`] / [`ShardedTrainer::train`] do.
pub trait ExportEmbeddings {
    /// Trains on `graph` and returns the released store.
    ///
    /// # Errors
    /// [`StoreError::Train`] wrapping any training failure; budget
    /// exhaustion is *not* an error (the store simply carries the spend at
    /// the stopping point).
    fn export(self, graph: &Graph) -> Result<EmbeddingStore, StoreError>;
}

impl ExportEmbeddings for Trainer {
    fn export(self, graph: &Graph) -> Result<EmbeddingStore, StoreError> {
        let cfg = self.config().clone();
        let outcome = self.run(graph)?;
        EmbeddingStore::from_outcome(&outcome, &cfg)
    }
}

impl ExportEmbeddings for ShardedTrainer {
    fn export(self, graph: &Graph) -> Result<EmbeddingStore, StoreError> {
        let cfg = self.config().clone();
        let outcome = self.train(graph)?;
        EmbeddingStore::from_outcome(&outcome, &cfg)
    }
}

impl ExportEmbeddings for PartitionedTrainer {
    fn export(self, graph: &Graph) -> Result<EmbeddingStore, StoreError> {
        let cfg = self.config().clone();
        let outcome = self.train(graph)?;
        EmbeddingStore::from_outcome(&outcome, &cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advsgm_core::{AdvSgmConfig, ModelVariant};
    use advsgm_graph::generators::classic::karate_club;

    #[test]
    fn private_export_stamps_spend() {
        let g = karate_club();
        let cfg = AdvSgmConfig::test_small(ModelVariant::AdvSgm);
        let (delta, sigma) = (cfg.delta, cfg.sigma);
        let store = Trainer::new(&g, cfg).unwrap().export(&g).unwrap();
        assert_eq!(store.len(), g.num_nodes());
        assert_eq!(store.dim(), 16);
        let meta = store.meta();
        assert!(meta.is_private());
        assert!(meta.epsilon.unwrap() > 0.0);
        assert_eq!(meta.delta, Some(delta));
        assert_eq!(meta.sigma, Some(sigma));
        assert_eq!(meta.variant, ModelVariant::AdvSgm);
    }

    #[test]
    fn non_private_export_carries_no_guarantee() {
        let g = karate_club();
        let cfg = AdvSgmConfig::test_small(ModelVariant::Sgm);
        let store = ShardedTrainer::new(&g, cfg).unwrap().export(&g).unwrap();
        assert!(!store.meta().is_private());
        assert_eq!(store.meta().variant, ModelVariant::Sgm);
    }

    #[test]
    fn sharded_export_matches_sequential_at_one_thread() {
        // threads = 1 delegates to the sequential engine, so the exported
        // stores must be bitwise-identical.
        let g = karate_club();
        let cfg = AdvSgmConfig::test_small(ModelVariant::AdvSgm).with_threads(1);
        let a = Trainer::new(&g, cfg.clone()).unwrap().export(&g).unwrap();
        let b = ShardedTrainer::new(&g, cfg).unwrap().export(&g).unwrap();
        assert_eq!(a.to_bytes(), b.to_bytes());
    }

    #[test]
    fn partitioned_export_matches_sequential_bitwise() {
        // The out-of-core engine replays the sequential trajectory, so
        // the exported stores must be bitwise-identical at any P.
        let g = karate_club();
        let cfg = AdvSgmConfig::test_small(ModelVariant::AdvSgm).with_threads(1);
        let a = Trainer::new(&g, cfg.clone()).unwrap().export(&g).unwrap();
        let b = PartitionedTrainer::new(&g, cfg, 3)
            .unwrap()
            .export(&g)
            .unwrap();
        assert_eq!(a.to_bytes(), b.to_bytes());
    }

    #[test]
    fn export_on_empty_graph_is_a_train_error() {
        let g = Graph::from_parts(5, vec![], None);
        let cfg = AdvSgmConfig::test_small(ModelVariant::Sgm);
        match Trainer::new(&g, cfg) {
            Err(e) => {
                // Construction already rejects the empty graph; the export
                // path simply never begins.
                assert!(e.to_string().contains("no edges"));
            }
            Ok(_) => panic!("empty graph must be rejected"),
        }
    }
}
