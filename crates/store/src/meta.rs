//! Privacy metadata carried by a released embedding store.
//!
//! The paper's release boundary (Theorem 5) is the embedding matrix:
//! downstream tasks are post-processing and add no privacy cost, but a
//! consumer still needs to know *what guarantee* the artifact carries.
//! [`PrivacyMeta`] records the variant that produced the vectors and, for
//! private variants, the `(epsilon, delta, sigma)` triple — `epsilon` is
//! the accountant's *spent* value at the target `delta` (stamped from
//! [`advsgm_privacy::RdpAccountant::snapshot`] via the export path), not
//! the configured ceiling.

use std::fmt;

use advsgm_core::ModelVariant;

use crate::error::StoreError;

/// Privacy provenance of a stored embedding matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrivacyMeta {
    /// The model variant that produced the embeddings.
    pub variant: ModelVariant,
    /// `epsilon` actually spent at `delta` (None for non-private variants).
    pub epsilon: Option<f64>,
    /// Target failure probability `delta` (None for non-private variants).
    pub delta: Option<f64>,
    /// Noise multiplier `sigma` used in training (None for non-private
    /// variants).
    pub sigma: Option<f64>,
}

impl PrivacyMeta {
    /// Metadata for a non-private release (no DP guarantee attached).
    pub fn non_private(variant: ModelVariant) -> Self {
        Self {
            variant,
            epsilon: None,
            delta: None,
            sigma: None,
        }
    }

    /// Metadata for a private release.
    pub fn private(variant: ModelVariant, epsilon: f64, delta: f64, sigma: f64) -> Self {
        Self {
            variant,
            epsilon: Some(epsilon),
            delta: Some(delta),
            sigma: Some(sigma),
        }
    }

    /// Whether any DP guarantee is attached.
    pub fn is_private(&self) -> bool {
        self.epsilon.is_some()
    }
}

impl fmt::Display for PrivacyMeta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.variant.paper_name())?;
        // Keyed off the same predicate as `is_private`, so the two APIs
        // can never disagree about whether a guarantee is attached.
        // (Stores enforce all-or-none fields at construction and the
        // format rejects partial stamps, so the `?` fallbacks below are
        // only reachable on hand-assembled metadata.)
        match self.epsilon {
            Some(e) => {
                match self.delta {
                    Some(d) => write!(f, ", ({e:.4}, {d:.0e})-DP")?,
                    None => write!(f, ", ({e:.4}, ?)-DP")?,
                }
                if let Some(s) = self.sigma {
                    write!(f, ", sigma={s}")?;
                }
                Ok(())
            }
            None => write!(f, ", no DP guarantee"),
        }
    }
}

/// The wire code for a variant (`docs/FORMAT.md`, header byte 20).
/// Delegates to the one append-only registry in `advsgm-core`
/// ([`ModelVariant::wire_code`]), so the store and the trainer agree by
/// construction — adding a `ModelVariant` without a code is a compile
/// error in core, not a silent drift here.
pub(crate) fn variant_code(v: ModelVariant) -> u8 {
    v.wire_code()
}

/// Inverse of [`variant_code`]; unknown codes are a typed
/// [`StoreError::UnknownVariantCode`] (a reader newer than the writer is
/// corruption from this reader's perspective, but the code survives in
/// the error for forward-compatibility diagnostics).
pub(crate) fn variant_from_code(code: u8) -> Result<ModelVariant, StoreError> {
    ModelVariant::from_wire_code(code).ok_or(StoreError::UnknownVariantCode { code })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_codes_roundtrip() {
        for v in ModelVariant::all() {
            assert_eq!(variant_from_code(variant_code(v)).unwrap(), v);
        }
        let err = variant_from_code(250).unwrap_err();
        assert!(
            matches!(err, StoreError::UnknownVariantCode { code: 250 }),
            "{err}"
        );
    }

    #[test]
    fn store_codes_match_core_registry() {
        // The store must not re-encode: byte-for-byte the core table.
        for v in ModelVariant::all() {
            assert_eq!(variant_code(v), v.wire_code());
        }
    }

    #[test]
    fn display_names_the_guarantee() {
        let p = PrivacyMeta::private(ModelVariant::AdvSgm, 5.9123, 1e-5, 5.0);
        let s = p.to_string();
        assert!(s.contains("AdvSGM"), "{s}");
        assert!(s.contains("5.9123"), "{s}");
        assert!(s.contains("sigma=5"), "{s}");
        let np = PrivacyMeta::non_private(ModelVariant::Sgm);
        assert!(np.to_string().contains("no DP guarantee"));
        assert!(!np.is_private());
        assert!(p.is_private());
    }
}
