//! The `.actk` training-checkpoint on-disk format (version 1).
//!
//! Serialises [`advsgm_core::CheckpointState`] — the session layer's
//! complete mid-schedule state (DESIGN.md §10) — so an interrupted
//! training run can resume **bitwise-identically** to an uninterrupted
//! one. Byte-level specification lives in `docs/FORMAT.md` (the
//! checkpoint section); this module is the reference implementation and
//! follows the same append-only compatibility policy as `.aemb`.
//!
//! Like the embedding store, every float travels as raw IEEE-754 bits
//! (persistence must not perturb state the resume contract depends on),
//! the whole file is covered by a CRC-32 trailer, and every corruption
//! mode is a typed [`StoreError`], never a panic.
//!
//! Unlike `.aemb`, a checkpoint is **not a release artifact**: it carries
//! curator-side training state (RNG stream positions, the edge sampler's
//! permutation) and must stay under the same trust boundary as the
//! training process itself (DESIGN.md §10 has the release-boundary
//! argument).

use std::path::Path;

use advsgm_core::session::CheckpointState;
use advsgm_core::{AdvSgmConfig, EngineKind};
use advsgm_graph::sampling::negative::NegativeDistribution;
use advsgm_linalg::DenseMatrix;
use advsgm_privacy::AccountantState;

use crate::error::StoreError;
use crate::format::crc32;
use crate::meta::{variant_code, variant_from_code};

/// The four magic bytes every `.actk` checkpoint starts with.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"ACKP";

/// The checkpoint format version this build writes and the highest it
/// reads.
pub const CHECKPOINT_VERSION: u16 = 1;

/// Fixed header length in bytes (everything before the variable-length
/// sections).
pub const CHECKPOINT_HEADER_LEN: usize = 192;

/// Flag bit: an accountant-state section is present (private variants).
const FLAG_ACCOUNTANT: u16 = 1 << 0;
/// Every flag bit version 1 defines; the rest must read as zero.
const KNOWN_FLAGS: u16 = FLAG_ACCOUNTANT;

/// Wire code for the engine kind (append-only, like variant codes).
fn engine_code(kind: EngineKind) -> u8 {
    match kind {
        EngineKind::Sequential => 0,
        EngineKind::Sharded => 1,
        EngineKind::Partitioned => 2,
    }
}

/// Inverse of [`engine_code`]; unknown codes are a corruption error.
fn engine_from_code(code: u8) -> Result<EngineKind, StoreError> {
    Ok(match code {
        0 => EngineKind::Sequential,
        1 => EngineKind::Sharded,
        2 => EngineKind::Partitioned,
        other => {
            return Err(StoreError::Corrupted {
                reason: format!("unknown engine code {other}"),
            })
        }
    })
}

/// Wire code for the negative-sampling distribution (append-only).
fn distribution_code(d: NegativeDistribution) -> u8 {
    match d {
        NegativeDistribution::Uniform => 0,
        NegativeDistribution::Unigram34 => 1,
    }
}

/// Inverse of [`distribution_code`].
fn distribution_from_code(code: u8) -> Result<NegativeDistribution, StoreError> {
    Ok(match code {
        0 => NegativeDistribution::Uniform,
        1 => NegativeDistribution::Unigram34,
        other => {
            return Err(StoreError::Corrupted {
                reason: format!("unknown negative-distribution code {other}"),
            })
        }
    })
}

/// Serialises a checkpoint to the version-1 wire format.
///
/// # Errors
/// [`StoreError::LimitExceeded`] if the embedding dimension overflows the
/// header's u32 field — writing would silently truncate and the file
/// would round-trip to a different state (`docs/FORMAT.md`, "Format
/// limits").
pub fn encode_checkpoint(state: &CheckpointState) -> Result<Vec<u8>, StoreError> {
    let cfg = &state.config;
    let n = state.graph_nodes as usize;
    let r = cfg.dim;
    if r as u64 > u32::MAX as u64 {
        return Err(StoreError::LimitExceeded {
            what: "embedding dimension",
            value: r as u64,
            max: u32::MAX as u64,
        });
    }
    let mut flags = 0u16;
    if state.accountant.is_some() {
        flags |= FLAG_ACCOUNTANT;
    }

    let mut out = Vec::with_capacity(
        CHECKPOINT_HEADER_LEN
            + 8 * state.epoch_losses.len()
            + 4 * 8 * n * r
            + 16 * 8
            + 32 * state.rng_streams.len()
            + 4 * state.edge_permutation.len()
            + 64,
    );
    out.extend_from_slice(&CHECKPOINT_MAGIC);
    out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
    out.extend_from_slice(&flags.to_le_bytes());
    out.push(engine_code(state.engine));
    out.push(variant_code(cfg.variant));
    out.push(distribution_code(cfg.negative_distribution));
    out.push(u8::from(cfg.project_rows) | (u8::from(cfg.faithful_noise) << 1));
    out.extend_from_slice(&(r as u32).to_le_bytes());
    for v in [
        cfg.negatives as u64,
        cfg.batch_size as u64,
        cfg.epochs as u64,
        cfg.disc_iters as u64,
        cfg.gen_iters as u64,
        cfg.num_threads as u64,
        cfg.shard_size as u64,
        cfg.seed,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    for v in [
        cfg.eta_d,
        cfg.eta_g,
        cfg.clip,
        cfg.sigma,
        cfg.epsilon,
        cfg.delta,
        cfg.sigmoid_a,
        cfg.sigmoid_b,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    for v in [
        state.graph_nodes,
        state.graph_edges,
        state.graph_fingerprint,
        state.epochs_done,
        state.disc_updates,
        state.gen_updates,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    debug_assert_eq!(out.len(), CHECKPOINT_HEADER_LEN);

    out.extend_from_slice(&(state.epoch_losses.len() as u64).to_le_bytes());
    for &l in &state.epoch_losses {
        out.extend_from_slice(&l.to_le_bytes());
    }
    for m in [
        &state.w_in,
        &state.w_out,
        &state.gen_for_i,
        &state.gen_for_j,
    ] {
        for &v in m.as_slice() {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    if let Some(acc) = &state.accountant {
        out.extend_from_slice(&acc.steps.to_le_bytes());
        out.extend_from_slice(&(acc.alphas.len() as u64).to_le_bytes());
        for &a in &acc.alphas {
            out.extend_from_slice(&(a as u64).to_le_bytes());
        }
        for &t in &acc.totals {
            out.extend_from_slice(&t.to_le_bytes());
        }
    }
    out.extend_from_slice(&(state.rng_streams.len() as u64).to_le_bytes());
    for s in &state.rng_streams {
        for &w in s {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }
    out.extend_from_slice(&(state.edge_permutation.len() as u64).to_le_bytes());
    for &p in &state.edge_permutation {
        out.extend_from_slice(&p.to_le_bytes());
    }

    let checksum = crc32(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    Ok(out)
}

/// A bounds-checked little-endian reader over the checkpoint body.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// End of the body (exclusive) — the CRC trailer starts here.
    end: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, len: usize) -> Result<&'a [u8], StoreError> {
        if self.pos + len > self.end {
            return Err(StoreError::Truncated {
                expected: (self.pos + len + 4) as u64,
                found: self.bytes.len() as u64,
            });
        }
        let s = &self.bytes[self.pos..self.pos + len];
        self.pos += len;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, StoreError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Reads a declared element count and sanity-bounds it against the
    /// bytes actually remaining, so a hostile length cannot trigger a
    /// huge allocation before the bounds check.
    fn count(&mut self, elem_size: usize) -> Result<usize, StoreError> {
        let n = self.u64()?;
        let remaining = (self.end - self.pos) as u64;
        if n.saturating_mul(elem_size as u64) > remaining {
            return Err(StoreError::Truncated {
                expected: (self.pos as u64)
                    .saturating_add(n.saturating_mul(elem_size as u64))
                    .saturating_add(4),
                found: self.bytes.len() as u64,
            });
        }
        Ok(n as usize)
    }

    fn f64_vec(&mut self, n: usize) -> Result<Vec<f64>, StoreError> {
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.f64()?);
        }
        Ok(v)
    }

    fn matrix(&mut self, rows: usize, cols: usize) -> Result<DenseMatrix, StoreError> {
        let data = self.f64_vec(rows * cols)?;
        DenseMatrix::from_vec(rows, cols, data).map_err(|e| StoreError::Corrupted {
            reason: format!("matrix shape: {e}"),
        })
    }
}

/// Parses the version-1 wire format back into a [`CheckpointState`],
/// verifying magic, version, structural lengths, and the CRC-32 trailer.
/// Semantic validation against a graph/configuration happens at resume
/// time in `advsgm-core`.
pub fn decode_checkpoint(bytes: &[u8]) -> Result<CheckpointState, StoreError> {
    if bytes.len() < 4 || bytes[0..4] != CHECKPOINT_MAGIC {
        let mut found = [0u8; 4];
        let take = bytes.len().min(4);
        found[..take].copy_from_slice(&bytes[..take]);
        return Err(StoreError::BadMagic { found });
    }
    if bytes.len() < 8 {
        return Err(StoreError::Truncated {
            expected: (CHECKPOINT_HEADER_LEN + 12) as u64,
            found: bytes.len() as u64,
        });
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version == 0 || version > CHECKPOINT_VERSION {
        return Err(StoreError::UnsupportedVersion {
            found: version,
            supported: CHECKPOINT_VERSION,
        });
    }
    if bytes.len() < CHECKPOINT_HEADER_LEN + 12 {
        return Err(StoreError::Truncated {
            expected: (CHECKPOINT_HEADER_LEN + 12) as u64,
            found: bytes.len() as u64,
        });
    }

    // Integrity first: the header is fixed-length, but the sections are
    // self-describing, so verify every byte before trusting any length.
    let body = &bytes[..bytes.len() - 4];
    let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
    let computed = crc32(body);
    if stored != computed {
        return Err(StoreError::ChecksumMismatch { stored, computed });
    }

    let mut c = Cursor {
        bytes,
        pos: 6,
        end: bytes.len() - 4,
    };
    let flags = c.u16()?;
    if flags & !KNOWN_FLAGS != 0 {
        return Err(StoreError::Corrupted {
            reason: format!("unknown flag bits {:#06x}", flags & !KNOWN_FLAGS),
        });
    }
    let engine = engine_from_code(c.u8()?)?;
    let variant = variant_from_code(c.u8()?)?;
    let negative_distribution = distribution_from_code(c.u8()?)?;
    let bools = c.u8()?;
    if bools & !0b11 != 0 {
        return Err(StoreError::Corrupted {
            reason: format!("unknown bool bits {:#04x}", bools & !0b11),
        });
    }
    let dim = c.u32()? as usize;
    if dim == 0 {
        return Err(StoreError::Corrupted {
            reason: "embedding dimension is zero".into(),
        });
    }
    let negatives = c.u64()? as usize;
    let batch_size = c.u64()? as usize;
    let epochs = c.u64()? as usize;
    let disc_iters = c.u64()? as usize;
    let gen_iters = c.u64()? as usize;
    let num_threads = c.u64()? as usize;
    let shard_size = c.u64()? as usize;
    let seed = c.u64()?;
    let eta_d = c.f64()?;
    let eta_g = c.f64()?;
    let clip = c.f64()?;
    let sigma = c.f64()?;
    let epsilon = c.f64()?;
    let delta = c.f64()?;
    let sigmoid_a = c.f64()?;
    let sigmoid_b = c.f64()?;
    let graph_nodes = c.u64()?;
    let graph_edges = c.u64()?;
    let graph_fingerprint = c.u64()?;
    let epochs_done = c.u64()?;
    let disc_updates = c.u64()?;
    let gen_updates = c.u64()?;
    debug_assert_eq!(c.pos, CHECKPOINT_HEADER_LEN);

    let n_losses = c.count(8)?;
    let epoch_losses = c.f64_vec(n_losses)?;

    let n = graph_nodes as usize;
    // Guard the four-matrix payload size before allocating.
    let payload = (n as u128) * (dim as u128) * 8 * 4;
    if (c.pos as u128) + payload > c.end as u128 {
        return Err(StoreError::Truncated {
            expected: (c.pos as u128 + payload + 4).min(u64::MAX as u128) as u64,
            found: bytes.len() as u64,
        });
    }
    let w_in = c.matrix(n, dim)?;
    let w_out = c.matrix(n, dim)?;
    let gen_for_i = c.matrix(n, dim)?;
    let gen_for_j = c.matrix(n, dim)?;

    let accountant = if flags & FLAG_ACCOUNTANT != 0 {
        let steps = c.u64()?;
        let grid = c.count(16)?; // each order costs 8 (alpha) + 8 (total)
        let mut alphas = Vec::with_capacity(grid);
        for _ in 0..grid {
            alphas.push(c.u64()? as usize);
        }
        let totals = c.f64_vec(grid)?;
        Some(AccountantState {
            steps,
            alphas,
            totals,
        })
    } else {
        None
    };

    let n_streams = c.count(32)?;
    let mut rng_streams = Vec::with_capacity(n_streams);
    for _ in 0..n_streams {
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = c.u64()?;
        }
        rng_streams.push(s);
    }

    let n_perm = c.count(4)?;
    let mut edge_permutation = Vec::with_capacity(n_perm);
    for _ in 0..n_perm {
        edge_permutation.push(c.u32()?);
    }

    if c.pos != c.end {
        return Err(StoreError::Corrupted {
            reason: format!("{} trailing bytes after the checkpoint body", c.end - c.pos),
        });
    }

    Ok(CheckpointState {
        config: AdvSgmConfig {
            variant,
            dim,
            negatives,
            batch_size,
            epochs,
            disc_iters,
            gen_iters,
            eta_d,
            eta_g,
            clip,
            sigma,
            epsilon,
            delta,
            sigmoid_a,
            sigmoid_b,
            negative_distribution,
            project_rows: bools & 0b01 != 0,
            faithful_noise: bools & 0b10 != 0,
            num_threads,
            shard_size,
            seed,
        },
        graph_nodes,
        graph_edges,
        graph_fingerprint,
        epochs_done,
        disc_updates,
        gen_updates,
        epoch_losses,
        w_in,
        w_out,
        gen_for_i,
        gen_for_j,
        accountant,
        engine,
        rng_streams,
        edge_permutation,
    })
}

/// Writes a checkpoint to `path` crash-safely: the bytes land in a
/// sibling temporary file, are **fsynced to stable storage**, and only
/// then renamed into place (with the containing directory synced after
/// the rename where the platform allows), so an interrupt or power loss
/// mid-write can never destroy the previous good checkpoint.
///
/// # Errors
/// I/O failures as [`StoreError::Io`]; [`StoreError::LimitExceeded`] from
/// [`encode_checkpoint`] before anything is written.
pub fn save_checkpoint(path: impl AsRef<Path>, state: &CheckpointState) -> Result<(), StoreError> {
    use std::io::Write;

    let path = path.as_ref();
    let bytes = encode_checkpoint(state)?;
    let tmp = path.with_extension("actk.tmp");
    let mut file = std::fs::File::create(&tmp)?;
    file.write_all(&bytes)?;
    // Without this, journaling filesystems may commit the rename before
    // the data pages, leaving a zero-length file where the previous good
    // checkpoint used to be.
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, path)?;
    // Persist the rename itself. Directories cannot be fsynced on every
    // platform (e.g. Windows); failing to sync the directory weakens the
    // guarantee only to "ordinary rename atomicity", so it is not fatal.
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Reads and fully validates a checkpoint file written by
/// [`save_checkpoint`].
///
/// # Errors
/// I/O failures plus every decode error of [`decode_checkpoint`].
pub fn load_checkpoint(path: impl AsRef<Path>) -> Result<CheckpointState, StoreError> {
    let bytes = std::fs::read(path.as_ref())?;
    decode_checkpoint(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use advsgm_core::session::{CheckpointState as State, EpochEvent, SessionControl, TrainHooks};
    use advsgm_core::{ModelVariant, Trainer};
    use advsgm_graph::generators::classic::karate_club;

    /// Captures a real mid-training checkpoint through the hook seam.
    struct Capture(Option<State>);

    impl TrainHooks for Capture {
        fn on_epoch(&mut self, _e: &EpochEvent) -> SessionControl {
            SessionControl::Continue
        }
        fn wants_checkpoint(&mut self, done: usize) -> bool {
            done == 1
        }
        fn on_checkpoint(&mut self, s: &State) -> SessionControl {
            self.0 = Some(s.clone());
            SessionControl::Continue
        }
    }

    fn sample_state() -> State {
        let g = karate_club();
        let cfg = AdvSgmConfig::test_small(ModelVariant::AdvSgm);
        let mut cap = Capture(None);
        Trainer::new(&g, cfg)
            .unwrap()
            .run_with_hooks(&g, &mut cap)
            .unwrap();
        cap.0.expect("checkpoint captured")
    }

    fn assert_states_bitwise_equal(a: &State, b: &State) {
        assert_eq!(a.config, b.config);
        assert_eq!(a.graph_fingerprint, b.graph_fingerprint);
        assert_eq!(a.epochs_done, b.epochs_done);
        assert_eq!(a.disc_updates, b.disc_updates);
        assert_eq!(a.gen_updates, b.gen_updates);
        let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a.epoch_losses), bits(&b.epoch_losses));
        assert_eq!(bits(a.w_in.as_slice()), bits(b.w_in.as_slice()));
        assert_eq!(bits(a.w_out.as_slice()), bits(b.w_out.as_slice()));
        assert_eq!(bits(a.gen_for_i.as_slice()), bits(b.gen_for_i.as_slice()));
        assert_eq!(bits(a.gen_for_j.as_slice()), bits(b.gen_for_j.as_slice()));
        let (aa, ba) = (
            a.accountant.as_ref().unwrap(),
            b.accountant.as_ref().unwrap(),
        );
        assert_eq!(aa.steps, ba.steps);
        assert_eq!(aa.alphas, ba.alphas);
        assert_eq!(bits(&aa.totals), bits(&ba.totals));
        assert_eq!(a.engine, b.engine);
        assert_eq!(a.rng_streams, b.rng_streams);
        assert_eq!(a.edge_permutation, b.edge_permutation);
    }

    #[test]
    fn roundtrip_is_bitwise_exact() {
        let state = sample_state();
        let back = decode_checkpoint(&encode_checkpoint(&state).unwrap()).unwrap();
        assert_states_bitwise_equal(&state, &back);
    }

    #[test]
    fn file_roundtrip_via_save_load() {
        let state = sample_state();
        let dir = std::env::temp_dir().join("advsgm_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("unit.actk");
        save_checkpoint(&path, &state).unwrap();
        let back = load_checkpoint(&path).unwrap();
        assert_states_bitwise_equal(&state, &back);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_is_typed() {
        let err = decode_checkpoint(b"AEMBnotacheckpoint").unwrap_err();
        assert!(matches!(err, StoreError::BadMagic { .. }), "{err}");
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = encode_checkpoint(&sample_state()).unwrap();
        bytes[4..6].copy_from_slice(&9u16.to_le_bytes());
        let err = decode_checkpoint(&bytes).unwrap_err();
        assert!(
            matches!(err, StoreError::UnsupportedVersion { found: 9, .. }),
            "{err}"
        );
    }

    #[test]
    fn truncation_is_typed_at_every_cut() {
        let bytes = encode_checkpoint(&sample_state()).unwrap();
        for cut in [3usize, 7, 100, CHECKPOINT_HEADER_LEN + 5, bytes.len() - 1] {
            let err = decode_checkpoint(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    StoreError::Truncated { .. }
                        | StoreError::BadMagic { .. }
                        | StoreError::ChecksumMismatch { .. }
                ),
                "cut={cut}: {err}"
            );
        }
    }

    #[test]
    fn flipped_byte_fails_checksum() {
        let mut bytes = encode_checkpoint(&sample_state()).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        let err = decode_checkpoint(&bytes).unwrap_err();
        assert!(matches!(err, StoreError::ChecksumMismatch { .. }), "{err}");
    }

    #[test]
    fn trailing_bytes_are_corruption() {
        let mut bytes = encode_checkpoint(&sample_state()).unwrap();
        // Valid CRC over an extended body: recompute after appending.
        bytes.truncate(bytes.len() - 4);
        bytes.extend_from_slice(&[0u8; 8]);
        let sum = crc32(&bytes);
        bytes.extend_from_slice(&sum.to_le_bytes());
        let err = decode_checkpoint(&bytes).unwrap_err();
        assert!(matches!(err, StoreError::Corrupted { .. }), "{err}");
    }

    #[test]
    fn unknown_codes_are_corruption() {
        let state = sample_state();
        for (offset, label) in [(8usize, "engine"), (10, "distribution")] {
            let mut bytes = encode_checkpoint(&state).unwrap();
            bytes[offset] = 200;
            let sum = crc32(&bytes[..bytes.len() - 4]);
            let end = bytes.len();
            bytes[end - 4..].copy_from_slice(&sum.to_le_bytes());
            let err = decode_checkpoint(&bytes).unwrap_err();
            assert!(
                matches!(err, StoreError::Corrupted { .. }),
                "{label}: {err}"
            );
        }
        // The variant byte (offset 9) has its own typed error carrying the
        // unrecognised code, so a reader older than the writer can say so.
        let mut bytes = encode_checkpoint(&state).unwrap();
        bytes[9] = 200;
        let sum = crc32(&bytes[..bytes.len() - 4]);
        let end = bytes.len();
        bytes[end - 4..].copy_from_slice(&sum.to_le_bytes());
        let err = decode_checkpoint(&bytes).unwrap_err();
        assert!(
            matches!(err, StoreError::UnknownVariantCode { code: 200 }),
            "variant: {err}"
        );
    }

    #[test]
    fn hostile_length_cannot_balloon_allocation() {
        // Declare u64::MAX epoch losses; the reader must reject before
        // allocating anything of that order.
        let mut bytes = encode_checkpoint(&sample_state()).unwrap();
        bytes[CHECKPOINT_HEADER_LEN..CHECKPOINT_HEADER_LEN + 8]
            .copy_from_slice(&u64::MAX.to_le_bytes());
        let sum = crc32(&bytes[..bytes.len() - 4]);
        let end = bytes.len();
        bytes[end - 4..].copy_from_slice(&sum.to_le_bytes());
        let err = decode_checkpoint(&bytes).unwrap_err();
        assert!(matches!(err, StoreError::Truncated { .. }), "{err}");
    }

    #[test]
    fn engine_codes_roundtrip() {
        for k in [
            EngineKind::Sequential,
            EngineKind::Sharded,
            EngineKind::Partitioned,
        ] {
            assert_eq!(engine_from_code(engine_code(k)).unwrap(), k);
        }
        assert!(engine_from_code(7).is_err());
    }
}
