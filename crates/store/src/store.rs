//! The in-memory embedding store and its query-serving API.
//!
//! An [`EmbeddingStore`] is the released artifact of a training run: the
//! node-vector matrix `W_in`, a row → external-node-id table, and the
//! privacy metadata the release carries. Every query — pair scores
//! ([`EmbeddingStore::score`], Eq. 2's inner product), neighbor retrieval
//! ([`EmbeddingStore::top_k`]), and the parallel
//! [`EmbeddingStore::batch_top_k`] — is post-processing of that artifact
//! (Theorem 5), so serving adds **no** privacy cost regardless of query
//! volume.
//!
//! # Determinism contract
//!
//! `top_k` depends only on the store's contents (ties break toward the
//! lower row index, see [`advsgm_linalg::topk`]). `batch_top_k` computes
//! each query independently and reassembles results in query order, so its
//! output is **bitwise-identical at every thread count** — the serving
//! counterpart of the `ShardedTrainer` contract (DESIGN.md §7/§9).

use std::path::Path;

use advsgm_core::{AdvSgmConfig, TrainOutcome};
use advsgm_linalg::topk::top_k_rows;
use advsgm_linalg::{backend, DenseMatrix};
use advsgm_parallel::{resolve_threads, ThreadPool};

use crate::error::StoreError;
use crate::format;
use crate::meta::PrivacyMeta;

/// One neighbor returned by a top-k query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Row index in the store.
    pub node: usize,
    /// External node id from the store's id table.
    pub id: u64,
    /// Inner-product link score against the query node (Eq. 2).
    pub score: f64,
}

/// A queryable, persistable embedding matrix with privacy provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct EmbeddingStore {
    vectors: DenseMatrix,
    node_ids: Vec<u64>,
    meta: PrivacyMeta,
}

impl EmbeddingStore {
    /// Builds a store with the identity id table (row `i` has id `i`).
    ///
    /// # Errors
    /// [`StoreError::Invalid`] if the matrix has zero columns.
    pub fn new(vectors: DenseMatrix, meta: PrivacyMeta) -> Result<Self, StoreError> {
        let ids = (0..vectors.rows() as u64).collect();
        Self::with_node_ids(vectors, ids, meta)
    }

    /// Builds a store with an explicit row → external-node-id table.
    ///
    /// The row index is the store's primary key; ids are carried for
    /// display and for joining results back to the caller's graph.
    ///
    /// # Errors
    /// [`StoreError::Invalid`] if the table length differs from the row
    /// count or the matrix has zero columns.
    pub fn with_node_ids(
        vectors: DenseMatrix,
        node_ids: Vec<u64>,
        meta: PrivacyMeta,
    ) -> Result<Self, StoreError> {
        if vectors.cols() == 0 {
            return Err(StoreError::Invalid {
                reason: "embedding dimension must be positive".into(),
            });
        }
        // The `.aemb` header stores the dimension as a u32 (FORMAT.md,
        // "Format limits"): refuse here, at construction, so the writer's
        // `dim as u32` cast is provably lossless and can never silently
        // truncate a store into a different one on a 64-bit host.
        if vectors.cols() as u64 > u32::MAX as u64 {
            return Err(StoreError::LimitExceeded {
                what: "embedding dimension",
                value: vectors.cols() as u64,
                max: u32::MAX as u64,
            });
        }
        if node_ids.len() != vectors.rows() {
            return Err(StoreError::Invalid {
                reason: format!(
                    "node-id table has {} entries for {} rows",
                    node_ids.len(),
                    vectors.rows()
                ),
            });
        }
        // The privacy stamp travels as a unit (FORMAT.md): enforcing it
        // here keeps the writer incapable of producing files the reader
        // rejects.
        let present = [
            meta.epsilon.is_some(),
            meta.delta.is_some(),
            meta.sigma.is_some(),
        ];
        if present.iter().any(|&p| p) && !present.iter().all(|&p| p) {
            return Err(StoreError::Invalid {
                reason: "privacy metadata must set epsilon, delta, and sigma together \
                         or not at all"
                    .into(),
            });
        }
        Ok(Self {
            vectors,
            node_ids,
            meta,
        })
    }

    /// Builds a store from a finished training run, stamping the privacy
    /// metadata: the variant, the accountant's **spent** epsilon (already
    /// snapshot into [`TrainOutcome::epsilon_spent`]), and the configured
    /// `delta` / `sigma` for private variants.
    ///
    /// # Errors
    /// [`StoreError::Invalid`] on a malformed outcome (zero-dim vectors).
    pub fn from_outcome(outcome: &TrainOutcome, cfg: &AdvSgmConfig) -> Result<Self, StoreError> {
        let meta = match outcome.epsilon_spent {
            Some(eps) => PrivacyMeta::private(outcome.variant, eps, cfg.delta, cfg.sigma),
            None => PrivacyMeta::non_private(outcome.variant),
        };
        Self::new(outcome.node_vectors.clone(), meta)
    }

    /// Number of stored nodes (rows).
    pub fn len(&self) -> usize {
        self.vectors.rows()
    }

    /// Whether the store holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.vectors.rows() == 0
    }

    /// Embedding dimension `r`.
    pub fn dim(&self) -> usize {
        self.vectors.cols()
    }

    /// The privacy metadata this release carries.
    pub fn meta(&self) -> &PrivacyMeta {
        &self.meta
    }

    /// The row → external-node-id table.
    pub fn node_ids(&self) -> &[u64] {
        &self.node_ids
    }

    /// The underlying embedding matrix.
    pub fn matrix(&self) -> &DenseMatrix {
        &self.vectors
    }

    /// A 64-bit FNV-1a fingerprint of the store's contents: the row
    /// count, the dimension, the node-id table, and every payload value's
    /// raw bit pattern, folded word-wise with the standard FNV-64
    /// parameters (offset basis `0xcbf29ce484222325`, prime
    /// `0x100000001b3`) — the same folding scheme as the checkpoint graph
    /// fingerprint (`docs/FORMAT.md`).
    ///
    /// Derived artifacts built from a release (the `.aidx` ANN index)
    /// carry this fingerprint so a mismatched pairing is rejected instead
    /// of silently serving wrong neighbors.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut fold = |w: u64| h = (h ^ w).wrapping_mul(FNV_PRIME);
        fold(self.len() as u64);
        fold(self.dim() as u64);
        for &id in &self.node_ids {
            fold(id);
        }
        for &v in self.vectors.as_slice() {
            fold(v.to_bits());
        }
        h
    }

    /// The embedding of row `node`.
    ///
    /// # Errors
    /// [`StoreError::NodeOutOfRange`] for rows the store does not hold.
    pub fn vector(&self, node: usize) -> Result<&[f64], StoreError> {
        if node >= self.len() {
            return Err(StoreError::NodeOutOfRange {
                node,
                num_nodes: self.len(),
            });
        }
        Ok(self.vectors.row(node))
    }

    /// Eq. 2's link score: the inner product `<v_u, v_v>` (AUC-equivalent
    /// to the sigmoid the paper's discriminant applies, which is
    /// monotone).
    ///
    /// # Errors
    /// [`StoreError::NodeOutOfRange`] for rows the store does not hold.
    pub fn score(&self, u: usize, v: usize) -> Result<f64, StoreError> {
        Ok(backend::dot(self.vector(u)?, self.vector(v)?))
    }

    /// The `k` highest-scoring neighbors of `u` (excluding `u` itself),
    /// sorted by `(score desc, row asc)`. Fewer than `k` come back when
    /// the store holds fewer than `k + 1` nodes.
    ///
    /// # Errors
    /// [`StoreError::NodeOutOfRange`] for rows the store does not hold.
    pub fn top_k(&self, u: usize, k: usize) -> Result<Vec<Neighbor>, StoreError> {
        self.vector(u)?; // range check
        Ok(self.top_k_unchecked(u, k))
    }

    /// The single source of truth for neighbor retrieval: `u` must already
    /// be range-checked. Shared by [`Self::top_k`] and the batched paths
    /// so their results can never diverge.
    fn top_k_unchecked(&self, u: usize, k: usize) -> Vec<Neighbor> {
        top_k_rows(&self.vectors, self.vectors.row(u), k, Some(u))
            .into_iter()
            .map(|s| Neighbor {
                node: s.index,
                id: self.node_ids[s.index],
                score: s.score,
            })
            .collect()
    }

    /// [`Self::top_k`] for many query nodes at once, parallelised over the
    /// vendored `advsgm-parallel` pool.
    ///
    /// `threads = 0` resolves via `ADVSGM_THREADS` (else 1), matching the
    /// training engine's convention. Builds a fresh pool per call — a
    /// long-lived serving loop should construct one pool and call
    /// [`Self::batch_top_k_in`] instead.
    ///
    /// # Errors
    /// [`StoreError::NodeOutOfRange`] if *any* query row is out of range
    /// (checked up front; no partial results).
    pub fn batch_top_k(
        &self,
        queries: &[usize],
        k: usize,
        threads: usize,
    ) -> Result<Vec<Vec<Neighbor>>, StoreError> {
        let mut pool = ThreadPool::new(resolve_threads(threads));
        self.batch_top_k_in(queries, k, &mut pool)
    }

    /// [`Self::batch_top_k`] on a caller-owned pool, amortising thread
    /// spawns across calls (the serving-loop entry point). Queries are
    /// computed independently and results reassembled in query order, so
    /// the output is bitwise-identical at every pool width.
    ///
    /// Duplicate query nodes are computed **once**: the batch is deduped
    /// to its distinct nodes before dispatch and results are fanned back
    /// out in query order. A query's result depends only on the store and
    /// the `(node, k)` pair, so the output is bitwise-identical to
    /// computing every duplicate from scratch (regression-tested) — a
    /// serving loop with hot query nodes pays for each distinct scan once
    /// per batch.
    ///
    /// # Errors
    /// [`StoreError::NodeOutOfRange`] if *any* query row is out of range
    /// (checked up front; no partial results).
    pub fn batch_top_k_in(
        &self,
        queries: &[usize],
        k: usize,
        pool: &mut ThreadPool,
    ) -> Result<Vec<Vec<Neighbor>>, StoreError> {
        for &q in queries {
            if q >= self.len() {
                return Err(StoreError::NodeOutOfRange {
                    node: q,
                    num_nodes: self.len(),
                });
            }
        }
        // Dedupe to first occurrences. `slot[i]` is each query's index
        // into the distinct-node work list, so fan-out is a plain lookup.
        let mut first_slot: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::with_capacity(queries.len());
        let mut distinct: Vec<usize> = Vec::with_capacity(queries.len());
        let slots: Vec<usize> = queries
            .iter()
            .map(|&q| {
                *first_slot.entry(q).or_insert_with(|| {
                    distinct.push(q);
                    distinct.len() - 1
                })
            })
            .collect();
        let chunk_len = distinct.len().div_ceil(pool.threads()).max(1);
        let per_chunk = pool.map_chunks(&distinct, chunk_len, |_k, _offset, chunk| {
            chunk
                .iter()
                .map(|&u| self.top_k_unchecked(u, k))
                .collect::<Vec<_>>()
        });
        let per_distinct: Vec<Vec<Neighbor>> = per_chunk.into_iter().flatten().collect();
        if distinct.len() == queries.len() {
            return Ok(per_distinct);
        }
        Ok(slots.iter().map(|&s| per_distinct[s].clone()).collect())
    }

    /// Serialises the store to the `.aemb` wire format (`docs/FORMAT.md`).
    pub fn to_bytes(&self) -> Vec<u8> {
        format::encode(self)
    }

    /// Parses a store from `.aemb` bytes, verifying structure and the
    /// CRC-32 trailer.
    ///
    /// # Errors
    /// The full typed menu: [`StoreError::BadMagic`],
    /// [`StoreError::UnsupportedVersion`], [`StoreError::Truncated`],
    /// [`StoreError::ChecksumMismatch`], [`StoreError::Corrupted`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, StoreError> {
        format::decode(bytes)
    }

    /// Writes the store to a file atomically enough for a single writer:
    /// the bytes are fully serialised (checksum included) before the file
    /// is created.
    ///
    /// # Errors
    /// I/O failures.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), StoreError> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Loads a store from an `.aemb` file.
    ///
    /// # Errors
    /// I/O failures plus everything [`Self::from_bytes`] reports.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::from_bytes(&std::fs::read(path)?)
    }

    /// Loads a store and additionally requires its embedding dimension to
    /// equal `dim` — the guard for consumers compiled against a fixed
    /// layout.
    ///
    /// # Errors
    /// [`StoreError::DimMismatch`] on top of everything [`Self::load`]
    /// reports.
    pub fn load_expecting(path: impl AsRef<Path>, dim: usize) -> Result<Self, StoreError> {
        let store = Self::load(path)?;
        if store.dim() != dim {
            return Err(StoreError::DimMismatch {
                expected: dim,
                found: store.dim(),
            });
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advsgm_core::ModelVariant;

    fn store_of(rows: &[&[f64]]) -> EmbeddingStore {
        let cols = rows[0].len();
        let data: Vec<f64> = rows.iter().flat_map(|r| r.iter().copied()).collect();
        EmbeddingStore::new(
            DenseMatrix::from_vec(rows.len(), cols, data).unwrap(),
            PrivacyMeta::non_private(ModelVariant::Sgm),
        )
        .unwrap()
    }

    #[test]
    fn score_is_inner_product() {
        let s = store_of(&[&[1.0, 2.0], &[3.0, -1.0]]);
        assert_eq!(s.score(0, 1).unwrap(), 1.0);
        assert_eq!(s.score(0, 0).unwrap(), 5.0);
        assert!(matches!(
            s.score(0, 5),
            Err(StoreError::NodeOutOfRange { node: 5, .. })
        ));
    }

    #[test]
    fn top_k_excludes_self_and_sorts() {
        let s = store_of(&[&[1.0, 0.0], &[2.0, 0.0], &[0.5, 0.0], &[-1.0, 0.0]]);
        let top = s.top_k(0, 10).unwrap();
        assert_eq!(
            top.iter().map(|n| n.node).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(top[0].score, 2.0);
        assert_eq!(top[0].id, 1);
    }

    #[test]
    fn top_k_on_single_node_store_is_empty() {
        let s = store_of(&[&[1.0]]);
        assert!(s.top_k(0, 5).unwrap().is_empty());
    }

    #[test]
    fn batch_top_k_matches_sequential_top_k() {
        let m = DenseMatrix::from_fn(40, 8, |i, j| ((i * 13 + j * 7) as f64 * 0.21).sin());
        let s = EmbeddingStore::new(m, PrivacyMeta::non_private(ModelVariant::Sgm)).unwrap();
        let queries: Vec<usize> = (0..40).step_by(3).collect();
        for threads in [1usize, 2, 4] {
            let batch = s.batch_top_k(&queries, 5, threads).unwrap();
            assert_eq!(batch.len(), queries.len());
            for (&q, result) in queries.iter().zip(&batch) {
                let solo = s.top_k(q, 5).unwrap();
                assert_eq!(result.len(), solo.len(), "threads={threads} q={q}");
                for (a, b) in result.iter().zip(&solo) {
                    assert_eq!(a.node, b.node);
                    assert_eq!(a.score.to_bits(), b.score.to_bits());
                }
            }
        }
    }

    #[test]
    fn batch_top_k_in_reuses_a_pool_across_calls() {
        let m = DenseMatrix::from_fn(20, 4, |i, j| ((i + j * 5) as f64 * 0.3).cos());
        let s = EmbeddingStore::new(m, PrivacyMeta::non_private(ModelVariant::Sgm)).unwrap();
        let queries: Vec<usize> = (0..20).collect();
        let reference = s.batch_top_k(&queries, 3, 1).unwrap();
        let mut pool = ThreadPool::new(3);
        for _ in 0..4 {
            let got = s.batch_top_k_in(&queries, 3, &mut pool).unwrap();
            assert_eq!(got, reference);
        }
    }

    #[test]
    fn batch_top_k_dedupes_bitwise_identically() {
        // A batch with heavy duplication must be indistinguishable from
        // the per-query path — same nodes, same score bits, query order.
        let m = DenseMatrix::from_fn(30, 6, |i, j| ((i * 17 + j * 5) as f64 * 0.13).sin());
        let s = EmbeddingStore::new(m, PrivacyMeta::non_private(ModelVariant::Sgm)).unwrap();
        let queries = [7usize, 3, 7, 7, 0, 3, 29, 7, 0];
        for threads in [1usize, 2, 4] {
            let batch = s.batch_top_k(&queries, 4, threads).unwrap();
            assert_eq!(batch.len(), queries.len());
            for (&q, result) in queries.iter().zip(&batch) {
                let solo = s.top_k(q, 4).unwrap();
                assert_eq!(result.len(), solo.len(), "threads={threads} q={q}");
                for (a, b) in result.iter().zip(&solo) {
                    assert_eq!(a.node, b.node);
                    assert_eq!(a.score.to_bits(), b.score.to_bits());
                }
            }
        }
        // All-duplicates edge: one distinct scan, four identical results.
        let same = s.batch_top_k(&[5, 5, 5, 5], 3, 2).unwrap();
        assert!(same.iter().all(|r| r == &same[0]));
    }

    #[test]
    fn oversized_dimension_is_rejected_before_any_write() {
        // 0 rows x (u32::MAX + 1) cols allocates nothing but would
        // truncate the header's u32 dim field if it ever reached encode().
        let m = DenseMatrix::zeros(0, u32::MAX as usize + 1);
        let err = EmbeddingStore::new(m, PrivacyMeta::non_private(ModelVariant::Sgm)).unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::LimitExceeded {
                    what: "embedding dimension",
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn fingerprint_tracks_content() {
        let a = store_of(&[&[1.0, 2.0], &[3.0, -1.0]]);
        let b = store_of(&[&[1.0, 2.0], &[3.0, -1.0]]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = store_of(&[&[1.0, 2.0], &[3.0, -1.0000000001]]);
        assert_ne!(a.fingerprint(), c.fingerprint());
        let d = EmbeddingStore::with_node_ids(
            DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, -1.0]).unwrap(),
            vec![10, 11],
            PrivacyMeta::non_private(ModelVariant::Sgm),
        )
        .unwrap();
        assert_ne!(a.fingerprint(), d.fingerprint(), "id table is covered");
    }

    #[test]
    fn batch_top_k_rejects_any_bad_query_up_front() {
        let s = store_of(&[&[1.0], &[2.0]]);
        let err = s.batch_top_k(&[0, 7], 1, 1).unwrap_err();
        assert!(matches!(err, StoreError::NodeOutOfRange { node: 7, .. }));
    }

    #[test]
    fn batch_top_k_empty_queries() {
        let s = store_of(&[&[1.0]]);
        assert!(s.batch_top_k(&[], 3, 4).unwrap().is_empty());
    }

    #[test]
    fn construction_validates_parts() {
        let m = DenseMatrix::zeros(3, 0);
        assert!(matches!(
            EmbeddingStore::new(m, PrivacyMeta::non_private(ModelVariant::Sgm)),
            Err(StoreError::Invalid { .. })
        ));
        let m = DenseMatrix::zeros(3, 2);
        assert!(matches!(
            EmbeddingStore::with_node_ids(
                m,
                vec![1, 2],
                PrivacyMeta::non_private(ModelVariant::Sgm)
            ),
            Err(StoreError::Invalid { .. })
        ));
    }

    #[test]
    fn empty_store_queries_fail_typed() {
        let s = EmbeddingStore::new(
            DenseMatrix::zeros(0, 4),
            PrivacyMeta::non_private(ModelVariant::Sgm),
        )
        .unwrap();
        assert!(s.is_empty());
        assert!(matches!(
            s.top_k(0, 3),
            Err(StoreError::NodeOutOfRange { .. })
        ));
        assert!(matches!(
            s.score(0, 0),
            Err(StoreError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn save_load_file_roundtrip_and_dim_guard() {
        let s = store_of(&[&[1.5, -2.5], &[0.25, 1e-300]]);
        let dir = std::env::temp_dir().join("advsgm_store_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.aemb");
        s.save(&path).unwrap();
        let back = EmbeddingStore::load(&path).unwrap();
        assert_eq!(back, s);
        assert!(EmbeddingStore::load_expecting(&path, 2).is_ok());
        assert!(matches!(
            EmbeddingStore::load_expecting(&path, 128),
            Err(StoreError::DimMismatch {
                expected: 128,
                found: 2
            })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = EmbeddingStore::load("/nonexistent/advsgm/nope.aemb").unwrap_err();
        assert!(matches!(err, StoreError::Io(_)));
    }
}
