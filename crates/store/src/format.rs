//! The `.aemb` binary on-disk format (version 1).
//!
//! Byte-level specification lives in `docs/FORMAT.md`; this module is the
//! reference implementation. Summary (all integers and floats
//! little-endian):
//!
//! ```text
//! offset  size      field
//! 0       4         magic  b"AEMB"
//! 4       2         format version u16 (currently 1)
//! 6       2         flags u16: bit0 epsilon, bit1 delta, bit2 sigma
//!                   present; all other bits must be zero
//! 8       4         embedding dimension r (u32, > 0)
//! 12      8         node count n (u64)
//! 20      1         model-variant code (crate::meta::variant_code)
//! 21      3         reserved, must be zero
//! 24      8         epsilon (f64 bits; zero when flag clear)
//! 32      8         delta   (f64 bits; zero when flag clear)
//! 40      8         sigma   (f64 bits; zero when flag clear)
//! 48      8*n       node-id table: row -> external node id (u64 each)
//! 48+8n   8*n*r     embedding payload, row-major f64 bits
//! end-4   4         CRC-32 (IEEE 802.3) of every preceding byte
//! ```
//!
//! Floats are serialised as raw IEEE-754 bit patterns
//! (`f64::to_le_bytes`), so save → load is **bitwise-exact** for every
//! representable value — the released matrix *is* the privatized artifact
//! and must not be perturbed by persistence.

use advsgm_linalg::DenseMatrix;

use crate::error::StoreError;
use crate::meta::{variant_code, variant_from_code, PrivacyMeta};
use crate::store::EmbeddingStore;

/// The four magic bytes every `.aemb` file starts with.
pub const MAGIC: [u8; 4] = *b"AEMB";

/// The format version this build writes and the highest it reads.
pub const FORMAT_VERSION: u16 = 1;

/// Fixed header length in bytes (everything before the node-id table).
pub const HEADER_LEN: usize = 48;

/// Flag bit: the epsilon field carries a value.
const FLAG_EPSILON: u16 = 1 << 0;
/// Flag bit: the delta field carries a value.
const FLAG_DELTA: u16 = 1 << 1;
/// Flag bit: the sigma field carries a value.
const FLAG_SIGMA: u16 = 1 << 2;
/// Every flag bit version 1 defines; the rest must read as zero.
const KNOWN_FLAGS: u16 = FLAG_EPSILON | FLAG_DELTA | FLAG_SIGMA;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) lookup table.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE 802.3) of `data` — the checksum stored in the `.aemb`
/// trailer.
///
/// # Examples
/// ```
/// // The standard check value for this CRC parameterisation.
/// assert_eq!(advsgm_store::format::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Serialises a store to the version-1 wire format.
pub(crate) fn encode(store: &EmbeddingStore) -> Vec<u8> {
    let n = store.len();
    let dim = store.dim();
    let meta = store.meta();
    let mut flags = 0u16;
    if meta.epsilon.is_some() {
        flags |= FLAG_EPSILON;
    }
    if meta.delta.is_some() {
        flags |= FLAG_DELTA;
    }
    if meta.sigma.is_some() {
        flags |= FLAG_SIGMA;
    }

    let total = HEADER_LEN + 8 * n + 8 * n * dim + 4;
    let mut out = Vec::with_capacity(total);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&flags.to_le_bytes());
    out.extend_from_slice(&(dim as u32).to_le_bytes());
    out.extend_from_slice(&(n as u64).to_le_bytes());
    out.push(variant_code(meta.variant));
    out.extend_from_slice(&[0u8; 3]);
    out.extend_from_slice(&meta.epsilon.unwrap_or(0.0).to_le_bytes());
    out.extend_from_slice(&meta.delta.unwrap_or(0.0).to_le_bytes());
    out.extend_from_slice(&meta.sigma.unwrap_or(0.0).to_le_bytes());
    debug_assert_eq!(out.len(), HEADER_LEN);
    for &id in store.node_ids() {
        out.extend_from_slice(&id.to_le_bytes());
    }
    for &v in store.matrix().as_slice() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    let checksum = crc32(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Reads a little-endian `u64` at `offset` (caller guarantees bounds).
fn read_u64(bytes: &[u8], offset: usize) -> u64 {
    u64::from_le_bytes(bytes[offset..offset + 8].try_into().expect("8 bytes"))
}

/// Reads a little-endian `f64` bit pattern at `offset`.
fn read_f64(bytes: &[u8], offset: usize) -> f64 {
    f64::from_le_bytes(bytes[offset..offset + 8].try_into().expect("8 bytes"))
}

/// Parses the version-1 wire format back into a store, verifying magic,
/// version, structural lengths, and the CRC-32 trailer.
pub(crate) fn decode(bytes: &[u8]) -> Result<EmbeddingStore, StoreError> {
    // Magic and version come first so "wrong file" and "newer writer"
    // produce their specific errors even on short inputs.
    if bytes.len() < 4 || bytes[0..4] != MAGIC {
        let mut found = [0u8; 4];
        let take = bytes.len().min(4);
        found[..take].copy_from_slice(&bytes[..take]);
        return Err(StoreError::BadMagic { found });
    }
    if bytes.len() < 6 {
        return Err(StoreError::Truncated {
            expected: (HEADER_LEN + 4) as u64,
            found: bytes.len() as u64,
        });
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version == 0 || version > FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    if bytes.len() < HEADER_LEN + 4 {
        return Err(StoreError::Truncated {
            expected: (HEADER_LEN + 4) as u64,
            found: bytes.len() as u64,
        });
    }

    // Structural length checks next, then field validation, then the CRC
    // — the exact order FORMAT.md's "reader obligations" specifies, so an
    // independent reader built from that page produces the same typed
    // error as this one for any given file.
    let flags = u16::from_le_bytes([bytes[6], bytes[7]]);
    let dim = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
    let n = read_u64(bytes, 12);

    // Total size implied by the header, in u128 so absurd counts cannot
    // overflow into a bogus "valid" length.
    let expected = HEADER_LEN as u128 + 8 * n as u128 + 8 * n as u128 * dim as u128 + 4;
    if (bytes.len() as u128) < expected {
        return Err(StoreError::Truncated {
            expected: expected.min(u64::MAX as u128) as u64,
            found: bytes.len() as u64,
        });
    }
    if (bytes.len() as u128) > expected {
        return Err(StoreError::Corrupted {
            reason: format!(
                "{} trailing bytes after the checksum",
                bytes.len() as u128 - expected
            ),
        });
    }
    let n = n as usize;

    if flags & !KNOWN_FLAGS != 0 {
        return Err(StoreError::Corrupted {
            reason: format!("unknown flag bits {:#06x}", flags & !KNOWN_FLAGS),
        });
    }
    // Privacy fields travel as a unit: a release either carries the full
    // (epsilon, delta, sigma) stamp or none of it (FORMAT.md, flags).
    let privacy_bits = flags & KNOWN_FLAGS;
    if privacy_bits != 0 && privacy_bits != KNOWN_FLAGS {
        return Err(StoreError::Corrupted {
            reason: format!(
                "partial privacy metadata (flags {privacy_bits:#05b}): \
                 epsilon/delta/sigma must be all present or all absent"
            ),
        });
    }
    if dim == 0 {
        return Err(StoreError::Corrupted {
            reason: "embedding dimension is zero".into(),
        });
    }
    if bytes[21] != 0 || bytes[22] != 0 || bytes[23] != 0 {
        return Err(StoreError::Corrupted {
            reason: "reserved header bytes are non-zero".into(),
        });
    }
    let variant = variant_from_code(bytes[20])?;

    // Structure checks out; now verify integrity of every byte.
    let body = &bytes[..bytes.len() - 4];
    let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
    let computed = crc32(body);
    if stored != computed {
        return Err(StoreError::ChecksumMismatch { stored, computed });
    }

    let epsilon = (flags & FLAG_EPSILON != 0).then(|| read_f64(bytes, 24));
    let delta = (flags & FLAG_DELTA != 0).then(|| read_f64(bytes, 32));
    let sigma = (flags & FLAG_SIGMA != 0).then(|| read_f64(bytes, 40));
    let meta = PrivacyMeta {
        variant,
        epsilon,
        delta,
        sigma,
    };

    let ids_start = HEADER_LEN;
    let node_ids: Vec<u64> = (0..n).map(|i| read_u64(bytes, ids_start + 8 * i)).collect();

    let payload_start = ids_start + 8 * n;
    let mut data = Vec::with_capacity(n * dim);
    for i in 0..n * dim {
        data.push(read_f64(bytes, payload_start + 8 * i));
    }
    let vectors = DenseMatrix::from_vec(n, dim, data).map_err(|e| StoreError::Corrupted {
        reason: format!("payload shape: {e}"),
    })?;

    EmbeddingStore::with_node_ids(vectors, node_ids, meta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use advsgm_core::ModelVariant;

    fn sample_store() -> EmbeddingStore {
        let m = DenseMatrix::from_fn(5, 3, |i, j| (i as f64 + 1.0) * 0.5 - j as f64 * 0.25);
        EmbeddingStore::new(
            m,
            PrivacyMeta::private(ModelVariant::AdvSgm, 5.5, 1e-5, 5.0),
        )
        .unwrap()
    }

    #[test]
    fn crc32_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_layout_is_stable() {
        let bytes = encode(&sample_store());
        assert_eq!(&bytes[0..4], b"AEMB");
        assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), FORMAT_VERSION);
        // All three privacy fields present.
        assert_eq!(u16::from_le_bytes([bytes[6], bytes[7]]), 0b111);
        assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), 3);
        assert_eq!(read_u64(&bytes, 12), 5);
        assert_eq!(bytes[20], 3); // AdvSgm
        assert_eq!(bytes.len(), HEADER_LEN + 8 * 5 + 8 * 5 * 3 + 4);
    }

    #[test]
    fn roundtrip_is_bitwise_exact() {
        let store = sample_store();
        let back = decode(&encode(&store)).unwrap();
        assert_eq!(back.meta(), store.meta());
        assert_eq!(back.node_ids(), store.node_ids());
        let a: Vec<u64> = store
            .matrix()
            .as_slice()
            .iter()
            .map(|x| x.to_bits())
            .collect();
        let b: Vec<u64> = back
            .matrix()
            .as_slice()
            .iter()
            .map(|x| x.to_bits())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn roundtrip_preserves_nonfinite_bit_patterns() {
        // The format stores raw bits: NaN payloads and infinities survive.
        let mut m = DenseMatrix::zeros(2, 2);
        m.set(0, 0, f64::NAN);
        m.set(0, 1, f64::INFINITY);
        m.set(1, 0, f64::NEG_INFINITY);
        m.set(1, 1, -0.0);
        let store = EmbeddingStore::new(m, PrivacyMeta::non_private(ModelVariant::Sgm)).unwrap();
        let back = decode(&encode(&store)).unwrap();
        for (a, b) in store
            .matrix()
            .as_slice()
            .iter()
            .zip(back.matrix().as_slice())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn empty_store_roundtrips() {
        let store = EmbeddingStore::new(
            DenseMatrix::zeros(0, 4),
            PrivacyMeta::non_private(ModelVariant::Sgm),
        )
        .unwrap();
        let back = decode(&encode(&store)).unwrap();
        assert_eq!(back.len(), 0);
        assert_eq!(back.dim(), 4);
    }

    #[test]
    fn bad_magic_is_typed() {
        let err = decode(b"PK\x03\x04junkjunkjunk").unwrap_err();
        assert!(matches!(err, StoreError::BadMagic { .. }), "{err}");
        let err = decode(b"AE").unwrap_err();
        assert!(matches!(err, StoreError::BadMagic { .. }), "{err}");
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = encode(&sample_store());
        bytes[4..6].copy_from_slice(&99u16.to_le_bytes());
        let err = decode(&bytes).unwrap_err();
        assert!(
            matches!(err, StoreError::UnsupportedVersion { found: 99, .. }),
            "{err}"
        );
    }

    #[test]
    fn truncation_is_typed_at_every_length() {
        let bytes = encode(&sample_store());
        // Cut at representative points: inside the header, the id table,
        // the payload, and the checksum.
        for cut in [
            5usize,
            30,
            HEADER_LEN + 3,
            bytes.len() - 10,
            bytes.len() - 1,
        ] {
            let err = decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    StoreError::Truncated { .. } | StoreError::BadMagic { .. }
                ),
                "cut={cut}: {err}"
            );
        }
    }

    #[test]
    fn flipped_payload_byte_fails_checksum() {
        let mut bytes = encode(&sample_store());
        let i = HEADER_LEN + 8 * 5 + 11; // somewhere in the payload
        bytes[i] ^= 0x40;
        let err = decode(&bytes).unwrap_err();
        assert!(matches!(err, StoreError::ChecksumMismatch { .. }), "{err}");
    }

    #[test]
    fn trailing_garbage_is_corruption() {
        let mut bytes = encode(&sample_store());
        bytes.extend_from_slice(b"extra");
        let err = decode(&bytes).unwrap_err();
        assert!(matches!(err, StoreError::Corrupted { .. }), "{err}");
    }

    #[test]
    fn unknown_flags_and_variant_are_corruption() {
        let store = sample_store();
        let mut bytes = encode(&store);
        bytes[7] = 0x80; // undefined high flag bit
        let sum = crc32(&bytes[..bytes.len() - 4]);
        let end = bytes.len();
        bytes[end - 4..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            decode(&bytes).unwrap_err(),
            StoreError::Corrupted { .. }
        ));

        let mut bytes = encode(&store);
        bytes[20] = 200; // unknown variant code -> typed error with the code
        let sum = crc32(&bytes[..bytes.len() - 4]);
        let end = bytes.len();
        bytes[end - 4..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            decode(&bytes).unwrap_err(),
            StoreError::UnknownVariantCode { code: 200 }
        ));
    }

    #[test]
    fn partial_privacy_flags_are_corruption() {
        // epsilon present without delta/sigma: the stamp travels as a
        // unit, so a hand-made partial release must be rejected even with
        // a valid checksum.
        let mut bytes = encode(&sample_store());
        bytes[6] = 0b001;
        let sum = crc32(&bytes[..bytes.len() - 4]);
        let end = bytes.len();
        bytes[end - 4..].copy_from_slice(&sum.to_le_bytes());
        let err = decode(&bytes).unwrap_err();
        assert!(matches!(err, StoreError::Corrupted { .. }), "{err}");
        assert!(err.to_string().contains("partial privacy"), "{err}");
    }

    #[test]
    fn zero_dim_is_corruption() {
        let mut bytes = encode(&sample_store());
        bytes[8..12].copy_from_slice(&0u32.to_le_bytes());
        let sum = crc32(&bytes[..bytes.len() - 4]);
        let end = bytes.len();
        bytes[end - 4..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            decode(&bytes).unwrap_err(),
            StoreError::Corrupted { .. }
        ));
    }

    #[test]
    fn absurd_node_count_reports_truncation_not_overflow() {
        let mut bytes = encode(&sample_store());
        bytes[12..20].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = decode(&bytes).unwrap_err();
        assert!(matches!(err, StoreError::Truncated { .. }), "{err}");
    }
}
