//! # advsgm-store
//!
//! Embedding persistence and query serving for the AdvSGM workspace — the
//! inference side of the reproduction. Training (the `advsgm-core`
//! engines) produces a node-vector matrix; this crate makes that matrix a
//! durable, queryable artifact:
//!
//! * [`EmbeddingStore`] — the released matrix plus a row → node-id table
//!   and [`PrivacyMeta`] provenance, with the serving API:
//!   [`EmbeddingStore::score`] (Eq. 2 inner-product link score),
//!   [`EmbeddingStore::top_k`] (bounded-heap neighbor retrieval over the
//!   fused kernels in [`advsgm_linalg::topk`]), and
//!   [`EmbeddingStore::batch_top_k`] (parallel over the `advsgm-parallel`
//!   pool, bitwise thread-count-invariant);
//! * [`format`](mod@format) — the versioned, CRC-checksummed `.aemb` on-disk format,
//!   byte-level spec in `docs/FORMAT.md` (DESIGN.md §9); save → load is
//!   bitwise-exact and every corruption mode is a typed [`StoreError`];
//! * [`ExportEmbeddings`] — `export()` on [`advsgm_core::Trainer`] and
//!   [`advsgm_core::ShardedTrainer`], stamping accounting metadata from
//!   the RDP accountant's spend snapshot into the released store;
//! * [`checkpoint`] — the versioned, CRC-checksummed `.actk` codec for
//!   [`advsgm_core::CheckpointState`]: crash-safe persistence of a
//!   training session's mid-schedule state, enabling bitwise-exact
//!   interrupt/resume (`advsgm train --checkpoint-every N --resume PATH`).
//!   Checkpoints are *curator-side* state, not release artifacts.
//! * [`agph`] — the versioned, per-section CRC-checksummed `.agph`
//!   disk-resident graph format behind out-of-core partitioned training
//!   (DESIGN.md §14): edges are filed into node-bucket sections so
//!   [`AgphReader`] can map one bucket's edges at a time.
//!
//! Why serving is free: the paper's Theorem 5 (post-processing) puts the
//! privacy boundary at the embedding matrix itself. Once the matrix is
//! released with `(epsilon, delta)` spent, any query load — link scores,
//! neighbor lists, clustering — consumes no further budget, which is what
//! makes a high-traffic serving layer compatible with a fixed DP
//! guarantee.
//!
//! # Example
//!
//! ```
//! use advsgm_core::{AdvSgmConfig, ModelVariant, Trainer};
//! use advsgm_graph::generators::classic::karate_club;
//! use advsgm_store::ExportEmbeddings;
//!
//! let graph = karate_club();
//! let cfg = AdvSgmConfig::test_small(ModelVariant::AdvSgm);
//! let store = Trainer::new(&graph, cfg).unwrap().export(&graph).unwrap();
//! assert!(store.meta().is_private());
//!
//! // Serving: pairwise link score + nearest neighbors (post-processing).
//! let s = store.score(0, 33).unwrap();
//! assert!(s.is_finite());
//! let top = store.top_k(0, 5).unwrap();
//! assert_eq!(top.len(), 5);
//!
//! // Persistence: bitwise-exact roundtrip through the .aemb format.
//! let bytes = store.to_bytes();
//! let back = advsgm_store::EmbeddingStore::from_bytes(&bytes).unwrap();
//! assert_eq!(back, store);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod agph;
pub mod checkpoint;
pub mod error;
pub mod export;
pub mod format;
pub mod index;
pub mod meta;
pub mod store;

pub use agph::{decode_agph, encode_agph, load_agph, save_agph, AgphReader};
pub use checkpoint::{decode_checkpoint, encode_checkpoint, load_checkpoint, save_checkpoint};
pub use error::StoreError;
pub use export::ExportEmbeddings;
pub use index::{IndexParams, IvfIndex, SearchResult};
pub use meta::PrivacyMeta;
pub use store::{EmbeddingStore, Neighbor};
