//! The `.agph` bucket-partitioned on-disk graph format (version 1).
//!
//! Byte-level specification lives in `docs/FORMAT.md`; this module is the
//! reference implementation. `.agph` is the disk-resident input of the
//! out-of-core training path (DESIGN.md §14): the edge set is stored in
//! `P` *sections*, one per node bucket of
//! [`advsgm_graph::buckets::NodeBuckets`], so the partitioned engine can
//! map one bucket's edges at a time instead of materialising the whole
//! edge list. Summary (all integers little-endian):
//!
//! ```text
//! offset      size   field
//! 0           4      magic  b"AGPH"
//! 4           2      format version u16 (currently 1)
//! 6           2      flags u16 (bit 0 = SIGNED; all other bits must be 0)
//! 8           8      node count n (u64, <= u32::MAX)
//! 16          8      edge count m (u64)
//! 24          4      bucket count P (u32, >= 1)
//! 28          4      reserved, must be zero
//! 32          8      graph fingerprint (FNV-1a-64, see below)
//! 40          12*P   section table: per bucket, edge count (u64) then
//!                    section CRC-32 (u32)
//! 40+12P      4      header CRC-32 over bytes [0, 40+12P)
//! 44+12P      8*m    sections in bucket order; one edge per 8 bytes:
//!                    u (u32), v (u32), canonical u < v
//! (SIGNED only) per bucket, in bucket order: a sign bitmap of
//!                    ceil(count_b / 8) bytes — bit i (LSB-first within
//!                    each byte) is 1 when edge i of section b carries foe
//!                    polarity; padding bits in the last byte must be 0 —
//!                    followed by that bitmap's own CRC-32 (u32)
//! ```
//!
//! Section `b` holds exactly the edges whose *lower* endpoint falls in
//! bucket `b` (`bucket_of(u) == b`), in the writer's stable order. The
//! canonical edge order of the file is the concatenation of its sections;
//! the fingerprint is FNV-1a-64 over `n` (8 LE bytes) followed by each
//! edge's `u` and `v` (4 LE bytes each) in that canonical order — and,
//! when the SIGNED flag is set, each section's sign-bitmap bytes folded
//! immediately after that section's edge bytes — so a reader can prove
//! both the edge set and the polarity assignment it reassembled are the
//! ones that were written. Files without the flag are byte-identical to
//! what pre-sign releases wrote.
//!
//! There is no whole-file trailer: the header CRC plus the per-section
//! CRCs already cover every byte, and per-section checksums are what let
//! [`AgphReader`] verify a single bucket without reading the rest of the
//! file. Like `.aemb` and `.actk`, the format is strictly versioned and
//! evolves append-only (the SIGNED flag occupies the flags seam version 1
//! reserved for exactly this), and every corruption mode is a typed
//! [`StoreError`], never a panic.

use std::io::{Read, Seek, SeekFrom};
use std::path::Path;

use advsgm_graph::buckets::NodeBuckets;
use advsgm_graph::{Edge, Graph};

use crate::error::StoreError;
use crate::format::crc32;

/// The four magic bytes every `.agph` file starts with.
pub const AGPH_MAGIC: [u8; 4] = *b"AGPH";

/// The `.agph` format version this build writes and the highest it reads.
pub const AGPH_VERSION: u16 = 1;

/// Flags-field bit 0: the file carries a per-edge sign (polarity) channel
/// as per-bucket bitmaps after the edge sections.
pub const AGPH_FLAG_SIGNED: u16 = 0x0001;

/// Every flag bit this reader understands; any other set bit is corruption
/// (or a newer writer) and must be rejected, not ignored.
const AGPH_KNOWN_FLAGS: u16 = AGPH_FLAG_SIGNED;

/// Fixed header length in bytes (everything before the section table).
pub const AGPH_FIXED_HEADER_LEN: usize = 40;

/// Bytes per section-table entry (edge count u64 + section CRC-32).
const TABLE_ENTRY_LEN: usize = 12;

/// Bytes per on-disk edge record (two u32 endpoints).
const EDGE_LEN: usize = 8;

/// FNV-1a-64 offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a-64 prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into a running FNV-1a-64 hash.
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Header length including the section table (but not its CRC).
fn table_end(buckets: usize) -> usize {
    AGPH_FIXED_HEADER_LEN + TABLE_ENTRY_LEN * buckets
}

/// Packs one section's foe flags into the on-disk bitmap (LSB-first).
fn pack_signs(signs: &[bool]) -> Vec<u8> {
    let mut out = vec![0u8; signs.len().div_ceil(8)];
    for (i, &foe) in signs.iter().enumerate() {
        if foe {
            out[i / 8] |= 1 << (i % 8);
        }
    }
    out
}

/// Unpacks a section's sign bitmap, rejecting non-zero padding bits (the
/// format is strict: every byte has exactly one valid encoding, so flips
/// in the padding cannot hide).
fn unpack_signs(bitmap: &[u8], count: usize, section: usize) -> Result<Vec<bool>, StoreError> {
    debug_assert_eq!(bitmap.len(), count.div_ceil(8));
    if !count.is_multiple_of(8) && bitmap.last().is_some_and(|&b| b >> (count % 8) != 0) {
        return Err(StoreError::Corrupted {
            reason: format!("non-zero padding bits in the sign bitmap of section {section}"),
        });
    }
    Ok((0..count)
        .map(|i| bitmap[i / 8] & (1 << (i % 8)) != 0)
        .collect())
}

/// Serialises `graph` into the version-1 `.agph` wire format with `buckets`
/// sections.
///
/// The writer partitions the edge list *stably* by the bucket of each
/// edge's lower endpoint, so the file's canonical order (section
/// concatenation) is a deterministic function of the graph's edge order
/// and `buckets`. The on-disk bucket count is independent of the runtime
/// partition count used for training.
///
/// # Errors
/// [`StoreError::Invalid`] when `buckets == 0`;
/// [`StoreError::LimitExceeded`] when the node count overflows the u32
/// edge endpoints.
pub fn encode_agph(graph: &Graph, buckets: usize) -> Result<Vec<u8>, StoreError> {
    if buckets == 0 {
        return Err(StoreError::Invalid {
            reason: "bucket count must be at least 1".into(),
        });
    }
    let n = graph.num_nodes();
    if n as u64 > u32::MAX as u64 {
        return Err(StoreError::LimitExceeded {
            what: "node count",
            value: n as u64,
            max: u32::MAX as u64,
        });
    }
    if buckets as u64 > u32::MAX as u64 {
        return Err(StoreError::LimitExceeded {
            what: "bucket count",
            value: buckets as u64,
            max: u32::MAX as u64,
        });
    }
    let nb = NodeBuckets::new(n, buckets).map_err(|e| StoreError::Invalid {
        reason: e.to_string(),
    })?;
    let m = graph.num_edges();
    let signs = graph.signs();

    // Stable partition of the edge list (and its sign channel, kept
    // aligned by construction) by lower-endpoint bucket.
    let mut sections: Vec<Vec<Edge>> = vec![Vec::new(); buckets];
    let mut section_signs: Vec<Vec<bool>> = vec![Vec::new(); buckets];
    for (idx, &e) in graph.edges().iter().enumerate() {
        let b = nb.bucket_of(e.u().index());
        sections[b].push(e);
        if let Some(s) = signs {
            section_signs[b].push(s[idx]);
        }
    }

    // Fingerprint over n then the canonical (section-concatenation)
    // order; for signed graphs each section's sign bitmap is folded
    // directly after its edge bytes, so the fingerprint also pins the
    // polarity assignment.
    let mut fp = fnv1a(FNV_OFFSET, &(n as u64).to_le_bytes());
    let mut encoded: Vec<Vec<u8>> = Vec::with_capacity(buckets);
    let mut bitmaps: Vec<Vec<u8>> = Vec::with_capacity(if signs.is_some() { buckets } else { 0 });
    for (b, sec) in sections.iter().enumerate() {
        let mut body = Vec::with_capacity(sec.len() * EDGE_LEN);
        for e in sec {
            let (u, v) = (e.u().index() as u32, e.v().index() as u32);
            body.extend_from_slice(&u.to_le_bytes());
            body.extend_from_slice(&v.to_le_bytes());
        }
        fp = fnv1a(fp, &body);
        encoded.push(body);
        if signs.is_some() {
            let bm = pack_signs(&section_signs[b]);
            fp = fnv1a(fp, &bm);
            bitmaps.push(bm);
        }
    }

    let sign_region: usize = bitmaps.iter().map(|bm| bm.len() + 4).sum();
    let flags = if signs.is_some() { AGPH_FLAG_SIGNED } else { 0 };
    let mut out = Vec::with_capacity(table_end(buckets) + 4 + m * EDGE_LEN + sign_region);
    out.extend_from_slice(&AGPH_MAGIC);
    out.extend_from_slice(&AGPH_VERSION.to_le_bytes());
    out.extend_from_slice(&flags.to_le_bytes());
    out.extend_from_slice(&(n as u64).to_le_bytes());
    out.extend_from_slice(&(m as u64).to_le_bytes());
    out.extend_from_slice(&(buckets as u32).to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes()); // reserved
    out.extend_from_slice(&fp.to_le_bytes());
    debug_assert_eq!(out.len(), AGPH_FIXED_HEADER_LEN);
    for (sec, body) in sections.iter().zip(&encoded) {
        out.extend_from_slice(&(sec.len() as u64).to_le_bytes());
        out.extend_from_slice(&crc32(body).to_le_bytes());
    }
    debug_assert_eq!(out.len(), table_end(buckets));
    let header_sum = crc32(&out);
    out.extend_from_slice(&header_sum.to_le_bytes());
    for body in &encoded {
        out.extend_from_slice(body);
    }
    // Sign region (SIGNED flag only): per-bucket bitmap + its own CRC, so
    // a streaming reader can verify one bucket's polarity without the rest.
    for bm in &bitmaps {
        out.extend_from_slice(bm);
        out.extend_from_slice(&crc32(bm).to_le_bytes());
    }
    Ok(out)
}

/// Writes `graph` to `path` as `.agph` crash-safely (temporary file,
/// fsync, rename — the same discipline as checkpoint writes).
///
/// # Errors
/// Everything [`encode_agph`] rejects, plus I/O failures as
/// [`StoreError::Io`].
pub fn save_agph(path: impl AsRef<Path>, graph: &Graph, buckets: usize) -> Result<(), StoreError> {
    use std::io::Write;

    let path = path.as_ref();
    let bytes = encode_agph(graph, buckets)?;
    let tmp = path.with_extension("agph.tmp");
    let mut file = std::fs::File::create(&tmp)?;
    file.write_all(&bytes)?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// The fully validated header of an `.agph` file: counts, per-section
/// layout, and the stored fingerprint.
#[derive(Debug, Clone)]
struct AgphHeader {
    num_nodes: usize,
    num_edges: usize,
    buckets: NodeBuckets,
    /// Per-section edge counts, in bucket order.
    section_counts: Vec<usize>,
    /// Per-section CRC-32 checksums, in bucket order.
    section_crcs: Vec<u32>,
    /// Stored FNV-1a-64 fingerprint over the canonical edge order.
    fingerprint: u64,
    /// Whether the SIGNED flag is set (a sign region follows the edges).
    signed: bool,
}

impl AgphHeader {
    /// Byte offset of section `b` within the file.
    fn section_offset(&self, b: usize) -> u64 {
        let edges_before: u64 = self.section_counts[..b].iter().map(|&c| c as u64).sum();
        (table_end(self.buckets.count()) + 4) as u64 + edges_before * EDGE_LEN as u64
    }

    /// Length in bytes of section `b`'s sign bitmap.
    fn sign_bitmap_len(&self, b: usize) -> usize {
        self.section_counts[b].div_ceil(8)
    }

    /// Byte offset of section `b`'s sign bitmap (SIGNED files only).
    fn sign_offset(&self, b: usize) -> u64 {
        debug_assert!(self.signed);
        let edges_end =
            (table_end(self.buckets.count()) + 4) as u64 + self.num_edges as u64 * EDGE_LEN as u64;
        let before: u64 = (0..b).map(|i| self.sign_bitmap_len(i) as u64 + 4).sum();
        edges_end + before
    }
}

/// Validates everything up to and including the header CRC.
///
/// `total_len` is the length of the whole file (for in-memory decoding,
/// `header_bytes.len()`); `header_bytes` must hold at least the fixed
/// header, the section table, and the header CRC whenever that much of
/// the file exists.
fn parse_header(header_bytes: &[u8], total_len: u64) -> Result<AgphHeader, StoreError> {
    let bytes = header_bytes;
    // Magic and version first, so "wrong file" and "newer writer" produce
    // their specific errors even on short inputs.
    if bytes.len() < 4 || bytes[0..4] != AGPH_MAGIC {
        let mut found = [0u8; 4];
        let take = bytes.len().min(4);
        found[..take].copy_from_slice(&bytes[..take]);
        return Err(StoreError::BadMagic { found });
    }
    let min_len = (table_end(1) + 4) as u64;
    if bytes.len() < 6 {
        return Err(StoreError::Truncated {
            expected: min_len,
            found: total_len,
        });
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version == 0 || version > AGPH_VERSION {
        return Err(StoreError::UnsupportedVersion {
            found: version,
            supported: AGPH_VERSION,
        });
    }
    if bytes.len() < AGPH_FIXED_HEADER_LEN {
        return Err(StoreError::Truncated {
            expected: min_len,
            found: total_len,
        });
    }

    let flags = u16::from_le_bytes([bytes[6], bytes[7]]);
    if flags & !AGPH_KNOWN_FLAGS != 0 {
        return Err(StoreError::Corrupted {
            reason: format!("unknown flag bits {:#06x}", flags & !AGPH_KNOWN_FLAGS),
        });
    }
    let signed = flags & AGPH_FLAG_SIGNED != 0;
    let n = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let m = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    let p = u32::from_le_bytes(bytes[24..28].try_into().expect("4 bytes"));
    let reserved = u32::from_le_bytes(bytes[28..32].try_into().expect("4 bytes"));
    let fingerprint = u64::from_le_bytes(bytes[32..40].try_into().expect("8 bytes"));
    if p == 0 {
        return Err(StoreError::Corrupted {
            reason: "bucket count is zero".into(),
        });
    }
    if reserved != 0 {
        return Err(StoreError::Corrupted {
            reason: "reserved header bytes are non-zero".into(),
        });
    }

    // Size implied by the header, in u128 so hostile counts cannot
    // overflow into a bogus "valid" length. This also bounds the section
    // table and every allocation below by the real file size. A SIGNED
    // file's sign region needs the per-bucket counts for its exact size,
    // so here only a lower bound is enforced (sum of ceil(c_b/8) is at
    // least ceil(m/8), plus one CRC per bucket); the strict equality
    // check runs after the section table is parsed.
    let base = (table_end(1) - TABLE_ENTRY_LEN) as u128
        + TABLE_ENTRY_LEN as u128 * p as u128
        + 4
        + EDGE_LEN as u128 * m as u128;
    let lower = base
        + if signed {
            m.div_ceil(8) as u128 + 4 * p as u128
        } else {
            0
        };
    if (total_len as u128) < lower {
        return Err(StoreError::Truncated {
            expected: lower.min(u64::MAX as u128) as u64,
            found: total_len,
        });
    }
    if !signed && (total_len as u128) > base {
        return Err(StoreError::Corrupted {
            reason: format!(
                "{} trailing bytes after the last section",
                total_len as u128 - base
            ),
        });
    }
    let p = p as usize;
    let tbl_end = table_end(p);
    debug_assert!(bytes.len() >= tbl_end + 4, "caller supplies header+table");

    // Integrity of every header byte before trusting n or the table.
    let stored = u32::from_le_bytes(bytes[tbl_end..tbl_end + 4].try_into().expect("4 bytes"));
    let computed = crc32(&bytes[..tbl_end]);
    if stored != computed {
        return Err(StoreError::ChecksumMismatch { stored, computed });
    }

    if n > u32::MAX as u64 {
        return Err(StoreError::LimitExceeded {
            what: "node count",
            value: n,
            max: u32::MAX as u64,
        });
    }
    let buckets = NodeBuckets::new(n as usize, p).map_err(|e| StoreError::Corrupted {
        reason: e.to_string(),
    })?;

    let mut section_counts = Vec::with_capacity(p);
    let mut section_crcs = Vec::with_capacity(p);
    let mut sum: u64 = 0;
    for b in 0..p {
        let at = AGPH_FIXED_HEADER_LEN + TABLE_ENTRY_LEN * b;
        let c = u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
        sum = sum.saturating_add(c);
        section_counts.push(c as usize);
        section_crcs.push(u32::from_le_bytes(
            bytes[at + 8..at + 12].try_into().expect("4 bytes"),
        ));
    }
    if sum != m {
        return Err(StoreError::Corrupted {
            reason: format!("section edge counts sum to {sum}, header says {m}"),
        });
    }

    // With the real per-bucket counts in hand, the file length must now
    // match exactly (for unsigned files `base` was already exact above).
    if signed {
        let sign_region: u128 = section_counts
            .iter()
            .map(|&c| c.div_ceil(8) as u128 + 4)
            .sum();
        let expected = base + sign_region;
        if (total_len as u128) < expected {
            return Err(StoreError::Truncated {
                expected: expected.min(u64::MAX as u128) as u64,
                found: total_len,
            });
        }
        if (total_len as u128) > expected {
            return Err(StoreError::Corrupted {
                reason: format!(
                    "{} trailing bytes after the sign region",
                    total_len as u128 - expected
                ),
            });
        }
    }

    Ok(AgphHeader {
        num_nodes: n as usize,
        num_edges: m as usize,
        buckets,
        section_counts,
        section_crcs,
        fingerprint,
        signed,
    })
}

/// Validates one section's raw bytes and parses its edges.
fn parse_section(header: &AgphHeader, b: usize, body: &[u8]) -> Result<Vec<Edge>, StoreError> {
    let computed = crc32(body);
    let stored = header.section_crcs[b];
    if stored != computed {
        return Err(StoreError::ChecksumMismatch { stored, computed });
    }
    let n = header.num_nodes as u32;
    let mut edges = Vec::with_capacity(body.len() / EDGE_LEN);
    for rec in body.chunks_exact(EDGE_LEN) {
        let u = u32::from_le_bytes(rec[0..4].try_into().expect("4 bytes"));
        let v = u32::from_le_bytes(rec[4..8].try_into().expect("4 bytes"));
        // Typed rejection before Edge construction: Edge::new asserts on
        // self-loops, and the reader must never panic on hostile input.
        if u >= v {
            return Err(StoreError::Corrupted {
                reason: format!("edge ({u}, {v}) in section {b} is not canonical (need u < v)"),
            });
        }
        if v >= n {
            return Err(StoreError::Corrupted {
                reason: format!("edge ({u}, {v}) references node >= node count {n}"),
            });
        }
        if header.buckets.bucket_of(u as usize) != b {
            return Err(StoreError::Corrupted {
                reason: format!(
                    "edge ({u}, {v}) filed under section {b} but its lower endpoint \
                     belongs to bucket {}",
                    header.buckets.bucket_of(u as usize)
                ),
            });
        }
        edges.push(Edge::from_raw(u, v));
    }
    Ok(edges)
}

/// Validates one section's sign bitmap against its stored CRC and unpacks
/// the per-edge foe flags.
fn parse_sign_section(
    header: &AgphHeader,
    b: usize,
    bitmap: &[u8],
    stored: u32,
) -> Result<Vec<bool>, StoreError> {
    let computed = crc32(bitmap);
    if stored != computed {
        return Err(StoreError::ChecksumMismatch { stored, computed });
    }
    unpack_signs(bitmap, header.section_counts[b], b)
}

/// Parses the version-1 `.agph` wire format back into a [`Graph`],
/// verifying magic, version, structural lengths, the header CRC, every
/// section CRC, per-edge invariants, and the fingerprint.
///
/// The reassembled graph's edge order is the file's canonical
/// (section-concatenation) order.
///
/// # Errors
/// A typed [`StoreError`] for every corruption mode; never panics.
pub fn decode_agph(bytes: &[u8]) -> Result<Graph, StoreError> {
    let header = parse_header(bytes, bytes.len() as u64)?;
    let mut edges = Vec::with_capacity(header.num_edges);
    let mut signs: Vec<bool> = Vec::with_capacity(if header.signed { header.num_edges } else { 0 });
    let mut fp = fnv1a(FNV_OFFSET, &(header.num_nodes as u64).to_le_bytes());
    let mut seen = std::collections::HashSet::with_capacity(header.num_edges);
    for b in 0..header.buckets.count() {
        let start = header.section_offset(b) as usize;
        let len = header.section_counts[b] * EDGE_LEN;
        let body = &bytes[start..start + len];
        fp = fnv1a(fp, body);
        for e in parse_section(&header, b, body)? {
            if !seen.insert(e) {
                return Err(StoreError::Corrupted {
                    reason: format!("duplicate edge {e} in section {b}"),
                });
            }
            edges.push(e);
        }
        if header.signed {
            let soff = header.sign_offset(b) as usize;
            let blen = header.sign_bitmap_len(b);
            let bitmap = &bytes[soff..soff + blen];
            let stored =
                u32::from_le_bytes(bytes[soff + blen..soff + blen + 4].try_into().expect("4"));
            fp = fnv1a(fp, bitmap);
            signs.extend(parse_sign_section(&header, b, bitmap, stored)?);
        }
    }
    if fp != header.fingerprint {
        return Err(StoreError::Corrupted {
            reason: format!(
                "graph fingerprint mismatch: stored {:#018x}, computed {fp:#018x}",
                header.fingerprint
            ),
        });
    }
    let signs = header.signed.then_some(signs);
    Ok(Graph::from_parts_signed(
        header.num_nodes,
        edges,
        signs,
        None,
    ))
}

/// Reads and fully validates an `.agph` file written by [`save_agph`].
///
/// This materialises the whole graph; use [`AgphReader`] to stream one
/// bucket's edges at a time.
///
/// # Errors
/// I/O failures plus every decode error of [`decode_agph`].
pub fn load_agph(path: impl AsRef<Path>) -> Result<Graph, StoreError> {
    let bytes = std::fs::read(path.as_ref())?;
    decode_agph(&bytes)
}

/// A streaming `.agph` reader that maps one bucket's edge section at a
/// time — the reader the out-of-core engine and tooling use when the edge
/// list should not be materialised whole.
///
/// [`AgphReader::open`] validates the header, the section table, and the
/// header CRC; each [`AgphReader::bucket_edges`] call then reads exactly
/// one section from disk and verifies its CRC and per-edge invariants
/// before handing the edges out. The whole-file fingerprint is only
/// checkable by visiting every section ([`AgphReader::verify_fingerprint`]).
///
/// # Examples
/// ```no_run
/// use advsgm_store::agph::AgphReader;
///
/// let mut r = AgphReader::open("graph.agph")?;
/// for b in 0..r.bucket_count() {
///     let edges = r.bucket_edges(b)?;
///     println!("bucket {b}: {} edges", edges.len());
/// }
/// # Ok::<(), advsgm_store::StoreError>(())
/// ```
#[derive(Debug)]
pub struct AgphReader {
    file: std::fs::File,
    header: AgphHeader,
}

impl AgphReader {
    /// Opens `path` and validates everything up to the header CRC.
    ///
    /// # Errors
    /// I/O failures plus every header-level decode error.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let mut file = std::fs::File::open(path.as_ref())?;
        let total_len = file.metadata()?.len();

        // Enough for magic/version/fixed fields even on tiny files.
        let mut fixed = vec![0u8; (AGPH_FIXED_HEADER_LEN as u64).min(total_len) as usize];
        file.read_exact(&mut fixed)?;
        // Short or foreign files are fully diagnosed by the fixed header.
        if fixed.len() < AGPH_FIXED_HEADER_LEN {
            parse_header(&fixed, total_len)?;
            return Err(StoreError::Truncated {
                expected: (table_end(1) + 4) as u64,
                found: total_len,
            });
        }
        let p = u32::from_le_bytes(fixed[24..28].try_into().expect("4 bytes")) as usize;
        // parse_header's u128 length check bounds the table read by the
        // real file size; only read the table once that check can pass.
        let want = (table_end(p.max(1)) + 4) as u64;
        let mut header_bytes = fixed;
        if p > 0 && total_len >= want {
            let extra = want as usize - AGPH_FIXED_HEADER_LEN;
            let mut table = vec![0u8; extra];
            file.read_exact(&mut table)?;
            header_bytes.extend_from_slice(&table);
        }
        let header = parse_header(&header_bytes, total_len)?;
        Ok(Self { file, header })
    }

    /// Number of nodes stamped in the header.
    pub fn num_nodes(&self) -> usize {
        self.header.num_nodes
    }

    /// Total number of edges stamped in the header.
    pub fn num_edges(&self) -> usize {
        self.header.num_edges
    }

    /// Number of on-disk buckets `P`.
    pub fn bucket_count(&self) -> usize {
        self.header.buckets.count()
    }

    /// The node bucketing the file was written with.
    pub fn buckets(&self) -> NodeBuckets {
        self.header.buckets
    }

    /// Whether the file carries a per-edge sign (polarity) channel.
    pub fn is_signed(&self) -> bool {
        self.header.signed
    }

    /// Number of edges filed under bucket `b`.
    ///
    /// # Errors
    /// [`StoreError::NodeOutOfRange`]-style misuse is a programming error;
    /// out-of-range `b` returns [`StoreError::Invalid`].
    pub fn bucket_edge_count(&self, b: usize) -> Result<usize, StoreError> {
        self.check_bucket(b)?;
        Ok(self.header.section_counts[b])
    }

    fn check_bucket(&self, b: usize) -> Result<(), StoreError> {
        if b >= self.header.buckets.count() {
            return Err(StoreError::Invalid {
                reason: format!(
                    "bucket {b} out of range (file has {} buckets)",
                    self.header.buckets.count()
                ),
            });
        }
        Ok(())
    }

    /// Reads, checksums, and parses section `b`'s edges from disk.
    ///
    /// # Errors
    /// I/O failures, [`StoreError::ChecksumMismatch`] when the section
    /// bytes were altered, [`StoreError::Corrupted`] for per-edge
    /// invariant violations.
    pub fn bucket_edges(&mut self, b: usize) -> Result<Vec<Edge>, StoreError> {
        self.check_bucket(b)?;
        let body = self.read_section(b)?;
        parse_section(&self.header, b, &body)
    }

    /// Reads, checksums, and unpacks section `b`'s sign bitmap from disk.
    ///
    /// `None` when the file carries no sign channel; `Some(flags)` aligned
    /// with [`AgphReader::bucket_edges`]`(b)` otherwise (`true` = foe).
    ///
    /// # Errors
    /// I/O failures, [`StoreError::ChecksumMismatch`] when the bitmap
    /// bytes were altered, [`StoreError::Corrupted`] for non-zero padding
    /// bits.
    pub fn bucket_signs(&mut self, b: usize) -> Result<Option<Vec<bool>>, StoreError> {
        self.check_bucket(b)?;
        if !self.header.signed {
            return Ok(None);
        }
        let (bitmap, stored) = self.read_sign_section(b)?;
        parse_sign_section(&self.header, b, &bitmap, stored).map(Some)
    }

    /// Reads every section once and checks the whole-file fingerprint.
    ///
    /// # Errors
    /// Every [`AgphReader::bucket_edges`] error, plus
    /// [`StoreError::Corrupted`] when the fingerprint does not match.
    pub fn verify_fingerprint(&mut self) -> Result<(), StoreError> {
        let mut fp = fnv1a(FNV_OFFSET, &(self.header.num_nodes as u64).to_le_bytes());
        for b in 0..self.header.buckets.count() {
            let body = self.read_section(b)?;
            parse_section(&self.header, b, &body)?;
            fp = fnv1a(fp, &body);
            if self.header.signed {
                let (bitmap, stored) = self.read_sign_section(b)?;
                parse_sign_section(&self.header, b, &bitmap, stored)?;
                fp = fnv1a(fp, &bitmap);
            }
        }
        if fp != self.header.fingerprint {
            return Err(StoreError::Corrupted {
                reason: format!(
                    "graph fingerprint mismatch: stored {:#018x}, computed {fp:#018x}",
                    self.header.fingerprint
                ),
            });
        }
        Ok(())
    }

    fn read_section(&mut self, b: usize) -> Result<Vec<u8>, StoreError> {
        let start = self.header.section_offset(b);
        let len = self.header.section_counts[b] * EDGE_LEN;
        self.file.seek(SeekFrom::Start(start))?;
        let mut body = vec![0u8; len];
        self.file.read_exact(&mut body)?;
        Ok(body)
    }

    /// Reads section `b`'s sign bitmap and its stored CRC from disk.
    fn read_sign_section(&mut self, b: usize) -> Result<(Vec<u8>, u32), StoreError> {
        let start = self.header.sign_offset(b);
        let len = self.header.sign_bitmap_len(b);
        self.file.seek(SeekFrom::Start(start))?;
        let mut bitmap = vec![0u8; len];
        self.file.read_exact(&mut bitmap)?;
        let mut crc = [0u8; 4];
        self.file.read_exact(&mut crc)?;
        Ok((bitmap, u32::from_le_bytes(crc)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advsgm_graph::generators::classic::karate_club;

    fn bits_of(g: &Graph) -> (usize, Vec<(u32, u32)>) {
        (
            g.num_nodes(),
            g.edges()
                .iter()
                .map(|e| (e.u().index() as u32, e.v().index() as u32))
                .collect(),
        )
    }

    #[test]
    fn roundtrip_single_bucket_preserves_edge_order() {
        let g = karate_club();
        let bytes = encode_agph(&g, 1).unwrap();
        let back = decode_agph(&bytes).unwrap();
        assert_eq!(bits_of(&back), bits_of(&g));
    }

    #[test]
    fn roundtrip_many_buckets_preserves_edge_set() {
        let g = karate_club();
        for p in [2usize, 3, 4, 7, 64] {
            let bytes = encode_agph(&g, p).unwrap();
            let back = decode_agph(&bytes).unwrap();
            assert_eq!(back.num_nodes(), g.num_nodes());
            let mut a: Vec<_> = bits_of(&back).1;
            let mut b: Vec<_> = bits_of(&g).1;
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "p={p}");
        }
    }

    #[test]
    fn encode_is_deterministic() {
        let g = karate_club();
        assert_eq!(encode_agph(&g, 4).unwrap(), encode_agph(&g, 4).unwrap());
    }

    #[test]
    fn layout_is_stable() {
        let g = karate_club();
        let p = 4usize;
        let bytes = encode_agph(&g, p).unwrap();
        assert_eq!(&bytes[0..4], b"AGPH");
        assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), AGPH_VERSION);
        assert_eq!(u16::from_le_bytes([bytes[6], bytes[7]]), 0);
        assert_eq!(
            u64::from_le_bytes(bytes[8..16].try_into().unwrap()),
            g.num_nodes() as u64
        );
        assert_eq!(
            u64::from_le_bytes(bytes[16..24].try_into().unwrap()),
            g.num_edges() as u64
        );
        assert_eq!(u32::from_le_bytes(bytes[24..28].try_into().unwrap()), 4);
        assert_eq!(bytes.len(), table_end(p) + 4 + g.num_edges() * EDGE_LEN);
    }

    /// Karate club with an arbitrary-but-fixed polarity pattern.
    fn signed_karate() -> Graph {
        let g = karate_club();
        let signs: Vec<bool> = (0..g.num_edges()).map(|i| i % 3 == 0).collect();
        let edges = g.edges().to_vec();
        let n = g.num_nodes();
        Graph::from_parts_signed(n, edges, Some(signs), None)
    }

    #[test]
    fn signed_roundtrip_preserves_polarity_at_every_bucket_count() {
        let g = signed_karate();
        for p in [1usize, 2, 3, 4, 7, 64] {
            let bytes = encode_agph(&g, p).unwrap();
            let back = decode_agph(&bytes).unwrap();
            assert!(back.is_signed(), "p={p}");
            assert_eq!(back.num_foe_edges(), g.num_foe_edges(), "p={p}");
            // Signs must follow their edges through the bucket partition.
            let orig: std::collections::BTreeMap<(u32, u32), bool> = g
                .edges()
                .iter()
                .enumerate()
                .map(|(i, e)| {
                    (
                        (e.u().index() as u32, e.v().index() as u32),
                        g.edge_is_foe(i),
                    )
                })
                .collect();
            for (i, e) in back.edges().iter().enumerate() {
                let key = (e.u().index() as u32, e.v().index() as u32);
                assert_eq!(back.edge_is_foe(i), orig[&key], "p={p} edge {key:?}");
            }
        }
    }

    #[test]
    fn signed_layout_sets_the_flag_and_extends_the_length() {
        let g = signed_karate();
        let p = 4usize;
        let bytes = encode_agph(&g, p).unwrap();
        assert_eq!(
            u16::from_le_bytes([bytes[6], bytes[7]]),
            AGPH_FLAG_SIGNED,
            "SIGNED flag bit"
        );
        // Recover per-bucket counts from the section table and check the
        // exact sign-region size formula from docs/FORMAT.md.
        let mut sign_region = 0usize;
        for b in 0..p {
            let at = AGPH_FIXED_HEADER_LEN + TABLE_ENTRY_LEN * b;
            let c = u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap()) as usize;
            sign_region += c.div_ceil(8) + 4;
        }
        assert_eq!(
            bytes.len(),
            table_end(p) + 4 + g.num_edges() * EDGE_LEN + sign_region
        );
        // Unsigned encoding of the same edge set is a strict prefix-layout
        // sibling: same length as before signs existed, flags zero.
        let unsigned = Graph::from_parts(g.num_nodes(), g.edges().to_vec(), None);
        let ub = encode_agph(&unsigned, p).unwrap();
        assert_eq!(u16::from_le_bytes([ub[6], ub[7]]), 0);
        assert_eq!(ub.len(), table_end(p) + 4 + g.num_edges() * EDGE_LEN);
    }

    #[test]
    fn streaming_reader_serves_bucket_signs() {
        let g = signed_karate();
        let dir = std::env::temp_dir().join("advsgm_agph_unit_signed");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("karate_signed.agph");
        save_agph(&path, &g, 3).unwrap();

        let full = load_agph(&path).unwrap();
        let mut r = AgphReader::open(&path).unwrap();
        assert!(r.is_signed());
        let mut streamed_signs = Vec::new();
        for b in 0..r.bucket_count() {
            let signs = r.bucket_signs(b).unwrap().expect("signed file");
            assert_eq!(signs.len(), r.bucket_edge_count(b).unwrap());
            streamed_signs.extend(signs);
        }
        assert_eq!(Some(streamed_signs.as_slice()), full.signs());
        r.verify_fingerprint().unwrap();

        // An unsigned file answers None, not an error.
        let unsigned = karate_club();
        let upath = dir.join("karate_unsigned.agph");
        save_agph(&upath, &unsigned, 3).unwrap();
        let mut ur = AgphReader::open(&upath).unwrap();
        assert!(!ur.is_signed());
        assert!(ur.bucket_signs(0).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sign_bitmap_corruption_is_typed() {
        let g = signed_karate();
        let p = 2usize;
        let good = encode_agph(&g, p).unwrap();
        let unsigned_len = table_end(p) + 4 + g.num_edges() * EDGE_LEN;

        // Flip a bitmap bit: the bitmap CRC catches it.
        let mut flipped = good.clone();
        flipped[unsigned_len] ^= 0x01;
        assert!(matches!(
            decode_agph(&flipped).unwrap_err(),
            StoreError::ChecksumMismatch { .. }
        ));

        // Forge a consistent bitmap + CRC: the header fingerprint is the
        // backstop that pins the polarity assignment itself.
        let mut forged = good.clone();
        forged[unsigned_len] ^= 0x01;
        let blen = {
            let at = AGPH_FIXED_HEADER_LEN;
            let c = u64::from_le_bytes(forged[at..at + 8].try_into().unwrap()) as usize;
            c.div_ceil(8)
        };
        let sum = crc32(&forged[unsigned_len..unsigned_len + blen]);
        forged[unsigned_len + blen..unsigned_len + blen + 4].copy_from_slice(&sum.to_le_bytes());
        let err = decode_agph(&forged).unwrap_err();
        assert!(
            matches!(err, StoreError::Corrupted { ref reason } if reason.contains("fingerprint")),
            "{err}"
        );

        // Truncating the sign region is typed truncation, not a panic.
        for cut in unsigned_len..good.len() {
            let err = decode_agph(&good[..cut]).unwrap_err();
            assert!(
                matches!(err, StoreError::Truncated { .. }),
                "cut={cut}: {err}"
            );
        }

        // Trailing bytes after the sign region are corruption.
        let mut trailing = good;
        trailing.push(0);
        assert!(matches!(
            decode_agph(&trailing).unwrap_err(),
            StoreError::Corrupted { .. }
        ));
    }

    #[test]
    fn zero_buckets_rejected_at_write() {
        let g = karate_club();
        assert!(matches!(
            encode_agph(&g, 0).unwrap_err(),
            StoreError::Invalid { .. }
        ));
    }

    #[test]
    fn streaming_reader_agrees_with_full_decode() {
        let g = karate_club();
        let dir = std::env::temp_dir().join("advsgm_agph_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("karate.agph");
        save_agph(&path, &g, 4).unwrap();

        let full = load_agph(&path).unwrap();
        let mut r = AgphReader::open(&path).unwrap();
        assert_eq!(r.num_nodes(), g.num_nodes());
        assert_eq!(r.num_edges(), g.num_edges());
        assert_eq!(r.bucket_count(), 4);
        let mut streamed = Vec::new();
        for b in 0..r.bucket_count() {
            assert_eq!(
                r.bucket_edge_count(b).unwrap(),
                r.bucket_edges(b).unwrap().len()
            );
            streamed.extend(r.bucket_edges(b).unwrap());
        }
        assert_eq!(streamed, full.edges().to_vec());
        r.verify_fingerprint().unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reader_rejects_out_of_range_bucket() {
        let g = karate_club();
        let dir = std::env::temp_dir().join("advsgm_agph_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("oor.agph");
        save_agph(&path, &g, 2).unwrap();
        let mut r = AgphReader::open(&path).unwrap();
        assert!(matches!(
            r.bucket_edges(2).unwrap_err(),
            StoreError::Invalid { .. }
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = Graph::from_parts(0, vec![], None);
        let back = decode_agph(&encode_agph(&g, 3).unwrap()).unwrap();
        assert_eq!(back.num_nodes(), 0);
        assert_eq!(back.num_edges(), 0);
    }

    #[test]
    fn bad_magic_is_typed() {
        assert!(matches!(
            decode_agph(b"AEMBnotagraph").unwrap_err(),
            StoreError::BadMagic { .. }
        ));
        assert!(matches!(
            decode_agph(b"AG").unwrap_err(),
            StoreError::BadMagic { .. }
        ));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = encode_agph(&karate_club(), 2).unwrap();
        bytes[4..6].copy_from_slice(&9u16.to_le_bytes());
        assert!(matches!(
            decode_agph(&bytes).unwrap_err(),
            StoreError::UnsupportedVersion { found: 9, .. }
        ));
    }

    #[test]
    fn hostile_node_count_cannot_balloon_allocation() {
        // Inflate n to u64::MAX: the header CRC fails before anything of
        // that order is allocated.
        let mut bytes = encode_agph(&karate_club(), 2).unwrap();
        bytes[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = decode_agph(&bytes).unwrap_err();
        assert!(matches!(err, StoreError::ChecksumMismatch { .. }), "{err}");
    }

    #[test]
    fn crafted_oversize_node_count_hits_the_limit() {
        // Same, but with a recomputed header CRC: the u32 endpoint limit
        // is the typed backstop.
        let g = karate_club();
        let p = 2usize;
        let mut bytes = encode_agph(&g, p).unwrap();
        bytes[8..16].copy_from_slice(&(u32::MAX as u64 + 1).to_le_bytes());
        let sum = crc32(&bytes[..table_end(p)]);
        bytes[table_end(p)..table_end(p) + 4].copy_from_slice(&sum.to_le_bytes());
        let err = decode_agph(&bytes).unwrap_err();
        assert!(matches!(err, StoreError::LimitExceeded { .. }), "{err}");
    }
}
