//! Cluster-pruned (IVF-style) approximate top-k over a released store,
//! and its `.aidx` on-disk format.
//!
//! The exhaustive [`EmbeddingStore::top_k`] scan costs `O(n·r)` per query
//! — fine at 10k nodes, unusable at the "millions of users" scale the
//! serving layer targets. An [`IvfIndex`] trades a one-time build for
//! sublinear queries: rows are partitioned into `nlist` clusters by
//! k-means at the Theorem-5 release boundary, and a query scans only the
//! `nprobe` clusters whose centroids score highest against it.
//!
//! **Privacy:** the index is computed *from the released matrix* — it is
//! post-processing under the paper's Theorem 5, so building, persisting,
//! and serving from it consume no additional privacy budget. (This is why
//! it must be built at or after the release boundary, never from
//! pre-noise state.)
//!
//! **Exactness-vs-recall toggle:** `nprobe` ranges from 1 (fastest,
//! lowest recall) to `nlist` (every cluster probed). At `nprobe >=
//! nlist` the search is *exact* and **bitwise-identical** to
//! [`advsgm_linalg::topk::top_k_rows`]: top-k selection under the total
//! `(score desc, index asc)` order is scan-order-invariant, and the
//! subset kernel scores with the dispatched
//! [`advsgm_linalg::backend::dot`] (bitwise tier: scalar on every
//! backend), which is bitwise-equal to the fused `dot4` path
//! (property-tested in `tests/index_serving.rs`). An explicit
//! [`IvfIndex::search_relaxed`] entry point moves *only* the
//! approximate candidate scan to the reassociated-FMA relaxed tier —
//! Theorem-5 post-processing of released embeddings, never reachable
//! from training or exact mode. Callers usually don't pick `nprobe`
//! directly: [`IvfIndex::nprobe_for`] maps a recall target to a probe
//! count through a calibration table measured at build time.
//!
//! Rows containing non-finite values (NaN/±inf) cannot be clustered
//! meaningfully; they live on an *always-scanned* list so approximate
//! search still sees them and exact-mode equality holds for hostile
//! stores.
//!
//! The `.aidx` codec follows the same conventions as `.aemb`
//! (`docs/FORMAT.md`): little-endian, raw IEEE-754 bit patterns, CRC-32
//! trailer, every corruption mode a typed [`StoreError`], and an
//! append-only compatibility policy. An index file carries the
//! [`EmbeddingStore::fingerprint`] of the store it was built from, and
//! pairing it with any other store is a typed
//! [`StoreError::IndexStoreMismatch`].

use std::path::Path;

use advsgm_linalg::backend::{self, RelaxedKernels};
use advsgm_linalg::topk::{top_k_rows, top_k_rows_among, top_k_rows_among_relaxed};
use advsgm_linalg::{vector, DenseMatrix};

use crate::error::StoreError;
use crate::format::crc32;
use crate::store::{EmbeddingStore, Neighbor};

/// The four magic bytes every `.aidx` file starts with.
pub const INDEX_MAGIC: [u8; 4] = *b"AIDX";

/// The `.aidx` format version this build writes and the highest it reads.
pub const INDEX_FORMAT_VERSION: u16 = 1;

/// Fixed `.aidx` header length in bytes (everything before the centroid
/// section).
pub const INDEX_HEADER_LEN: usize = 36;

/// Assignment sentinel: the row is on the always-scanned list (non-finite
/// values), not in any cluster.
const ALWAYS_SCAN: u32 = u32::MAX;

/// Recall targets the build calibrates probe counts for.
const CALIBRATION_TARGETS: [f64; 5] = [0.50, 0.80, 0.90, 0.95, 0.99];

/// Build-time knobs for [`IvfIndex::build`].
///
/// The defaults are sized for "build once at release, serve forever":
/// `nlist = 0` auto-selects ~`sqrt(n)` clusters, a handful of Lloyd
/// iterations is enough for pruning (the index only needs *good* clusters,
/// not converged ones), and 64 sampled queries calibrate the
/// recall → `nprobe` table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexParams {
    /// Number of clusters; `0` auto-selects `max(1, round(sqrt(n)))`,
    /// clamped to the number of finite rows.
    pub nlist: usize,
    /// Lloyd (k-means) refinement iterations after deterministic seeding.
    pub kmeans_iters: usize,
    /// Rows sampled as calibration queries (clamped to the finite rows).
    pub sample_queries: usize,
    /// `k` used when measuring calibration recall (recall@k).
    pub calibration_k: usize,
}

impl Default for IndexParams {
    fn default() -> Self {
        Self {
            nlist: 0,
            kmeans_iters: 5,
            sample_queries: 64,
            calibration_k: 10,
        }
    }
}

/// One approximate query's outcome: the neighbors plus how much of the
/// store the search actually touched (the cost the index exists to cut).
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult {
    /// The retrieved neighbors, sorted by `(score desc, row asc)` exactly
    /// like [`EmbeddingStore::top_k`].
    pub neighbors: Vec<Neighbor>,
    /// Rows whose scores were computed (including the query's own row
    /// when it had to be visited and skipped).
    pub rows_scanned: usize,
}

/// A cluster-pruned approximate-nearest-neighbor index over one released
/// [`EmbeddingStore`].
///
/// Deterministic end to end: seeding, Lloyd iteration, tie-breaks
/// (lower-index wins), and probe ordering are all fixed functions of the
/// store's contents, so the same release always builds byte-identical
/// indexes and every query is reproducible.
///
/// # Examples
/// ```
/// use advsgm_linalg::DenseMatrix;
/// use advsgm_core::ModelVariant;
/// use advsgm_store::{EmbeddingStore, IndexParams, IvfIndex, PrivacyMeta};
///
/// let m = DenseMatrix::from_fn(200, 8, |i, j| ((i * 7 + j) as f64 * 0.31).sin());
/// let store = EmbeddingStore::new(m, PrivacyMeta::non_private(ModelVariant::Sgm)).unwrap();
/// let index = IvfIndex::build(&store, IndexParams::default()).unwrap();
///
/// // Exact mode (nprobe = nlist) is bitwise-identical to the full scan.
/// let exact = index.search(&store, 3, 5, index.nlist()).unwrap();
/// assert_eq!(exact.neighbors, store.top_k(3, 5).unwrap());
///
/// // Approximate mode scans a fraction of the rows.
/// let nprobe = index.nprobe_for(0.9);
/// let approx = index.search(&store, 3, 5, nprobe).unwrap();
/// assert!(approx.rows_scanned <= store.len());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct IvfIndex {
    dim: usize,
    nodes: usize,
    store_fingerprint: u64,
    /// `nlist x dim` cluster centroids (always finite values).
    centroids: DenseMatrix,
    /// Per-row cluster id, or [`ALWAYS_SCAN`] for non-finite rows.
    assignments: Vec<u32>,
    /// `(recall target, nprobe)` pairs, ascending by target.
    calibration: Vec<(f64, u32)>,
    /// Derived: member rows per cluster (not serialised; rebuilt on load).
    clusters: Vec<Vec<usize>>,
    /// Derived: rows scanned on every query (non-finite embeddings).
    always: Vec<usize>,
}

impl IvfIndex {
    /// Builds an index over `store` — k-means clustering with
    /// deterministic seeding (evenly spaced rows), then a recall
    /// calibration pass over sampled queries.
    ///
    /// Cost is `O(iters · n · nlist · r)` for clustering plus
    /// `O(samples · n · r)` for calibration; this is the one-time price of
    /// sublinear queries and belongs at the release boundary, not on the
    /// serving path.
    ///
    /// # Errors
    /// [`StoreError::LimitExceeded`] if the resolved `nlist` overflows the
    /// format's u32 field (unreachable for any store that fits in memory,
    /// guarded anyway per the FORMAT.md no-truncation policy).
    pub fn build(store: &EmbeddingStore, params: IndexParams) -> Result<Self, StoreError> {
        let n = store.len();
        let dim = store.dim();
        let matrix = store.matrix();

        // Non-finite rows cannot be clustered; they are always scanned.
        let mut finite: Vec<usize> = Vec::with_capacity(n);
        let mut always: Vec<usize> = Vec::new();
        for row in 0..n {
            if matrix.row(row).iter().all(|v| v.is_finite()) {
                finite.push(row);
            } else {
                always.push(row);
            }
        }

        let nlist = if finite.is_empty() {
            0
        } else {
            let requested = if params.nlist > 0 {
                params.nlist
            } else {
                ((n as f64).sqrt().round() as usize).max(1)
            };
            requested.min(finite.len())
        };
        if nlist as u64 > ALWAYS_SCAN as u64 - 1 {
            return Err(StoreError::LimitExceeded {
                what: "index cluster count",
                value: nlist as u64,
                max: ALWAYS_SCAN as u64 - 1,
            });
        }

        // Deterministic seeding: centroids start at evenly spaced finite
        // rows, then Lloyd iterations refine (empty clusters keep their
        // previous centroid, so every centroid stays finite).
        let mut centroids = DenseMatrix::zeros(nlist, dim);
        for c in 0..nlist {
            let row = finite[c * finite.len() / nlist];
            centroids.row_mut(c).copy_from_slice(matrix.row(row));
        }
        let mut finite_assign = vec![0usize; finite.len()];
        for _ in 0..params.kmeans_iters.max(1) {
            for (slot, &row) in finite.iter().enumerate() {
                finite_assign[slot] = nearest_centroid(&centroids, matrix.row(row));
            }
            let mut sums = DenseMatrix::zeros(nlist, dim);
            let mut counts = vec![0usize; nlist];
            for (slot, &row) in finite.iter().enumerate() {
                let c = finite_assign[slot];
                vector::add_assign(sums.row_mut(c), matrix.row(row));
                counts[c] += 1;
            }
            for (c, &count) in counts.iter().enumerate() {
                if count > 0 {
                    let inv = 1.0 / count as f64;
                    let dst = centroids.row_mut(c);
                    for (d, &s) in dst.iter_mut().zip(sums.row(c)) {
                        *d = s * inv;
                    }
                }
            }
        }
        // Final assignment against the final centroids.
        for (slot, &row) in finite.iter().enumerate() {
            finite_assign[slot] = nearest_centroid(&centroids, matrix.row(row));
        }

        let mut assignments = vec![ALWAYS_SCAN; n];
        for (slot, &row) in finite.iter().enumerate() {
            assignments[row] = finite_assign[slot] as u32;
        }

        let mut index = Self {
            dim,
            nodes: n,
            store_fingerprint: store.fingerprint(),
            centroids,
            assignments,
            calibration: Vec::new(),
            clusters: Vec::new(),
            always: Vec::new(),
        };
        index.rebuild_derived();
        index.calibration = index.calibrate(store, &finite, params);
        Ok(index)
    }

    /// Recomputes the derived cluster membership lists from the
    /// serialised assignment table.
    fn rebuild_derived(&mut self) {
        let nlist = self.centroids.rows();
        let mut clusters = vec![Vec::new(); nlist];
        let mut always = Vec::new();
        for (row, &a) in self.assignments.iter().enumerate() {
            if a == ALWAYS_SCAN {
                always.push(row);
            } else {
                clusters[a as usize].push(row);
            }
        }
        self.clusters = clusters;
        self.always = always;
    }

    /// Measures, on evenly sampled query rows, how many probes each
    /// [`CALIBRATION_TARGETS`] recall level needs, producing the
    /// `(target, nprobe)` table behind [`IvfIndex::nprobe_for`]. One probe
    /// of safety margin is added on top of the in-sample requirement so
    /// out-of-sample queries stay at or above the target in practice.
    fn calibrate(
        &self,
        store: &EmbeddingStore,
        finite: &[usize],
        params: IndexParams,
    ) -> Vec<(f64, u32)> {
        let nlist = self.nlist();
        if nlist == 0 || finite.is_empty() {
            return Vec::new();
        }
        let samples = params.sample_queries.clamp(1, finite.len());
        let k = params.calibration_k.max(1);
        // hits_at[p] = exact-top-k rows found with p+1 probes, summed over
        // all sampled queries; always-scanned hits count at every p.
        let mut hits_at = vec![0usize; nlist];
        let mut total_hits = 0usize;
        for s in 0..samples {
            let u = finite[s * finite.len() / samples];
            let query = store.matrix().row(u);
            let order = self.probe_order(query);
            // rank_of[c] = position of cluster c in this query's probe order.
            let mut rank_of = vec![0usize; nlist];
            for (rank, &c) in order.iter().enumerate() {
                rank_of[c] = rank;
            }
            let exact = top_k_rows(store.matrix(), query, k, Some(u));
            for hit in &exact {
                total_hits += 1;
                let a = self.assignments[hit.index];
                let first_found = if a == ALWAYS_SCAN {
                    0
                } else {
                    rank_of[a as usize]
                };
                hits_at[first_found] += 1;
            }
        }
        if total_hits == 0 {
            // Degenerate store (k = 0 effective, single node): every
            // target is satisfied by a single probe.
            return CALIBRATION_TARGETS.iter().map(|&t| (t, 1u32)).collect();
        }
        // Prefix-sum into a recall curve: recall(p) with p probes.
        let mut cumulative = 0usize;
        let recall_at: Vec<f64> = hits_at
            .iter()
            .map(|&h| {
                cumulative += h;
                cumulative as f64 / total_hits as f64
            })
            .collect();
        CALIBRATION_TARGETS
            .iter()
            .map(|&target| {
                let needed = recall_at
                    .iter()
                    .position(|&r| r >= target)
                    .map(|p| p + 1)
                    .unwrap_or(nlist);
                // +1 probe out-of-sample margin, capped at a full scan.
                (target, (needed + 1).min(nlist) as u32)
            })
            .collect()
    }

    /// Clusters ranked by centroid score against `query` (inner product,
    /// descending; ties toward the lower cluster index) — the order probes
    /// open clusters in.
    fn probe_order(&self, query: &[f64]) -> Vec<usize> {
        let mut scored: Vec<(usize, f64)> = (0..self.nlist())
            .map(|c| (c, backend::dot(query, self.centroids.row(c))))
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        scored.into_iter().map(|(c, _)| c).collect()
    }

    /// Number of clusters.
    pub fn nlist(&self) -> usize {
        self.centroids.rows()
    }

    /// Embedding dimension the index was built for.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows in the store the index was built from.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Fingerprint of the store this index belongs to
    /// ([`EmbeddingStore::fingerprint`]).
    pub fn store_fingerprint(&self) -> u64 {
        self.store_fingerprint
    }

    /// The build-time `(recall target, nprobe)` calibration table,
    /// ascending by target.
    pub fn calibration(&self) -> &[(f64, u32)] {
        &self.calibration
    }

    /// Rows scanned on every query because their embeddings contain
    /// non-finite values.
    pub fn always_scanned(&self) -> usize {
        self.always.len()
    }

    /// Maps a recall target in `[0, 1]` to a probe count via the
    /// calibration table: the first calibrated level at or above the
    /// target wins; targets beyond the calibrated range (including
    /// `>= 1.0`, i.e. exactness) return `nlist` — a full, exact scan.
    pub fn nprobe_for(&self, recall_target: f64) -> usize {
        let nlist = self.nlist();
        if nlist == 0 {
            return 0;
        }
        let target = recall_target.clamp(0.0, 1.0);
        for &(t, p) in &self.calibration {
            if t >= target {
                return (p as usize).clamp(1, nlist);
            }
        }
        nlist
    }

    /// Cheap compatibility check — row count, dimension, and the content
    /// fingerprint must all match the presented store. Call once when
    /// pairing an index with a store (the fingerprint pass is `O(n·r)`);
    /// [`IvfIndex::search`] then only re-checks the cheap shape fields.
    ///
    /// # Errors
    /// [`StoreError::IndexStoreMismatch`] naming the first field that
    /// disagrees.
    pub fn validate_for(&self, store: &EmbeddingStore) -> Result<(), StoreError> {
        self.check_shape(store)?;
        let found = store.fingerprint();
        if found != self.store_fingerprint {
            return Err(StoreError::IndexStoreMismatch {
                reason: format!(
                    "store fingerprint {found:#018x} != index's {:#018x} (the index \
                     was built from a different release)",
                    self.store_fingerprint
                ),
            });
        }
        Ok(())
    }

    /// Shape-only compatibility check (no fingerprint pass).
    fn check_shape(&self, store: &EmbeddingStore) -> Result<(), StoreError> {
        if store.len() != self.nodes {
            return Err(StoreError::IndexStoreMismatch {
                reason: format!(
                    "store has {} rows, index was built over {}",
                    store.len(),
                    self.nodes
                ),
            });
        }
        if store.dim() != self.dim {
            return Err(StoreError::IndexStoreMismatch {
                reason: format!(
                    "store dimension {} != index dimension {}",
                    store.dim(),
                    self.dim
                ),
            });
        }
        Ok(())
    }

    /// The `k` highest-scoring neighbors of row `u` (self excluded),
    /// probing the top `nprobe` clusters plus the always-scanned list.
    ///
    /// `nprobe >= nlist` is **exact mode**: the scan covers every row via
    /// the fused full-scan kernel and the result is bitwise-identical to
    /// [`EmbeddingStore::top_k`]. Smaller `nprobe` trades recall for a
    /// smaller [`SearchResult::rows_scanned`].
    ///
    /// # Errors
    /// [`StoreError::IndexStoreMismatch`] if the store's shape disagrees
    /// with the index (fingerprint equality is the caller's pairing-time
    /// check, see [`IvfIndex::validate_for`]);
    /// [`StoreError::NodeOutOfRange`] for rows the store does not hold.
    pub fn search(
        &self,
        store: &EmbeddingStore,
        u: usize,
        k: usize,
        nprobe: usize,
    ) -> Result<SearchResult, StoreError> {
        self.search_impl(store, u, k, nprobe, None)
    }

    /// [`IvfIndex::search`] with the candidate scan on the **relaxed**
    /// arithmetic tier ([`RelaxedKernels`], DESIGN.md §15).
    ///
    /// Only the approximate branch changes: probe ordering, the
    /// always-scanned list membership, and exact mode (`nprobe >= nlist`)
    /// stay on the bitwise tier, so exact results and every released
    /// artifact (`.aemb`, `.aidx`) are backend-invariant. Relaxed scoring
    /// of candidates is pure post-processing of the Theorem-5 release —
    /// it reads only published embeddings — so it carries no privacy
    /// cost; it may swap near-tied neighbors relative to [`Self::search`]
    /// but is deterministic for a fixed backend.
    ///
    /// # Errors
    /// Same contract as [`IvfIndex::search`].
    pub fn search_relaxed(
        &self,
        store: &EmbeddingStore,
        u: usize,
        k: usize,
        nprobe: usize,
        kernels: &RelaxedKernels,
    ) -> Result<SearchResult, StoreError> {
        self.search_impl(store, u, k, nprobe, Some(kernels))
    }

    fn search_impl(
        &self,
        store: &EmbeddingStore,
        u: usize,
        k: usize,
        nprobe: usize,
        relaxed: Option<&RelaxedKernels>,
    ) -> Result<SearchResult, StoreError> {
        self.check_shape(store)?;
        if u >= self.nodes {
            return Err(StoreError::NodeOutOfRange {
                node: u,
                num_nodes: self.nodes,
            });
        }
        let matrix = store.matrix();
        let query = matrix.row(u);
        let nlist = self.nlist();
        if nprobe >= nlist {
            // Exact mode: the full fused scan, bitwise-identical by
            // construction (and property-tested against the probing path).
            let neighbors = scored_to_neighbors(store, top_k_rows(matrix, query, k, Some(u)));
            return Ok(SearchResult {
                neighbors,
                rows_scanned: self.nodes.saturating_sub(1),
            });
        }
        let order = self.probe_order(query);
        let probed = &order[..nprobe.max(1).min(order.len())];
        let candidates = probed
            .iter()
            .flat_map(|&c| self.clusters[c].iter().copied())
            .chain(self.always.iter().copied());
        let rows_scanned: usize = probed
            .iter()
            .map(|&c| self.clusters[c].len())
            .sum::<usize>()
            + self.always.len();
        let scored = match relaxed {
            Some(kernels) => {
                top_k_rows_among_relaxed(kernels, matrix, query, k, candidates, Some(u))
            }
            None => top_k_rows_among(matrix, query, k, candidates, Some(u)),
        };
        let neighbors = scored_to_neighbors(store, scored);
        Ok(SearchResult {
            neighbors,
            rows_scanned,
        })
    }

    /// Serialises the index to the `.aidx` wire format (`docs/FORMAT.md`).
    pub fn to_bytes(&self) -> Vec<u8> {
        encode_index(self)
    }

    /// Parses an index from `.aidx` bytes, verifying structure and the
    /// CRC-32 trailer.
    ///
    /// # Errors
    /// The full typed menu: [`StoreError::BadMagic`],
    /// [`StoreError::UnsupportedVersion`], [`StoreError::Truncated`],
    /// [`StoreError::ChecksumMismatch`], [`StoreError::Corrupted`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, StoreError> {
        decode_index(bytes)
    }

    /// Writes the index to a file (bytes fully serialised, checksum
    /// included, before the file is created).
    ///
    /// # Errors
    /// I/O failures.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), StoreError> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Loads an index from an `.aidx` file.
    ///
    /// # Errors
    /// I/O failures plus everything [`IvfIndex::from_bytes`] reports.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::from_bytes(&std::fs::read(path)?)
    }
}

/// Index of the centroid nearest to `row` in squared Euclidean distance
/// (ties toward the lower centroid index).
fn nearest_centroid(centroids: &DenseMatrix, row: &[f64]) -> usize {
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for c in 0..centroids.rows() {
        let d = vector::dist_sq(row, centroids.row(c));
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    best
}

/// Maps kernel-level scored rows to the serving [`Neighbor`] type.
fn scored_to_neighbors(
    store: &EmbeddingStore,
    scored: Vec<advsgm_linalg::topk::ScoredIndex>,
) -> Vec<Neighbor> {
    scored
        .into_iter()
        .map(|s| Neighbor {
            node: s.index,
            id: store.node_ids()[s.index],
            score: s.score,
        })
        .collect()
}

/// Serialises an index to the version-1 `.aidx` wire format.
fn encode_index(index: &IvfIndex) -> Vec<u8> {
    let nlist = index.centroids.rows();
    let total = INDEX_HEADER_LEN
        + 8 * nlist * index.dim
        + 4 * index.nodes
        + 12 * index.calibration.len()
        + 4;
    let mut out = Vec::with_capacity(total);
    out.extend_from_slice(&INDEX_MAGIC);
    out.extend_from_slice(&INDEX_FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes()); // flags: none defined in v1
    out.extend_from_slice(&(index.dim as u32).to_le_bytes());
    out.extend_from_slice(&(index.nodes as u64).to_le_bytes());
    out.extend_from_slice(&(nlist as u32).to_le_bytes());
    out.extend_from_slice(&(index.calibration.len() as u32).to_le_bytes());
    out.extend_from_slice(&index.store_fingerprint.to_le_bytes());
    debug_assert_eq!(out.len(), INDEX_HEADER_LEN);
    for &v in index.centroids.as_slice() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    for &a in &index.assignments {
        out.extend_from_slice(&a.to_le_bytes());
    }
    for &(target, nprobe) in &index.calibration {
        out.extend_from_slice(&target.to_le_bytes());
        out.extend_from_slice(&nprobe.to_le_bytes());
    }
    let checksum = crc32(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Parses the version-1 `.aidx` wire format, verifying magic, version,
/// structural lengths, field validity, and the CRC-32 trailer — the same
/// reader-obligation order as `.aemb` (`docs/FORMAT.md`).
fn decode_index(bytes: &[u8]) -> Result<IvfIndex, StoreError> {
    if bytes.len() < 4 || bytes[0..4] != INDEX_MAGIC {
        let mut found = [0u8; 4];
        let take = bytes.len().min(4);
        found[..take].copy_from_slice(&bytes[..take]);
        return Err(StoreError::BadMagic { found });
    }
    if bytes.len() < 6 {
        return Err(StoreError::Truncated {
            expected: (INDEX_HEADER_LEN + 4) as u64,
            found: bytes.len() as u64,
        });
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version == 0 || version > INDEX_FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion {
            found: version,
            supported: INDEX_FORMAT_VERSION,
        });
    }
    if bytes.len() < INDEX_HEADER_LEN + 4 {
        return Err(StoreError::Truncated {
            expected: (INDEX_HEADER_LEN + 4) as u64,
            found: bytes.len() as u64,
        });
    }
    let flags = u16::from_le_bytes([bytes[6], bytes[7]]);
    let dim = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
    let nodes = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let nlist = u32::from_le_bytes(bytes[20..24].try_into().expect("4 bytes"));
    let calib_len = u32::from_le_bytes(bytes[24..28].try_into().expect("4 bytes"));
    let store_fingerprint = u64::from_le_bytes(bytes[28..36].try_into().expect("8 bytes"));

    // Header-implied total in u128 so hostile counts cannot overflow into
    // a bogus "valid" length.
    let expected = INDEX_HEADER_LEN as u128
        + 8 * nlist as u128 * dim as u128
        + 4 * nodes as u128
        + 12 * calib_len as u128
        + 4;
    if (bytes.len() as u128) < expected {
        return Err(StoreError::Truncated {
            expected: expected.min(u64::MAX as u128) as u64,
            found: bytes.len() as u64,
        });
    }
    if (bytes.len() as u128) > expected {
        return Err(StoreError::Corrupted {
            reason: format!(
                "{} trailing bytes after the checksum",
                bytes.len() as u128 - expected
            ),
        });
    }
    let nodes = nodes as usize;

    if flags != 0 {
        return Err(StoreError::Corrupted {
            reason: format!("unknown flag bits {flags:#06x} (version 1 defines none)"),
        });
    }
    if dim == 0 {
        return Err(StoreError::Corrupted {
            reason: "index dimension is zero".into(),
        });
    }

    // Structure checks out; verify integrity before trusting the body.
    let body = &bytes[..bytes.len() - 4];
    let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
    let computed = crc32(body);
    if stored != computed {
        return Err(StoreError::ChecksumMismatch { stored, computed });
    }

    let mut pos = INDEX_HEADER_LEN;
    let mut centroid_data = Vec::with_capacity(nlist as usize * dim);
    for _ in 0..nlist as usize * dim {
        centroid_data.push(f64::from_le_bytes(
            bytes[pos..pos + 8].try_into().expect("8 bytes"),
        ));
        pos += 8;
    }
    let centroids = DenseMatrix::from_vec(nlist as usize, dim, centroid_data).map_err(|e| {
        StoreError::Corrupted {
            reason: format!("centroid shape: {e}"),
        }
    })?;
    let mut assignments = Vec::with_capacity(nodes);
    for _ in 0..nodes {
        let a = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
        if a != ALWAYS_SCAN && a >= nlist {
            return Err(StoreError::Corrupted {
                reason: format!("row assigned to cluster {a} but the index has {nlist}"),
            });
        }
        assignments.push(a);
        pos += 4;
    }
    let mut calibration = Vec::with_capacity(calib_len as usize);
    let mut last_target = f64::NEG_INFINITY;
    for _ in 0..calib_len {
        let target = f64::from_le_bytes(bytes[pos..pos + 8].try_into().expect("8 bytes"));
        let nprobe = u32::from_le_bytes(bytes[pos + 8..pos + 12].try_into().expect("4 bytes"));
        pos += 12;
        if !(0.0..=1.0).contains(&target) || target < last_target {
            return Err(StoreError::Corrupted {
                reason: format!("calibration targets must ascend within [0, 1], got {target}"),
            });
        }
        last_target = target;
        if nprobe as usize > nlist as usize && nlist > 0 {
            return Err(StoreError::Corrupted {
                reason: format!("calibration nprobe {nprobe} exceeds nlist {nlist}"),
            });
        }
        calibration.push((target, nprobe));
    }

    let mut index = IvfIndex {
        dim,
        nodes,
        store_fingerprint,
        centroids,
        assignments,
        calibration,
        clusters: Vec::new(),
        always: Vec::new(),
    };
    index.rebuild_derived();
    Ok(index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::PrivacyMeta;
    use advsgm_core::ModelVariant;

    /// A clustered fixture: `groups` well-separated Gaussian-ish blobs,
    /// the workload IVF pruning is designed for.
    fn clustered_store(n: usize, dim: usize, groups: usize) -> EmbeddingStore {
        let m = DenseMatrix::from_fn(n, dim, |i, j| {
            let g = i % groups;
            let center = ((g * 31 + j * 7) as f64 * 0.7).sin() * 4.0;
            center + ((i * 13 + j * 5) as f64 * 0.37).sin() * 0.25
        });
        EmbeddingStore::new(m, PrivacyMeta::non_private(ModelVariant::Sgm)).unwrap()
    }

    fn small_params() -> IndexParams {
        IndexParams {
            nlist: 16,
            kmeans_iters: 4,
            sample_queries: 32,
            calibration_k: 10,
        }
    }

    #[test]
    fn exact_mode_is_bitwise_equal_to_top_k() {
        let store = clustered_store(500, 8, 12);
        let index = IvfIndex::build(&store, small_params()).unwrap();
        for u in [0usize, 13, 250, 499] {
            let exact = index.search(&store, u, 10, index.nlist()).unwrap();
            let reference = store.top_k(u, 10).unwrap();
            assert_eq!(exact.neighbors.len(), reference.len());
            for (a, b) in exact.neighbors.iter().zip(&reference) {
                assert_eq!(a.node, b.node, "u={u}");
                assert_eq!(a.score.to_bits(), b.score.to_bits(), "u={u}");
            }
        }
    }

    #[test]
    fn approx_search_prunes_and_finds_neighbors() {
        let store = clustered_store(2_000, 8, 16);
        let index = IvfIndex::build(&store, small_params()).unwrap();
        let nprobe = index.nprobe_for(0.95);
        assert!(nprobe >= 1 && nprobe <= index.nlist());
        let mut scanned_total = 0usize;
        let mut hits = 0usize;
        let mut total = 0usize;
        for u in (0..2_000).step_by(97) {
            let approx = index.search(&store, u, 10, nprobe).unwrap();
            scanned_total += approx.rows_scanned;
            let exact: Vec<usize> = store.top_k(u, 10).unwrap().iter().map(|n| n.node).collect();
            total += exact.len();
            hits += approx
                .neighbors
                .iter()
                .filter(|n| exact.contains(&n.node))
                .count();
        }
        let queries = (0..2_000).step_by(97).count();
        let recall = hits as f64 / total as f64;
        assert!(recall >= 0.95, "recall {recall} below the calibrated 0.95");
        assert!(
            scanned_total < queries * 2_000,
            "approx mode should scan fewer rows than exhaustive"
        );
    }

    #[test]
    fn nonfinite_rows_are_always_scanned_and_exactness_survives() {
        let mut m = DenseMatrix::from_fn(64, 4, |i, j| ((i * 7 + j) as f64 * 0.3).sin());
        m.set(5, 1, f64::NAN);
        m.set(40, 0, f64::INFINITY);
        let store = EmbeddingStore::new(m, PrivacyMeta::non_private(ModelVariant::Sgm)).unwrap();
        let index = IvfIndex::build(
            &store,
            IndexParams {
                nlist: 8,
                ..IndexParams::default()
            },
        )
        .unwrap();
        assert_eq!(index.always_scanned(), 2);
        // Exact mode bitwise against the full scan, NaN rows included.
        for u in [0usize, 5, 40] {
            let exact = index.search(&store, u, 64, index.nlist()).unwrap();
            let reference = store.top_k(u, 64).unwrap();
            assert_eq!(exact.neighbors.len(), reference.len());
            for (a, b) in exact.neighbors.iter().zip(&reference) {
                assert_eq!(a.node, b.node);
                assert_eq!(a.score.to_bits(), b.score.to_bits());
            }
        }
        // Approx search still sees the non-finite rows.
        let approx = index.search(&store, 0, 64, 1).unwrap();
        assert!(approx.rows_scanned >= 2);
    }

    #[test]
    fn build_is_deterministic() {
        let store = clustered_store(300, 6, 10);
        let a = IvfIndex::build(&store, small_params()).unwrap();
        let b = IvfIndex::build(&store, small_params()).unwrap();
        assert_eq!(a.to_bytes(), b.to_bytes());
    }

    #[test]
    fn roundtrip_is_bitwise_exact() {
        let store = clustered_store(120, 5, 8);
        let index = IvfIndex::build(&store, small_params()).unwrap();
        let bytes = index.to_bytes();
        let back = IvfIndex::from_bytes(&bytes).unwrap();
        assert_eq!(back, index);
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn empty_and_single_node_stores_index() {
        let empty = EmbeddingStore::new(
            DenseMatrix::zeros(0, 4),
            PrivacyMeta::non_private(ModelVariant::Sgm),
        )
        .unwrap();
        let index = IvfIndex::build(&empty, IndexParams::default()).unwrap();
        assert_eq!(index.nlist(), 0);
        let back = IvfIndex::from_bytes(&index.to_bytes()).unwrap();
        assert_eq!(back, index);

        let single = clustered_store(1, 3, 1);
        let index = IvfIndex::build(&single, IndexParams::default()).unwrap();
        let got = index.search(&single, 0, 5, index.nprobe_for(0.9)).unwrap();
        assert!(got.neighbors.is_empty(), "no neighbors besides self");
    }

    #[test]
    fn mismatched_store_is_rejected() {
        let store = clustered_store(100, 4, 8);
        let index = IvfIndex::build(&store, small_params()).unwrap();
        index.validate_for(&store).unwrap();

        let other = clustered_store(100, 4, 9);
        let err = index.validate_for(&other).unwrap_err();
        assert!(
            matches!(err, StoreError::IndexStoreMismatch { .. }),
            "{err}"
        );

        let shorter = clustered_store(99, 4, 8);
        let err = index.search(&shorter, 0, 3, 2).unwrap_err();
        assert!(
            matches!(err, StoreError::IndexStoreMismatch { .. }),
            "{err}"
        );
    }

    #[test]
    fn out_of_range_query_is_typed() {
        let store = clustered_store(50, 4, 4);
        let index = IvfIndex::build(&store, small_params()).unwrap();
        let err = index.search(&store, 50, 3, 2).unwrap_err();
        assert!(matches!(err, StoreError::NodeOutOfRange { node: 50, .. }));
    }

    #[test]
    fn corruption_modes_are_typed() {
        let store = clustered_store(40, 4, 6);
        let index = IvfIndex::build(&store, small_params()).unwrap();
        let bytes = index.to_bytes();

        assert!(matches!(
            IvfIndex::from_bytes(b"AEMBnotanindex").unwrap_err(),
            StoreError::BadMagic { .. }
        ));

        let mut v = bytes.clone();
        v[4..6].copy_from_slice(&9u16.to_le_bytes());
        assert!(matches!(
            IvfIndex::from_bytes(&v).unwrap_err(),
            StoreError::UnsupportedVersion { found: 9, .. }
        ));

        for cut in [3usize, 10, INDEX_HEADER_LEN + 5, bytes.len() - 1] {
            let err = IvfIndex::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    StoreError::Truncated { .. } | StoreError::BadMagic { .. }
                ),
                "cut={cut}: {err}"
            );
        }

        let mut v = bytes.clone();
        let i = INDEX_HEADER_LEN + 9;
        v[i] ^= 0x10;
        assert!(matches!(
            IvfIndex::from_bytes(&v).unwrap_err(),
            StoreError::ChecksumMismatch { .. }
        ));

        let mut v = bytes.clone();
        v.extend_from_slice(b"zzz");
        assert!(matches!(
            IvfIndex::from_bytes(&v).unwrap_err(),
            StoreError::Corrupted { .. }
        ));

        // Out-of-range cluster assignment with a re-stamped checksum.
        let mut v = bytes;
        let assign_start = INDEX_HEADER_LEN + 8 * index.nlist() * index.dim();
        v[assign_start..assign_start + 4].copy_from_slice(&500u32.to_le_bytes());
        let sum = crc32(&v[..v.len() - 4]);
        let end = v.len();
        v[end - 4..].copy_from_slice(&sum.to_le_bytes());
        let err = IvfIndex::from_bytes(&v).unwrap_err();
        assert!(matches!(err, StoreError::Corrupted { .. }), "{err}");
    }
}
