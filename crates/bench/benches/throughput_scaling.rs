//! Throughput scaling of the sharded training engine (DESIGN.md §7).
//!
//! Trains AdvSGM on a 10k-node synthetic graph at 1/2/4/8 worker threads
//! and reports **pairs/sec** (positive + negative pairs pushed through the
//! discriminator per wall-clock second) plus the speedup over the
//! single-thread sequential engine. Run with:
//!
//! ```text
//! cargo bench -p advsgm-bench --bench throughput_scaling
//! ```
//!
//! Numbers are only meaningful on a machine whose scheduler actually has
//! the cores: on a 1-core container every thread count collapses to ~1x
//! (the table prints the detected parallelism so logs are interpretable).

use std::time::Instant;

use advsgm_core::{AdvSgmConfig, ModelVariant, ShardedTrainer};
use advsgm_graph::generators::sbm::{degree_corrected_sbm, SbmConfig};
use advsgm_linalg::rng::seeded;

/// The 10k-node fixture named by the engine's acceptance bar.
fn fixture() -> advsgm_graph::Graph {
    let mut rng = seeded(13);
    degree_corrected_sbm(
        &SbmConfig {
            num_nodes: 10_000,
            num_edges: 50_000,
            num_blocks: 20,
            mixing: 0.1,
            degree_exponent: 2.5,
        },
        &mut rng,
    )
}

/// One measured workload: a single epoch heavy enough to amortise pool
/// dispatch, with an unreachable budget so every update runs.
fn workload(threads: usize) -> AdvSgmConfig {
    AdvSgmConfig {
        variant: ModelVariant::AdvSgm,
        dim: 128,
        batch_size: 512,
        negatives: 5,
        epochs: 1,
        disc_iters: 8,
        gen_iters: 2,
        epsilon: 1e9,
        ..AdvSgmConfig::default()
    }
    .with_threads(threads)
}

/// Pairs one workload pushes through the discriminator:
/// `disc_iters * (B + B * k)` per epoch.
fn pairs_per_run(cfg: &AdvSgmConfig) -> u64 {
    (cfg.epochs * cfg.disc_iters * (cfg.batch_size + cfg.batch_size * cfg.negatives)) as u64
}

fn measure(graph: &advsgm_graph::Graph, threads: usize, reps: usize) -> (f64, u64) {
    let cfg = workload(threads);
    let pairs = pairs_per_run(&cfg) * reps as u64;
    // Warm-up run outside the clock (page-faults the embedding matrices,
    // spawns nothing persistent: each fit builds its own pool).
    let warm = ShardedTrainer::fit(graph, cfg.clone()).unwrap();
    assert!(warm.disc_updates > 0);
    let start = Instant::now();
    let mut sink = 0u64;
    for _ in 0..reps {
        sink += ShardedTrainer::fit(graph, cfg.clone())
            .unwrap()
            .disc_updates;
    }
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(sink, (workload(threads).disc_iters * 2 * reps) as u64);
    (pairs as f64 / secs, pairs)
}

fn main() {
    // Compile-out guard used by `cargo bench --no-run` in CI; any CLI arg
    // containing "quick" shrinks the workload for smoke runs.
    let quick = std::env::args().any(|a| a.contains("quick"));
    let reps = if quick { 1 } else { 3 };
    let graph = fixture();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "throughput_scaling: |V|={} |E|={} r=128 B=512 k=5 (host parallelism: {cores})",
        graph.num_nodes(),
        graph.num_edges()
    );
    println!(
        "{:>8} {:>14} {:>12} {:>10}",
        "threads", "pairs/sec", "pairs", "speedup"
    );
    let mut base = None;
    for threads in [1usize, 2, 4, 8] {
        let (pps, pairs) = measure(&graph, threads, reps);
        let speedup = pps / *base.get_or_insert(pps);
        println!("{threads:>8} {pps:>14.0} {pairs:>12} {speedup:>9.2}x");
    }
    println!(
        "note: >= 2x at 4 threads requires >= 4 free cores; \
         determinism is per (seed, threads, shard_size) — see DESIGN.md §7"
    );
}
