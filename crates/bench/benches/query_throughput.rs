//! Query-serving throughput of the embedding store (DESIGN.md §9).
//!
//! Fills an [`EmbeddingStore`] with Xavier-initialised vectors (queries
//! only read the matrix, so trained weights would change nothing about the
//! cost profile) and measures **queries/sec** for `batch_top_k` at 1/2/4/8
//! worker threads, plus the speedup over the single-thread scan. Run with:
//!
//! ```text
//! cargo bench -p advsgm-bench --bench query_throughput          # full sweep
//! cargo bench -p advsgm-bench --bench query_throughput -- quick # 1 rep/width
//! ```
//!
//! Each query is one fused dot-product scan over all `|V|` rows plus a
//! bounded k-heap (`advsgm_linalg::topk`), so ideal scaling is linear in
//! threads; on a 1-core container every width collapses to ~1x (the table
//! prints the detected parallelism so logs stay interpretable). Results
//! are bitwise thread-count-invariant — the sweep asserts it while timing.
//!
//! Like the paper-artifact binaries, the sweep appends its measurements
//! to `results/query_throughput.jsonl` (`docs/BENCHMARKS.md` schema:
//! `parameter = "threads"`, `metric = "queries_per_sec"`, mean/std over
//! the repetitions), so serving numbers land in the same trajectory files
//! as everything else.

use std::time::Instant;

use advsgm_bench::{append_jsonl_at, Record};
use advsgm_core::ModelVariant;
use advsgm_linalg::rng::seeded;
use advsgm_linalg::stats::Summary;
use advsgm_linalg::DenseMatrix;
use advsgm_store::{EmbeddingStore, Neighbor, PrivacyMeta};
use rand::Rng;

/// Store scale: the serving-side counterpart of `throughput_scaling`'s
/// 10k-node training fixture.
const NODES: usize = 10_000;
const DIM: usize = 128;
const TOP_K: usize = 10;
/// Queries per timed batch.
const BATCH: usize = 256;

fn fixture() -> EmbeddingStore {
    let mut rng = seeded(17);
    // Xavier-style scale for a |V| x r matrix; exact distribution is
    // irrelevant to throughput, it only needs realistic magnitudes.
    let bound = (6.0 / (NODES + DIM) as f64).sqrt();
    let m = DenseMatrix::from_fn(NODES, DIM, |_, _| rng.gen_range(-bound..bound));
    EmbeddingStore::new(
        m,
        PrivacyMeta::private(ModelVariant::AdvSgm, 6.0, 1e-5, 5.0),
    )
    .unwrap()
}

fn checksum(results: &[Vec<Neighbor>]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for r in results {
        for n in r {
            h ^= n.node as u64 ^ n.score.to_bits();
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

/// Times `reps` batches, returning per-repetition queries/sec (so mean
/// *and* spread can be reported) plus the result checksum.
fn measure(
    store: &EmbeddingStore,
    queries: &[usize],
    threads: usize,
    reps: usize,
) -> (Vec<f64>, u64) {
    // One pool per width, built outside the clock — the serving-loop
    // pattern (`batch_top_k_in`), so the sweep times queries, not thread
    // spawns.
    let mut pool = advsgm_parallel::ThreadPool::new(threads);
    let warm = store.batch_top_k_in(queries, TOP_K, &mut pool).unwrap();
    let sum = checksum(&warm);
    let mut qps = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        let got = store.batch_top_k_in(queries, TOP_K, &mut pool).unwrap();
        let secs = start.elapsed().as_secs_f64();
        // Thread-count invariance, asserted on the hot path's real output.
        assert_eq!(checksum(&got), sum, "threads={threads}: results drifted");
        qps.push(queries.len() as f64 / secs);
    }
    (qps, sum)
}

fn main() {
    // Compile-out guard used by `cargo bench --no-run` in CI; any CLI arg
    // containing "quick" shrinks the workload for smoke runs.
    let quick = std::env::args().any(|a| a.contains("quick"));
    let reps = if quick { 1 } else { 4 };
    let store = fixture();
    let mut rng = seeded(91);
    let queries: Vec<usize> = (0..BATCH).map(|_| rng.gen_range(0..store.len())).collect();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "query_throughput: |V|={} r={DIM} k={TOP_K} batch={BATCH} (host parallelism: {cores})",
        store.len()
    );
    println!("{:>8} {:>14} {:>10}", "threads", "queries/sec", "speedup");
    let mut base = None;
    let mut reference = None;
    let mut records = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let (per_rep, sum) = measure(&store, &queries, threads, reps);
        // Same results at every width — the §9 serving contract.
        assert_eq!(*reference.get_or_insert(sum), sum, "threads={threads}");
        let s = Summary::of(&per_rep);
        let speedup = s.mean / *base.get_or_insert(s.mean);
        println!("{threads:>8} {:>14.0} {speedup:>9.2}x", s.mean);
        records.push(Record {
            experiment: "query_throughput".into(),
            dataset: format!("synthetic-{}x{DIM}", store.len()),
            method: "batch_top_k".into(),
            parameter: "threads".into(),
            value: threads as f64,
            metric: "queries_per_sec".into(),
            mean: s.mean,
            std: s.std,
            runs: reps as u64,
            scale: 1.0,
        });
    }
    // Criterion benches run with the package as working directory; anchor
    // the records to the workspace-root results/ like the paper binaries.
    append_jsonl_at(
        std::path::PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results")),
        "query_throughput",
        &records,
    );
    println!(
        "note: each query scans all |V| rows (fused dot4 + bounded heap); \
         results are bitwise identical at every thread count (DESIGN.md §9); \
         appended {} records to results/query_throughput.jsonl",
        records.len()
    );
}
