//! Query-serving throughput of the embedding store (DESIGN.md §9).
//!
//! Fills an [`EmbeddingStore`] with Xavier-initialised vectors (queries
//! only read the matrix, so trained weights would change nothing about the
//! cost profile) and measures **queries/sec** for `batch_top_k` at 1/2/4/8
//! worker threads, plus the speedup over the single-thread scan. Run with:
//!
//! ```text
//! cargo bench -p advsgm-bench --bench query_throughput          # full sweep
//! cargo bench -p advsgm-bench --bench query_throughput -- quick # 1 rep/width
//! ```
//!
//! Each query is one fused dot-product scan over all `|V|` rows plus a
//! bounded k-heap (`advsgm_linalg::topk`), so ideal scaling is linear in
//! threads; on a 1-core container every width collapses to ~1x (the table
//! prints the detected parallelism so logs stay interpretable). Results
//! are bitwise thread-count-invariant — the sweep asserts it while timing.
//!
//! Like the paper-artifact binaries, the sweep appends its measurements
//! to `results/query_throughput.jsonl` (`docs/BENCHMARKS.md` schema:
//! `parameter = "threads"`, `metric = "queries_per_sec"`, mean/std over
//! the repetitions), so serving numbers land in the same trajectory files
//! as everything else.
//!
//! A second phase measures **exhaustive vs IVF-indexed** serving on a
//! clustered store (100k x 32 in full mode): queries/sec, latency
//! percentiles, recall@10 against the exact scan, and the fraction of
//! rows touched. It asserts the repo's serving contract — recall ≥ 0.95
//! at the 0.95 calibration point while scanning < 20% of rows — and
//! writes the committed baseline `results/BENCH_query_serving.json`.

use std::time::Instant;

use advsgm_bench::{append_jsonl_at, Record};
use advsgm_core::ModelVariant;
use advsgm_linalg::rng::seeded;
use advsgm_linalg::stats::Summary;
use advsgm_linalg::DenseMatrix;
use advsgm_store::{EmbeddingStore, IndexParams, IvfIndex, Neighbor, PrivacyMeta};
use rand::Rng;

/// Store scale: the serving-side counterpart of `throughput_scaling`'s
/// 10k-node training fixture.
const NODES: usize = 10_000;
const DIM: usize = 128;
const TOP_K: usize = 10;
/// Queries per timed batch.
const BATCH: usize = 256;

fn fixture() -> EmbeddingStore {
    let mut rng = seeded(17);
    // Xavier-style scale for a |V| x r matrix; exact distribution is
    // irrelevant to throughput, it only needs realistic magnitudes.
    let bound = (6.0 / (NODES + DIM) as f64).sqrt();
    let m = DenseMatrix::from_fn(NODES, DIM, |_, _| rng.gen_range(-bound..bound));
    EmbeddingStore::new(
        m,
        PrivacyMeta::private(ModelVariant::AdvSgm, 6.0, 1e-5, 5.0),
    )
    .unwrap()
}

fn checksum(results: &[Vec<Neighbor>]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for r in results {
        for n in r {
            h ^= n.node as u64 ^ n.score.to_bits();
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

/// Times `reps` batches, returning per-repetition queries/sec (so mean
/// *and* spread can be reported) plus the result checksum.
fn measure(
    store: &EmbeddingStore,
    queries: &[usize],
    threads: usize,
    reps: usize,
) -> (Vec<f64>, u64) {
    // One pool per width, built outside the clock — the serving-loop
    // pattern (`batch_top_k_in`), so the sweep times queries, not thread
    // spawns.
    let mut pool = advsgm_parallel::ThreadPool::new(threads);
    let warm = store.batch_top_k_in(queries, TOP_K, &mut pool).unwrap();
    let sum = checksum(&warm);
    let mut qps = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        let got = store.batch_top_k_in(queries, TOP_K, &mut pool).unwrap();
        let secs = start.elapsed().as_secs_f64();
        // Thread-count invariance, asserted on the hot path's real output.
        assert_eq!(checksum(&got), sum, "threads={threads}: results drifted");
        qps.push(queries.len() as f64 / secs);
    }
    (qps, sum)
}

fn main() {
    // Compile-out guard used by `cargo bench --no-run` in CI; any CLI arg
    // containing "quick" shrinks the workload for smoke runs.
    let quick = std::env::args().any(|a| a.contains("quick"));
    let reps = if quick { 1 } else { 4 };
    let store = fixture();
    let mut rng = seeded(91);
    let queries: Vec<usize> = (0..BATCH).map(|_| rng.gen_range(0..store.len())).collect();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "query_throughput: |V|={} r={DIM} k={TOP_K} batch={BATCH} (host parallelism: {cores})",
        store.len()
    );
    println!("{:>8} {:>14} {:>10}", "threads", "queries/sec", "speedup");
    let mut base = None;
    let mut reference = None;
    let mut records = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let (per_rep, sum) = measure(&store, &queries, threads, reps);
        // Same results at every width — the §9 serving contract.
        assert_eq!(*reference.get_or_insert(sum), sum, "threads={threads}");
        let s = Summary::of(&per_rep);
        let speedup = s.mean / *base.get_or_insert(s.mean);
        println!("{threads:>8} {:>14.0} {speedup:>9.2}x", s.mean);
        records.push(Record {
            experiment: "query_throughput".into(),
            dataset: format!("synthetic-{}x{DIM}", store.len()),
            method: "batch_top_k".into(),
            parameter: "threads".into(),
            value: threads as f64,
            metric: "queries_per_sec".into(),
            mean: s.mean,
            std: s.std,
            runs: reps as u64,
            scale: 1.0,
        });
    }
    // Criterion benches run with the package as working directory; anchor
    // the records to the workspace-root results/ like the paper binaries.
    let results_dir =
        std::path::PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results"));
    append_jsonl_at(results_dir.clone(), "query_throughput", &records).expect(
        "failed to append results/query_throughput.jsonl (bench records must not vanish silently)",
    );
    println!(
        "note: each query scans all |V| rows (fused dot4 + bounded heap); \
         results are bitwise identical at every thread count (DESIGN.md §9); \
         appended {} records to results/query_throughput.jsonl",
        records.len()
    );

    indexed_vs_exhaustive(quick, &results_dir);
}

/// Recall target the serving contract is pinned to (README / DESIGN.md §12).
const RECALL_TARGET: f64 = 0.95;
/// Query nodes sampled for the indexed-vs-exhaustive comparison.
const ANN_QUERIES: usize = 200;

/// A clustered store: the workload where inverted-file pruning pays off
/// and the shape real embeddings take (communities map to direction
/// clusters under dot-product similarity).
fn clustered_fixture(nodes: usize, dim: usize, groups: usize) -> EmbeddingStore {
    let mut rng = seeded(23);
    let m = DenseMatrix::from_fn(nodes, dim, |i, j| {
        let g = i % groups;
        let center = 3.0 * ((g * dim + j) as f64 * 0.7129).sin();
        center + rng.gen_range(-0.3..0.3)
    });
    EmbeddingStore::new(
        m,
        PrivacyMeta::private(ModelVariant::AdvSgm, 6.0, 1e-5, 5.0),
    )
    .unwrap()
}

/// Latency percentile over a sorted-on-demand sample (nearest-rank).
fn percentile_us(latencies: &mut [f64], q: f64) -> f64 {
    latencies.sort_by(f64::total_cmp);
    let idx = ((latencies.len() - 1) as f64 * q).round() as usize;
    latencies[idx]
}

/// Phase 2: exhaustive scan vs IVF index on a clustered store. Prints a
/// comparison table, asserts the recall / scan-fraction contract, and
/// writes `results/BENCH_query_serving.json` (the committed baseline).
fn indexed_vs_exhaustive(quick: bool, results_dir: &std::path::Path) {
    let (nodes, dim, groups) = if quick {
        (20_000, 32, 64)
    } else {
        (100_000, 32, 64)
    };
    println!("\nindexed vs exhaustive: |V|={nodes} r={dim} k={TOP_K} queries={ANN_QUERIES}");
    let store = clustered_fixture(nodes, dim, groups);
    let build_start = Instant::now();
    let index = IvfIndex::build(&store, IndexParams::default()).unwrap();
    let build_secs = build_start.elapsed().as_secs_f64();
    let nprobe = index.nprobe_for(RECALL_TARGET);
    println!(
        "index: nlist={} nprobe@{RECALL_TARGET}={nprobe} built in {build_secs:.2}s",
        index.nlist()
    );

    let mut rng = seeded(47);
    let queries: Vec<usize> = (0..ANN_QUERIES).map(|_| rng.gen_range(0..nodes)).collect();

    // Exhaustive pass: exact answers double as the recall ground truth.
    let mut exact = Vec::with_capacity(queries.len());
    let mut exact_lat = Vec::with_capacity(queries.len());
    let exact_start = Instant::now();
    for &u in &queries {
        let t = Instant::now();
        exact.push(store.top_k(u, TOP_K).unwrap());
        exact_lat.push(t.elapsed().as_secs_f64() * 1e6);
    }
    let exact_qps = queries.len() as f64 / exact_start.elapsed().as_secs_f64();

    // Indexed pass at the calibrated nprobe.
    let mut approx_lat = Vec::with_capacity(queries.len());
    let mut hits = 0usize;
    let mut rows_scanned = 0u64;
    let approx_start = Instant::now();
    for (qi, &u) in queries.iter().enumerate() {
        let t = Instant::now();
        let got = index.search(&store, u, TOP_K, nprobe).unwrap();
        approx_lat.push(t.elapsed().as_secs_f64() * 1e6);
        rows_scanned += got.rows_scanned as u64;
        let truth: std::collections::HashSet<usize> = exact[qi].iter().map(|n| n.node).collect();
        hits += got
            .neighbors
            .iter()
            .filter(|n| truth.contains(&n.node))
            .count();
    }
    let approx_qps = queries.len() as f64 / approx_start.elapsed().as_secs_f64();

    let recall = hits as f64 / (queries.len() * TOP_K) as f64;
    let scan_fraction = rows_scanned as f64 / (queries.len() as f64 * (nodes - 1) as f64);
    let speedup = approx_qps / exact_qps;
    println!(
        "{:>12} {:>14} {:>10} {:>10} {:>10} {:>10}",
        "mode", "queries/sec", "p50 us", "p99 us", "recall@10", "rows"
    );
    println!(
        "{:>12} {:>14.0} {:>10.0} {:>10.0} {:>10.4} {:>9.1}%",
        "exhaustive",
        exact_qps,
        percentile_us(&mut exact_lat, 0.50),
        percentile_us(&mut exact_lat, 0.99),
        1.0,
        100.0
    );
    println!(
        "{:>12} {:>14.0} {:>10.0} {:>10.0} {:>10.4} {:>9.1}%",
        "ivf-indexed",
        approx_qps,
        percentile_us(&mut approx_lat, 0.50),
        percentile_us(&mut approx_lat, 0.99),
        recall,
        100.0 * scan_fraction
    );
    println!("speedup: {speedup:.2}x at recall@10 = {recall:.4}");

    // The serving contract this bench exists to defend. A regression here
    // must fail the bench run, not just skew the baseline file.
    assert!(
        recall >= RECALL_TARGET,
        "recall@10 {recall:.4} fell below the {RECALL_TARGET} target"
    );
    assert!(
        scan_fraction < 0.20,
        "indexed search touched {:.1}% of rows (contract: < 20%)",
        100.0 * scan_fraction
    );

    let baseline = ServingBaseline {
        experiment: "query_serving",
        mode: if quick { "quick" } else { "full" },
        kernel_backend: advsgm_linalg::backend::active().name(),
        nodes,
        dim,
        k: TOP_K,
        queries: queries.len(),
        recall_target: RECALL_TARGET,
        index: IndexFacts {
            nlist: index.nlist(),
            nprobe,
            build_secs,
        },
        exhaustive: ModeFacts {
            queries_per_sec: exact_qps,
            latency_us_p50: percentile_us(&mut exact_lat, 0.50),
            latency_us_p90: percentile_us(&mut exact_lat, 0.90),
            latency_us_p99: percentile_us(&mut exact_lat, 0.99),
            recall_at_10: 1.0,
            scan_fraction: 1.0,
        },
        indexed: ModeFacts {
            queries_per_sec: approx_qps,
            latency_us_p50: percentile_us(&mut approx_lat, 0.50),
            latency_us_p90: percentile_us(&mut approx_lat, 0.90),
            latency_us_p99: percentile_us(&mut approx_lat, 0.99),
            recall_at_10: recall,
            scan_fraction,
        },
        speedup,
    };
    let path = results_dir.join("BENCH_query_serving.json");
    let body = serde_json::to_string(&baseline).expect("serving baseline must serialise");
    std::fs::create_dir_all(results_dir)
        .and_then(|()| std::fs::write(&path, body + "\n"))
        .expect(
            "failed to write results/BENCH_query_serving.json (the committed serving baseline)",
        );
    println!("wrote {}", path.display());
}

/// The committed serving baseline (`results/BENCH_query_serving.json`):
/// exhaustive-vs-indexed queries/sec plus the recall / scan-fraction
/// evidence behind the numbers, so re-anchors can read the perf
/// trajectory without re-running the bench.
#[derive(serde::Serialize)]
struct ServingBaseline {
    experiment: &'static str,
    mode: &'static str,
    /// The kernel backend the scans ran on (`linalg::backend::active`).
    kernel_backend: &'static str,
    nodes: usize,
    dim: usize,
    k: usize,
    queries: usize,
    recall_target: f64,
    index: IndexFacts,
    exhaustive: ModeFacts,
    indexed: ModeFacts,
    speedup: f64,
}

#[derive(serde::Serialize)]
struct IndexFacts {
    nlist: usize,
    nprobe: usize,
    build_secs: f64,
}

#[derive(serde::Serialize)]
struct ModeFacts {
    queries_per_sec: f64,
    latency_us_p50: f64,
    latency_us_p90: f64,
    latency_us_p99: f64,
    recall_at_10: f64,
    scan_fraction: f64,
}
