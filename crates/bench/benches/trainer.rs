//! Criterion benchmarks of whole training epochs, per model variant —
//! the cost side of the design-choice ablations in DESIGN.md §4
//! (adversarial module on/off, constrained vs plain sigmoid, DP on/off).

use advsgm_core::{AdvSgmConfig, ModelVariant, ShardedTrainer, Trainer};
use advsgm_graph::generators::sbm::{degree_corrected_sbm, SbmConfig};
use advsgm_linalg::rng::seeded;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn fixture() -> advsgm_graph::Graph {
    let mut rng = seeded(11);
    degree_corrected_sbm(
        &SbmConfig {
            num_nodes: 1000,
            num_edges: 5000,
            num_blocks: 8,
            mixing: 0.15,
            degree_exponent: 2.5,
        },
        &mut rng,
    )
}

fn one_epoch_config(variant: ModelVariant) -> AdvSgmConfig {
    AdvSgmConfig {
        variant,
        dim: 64,
        epochs: 1,
        disc_iters: 10,
        gen_iters: 3,
        batch_size: 64,
        epsilon: 1e9, // never stop: measure a full epoch
        ..AdvSgmConfig::default()
    }
}

fn bench_epochs(c: &mut Criterion) {
    let g = fixture();
    let mut group = c.benchmark_group("trainer_epoch");
    group.sample_size(10);
    for variant in ModelVariant::all() {
        group.bench_function(format!("{variant}"), |b| {
            b.iter(|| {
                let out = Trainer::fit(&g, one_epoch_config(variant)).unwrap();
                black_box(out.disc_updates)
            })
        });
    }
    group.finish();
}

fn bench_sharded_engine(c: &mut Criterion) {
    // Sequential vs sharded on the same epoch workload. On a multi-core
    // host the 4-thread row drops; `throughput_scaling` has the full
    // pairs/sec sweep on the 10k-node fixture.
    let g = fixture();
    let mut group = c.benchmark_group("sharded_epoch");
    group.sample_size(10);
    group.bench_function("sequential_trainer", |b| {
        b.iter(|| {
            let out = Trainer::fit(&g, one_epoch_config(ModelVariant::AdvSgm)).unwrap();
            black_box(out.disc_updates)
        })
    });
    for threads in [1usize, 4] {
        group.bench_function(format!("sharded_{threads}_threads"), |b| {
            b.iter(|| {
                let cfg = one_epoch_config(ModelVariant::AdvSgm).with_threads(threads);
                black_box(ShardedTrainer::fit(&g, cfg).unwrap().disc_updates)
            })
        });
    }
    group.finish();
}

fn bench_noise_calibration_cost(c: &mut Criterion) {
    // The faithful-vs-activation noise reading has identical asymptotics;
    // this bench documents that the choice is free at runtime.
    let g = fixture();
    let mut group = c.benchmark_group("noise_calibration");
    group.sample_size(10);
    for (name, faithful) in [("activation_reading", false), ("faithful_dpsgd", true)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut cfg = one_epoch_config(ModelVariant::AdvSgm);
                cfg.faithful_noise = faithful;
                black_box(Trainer::fit(&g, cfg).unwrap().disc_updates)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_epochs,
    bench_sharded_engine,
    bench_noise_calibration_cost
);
criterion_main!(benches);
