//! Training throughput: in-RAM vs out-of-core partitioned (DESIGN.md
//! §7/§14).
//!
//! Trains AdvSGM on a synthetic graph and reports **pairs/sec**
//! (positive + negative pairs pushed through the discriminator per
//! wall-clock second) for the in-RAM engine and the partitioned
//! out-of-core engine at 1 and 4 worker threads — the price of the
//! two-slot residency bound, measured rather than guessed. While
//! timing, it asserts the engines' headline contract: the partitioned
//! run's node vectors are bitwise-identical to the sequential run's.
//! Run with:
//!
//! ```text
//! cargo bench -p advsgm-bench --bench training_throughput          # full
//! cargo bench -p advsgm-bench --bench training_throughput -- quick
//! ```
//!
//! The full run writes the committed baseline
//! `results/BENCH_training_throughput.json` (`docs/BENCHMARKS.md`
//! schema) so the out-of-core overhead lands in the repo's perf
//! trajectory; `quick` shrinks the workload for CI smoke and leaves the
//! committed file untouched.

use std::time::Instant;

use advsgm_core::{AdvSgmConfig, ModelVariant, PartitionedTrainer, ShardedTrainer, Trainer};
use advsgm_graph::generators::sbm::{degree_corrected_sbm, SbmConfig};
use advsgm_linalg::rng::seeded;

/// Node buckets for the out-of-core engine: 4 keeps 2/4 of the
/// embeddings resident, the first ratio where eviction actually cycles.
const PARTITIONS: usize = 4;

fn fixture(quick: bool) -> advsgm_graph::Graph {
    let (nodes, edges) = if quick { (400, 2_000) } else { (2_000, 10_000) };
    let mut rng = seeded(13);
    degree_corrected_sbm(
        &SbmConfig {
            num_nodes: nodes,
            num_edges: edges,
            num_blocks: 10,
            mixing: 0.1,
            degree_exponent: 2.5,
        },
        &mut rng,
    )
}

/// One measured workload: a single epoch heavy enough to amortise slot
/// swaps, with an unreachable budget so every update runs.
fn workload(threads: usize, quick: bool) -> AdvSgmConfig {
    AdvSgmConfig {
        variant: ModelVariant::AdvSgm,
        dim: 64,
        batch_size: 256,
        negatives: 5,
        epochs: 1,
        disc_iters: if quick { 2 } else { 8 },
        gen_iters: 2,
        epsilon: 1e9,
        ..AdvSgmConfig::default()
    }
    .with_threads(threads)
}

/// Pairs one workload pushes through the discriminator:
/// `disc_iters * (B + B * k)` per epoch.
fn pairs_per_run(cfg: &AdvSgmConfig) -> u64 {
    (cfg.epochs * cfg.disc_iters * (cfg.batch_size + cfg.batch_size * cfg.negatives)) as u64
}

fn measure(
    graph: &advsgm_graph::Graph,
    engine: &str,
    threads: usize,
    reps: usize,
    quick: bool,
) -> (f64, u64) {
    let cfg = workload(threads, quick);
    let pairs = pairs_per_run(&cfg) * reps as u64;
    let run = |cfg: AdvSgmConfig| -> u64 {
        match engine {
            "in_ram" => ShardedTrainer::fit(graph, cfg).unwrap().disc_updates,
            "partitioned" => {
                PartitionedTrainer::fit(graph, cfg, PARTITIONS)
                    .unwrap()
                    .disc_updates
            }
            other => unreachable!("engine {other}"),
        }
    };
    // Warm-up outside the clock (page-faults the matrices, creates the
    // spill directory).
    assert!(run(cfg.clone()) > 0);
    let start = Instant::now();
    let mut sink = 0u64;
    for _ in 0..reps {
        sink += run(cfg.clone());
    }
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(sink, (cfg.disc_iters * 2 * reps) as u64);
    (pairs as f64 / secs, pairs)
}

#[derive(serde::Serialize)]
struct TrainingBaseline {
    experiment: &'static str,
    mode: &'static str,
    /// The kernel backend every run used (`linalg::backend::active`);
    /// pairs/sec trends are only comparable within one backend.
    kernel_backend: &'static str,
    nodes: usize,
    edges: usize,
    dim: usize,
    batch_size: usize,
    negatives: usize,
    partitions: usize,
    runs: Vec<RunFacts>,
    /// partitioned pairs/sec divided by in-RAM pairs/sec at the same
    /// width — the measured cost of the 2/P residency bound.
    ooc_relative_throughput_1_thread: f64,
    ooc_relative_throughput_4_threads: f64,
}

#[derive(serde::Serialize)]
struct RunFacts {
    engine: &'static str,
    threads: usize,
    pairs_per_sec: f64,
    pairs: u64,
}

fn main() {
    let quick = std::env::args().any(|a| a.contains("quick"));
    let reps = if quick { 1 } else { 3 };
    let graph = fixture(quick);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "training_throughput: |V|={} |E|={} r=64 B=256 k=5 P={PARTITIONS} \
         (host parallelism: {cores}, kernel backend: {})",
        graph.num_nodes(),
        graph.num_edges(),
        advsgm_linalg::backend::active()
    );

    // The contract behind the numbers: same bits, different residency.
    let seq = Trainer::fit(&graph, workload(1, quick)).unwrap();
    let ooc = PartitionedTrainer::fit(&graph, workload(1, quick), PARTITIONS).unwrap();
    assert_eq!(
        seq.node_vectors
            .as_slice()
            .iter()
            .map(|x| x.to_bits())
            .collect::<Vec<_>>(),
        ooc.node_vectors
            .as_slice()
            .iter()
            .map(|x| x.to_bits())
            .collect::<Vec<_>>(),
        "partitioned engine must be bitwise-identical to sequential"
    );
    println!("bitwise identity: partitioned == sequential (checked)");

    println!(
        "{:>13} {:>8} {:>14} {:>12}",
        "engine", "threads", "pairs/sec", "pairs"
    );
    let mut runs = Vec::new();
    for engine in ["in_ram", "partitioned"] {
        for threads in [1usize, 4] {
            let (pps, pairs) = measure(&graph, engine, threads, reps, quick);
            println!("{engine:>13} {threads:>8} {pps:>14.0} {pairs:>12}");
            runs.push(RunFacts {
                engine,
                threads,
                pairs_per_sec: pps,
                pairs,
            });
        }
    }
    let rel = |threads: usize| -> f64 {
        let at = |engine: &str| {
            runs.iter()
                .find(|r| r.engine == engine && r.threads == threads)
                .map(|r| r.pairs_per_sec)
                .unwrap_or(f64::NAN)
        };
        at("partitioned") / at("in_ram")
    };
    println!(
        "out-of-core relative throughput: {:.2}x at 1 thread, {:.2}x at 4 threads",
        rel(1),
        rel(4)
    );

    if !quick {
        let baseline = TrainingBaseline {
            experiment: "training_throughput",
            mode: "full",
            kernel_backend: advsgm_linalg::backend::active().name(),
            nodes: graph.num_nodes(),
            edges: graph.num_edges(),
            dim: 64,
            batch_size: 256,
            negatives: 5,
            partitions: PARTITIONS,
            ooc_relative_throughput_1_thread: rel(1),
            ooc_relative_throughput_4_threads: rel(4),
            runs,
        };
        let results_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("results");
        let path = results_dir.join("BENCH_training_throughput.json");
        let body = serde_json::to_string(&baseline).expect("training baseline must serialise");
        std::fs::create_dir_all(&results_dir)
            .and_then(|()| std::fs::write(&path, body + "\n"))
            .expect(
                "failed to write results/BENCH_training_throughput.json \
                 (the committed training baseline)",
            );
        println!("wrote {}", path.display());
    }
}
