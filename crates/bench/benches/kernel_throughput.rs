//! Kernel-backend throughput: the committed perf trajectory for the
//! dispatched SIMD surface (DESIGN.md §15).
//!
//! Times the hot shapes per backend — the fused `dot4` quad-row score,
//! the `top_k_rows` row scan it powers (on a cache-resident store and,
//! in full mode, a DRAM-streaming one: the large scan is memory-bound,
//! so its ratio isolates what kernel speed buys once the matrix stops
//! fitting in cache), and the relaxed-tier FMA `dot` — and writes
//! `results/BENCH_kernels.json` (`docs/BENCHMARKS.md` schema) with each
//! backend's speedup over scalar. Run with:
//!
//! ```text
//! cargo bench -p advsgm-bench --bench kernel_throughput          # full
//! cargo bench -p advsgm-bench --bench kernel_throughput -- quick
//! ```
//!
//! The full run refreshes the committed baseline; `quick` shrinks reps
//! for CI smoke and leaves the file untouched. The row scan is timed
//! under `backend::force` — sound because the bitwise tier is
//! bit-identical across backends, so forcing is unobservable to the
//! result (asserted while timing). Container numbers carry the usual
//! caveat: 1-core hosts under-state cache effects a real serving box
//! would see, but single-thread kernel ratios remain representative.

use std::time::Instant;

use advsgm_linalg::backend::{self, Backend, RelaxedKernels};
use advsgm_linalg::rng::{gaussian_vec, seeded};
use advsgm_linalg::topk::top_k_rows;
use advsgm_linalg::DenseMatrix;

/// Embedding width for every timed shape — the repo's serving default.
const DIM: usize = 128;

fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Median-of-reps seconds for one closure.
fn time_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

#[derive(serde::Serialize)]
struct KernelBaseline {
    experiment: &'static str,
    mode: &'static str,
    /// Backend auto-detection would pick on this host.
    detected_backend: &'static str,
    /// CPU features from `backend::host_features`.
    host_features: Vec<FeatureFacts>,
    dim: usize,
    /// Rows in the cache-resident (`row_scan_hot`) and DRAM-streaming
    /// (`row_scan_stream`) scan stores.
    scan_rows_hot: usize,
    scan_rows_stream: usize,
    /// Iterations inside one timed sample (per kernel).
    inner_iters: usize,
    kernels: Vec<KernelFacts>,
}

#[derive(serde::Serialize)]
struct FeatureFacts {
    feature: String,
    detected: bool,
}

#[derive(serde::Serialize)]
struct KernelFacts {
    kernel: &'static str,
    backend: &'static str,
    /// Nanoseconds per kernel call (dot4 / relaxed_dot) or per full scan
    /// (row_scan), median over the repetitions.
    ns_per_op: f64,
    /// This backend's throughput relative to scalar for the same kernel.
    speedup_vs_scalar: f64,
}

fn main() {
    let quick = std::env::args().any(|a| a.contains("quick"));
    let (reps, inner) = if quick { (5, 2_000) } else { (15, 20_000) };
    // 4k+1 rows both times: the scans exercise the dispatched remainder
    // row. Hot: ~1 MiB, cache-resident — measures the kernel. Stream:
    // ~10 MiB, spills cache — measures what a large store actually sees.
    let scan_rows_hot = 4 * 256 + 1;
    let scan_rows_stream = 4 * 2_500 + 1;

    let mut rng = seeded(34);
    let x = gaussian_vec(&mut rng, 1.0, DIM);
    let a = gaussian_vec(&mut rng, 1.0, DIM);
    let b = gaussian_vec(&mut rng, 1.0, DIM);
    let c = gaussian_vec(&mut rng, 1.0, DIM);
    let d = gaussian_vec(&mut rng, 1.0, DIM);
    let row_fill = |i: usize, j: usize| ((i * 31 + j * 17) as f64 * 0.113).sin();
    let matrix_hot = DenseMatrix::from_fn(scan_rows_hot, DIM, row_fill);
    let matrix_stream = (!quick).then(|| DenseMatrix::from_fn(scan_rows_stream, DIM, row_fill));

    let backends: Vec<Backend> = Backend::ALL
        .into_iter()
        .filter(|bk| bk.is_supported())
        .collect();
    println!(
        "kernel_throughput: r={DIM} scan={scan_rows_hot} rows hot, backends: {} (detected: {})",
        backends
            .iter()
            .map(|bk| bk.name())
            .collect::<Vec<_>>()
            .join(", "),
        Backend::detect()
    );

    // Reference result for the forced-backend scan assertion.
    backend::force(Backend::Scalar);
    let reference_scan = top_k_rows(&matrix_hot, &x, 10, None);

    let mut kernels: Vec<KernelFacts> = Vec::new();
    let mut scalar_ns: std::collections::HashMap<&'static str, f64> = Default::default();
    println!(
        "{:>12} {:>8} {:>14} {:>10}",
        "kernel", "backend", "ns/op", "vs scalar"
    );
    // Scalar first so every speedup has its denominator.
    let mut ordered = backends.clone();
    ordered.sort_by_key(|bk| *bk != Backend::Scalar);
    for bk in ordered {
        // dot4: the quad-row score at the heart of the serving scan.
        let dot4_secs = time_secs(reps, || {
            for _ in 0..inner {
                black_box(backend::dot4_with(bk, black_box(&x), &a, &b, &c, &d));
            }
        });
        // row_scan: the full fused top-k pass, forced onto `bk`.
        backend::force(bk);
        let scan = top_k_rows(&matrix_hot, &x, 10, None);
        assert_eq!(
            scan.iter()
                .map(|e| (e.index, e.score.to_bits()))
                .collect::<Vec<_>>(),
            reference_scan
                .iter()
                .map(|e| (e.index, e.score.to_bits()))
                .collect::<Vec<_>>(),
            "bitwise contract violated during bench: backend {bk}"
        );
        let scan_iters = (inner / 100).max(1);
        let scan_secs = time_secs(reps, || {
            for _ in 0..scan_iters {
                black_box(top_k_rows(&matrix_hot, black_box(&x), 10, None));
            }
        });
        let stream_iters = (scan_iters / 8).max(1);
        let stream_secs = matrix_stream.as_ref().map(|m| {
            time_secs(reps, || {
                for _ in 0..stream_iters {
                    black_box(top_k_rows(m, black_box(&x), 10, None));
                }
            })
        });
        // relaxed_dot: the opt-in approximate-serving reduction.
        let relaxed = RelaxedKernels::with_backend(bk);
        let relaxed_secs = time_secs(reps, || {
            for _ in 0..inner {
                black_box(relaxed.dot(black_box(&x), &a));
            }
        });

        let mut rows = vec![
            ("dot4", dot4_secs, inner),
            ("row_scan_hot", scan_secs, scan_iters),
            ("relaxed_dot", relaxed_secs, inner),
        ];
        if let Some(secs) = stream_secs {
            rows.insert(2, ("row_scan_stream", secs, stream_iters));
        }
        for (kernel, secs, iters) in rows {
            let ns = secs * 1e9 / iters as f64;
            if bk == Backend::Scalar {
                scalar_ns.insert(kernel, ns);
            }
            let speedup = scalar_ns.get(kernel).map_or(f64::NAN, |s| s / ns);
            println!("{kernel:>12} {:>8} {ns:>14.1} {speedup:>9.2}x", bk.name());
            kernels.push(KernelFacts {
                kernel,
                backend: bk.name(),
                ns_per_op: ns,
                speedup_vs_scalar: speedup,
            });
        }
    }
    // Leave the process on the auto-detected backend.
    backend::force(Backend::detect());

    if !quick {
        let baseline = KernelBaseline {
            experiment: "kernel_throughput",
            mode: "full",
            detected_backend: Backend::detect().name(),
            host_features: backend::host_features()
                .into_iter()
                .map(|(name, on)| FeatureFacts {
                    feature: name.to_string(),
                    detected: on,
                })
                .collect(),
            dim: DIM,
            scan_rows_hot,
            scan_rows_stream,
            inner_iters: inner,
            kernels,
        };
        let results_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("results");
        let path = results_dir.join("BENCH_kernels.json");
        let body = serde_json::to_string(&baseline).expect("kernel baseline must serialise");
        std::fs::create_dir_all(&results_dir)
            .and_then(|()| std::fs::write(&path, body + "\n"))
            .expect("failed to write results/BENCH_kernels.json (the committed kernel baseline)");
        println!("wrote {}", path.display());
    }
}
