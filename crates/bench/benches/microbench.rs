//! Criterion micro-benchmarks for the workspace's hot paths:
//! sampling, gradients, activations, privacy accounting, and evaluation.

use advsgm_core::grad::{sgm_negative_grads, sgm_positive_grads};
use advsgm_core::SigmoidKind;
use advsgm_eval::auc::auc_from_scores;
use advsgm_eval::clustering::affinity::{AffinityPropagation, ApParams};
use advsgm_eval::clustering::metrics::mutual_information;
use advsgm_graph::generators::sbm::{degree_corrected_sbm, SbmConfig};
use advsgm_graph::sampling::alias::AliasTable;
use advsgm_graph::sampling::edge_sampler::EdgeBatchSampler;
use advsgm_graph::sampling::negative::{NegativeDistribution, NegativeSampler};
use advsgm_linalg::activations::{exp_clip_sharp, sigmoid, ConstrainedSigmoid};
use advsgm_linalg::rng::{gaussian_vec, seeded};
use advsgm_privacy::subsampled::subsampled_gaussian_epsilon;
use advsgm_privacy::RdpAccountant;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::Rng;

fn fixture_graph() -> advsgm_graph::Graph {
    let mut rng = seeded(42);
    degree_corrected_sbm(
        &SbmConfig {
            num_nodes: 2000,
            num_edges: 10_000,
            num_blocks: 10,
            mixing: 0.15,
            degree_exponent: 2.5,
        },
        &mut rng,
    )
}

fn bench_sampling(c: &mut Criterion) {
    let g = fixture_graph();
    let mut group = c.benchmark_group("sampling");
    group.bench_function("edge_batch_128", |b| {
        let mut s = EdgeBatchSampler::new(g.num_edges()).unwrap();
        let mut rng = seeded(1);
        b.iter(|| {
            let idx = s.sample_indices(128, &mut rng).unwrap();
            black_box(idx.len())
        })
    });
    group.bench_function("negatives_128x5", |b| {
        let s = NegativeSampler::new(&g, NegativeDistribution::Uniform).unwrap();
        let mut rng = seeded(2);
        let pos = &g.edges()[..128];
        b.iter(|| black_box(s.sample_for_batch(pos, 5, &mut rng).len()))
    });
    group.bench_function("alias_table_draws_1k", |b| {
        let mut rng = seeded(3);
        let weights: Vec<f64> = (0..2000).map(|i| 1.0 / (i as f64 + 10.0)).collect();
        let t = AliasTable::new(&weights).unwrap();
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..1000 {
                acc += t.sample(&mut rng);
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_gradients(c: &mut Criterion) {
    let mut rng = seeded(4);
    let vi = gaussian_vec(&mut rng, 0.1, 128);
    let vj = gaussian_vec(&mut rng, 0.1, 128);
    let mut group = c.benchmark_group("gradients");
    for (name, kind) in [
        ("plain", SigmoidKind::Plain),
        ("constrained", SigmoidKind::paper_constrained()),
    ] {
        group.bench_function(format!("positive_pair_r128_{name}"), |b| {
            b.iter(|| black_box(sgm_positive_grads(kind, &vi, &vj)))
        });
        group.bench_function(format!("negative_pair_r128_{name}"), |b| {
            b.iter(|| black_box(sgm_negative_grads(kind, &vi, &vj)))
        });
    }
    group.finish();
}

fn bench_activations(c: &mut Criterion) {
    let mut group = c.benchmark_group("activations");
    group.bench_function("sigmoid_plain", |b| {
        b.iter(|| black_box(sigmoid(black_box(0.37))))
    });
    let s = ConstrainedSigmoid::PAPER_DEFAULT;
    group.bench_function("sigmoid_constrained", |b| {
        b.iter(|| black_box(s.eval(black_box(0.37))))
    });
    group.bench_function("exp_clip_sharp", |b| {
        b.iter(|| black_box(exp_clip_sharp(black_box(1.4), Some(1e-5), Some(120.0))))
    });
    group.finish();
}

fn bench_fused_kernels(c: &mut Criterion) {
    // The fused kernels feed the sharded workers; both must beat (or at
    // worst match) their two-pass equivalents.
    use advsgm_linalg::vector;
    let mut rng = seeded(8);
    let x = gaussian_vec(&mut rng, 1.0, 128);
    let a = gaussian_vec(&mut rng, 1.0, 128);
    let noise = gaussian_vec(&mut rng, 1.0, 128);
    let mut group = c.benchmark_group("fused_kernels");
    group.bench_function("dot2_r128", |b| {
        b.iter(|| black_box(vector::dot2(&x, &a, &noise)))
    });
    group.bench_function("two_dots_r128", |b| {
        b.iter(|| black_box((vector::dot(&x, &a), vector::dot(&x, &noise))))
    });
    group.bench_function("fused_axpy_scale_r128", |b| {
        let mut y = x.clone();
        b.iter(|| {
            vector::fused_axpy_scale(&mut y, 3.0, &noise, 1.0 / 3.0);
            black_box(y[0])
        })
    });
    group.bench_function("axpy_then_scale_r128", |b| {
        let mut y = x.clone();
        b.iter(|| {
            vector::axpy(3.0, &noise, &mut y);
            vector::scale(&mut y, 1.0 / 3.0);
            black_box(y[0])
        })
    });
    group.finish();
}

fn bench_kernel_backends(c: &mut Criterion) {
    // The dispatched kernel surface, timed per backend (DESIGN.md §15):
    // scalar is the reference, the host's native backend the deployed
    // path. `*_with` bypasses the cached global selection so one process
    // can A/B without env games. The committed speedup numbers live in
    // `results/BENCH_kernels.json` (the `kernel_throughput` bench); this
    // group is for interactive criterion runs.
    use advsgm_linalg::backend::{self, Backend, RelaxedKernels};
    let mut rng = seeded(21);
    let x = gaussian_vec(&mut rng, 1.0, 128);
    let a = gaussian_vec(&mut rng, 1.0, 128);
    let bb = gaussian_vec(&mut rng, 1.0, 128);
    let cc = gaussian_vec(&mut rng, 1.0, 128);
    let d = gaussian_vec(&mut rng, 1.0, 128);
    let mut group = c.benchmark_group("kernel_backends");
    for be in Backend::ALL.into_iter().filter(|b| b.is_supported()) {
        group.bench_function(format!("dot4_r128_{be}"), |bch| {
            bch.iter(|| black_box(backend::dot4_with(be, &x, &a, &bb, &cc, &d)))
        });
        group.bench_function(format!("dot2_r128_{be}"), |bch| {
            bch.iter(|| black_box(backend::dot2_with(be, &x, &a, &bb)))
        });
        group.bench_function(format!("fused_axpy_scale_r128_{be}"), |bch| {
            let mut y = x.clone();
            bch.iter(|| {
                backend::fused_axpy_scale_with(be, &mut y, 3.0, &a, 1.0 / 3.0);
                black_box(y[0])
            })
        });
        let relaxed = RelaxedKernels::with_backend(be);
        group.bench_function(format!("relaxed_dot_r128_{be}"), |bch| {
            bch.iter(|| black_box(relaxed.dot(&x, &a)))
        });
    }
    group.finish();
}

fn bench_pool_dispatch(c: &mut Criterion) {
    // Per-region overhead of the scoped pool: what one sharded update pays
    // on top of its gradient math.
    use advsgm_parallel::ThreadPool;
    let data: Vec<f64> = (0..4096).map(|i| i as f64).collect();
    let mut group = c.benchmark_group("pool_dispatch");
    for threads in [1usize, 4] {
        let mut pool = ThreadPool::new(threads);
        group.bench_function(format!("map_chunks_4096_{threads}t"), |b| {
            b.iter(|| {
                let parts = pool.map_chunks(&data, 1024, |_, _, c| c.iter().sum::<f64>());
                black_box(parts.iter().sum::<f64>())
            })
        });
    }
    group.finish();
}

fn bench_privacy(c: &mut Criterion) {
    let mut group = c.benchmark_group("privacy");
    group.bench_function("subsampled_rdp_alpha32", |b| {
        b.iter(|| black_box(subsampled_gaussian_epsilon(5.0, 0.05, 32).unwrap()))
    });
    group.bench_function("accountant_record_cached", |b| {
        let mut acc = RdpAccountant::new();
        acc.record_subsampled_gaussian(5.0, 0.05, 1).unwrap(); // warm cache
        b.iter(|| acc.record_subsampled_gaussian(5.0, 0.05, 1).unwrap())
    });
    group.bench_function("epsilon_query", |b| {
        let mut acc = RdpAccountant::new();
        acc.record_subsampled_gaussian(5.0, 0.05, 500).unwrap();
        b.iter(|| black_box(acc.epsilon(1e-5).unwrap()))
    });
    group.finish();
}

fn bench_eval(c: &mut Criterion) {
    let mut rng = seeded(5);
    let mut group = c.benchmark_group("eval");
    let pos: Vec<f64> = (0..2000).map(|_| rng.gen::<f64>() + 0.2).collect();
    let neg: Vec<f64> = (0..2000).map(|_| rng.gen::<f64>()).collect();
    group.bench_function("auc_2k_vs_2k", |b| {
        b.iter(|| black_box(auc_from_scores(&pos, &neg).unwrap()))
    });
    // Affinity propagation on 150 clusterable points.
    let pts: Vec<Vec<f64>> = (0..150)
        .map(|i| {
            let c = (i % 3) as f64 * 8.0;
            vec![
                c + advsgm_linalg::rng::gaussian(&mut rng, 0.5),
                c + advsgm_linalg::rng::gaussian(&mut rng, 0.5),
            ]
        })
        .collect();
    let views: Vec<&[f64]> = pts.iter().map(|p| p.as_slice()).collect();
    group.bench_function("affinity_propagation_150pts", |b| {
        b.iter(|| {
            let mut r = seeded(6);
            black_box(
                AffinityPropagation::fit(&views, &ApParams::default(), &mut r)
                    .unwrap()
                    .num_clusters(),
            )
        })
    });
    let a: Vec<usize> = (0..5000).map(|i| i % 7).collect();
    let b_lab: Vec<usize> = (0..5000).map(|i| (i / 3) % 5).collect();
    group.bench_function("mutual_information_5k", |b| {
        b.iter(|| black_box(mutual_information(&a, &b_lab).unwrap()))
    });
    group.finish();
}

fn bench_graphgen(c: &mut Criterion) {
    let mut group = c.benchmark_group("graphgen");
    group.sample_size(10);
    group.bench_function("dcsbm_2k_nodes_10k_edges", |b| {
        b.iter(|| {
            let mut rng = seeded(7);
            black_box(fixture_graph_with(&mut rng).num_edges())
        })
    });
    group.finish();
}

fn fixture_graph_with(rng: &mut impl Rng) -> advsgm_graph::Graph {
    degree_corrected_sbm(
        &SbmConfig {
            num_nodes: 2000,
            num_edges: 10_000,
            num_blocks: 10,
            mixing: 0.15,
            degree_exponent: 2.5,
        },
        rng,
    )
}

criterion_group!(
    benches,
    bench_sampling,
    bench_gradients,
    bench_activations,
    bench_fused_kernels,
    bench_kernel_backends,
    bench_pool_dispatch,
    bench_privacy,
    bench_eval,
    bench_graphgen
);
criterion_main!(benches);
