//! Shared experiment runners: synthesize → train → evaluate.

use std::error::Error;

use advsgm_baselines::{BaselineConfig, Dpar, DpgGan, DpgVae, Gap};
use advsgm_core::{AdvSgmConfig, ModelVariant, Trainer};
use advsgm_datasets::{synthesize, DatasetSpec};
use advsgm_eval::clustering::affinity::{AffinityPropagation, ApParams};
use advsgm_eval::clustering::metrics::mutual_information;
use advsgm_eval::linkpred::evaluate_split;
use advsgm_graph::partition::link_prediction_split;
use advsgm_graph::Graph;
use advsgm_linalg::rng::{derive_seed, seeded};
use advsgm_linalg::DenseMatrix;

/// A method evaluated in Figs. 3–4: either one of our skip-gram variants
/// or one of the external baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// A skip-gram variant from `advsgm-core`.
    Variant(ModelVariant),
    /// DPGGAN (Yang et al. 2021).
    DpgGan,
    /// DPGVAE (Yang et al. 2021).
    DpgVae,
    /// GAP (Sajadmanesh et al. 2023).
    Gap,
    /// DPAR (Zhang et al. 2024).
    Dpar,
}

impl Method {
    /// Display name matching the paper's legends.
    pub fn name(&self) -> String {
        match self {
            Method::Variant(v) => v.paper_name().to_string(),
            Method::DpgGan => "DPGGAN".into(),
            Method::DpgVae => "DPGVAE".into(),
            Method::Gap => "GAP".into(),
            Method::Dpar => "DPAR".into(),
        }
    }

    /// The five private methods of Figs. 3–4, in legend order.
    pub fn figure_methods() -> [Method; 5] {
        [
            Method::DpgGan,
            Method::DpgVae,
            Method::Gap,
            Method::Dpar,
            Method::Variant(ModelVariant::AdvSgm),
        ]
    }
}

/// The scale-adjusted default batch size: `B = 128 * scale`, floored at 16.
///
/// Scaling `B` with the dataset keeps the paper's privacy-amplification
/// geometry — both Theorem-7 rates `B/|E|` and `Bk/|V|` match the
/// full-size experiment, so per-budget iteration counts are comparable.
pub fn scaled_batch(scale: f64) -> usize {
    ((128.0 * scale) as usize).max(16)
}

/// Trains a skip-gram variant on a 90/10 split of the synthesized dataset
/// and returns the link-prediction AUC. `tweak` mutates the paper-default
/// configuration (learning rate, batch, epsilon, ... — the sweep knob).
///
/// # Errors
/// Propagates synthesis/training/evaluation failures.
pub fn variant_auc(
    spec: &DatasetSpec,
    variant: ModelVariant,
    run_seed: u64,
    tweak: &dyn Fn(&mut AdvSgmConfig),
) -> Result<f64, Box<dyn Error>> {
    let graph = synthesize(spec, run_seed);
    let mut rng = seeded(derive_seed(run_seed, 0x5711));
    let split = link_prediction_split(&graph, 0.10, &mut rng)?;
    let mut cfg = AdvSgmConfig::for_variant(variant);
    cfg.seed = derive_seed(run_seed, 0x7124);
    tweak(&mut cfg);
    let out = Trainer::fit(&split.train, cfg)?;
    Ok(evaluate_split(&out.node_vectors, &split)?)
}

/// Trains a variant on the full labeled graph, clusters the embeddings
/// with Affinity Propagation, and returns the MI against the class labels.
///
/// # Errors
/// Fails if the dataset has no labels, or on training/clustering errors.
pub fn variant_mi(
    spec: &DatasetSpec,
    variant: ModelVariant,
    run_seed: u64,
    tweak: &dyn Fn(&mut AdvSgmConfig),
) -> Result<f64, Box<dyn Error>> {
    let graph = synthesize(spec, run_seed);
    let mut cfg = AdvSgmConfig::for_variant(variant);
    cfg.seed = derive_seed(run_seed, 0x7125);
    tweak(&mut cfg);
    let out = Trainer::fit(&graph, cfg)?;
    clustering_mi(&graph, &out.node_vectors, run_seed)
}

/// Runs a baseline method for link prediction.
///
/// # Errors
/// Propagates synthesis/training/evaluation failures.
pub fn baseline_auc(
    spec: &DatasetSpec,
    method: Method,
    epsilon: f64,
    epochs: Option<usize>,
    batch: Option<usize>,
    run_seed: u64,
) -> Result<f64, Box<dyn Error>> {
    if let Method::Variant(v) = method {
        return variant_auc(spec, v, run_seed, &|cfg| {
            cfg.epsilon = epsilon;
            if let Some(e) = epochs {
                cfg.epochs = e;
            }
            if let Some(b) = batch {
                cfg.batch_size = b;
            }
        });
    }
    let graph = synthesize(spec, run_seed);
    let mut rng = seeded(derive_seed(run_seed, 0x5712));
    let split = link_prediction_split(&graph, 0.10, &mut rng)?;
    let emb = train_baseline(&split.train, method, epsilon, epochs, batch, run_seed)?;
    Ok(evaluate_split(&emb, &split)?)
}

/// Runs a baseline method for node clustering (MI).
///
/// # Errors
/// Propagates synthesis/training/clustering failures.
pub fn baseline_mi(
    spec: &DatasetSpec,
    method: Method,
    epsilon: f64,
    epochs: Option<usize>,
    batch: Option<usize>,
    run_seed: u64,
) -> Result<f64, Box<dyn Error>> {
    if let Method::Variant(v) = method {
        return variant_mi(spec, v, run_seed, &|cfg| {
            cfg.epsilon = epsilon;
            if let Some(e) = epochs {
                cfg.epochs = e;
            }
            if let Some(b) = batch {
                cfg.batch_size = b;
            }
        });
    }
    let graph = synthesize(spec, run_seed);
    let emb = train_baseline(&graph, method, epsilon, epochs, batch, run_seed)?;
    clustering_mi(&graph, &emb, run_seed)
}

fn train_baseline(
    graph: &Graph,
    method: Method,
    epsilon: f64,
    epochs: Option<usize>,
    batch: Option<usize>,
    run_seed: u64,
) -> Result<DenseMatrix, Box<dyn Error>> {
    let mut cfg = BaselineConfig {
        epsilon,
        seed: derive_seed(run_seed, 0xBA5E),
        ..BaselineConfig::default()
    };
    if let Some(e) = epochs {
        cfg.epochs = e;
    }
    if let Some(b) = batch {
        cfg.batch_size = b;
    }
    let emb = match method {
        Method::DpgGan => DpgGan::train(graph, &cfg)?,
        Method::DpgVae => DpgVae::train(graph, &cfg)?,
        Method::Gap => Gap::default().train(graph, &cfg)?,
        Method::Dpar => Dpar::default().train(graph, &cfg)?,
        Method::Variant(_) => unreachable!("variant handled by caller"),
    };
    Ok(emb)
}

/// Clusters embeddings with Affinity Propagation (the paper's clusterer)
/// and scores MI against the graph labels, restricted to the clustered
/// subsample when AP capped the problem size.
///
/// # Errors
/// Fails on unlabeled graphs or clustering errors.
pub fn clustering_mi(
    graph: &Graph,
    embeddings: &DenseMatrix,
    run_seed: u64,
) -> Result<f64, Box<dyn Error>> {
    let labels = graph.labels().ok_or("clustering needs a labeled dataset")?;
    let views: Vec<&[f64]> = (0..embeddings.rows()).map(|i| embeddings.row(i)).collect();
    let params = ApParams {
        max_points: 1200,
        max_iter: 200,
        ..ApParams::default()
    };
    let mut rng = seeded(derive_seed(run_seed, 0xC1D5));
    let ap = AffinityPropagation::fit(&views, &params, &mut rng)?;
    let truth: Vec<usize> = ap
        .point_indices
        .iter()
        .map(|&i| labels[i] as usize)
        .collect();
    Ok(mutual_information(&truth, &ap.assignments)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use advsgm_datasets::Dataset;

    fn tiny(spec: &DatasetSpec) -> DatasetSpec {
        spec.scaled(0.05)
    }

    fn fast(cfg: &mut AdvSgmConfig) {
        cfg.dim = 16;
        cfg.epochs = 2;
        cfg.disc_iters = 3;
        cfg.gen_iters = 1;
        cfg.batch_size = 32;
    }

    #[test]
    fn variant_auc_in_range() {
        let spec = tiny(&Dataset::Ppi.spec());
        let auc = variant_auc(&spec, ModelVariant::AdvSgm, 1, &fast).unwrap();
        assert!((0.0..=1.0).contains(&auc), "auc={auc}");
    }

    #[test]
    fn variant_mi_nonnegative() {
        let spec = tiny(&Dataset::Ppi.spec());
        let mi = variant_mi(&spec, ModelVariant::Sgm, 1, &fast).unwrap();
        assert!(mi >= 0.0);
    }

    #[test]
    fn baseline_auc_runs_for_all_methods() {
        let spec = tiny(&Dataset::Facebook.spec());
        for m in Method::figure_methods() {
            let auc = baseline_auc(&spec, m, 6.0, Some(2), Some(16), 1).unwrap();
            assert!((0.0..=1.0).contains(&auc), "{}: auc={auc}", m.name());
        }
    }

    #[test]
    fn mi_requires_labels() {
        let spec = tiny(&Dataset::Facebook.spec()); // unlabeled
        assert!(baseline_mi(&spec, Method::Gap, 6.0, Some(2), Some(16), 1).is_err());
    }

    #[test]
    fn method_names() {
        assert_eq!(Method::DpgGan.name(), "DPGGAN");
        assert_eq!(Method::Variant(ModelVariant::AdvSgm).name(), "AdvSGM");
        assert_eq!(Method::figure_methods().len(), 5);
    }
}
