//! Table formatting and JSON result records.

use std::io::Write;
use std::path::PathBuf;

use serde::Serialize;

/// One experiment measurement, serialised to `results/<experiment>.jsonl`.
#[derive(Debug, Clone, Serialize)]
pub struct Record {
    /// Experiment id (`fig2`, `table5`, ...).
    pub experiment: String,
    /// Dataset name.
    pub dataset: String,
    /// Method / variant / lambda label.
    pub method: String,
    /// Swept parameter name (`epsilon`, `eta`, `B`, `b`, ...).
    pub parameter: String,
    /// Swept parameter value.
    pub value: f64,
    /// Metric name (`auc`, `mi`, `abs_loss`).
    pub metric: String,
    /// Mean over runs.
    pub mean: f64,
    /// Sample standard deviation over runs.
    pub std: f64,
    /// Number of runs.
    pub runs: u64,
    /// Dataset scale used.
    pub scale: f64,
}

/// Appends records to `results/<experiment>.jsonl` relative to the
/// current directory (directory created on demand) — the paper-artifact
/// binaries run from the workspace root, so records land in the
/// top-level `results/`. Criterion benches, whose working directory is
/// the *package* root, should use [`append_jsonl_at`] with an anchored
/// path instead. I/O failures are reported to stderr but never abort an
/// experiment that already computed its numbers.
pub fn append_jsonl(experiment: &str, records: &[Record]) {
    append_jsonl_at(PathBuf::from("results"), experiment, records);
}

/// [`append_jsonl`] with an explicit results directory, for callers whose
/// working directory is not the workspace root.
pub fn append_jsonl_at(dir: PathBuf, experiment: &str, records: &[Record]) {
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create results dir: {e}");
        return;
    }
    let path = dir.join(format!("{experiment}.jsonl"));
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path);
    match file {
        Err(e) => eprintln!("warning: cannot open {}: {e}", path.display()),
        Ok(mut f) => {
            for r in records {
                match serde_json::to_string(r) {
                    Ok(line) => {
                        if let Err(e) = writeln!(f, "{line}") {
                            eprintln!("warning: write failed: {e}");
                            return;
                        }
                    }
                    Err(e) => eprintln!("warning: serialise failed: {e}"),
                }
            }
        }
    }
}

/// Prints an aligned text table.
pub fn print_table(title: &str, headers: &[String], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (c, cell) in row.iter().enumerate().take(cols) {
            widths[c] = widths[c].max(cell.len());
        }
    }
    let print_row = |cells: &[String]| {
        let line: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(c, cell)| {
                format!(
                    "{cell:<width$}",
                    width = widths.get(c).copied().unwrap_or(8)
                )
            })
            .collect();
        println!("| {} |", line.join(" | "));
    };
    print_row(headers);
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("|-{}-|", sep.join("-|-"));
    for row in rows {
        print_row(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_serialises() {
        let r = Record {
            experiment: "table5".into(),
            dataset: "PPI".into(),
            method: "AdvSGM".into(),
            parameter: "epsilon".into(),
            value: 6.0,
            metric: "auc".into(),
            mean: 0.6095,
            std: 0.0101,
            runs: 5,
            scale: 1.0,
        };
        let s = serde_json::to_string(&r).unwrap();
        assert!(s.contains("\"auc\""));
        assert!(s.contains("0.6095"));
    }

    #[test]
    fn print_table_does_not_panic() {
        print_table(
            "demo",
            &["a".into(), "b".into()],
            &[vec!["1".into(), "longer".into()]],
        );
    }
}
