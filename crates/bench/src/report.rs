//! Table formatting and JSON result records.

use std::io::Write;
use std::path::PathBuf;

use serde::Serialize;

/// One experiment measurement, serialised to `results/<experiment>.jsonl`.
#[derive(Debug, Clone, Serialize)]
pub struct Record {
    /// Experiment id (`fig2`, `table5`, ...).
    pub experiment: String,
    /// Dataset name.
    pub dataset: String,
    /// Method / variant / lambda label.
    pub method: String,
    /// Swept parameter name (`epsilon`, `eta`, `B`, `b`, ...).
    pub parameter: String,
    /// Swept parameter value.
    pub value: f64,
    /// Metric name (`auc`, `mi`, `abs_loss`).
    pub metric: String,
    /// Mean over runs.
    pub mean: f64,
    /// Sample standard deviation over runs.
    pub std: f64,
    /// Number of runs.
    pub runs: u64,
    /// Dataset scale used.
    pub scale: f64,
}

/// Appends records to `results/<experiment>.jsonl` relative to the
/// current directory (directory created on demand) — the paper-artifact
/// binaries run from the workspace root, so records land in the
/// top-level `results/`. Criterion benches, whose working directory is
/// the *package* root, should use [`append_jsonl_at`] with an anchored
/// path instead.
///
/// # Errors
/// Any directory-creation, open, or write failure. Callers must surface
/// the error — a bench whose records silently vanish leaves no perf
/// trajectory on disk, which is worse than a loud failure after the
/// numbers were printed.
pub fn append_jsonl(experiment: &str, records: &[Record]) -> std::io::Result<()> {
    append_jsonl_at(PathBuf::from("results"), experiment, records)
}

/// [`append_jsonl`] with an explicit results directory, for callers whose
/// working directory is not the workspace root.
///
/// # Errors
/// Any directory-creation, open, serialisation, or write failure.
pub fn append_jsonl_at(dir: PathBuf, experiment: &str, records: &[Record]) -> std::io::Result<()> {
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{experiment}.jsonl"));
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)?;
    for r in records {
        let line = serde_json::to_string(r).map_err(std::io::Error::other)?;
        writeln!(file, "{line}")?;
    }
    Ok(())
}

/// Prints an aligned text table.
pub fn print_table(title: &str, headers: &[String], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (c, cell) in row.iter().enumerate().take(cols) {
            widths[c] = widths[c].max(cell.len());
        }
    }
    let print_row = |cells: &[String]| {
        let line: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(c, cell)| {
                format!(
                    "{cell:<width$}",
                    width = widths.get(c).copied().unwrap_or(8)
                )
            })
            .collect();
        println!("| {} |", line.join(" | "));
    };
    print_row(headers);
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("|-{}-|", sep.join("-|-"));
    for row in rows {
        print_row(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_serialises() {
        let r = Record {
            experiment: "table5".into(),
            dataset: "PPI".into(),
            method: "AdvSGM".into(),
            parameter: "epsilon".into(),
            value: 6.0,
            metric: "auc".into(),
            mean: 0.6095,
            std: 0.0101,
            runs: 5,
            scale: 1.0,
        };
        let s = serde_json::to_string(&r).unwrap();
        assert!(s.contains("\"auc\""));
        assert!(s.contains("0.6095"));
    }

    #[test]
    fn print_table_does_not_panic() {
        print_table(
            "demo",
            &["a".into(), "b".into()],
            &[vec!["1".into(), "longer".into()]],
        );
    }
}
