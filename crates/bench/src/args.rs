//! Minimal CLI argument parsing for the experiment binaries.
//!
//! Hand-rolled on purpose: the binaries need four flags, which does not
//! justify a CLI dependency outside the sanctioned crate set.

/// Common experiment options.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchArgs {
    /// Dataset scale in `(0, 1]` (1.0 = the paper's published sizes).
    pub scale: f64,
    /// Independent repetitions per cell (the paper uses 5).
    pub runs: u64,
    /// Base seed.
    pub seed: u64,
    /// Optional training-epoch override (`n_epoch`).
    pub epochs: Option<usize>,
    /// Optional dataset filter (lower-case paper names).
    pub datasets: Option<Vec<String>>,
}

impl Default for BenchArgs {
    fn default() -> Self {
        Self {
            scale: 0.1,
            runs: 2,
            seed: 42,
            epochs: None,
            datasets: None,
        }
    }
}

impl BenchArgs {
    /// Whether `name` passes the `--datasets` filter.
    pub fn wants_dataset(&self, name: &str) -> bool {
        match &self.datasets {
            None => true,
            Some(list) => list.iter().any(|d| d == &name.to_ascii_lowercase()),
        }
    }
}

impl BenchArgs {
    /// Parses `--scale`, `--runs`, `--seed`, `--epochs` from an iterator of
    /// argument tokens (typically `std::env::args().skip(1)`).
    ///
    /// # Errors
    /// Returns a human-readable message on unknown flags or bad values.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut out = Self::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut value_for = |name: &str| -> Result<String, String> {
                it.next().ok_or_else(|| format!("{name} needs a value"))
            };
            match flag.as_str() {
                "--scale" => {
                    out.scale = value_for("--scale")?
                        .parse()
                        .map_err(|e| format!("--scale: {e}"))?;
                    if !(out.scale > 0.0 && out.scale <= 1.0) {
                        return Err(format!("--scale must be in (0,1], got {}", out.scale));
                    }
                }
                "--runs" => {
                    out.runs = value_for("--runs")?
                        .parse()
                        .map_err(|e| format!("--runs: {e}"))?;
                    if out.runs == 0 {
                        return Err("--runs must be positive".into());
                    }
                }
                "--seed" => {
                    out.seed = value_for("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?;
                }
                "--epochs" => {
                    let v: usize = value_for("--epochs")?
                        .parse()
                        .map_err(|e| format!("--epochs: {e}"))?;
                    out.epochs = Some(v);
                }
                "--datasets" => {
                    let list: Vec<String> = value_for("--datasets")?
                        .split(',')
                        .map(|s| s.trim().to_ascii_lowercase())
                        .filter(|s| !s.is_empty())
                        .collect();
                    if list.is_empty() {
                        return Err("--datasets needs at least one name".into());
                    }
                    out.datasets = Some(list);
                }
                "--help" | "-h" => {
                    return Err(
                        "usage: [--scale f64] [--runs n] [--seed n] [--epochs n] [--datasets a,b]"
                            .into(),
                    )
                }
                other => return Err(format!("unknown flag {other}")),
            }
        }
        Ok(out)
    }

    /// Parses the process arguments, exiting with a message on error.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(a) => a,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<BenchArgs, String> {
        BenchArgs::parse(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_when_empty() {
        let a = parse(&[]).unwrap();
        assert_eq!(a, BenchArgs::default());
    }

    #[test]
    fn parses_all_flags() {
        let a = parse(&[
            "--scale", "0.5", "--runs", "5", "--seed", "7", "--epochs", "10",
        ])
        .unwrap();
        assert_eq!(a.scale, 0.5);
        assert_eq!(a.runs, 5);
        assert_eq!(a.seed, 7);
        assert_eq!(a.epochs, Some(10));
    }

    #[test]
    fn rejects_bad_scale() {
        assert!(parse(&["--scale", "0"]).is_err());
        assert!(parse(&["--scale", "1.5"]).is_err());
        assert!(parse(&["--scale", "abc"]).is_err());
    }

    #[test]
    fn rejects_unknown_flag() {
        assert!(parse(&["--what"]).is_err());
    }

    #[test]
    fn rejects_missing_value() {
        assert!(parse(&["--runs"]).is_err());
    }

    #[test]
    fn help_is_an_error_message() {
        let e = parse(&["--help"]).unwrap_err();
        assert!(e.contains("usage"));
    }

    #[test]
    fn dataset_filter() {
        let a = parse(&["--datasets", "PPI, blog"]).unwrap();
        assert!(a.wants_dataset("ppi"));
        assert!(a.wants_dataset("Blog"));
        assert!(!a.wants_dataset("wiki"));
        let b = parse(&[]).unwrap();
        assert!(b.wants_dataset("anything"));
    }
}
