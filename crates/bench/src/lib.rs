//! # advsgm-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! AdvSGM paper's evaluation section (see DESIGN.md §3 for the index):
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig2_weight_settings` | Fig. 2 — effect of the module weight lambda |
//! | `table2_learning_rate` | Table II — AUC vs eta |
//! | `table3_batch_size` | Table III — AUC vs B |
//! | `table4_bound_b` | Table IV — AUC vs constrained-sigmoid bound b |
//! | `table5_private_skipgram` | Table V — private skip-gram comparison |
//! | `fig3_link_prediction` | Fig. 3 — AUC vs epsilon, five methods |
//! | `fig4_node_clustering` | Fig. 4 — MI vs epsilon, five methods |
//!
//! Every binary accepts `--scale`, `--runs`, `--seed` (and where relevant
//! `--epochs`); each prints a formatted table *and* appends JSON records to
//! `results/<name>.jsonl` for EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod harness;
pub mod report;

pub use args::BenchArgs;
pub use harness::{baseline_auc, baseline_mi, variant_auc, variant_mi, Method};
pub use report::{append_jsonl, append_jsonl_at, print_table, Record};
