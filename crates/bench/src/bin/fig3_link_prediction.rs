//! Fig. 3 — impact of the privacy budget on link prediction.
//!
//! AUC vs `epsilon` in {1,...,6} for DPGGAN, DPGVAE, GAP, DPAR and AdvSGM
//! on all six datasets. Use `--datasets ppi,facebook,wiki,blog` to skip the
//! two largest graphs for a quick pass.

use advsgm_bench::{append_jsonl, harness::baseline_auc, print_table, BenchArgs, Method, Record};
use advsgm_datasets::Dataset;
use advsgm_linalg::stats::Summary;

fn main() {
    let args = BenchArgs::from_env();
    let epsilons = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
    let mut records = Vec::new();
    for ds in Dataset::link_prediction_sets() {
        if !args.wants_dataset(ds.name()) {
            continue;
        }
        let spec = ds.spec().scaled(args.scale);
        let mut rows = Vec::new();
        for method in Method::figure_methods() {
            let mut cells = vec![method.name()];
            for &eps in &epsilons {
                let vals: Vec<f64> = (0..args.runs)
                    .map(|run| {
                        baseline_auc(
                            &spec,
                            method,
                            eps,
                            args.epochs,
                            Some(advsgm_bench::harness::scaled_batch(args.scale)),
                            args.seed.wrapping_add(run),
                        )
                        .expect("run failed")
                    })
                    .collect();
                let s = Summary::of(&vals);
                cells.push(format!("{:.4}", s.mean));
                records.push(Record {
                    experiment: "fig3".into(),
                    dataset: ds.name().into(),
                    method: method.name(),
                    parameter: "epsilon".into(),
                    value: eps,
                    metric: "auc".into(),
                    mean: s.mean,
                    std: s.std,
                    runs: args.runs,
                    scale: args.scale,
                });
            }
            rows.push(cells);
        }
        print_table(
            &format!("Fig. 3 ({}): link-prediction AUC vs epsilon", ds.name()),
            &[
                "method".into(),
                "eps=1".into(),
                "eps=2".into(),
                "eps=3".into(),
                "eps=4".into(),
                "eps=5".into(),
                "eps=6".into(),
            ],
            &rows,
        );
    }
    append_jsonl("fig3", &records)
        .expect("failed to append results/fig3.jsonl (bench records must not vanish silently)");
    println!("\npaper shape check: AdvSGM on top at every epsilon; DPAR second; all methods near 0.5 at eps=1");
}
