//! Ablation — noise-calibration readings of `N(C^2 sigma^2 I)`.
//!
//! The reproduction's central fidelity finding (DESIGN.md §6): under the
//! strict per-coordinate Gaussian-mechanism calibration (noise std
//! `C*sigma` per coordinate, i.e. textbook DPSGD), **no** private variant
//! can learn anything at the paper's `sigma = 5` — each clipped summand has
//! norm <= C while the noise vector's norm is `C*sigma*sqrt(r)`. The
//! paper's own DP-SGM/DP-ASGM rows (~0.505 at every epsilon) exhibit
//! exactly this collapse, yet its AdvSGM rows do not — which is only
//! consistent with AdvSGM's activation-level noise having a much smaller
//! gradient-level footprint. This binary shows both readings side by side.

use advsgm_bench::{append_jsonl, harness::variant_auc, print_table, BenchArgs, Record};
use advsgm_core::ModelVariant;
use advsgm_datasets::Dataset;
use advsgm_linalg::stats::Summary;

fn main() {
    let args = BenchArgs::from_env();
    let datasets = [Dataset::Ppi, Dataset::Facebook];
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for ds in datasets {
        if !args.wants_dataset(ds.name()) {
            continue;
        }
        let spec = ds.spec().scaled(args.scale);
        for (label, faithful) in [("activation reading", false), ("faithful DPSGD", true)] {
            let mut cells = vec![ds.name().to_string(), label.to_string()];
            for eps in [2.0, 6.0] {
                let vals: Vec<f64> = (0..args.runs)
                    .map(|run| {
                        variant_auc(
                            &spec,
                            ModelVariant::AdvSgm,
                            args.seed.wrapping_add(run),
                            &|cfg| {
                                cfg.epsilon = eps;
                                cfg.faithful_noise = faithful;
                                cfg.batch_size = advsgm_bench::harness::scaled_batch(args.scale);
                                if let Some(e) = args.epochs {
                                    cfg.epochs = e;
                                }
                            },
                        )
                        .expect("run failed")
                    })
                    .collect();
                let s = Summary::of(&vals);
                cells.push(format!("{:.4}", s.mean));
                records.push(Record {
                    experiment: "ablation_noise".into(),
                    dataset: ds.name().into(),
                    method: format!("AdvSGM[{label}]"),
                    parameter: "epsilon".into(),
                    value: eps,
                    metric: "auc".into(),
                    mean: s.mean,
                    std: s.std,
                    runs: args.runs,
                    scale: args.scale,
                });
            }
            rows.push(cells);
        }
    }
    print_table(
        "Ablation: AdvSGM under the two noise-calibration readings",
        &[
            "dataset".into(),
            "calibration".into(),
            "AUC eps=2".into(),
            "AUC eps=6".into(),
        ],
        &rows,
    );
    append_jsonl("ablation_noise", &records).expect(
        "failed to append results/ablation_noise.jsonl (bench records must not vanish silently)",
    );
    println!("\nexpected: the faithful DPSGD reading pins AUC at ~0.5 at every epsilon.");
}
