//! Table V — comparison between private skip-gram models.
//!
//! AUC on PPI/Facebook/Blog and clustering MI on PPI/Blog for:
//! SGM(No DP), AdvSGM(No DP), and DP-SGM / DP-ASGM / AdvSGM at each
//! `epsilon` in {1,...,6}.

use advsgm_bench::{append_jsonl, harness, print_table, BenchArgs, Record};
use advsgm_core::{AdvSgmConfig, ModelVariant};
use advsgm_datasets::Dataset;
use advsgm_linalg::stats::Summary;

fn main() {
    let args = BenchArgs::from_env();
    let auc_sets = [Dataset::Ppi, Dataset::Facebook, Dataset::Blog];
    let mi_sets = [Dataset::Ppi, Dataset::Blog];
    let mut rows = Vec::new();
    let mut records = Vec::new();

    let measure = |label: String,
                   variant: ModelVariant,
                   epsilon: Option<f64>,
                   rows: &mut Vec<Vec<String>>,
                   records: &mut Vec<Record>| {
        let mut cells = vec![label.clone()];
        let tweak = |cfg: &mut AdvSgmConfig| {
            if let Some(e) = epsilon {
                cfg.epsilon = e;
            }
            if let Some(e) = args.epochs {
                cfg.epochs = e;
            }
            cfg.batch_size = advsgm_bench::harness::scaled_batch(args.scale);
        };
        for ds in auc_sets {
            if !args.wants_dataset(ds.name()) {
                cells.push("-".into());
                continue;
            }
            let spec = ds.spec().scaled(args.scale);
            let vals: Vec<f64> = (0..args.runs)
                .map(|run| {
                    harness::variant_auc(&spec, variant, args.seed.wrapping_add(run), &tweak)
                        .expect("auc run failed")
                })
                .collect();
            let s = Summary::of(&vals);
            cells.push(format!("{:.4}", s.mean));
            records.push(Record {
                experiment: "table5".into(),
                dataset: ds.name().into(),
                method: label.clone(),
                parameter: "epsilon".into(),
                value: epsilon.unwrap_or(f64::INFINITY),
                metric: "auc".into(),
                mean: s.mean,
                std: s.std,
                runs: args.runs,
                scale: args.scale,
            });
        }
        for ds in mi_sets {
            if !args.wants_dataset(ds.name()) {
                cells.push("-".into());
                continue;
            }
            let spec = ds.spec().scaled(args.scale);
            let vals: Vec<f64> = (0..args.runs)
                .map(|run| {
                    harness::variant_mi(&spec, variant, args.seed.wrapping_add(run), &tweak)
                        .expect("mi run failed")
                })
                .collect();
            let s = Summary::of(&vals);
            cells.push(format!("{:.4}", s.mean));
            records.push(Record {
                experiment: "table5".into(),
                dataset: ds.name().into(),
                method: label.clone(),
                parameter: "epsilon".into(),
                value: epsilon.unwrap_or(f64::INFINITY),
                metric: "mi".into(),
                mean: s.mean,
                std: s.std,
                runs: args.runs,
                scale: args.scale,
            });
        }
        rows.push(cells);
    };

    measure(
        "SGM(No DP)".into(),
        ModelVariant::Sgm,
        None,
        &mut rows,
        &mut records,
    );
    measure(
        "AdvSGM(No DP)".into(),
        ModelVariant::AdvSgmNoDp,
        None,
        &mut rows,
        &mut records,
    );
    for eps in 1..=6 {
        for variant in [
            ModelVariant::DpSgm,
            ModelVariant::DpAsgm,
            ModelVariant::AdvSgm,
        ] {
            measure(
                format!("{}(eps={eps})", variant.paper_name()),
                variant,
                Some(eps as f64),
                &mut rows,
                &mut records,
            );
        }
    }
    print_table(
        "Table V: AUC / MI by private skip-gram model",
        &[
            "algorithm".into(),
            "AUC PPI".into(),
            "AUC Facebook".into(),
            "AUC Blog".into(),
            "MI PPI".into(),
            "MI Blog".into(),
        ],
        &rows,
    );
    append_jsonl("table5", &records)
        .expect("failed to append results/table5.jsonl (bench records must not vanish silently)");
    println!("\npaper shape check: AdvSGM(No DP) > SGM(No DP); AdvSGM >> DP-SGM/DP-ASGM at every epsilon; AdvSGM grows with epsilon");
}
