//! Table II — AUC vs learning rate `eta_d = eta_g`, at `epsilon = 6`.
//!
//! Sweeps eta over {0.01, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3} on PPI,
//! Facebook and Blog; the paper's optimum is 0.1 on all three.

use advsgm_bench::{append_jsonl, harness::variant_auc, print_table, BenchArgs, Record};
use advsgm_core::ModelVariant;
use advsgm_datasets::Dataset;
use advsgm_linalg::stats::Summary;

fn main() {
    let args = BenchArgs::from_env();
    let etas = [0.01, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3];
    let datasets = [Dataset::Ppi, Dataset::Facebook, Dataset::Blog];
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for &eta in &etas {
        let mut cells = vec![format!("{eta}")];
        for ds in datasets {
            if !args.wants_dataset(ds.name()) {
                cells.push("-".into());
                continue;
            }
            let spec = ds.spec().scaled(args.scale);
            let mut vals = Vec::new();
            for run in 0..args.runs {
                let auc = variant_auc(
                    &spec,
                    ModelVariant::AdvSgm,
                    args.seed.wrapping_add(run),
                    &|cfg| {
                        cfg.eta_d = eta;
                        cfg.eta_g = eta;
                        cfg.epsilon = 6.0;
                        cfg.batch_size = advsgm_bench::harness::scaled_batch(args.scale);
                        if let Some(e) = args.epochs {
                            cfg.epochs = e;
                        }
                    },
                )
                .expect("run failed");
                vals.push(auc);
            }
            let s = Summary::of(&vals);
            cells.push(s.to_string());
            records.push(Record {
                experiment: "table2".into(),
                dataset: ds.name().into(),
                method: "AdvSGM".into(),
                parameter: "eta".into(),
                value: eta,
                metric: "auc".into(),
                mean: s.mean,
                std: s.std,
                runs: args.runs,
                scale: args.scale,
            });
        }
        rows.push(cells);
    }
    print_table(
        "Table II: AUC vs learning rate (epsilon = 6)",
        &["eta".into(), "PPI".into(), "Facebook".into(), "Blog".into()],
        &rows,
    );
    append_jsonl("table2", &records)
        .expect("failed to append results/table2.jsonl (bench records must not vanish silently)");
    println!("\npaper shape check: peak near eta = 0.1, decay toward 0.01 and 0.3");
}
