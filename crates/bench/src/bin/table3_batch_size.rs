//! Table III — AUC vs batch size `B`, at `epsilon = 6`.
//!
//! Sweeps B over {16, 32, 64, 128, 256, 512}; the paper's optimum is 128
//! on PPI/Facebook, with Blog still improving at 512.

use advsgm_bench::{append_jsonl, harness::variant_auc, print_table, BenchArgs, Record};
use advsgm_core::ModelVariant;
use advsgm_datasets::Dataset;
use advsgm_linalg::stats::Summary;

fn main() {
    let args = BenchArgs::from_env();
    let batches = [16usize, 32, 64, 128, 256, 512];
    let datasets = [Dataset::Ppi, Dataset::Facebook, Dataset::Blog];
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for &b in &batches {
        let mut cells = vec![format!("{b}")];
        for ds in datasets {
            if !args.wants_dataset(ds.name()) {
                cells.push("-".into());
                continue;
            }
            let spec = ds.spec().scaled(args.scale);
            let mut vals = Vec::new();
            for run in 0..args.runs {
                let auc = variant_auc(
                    &spec,
                    ModelVariant::AdvSgm,
                    args.seed.wrapping_add(run),
                    &|cfg| {
                        cfg.batch_size = b;
                        cfg.epsilon = 6.0;
                        if let Some(e) = args.epochs {
                            cfg.epochs = e;
                        }
                    },
                )
                .expect("run failed");
                vals.push(auc);
            }
            let s = Summary::of(&vals);
            cells.push(s.to_string());
            records.push(Record {
                experiment: "table3".into(),
                dataset: ds.name().into(),
                method: "AdvSGM".into(),
                parameter: "B".into(),
                value: b as f64,
                metric: "auc".into(),
                mean: s.mean,
                std: s.std,
                runs: args.runs,
                scale: args.scale,
            });
        }
        rows.push(cells);
    }
    print_table(
        "Table III: AUC vs batch size (epsilon = 6)",
        &["B".into(), "PPI".into(), "Facebook".into(), "Blog".into()],
        &rows,
    );
    append_jsonl("table3", &records)
        .expect("failed to append results/table3.jsonl (bench records must not vanish silently)");
    println!("\npaper shape check: optimum near B = 128 (Blog tolerates larger B)");
}
