//! Fig. 4 — impact of the privacy budget on node clustering.
//!
//! Mutual information vs `epsilon` in {1,...,6} for DPGGAN, DPGVAE, GAP,
//! DPAR and AdvSGM on the three labeled datasets (PPI, Wiki, Blog).

use advsgm_bench::{append_jsonl, harness::baseline_mi, print_table, BenchArgs, Method, Record};
use advsgm_datasets::Dataset;
use advsgm_linalg::stats::Summary;

fn main() {
    let args = BenchArgs::from_env();
    let epsilons = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
    let mut records = Vec::new();
    for ds in Dataset::clustering_sets() {
        if !args.wants_dataset(ds.name()) {
            continue;
        }
        let spec = ds.spec().scaled(args.scale);
        let mut rows = Vec::new();
        for method in Method::figure_methods() {
            let mut cells = vec![method.name()];
            for &eps in &epsilons {
                let vals: Vec<f64> = (0..args.runs)
                    .map(|run| {
                        baseline_mi(
                            &spec,
                            method,
                            eps,
                            args.epochs,
                            Some(advsgm_bench::harness::scaled_batch(args.scale)),
                            args.seed.wrapping_add(run),
                        )
                        .expect("run failed")
                    })
                    .collect();
                let s = Summary::of(&vals);
                cells.push(format!("{:.4}", s.mean));
                records.push(Record {
                    experiment: "fig4".into(),
                    dataset: ds.name().into(),
                    method: method.name(),
                    parameter: "epsilon".into(),
                    value: eps,
                    metric: "mi".into(),
                    mean: s.mean,
                    std: s.std,
                    runs: args.runs,
                    scale: args.scale,
                });
            }
            rows.push(cells);
        }
        print_table(
            &format!("Fig. 4 ({}): node-clustering MI vs epsilon", ds.name()),
            &[
                "method".into(),
                "eps=1".into(),
                "eps=2".into(),
                "eps=3".into(),
                "eps=4".into(),
                "eps=5".into(),
                "eps=6".into(),
            ],
            &rows,
        );
    }
    append_jsonl("fig4", &records)
        .expect("failed to append results/fig4.jsonl (bench records must not vanish silently)");
    println!("\npaper shape check: AdvSGM achieves the highest MI among private methods at every epsilon");
}
