//! Fig. 2 — effect of the module-weight settings.
//!
//! Reports the average `|L_Nov|` (Eq. 24) under `lambda = 0.5`,
//! `lambda = 1`, and the paper's adaptive `lambda = 1/S(.)` on PPI,
//! Facebook, Wiki and Blog, averaged over independent runs, evaluated on
//! the trained AdvSGM state with `a = 1e-5`, `b = 120`.

use advsgm_bench::{append_jsonl, print_table, BenchArgs, Record};
use advsgm_core::session::{EpochEvent, SessionControl, TrainHooks};
use advsgm_core::{AdvSgmConfig, ModelVariant, Trainer, WeightMode};
use advsgm_datasets::{synthesize, Dataset};
use advsgm_linalg::stats::Summary;

/// Session hook that traces the per-epoch `|L_Nov|` trajectory — the
/// harness trains through the session layer (`Trainer::train_with_hooks`)
/// and keeps the trainer alive to evaluate the Fig. 2 weight modes on the
/// trained state afterwards.
#[derive(Default)]
struct LossTrace {
    losses: Vec<f64>,
}

impl TrainHooks for LossTrace {
    fn on_epoch(&mut self, event: &EpochEvent) -> SessionControl {
        if let Some(loss) = event.loss {
            self.losses.push(loss);
        }
        SessionControl::Continue
    }
}

fn main() {
    let args = BenchArgs::from_env();
    let datasets = [
        Dataset::Ppi,
        Dataset::Facebook,
        Dataset::Wiki,
        Dataset::Blog,
    ];
    let modes = [
        WeightMode::Fixed(0.5),
        WeightMode::Fixed(1.0),
        WeightMode::InverseS,
    ];
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for ds in datasets {
        if !args.wants_dataset(ds.name()) {
            continue;
        }
        let spec = ds.spec().scaled(args.scale);
        let mut cells = vec![ds.name().to_string()];
        for mode in modes {
            let mut vals = Vec::new();
            for run in 0..args.runs {
                let run_seed = args.seed.wrapping_add(run);
                let graph = synthesize(&spec, run_seed);
                let mut cfg = AdvSgmConfig::for_variant(ModelVariant::AdvSgm);
                cfg.seed = run_seed;
                cfg.batch_size = advsgm_bench::harness::scaled_batch(args.scale);
                if let Some(e) = args.epochs {
                    cfg.epochs = e;
                }
                let epochs = cfg.epochs;
                let mut trainer = Trainer::new(&graph, cfg).expect("trainer");
                let mut trace = LossTrace::default();
                trainer
                    .train_with_hooks(&graph, &mut trace)
                    .expect("training failed");
                assert!(
                    trace.losses.len() <= epochs,
                    "hook observed more epochs than scheduled"
                );
                let loss = trainer
                    .loss_under_weight_mode(&graph, mode, 5)
                    .expect("loss eval failed");
                vals.push(loss);
            }
            let s = Summary::of(&vals);
            cells.push(format!("{:.3}", s.mean));
            records.push(Record {
                experiment: "fig2".into(),
                dataset: ds.name().into(),
                method: mode.label(),
                parameter: "lambda_mode".into(),
                value: match mode {
                    WeightMode::Fixed(l) => l,
                    WeightMode::InverseS => -1.0,
                },
                metric: "abs_loss".into(),
                mean: s.mean,
                std: s.std,
                runs: args.runs,
                scale: args.scale,
            });
        }
        rows.push(cells);
    }
    print_table(
        "Fig. 2: average |L_Nov| by weight setting",
        &[
            "dataset".into(),
            "lambda=0.5".into(),
            "lambda=1".into(),
            "lambda=1/S(.)".into(),
        ],
        &rows,
    );
    append_jsonl("fig2", &records)
        .expect("failed to append results/fig2.jsonl (bench records must not vanish silently)");
    println!(
        "\npaper shape check: gap(1/S vs 1) < gap(1/S vs 0.5), both gaps small (paper: <2 and <6)"
    );
}
