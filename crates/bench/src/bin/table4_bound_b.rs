//! Table IV — AUC vs the constrained-sigmoid upper bound `b`, at
//! `epsilon = 6` (with `a = 1e-5` fixed).
//!
//! Sweeps b over {40, 60, 80, 100, 120, 140}; the paper reports gradual
//! improvement with b, with 120 chosen as the default.

use advsgm_bench::{append_jsonl, harness::variant_auc, print_table, BenchArgs, Record};
use advsgm_core::ModelVariant;
use advsgm_datasets::Dataset;
use advsgm_linalg::stats::Summary;

fn main() {
    let args = BenchArgs::from_env();
    let bounds = [40.0, 60.0, 80.0, 100.0, 120.0, 140.0];
    let datasets = [Dataset::Ppi, Dataset::Facebook, Dataset::Blog];
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for &b in &bounds {
        let mut cells = vec![format!("{b}")];
        for ds in datasets {
            if !args.wants_dataset(ds.name()) {
                cells.push("-".into());
                continue;
            }
            let spec = ds.spec().scaled(args.scale);
            let mut vals = Vec::new();
            for run in 0..args.runs {
                let auc = variant_auc(
                    &spec,
                    ModelVariant::AdvSgm,
                    args.seed.wrapping_add(run),
                    &|cfg| {
                        cfg.sigmoid_b = b;
                        cfg.epsilon = 6.0;
                        cfg.batch_size = advsgm_bench::harness::scaled_batch(args.scale);
                        if let Some(e) = args.epochs {
                            cfg.epochs = e;
                        }
                    },
                )
                .expect("run failed");
                vals.push(auc);
            }
            let s = Summary::of(&vals);
            cells.push(s.to_string());
            records.push(Record {
                experiment: "table4".into(),
                dataset: ds.name().into(),
                method: "AdvSGM".into(),
                parameter: "b".into(),
                value: b,
                metric: "auc".into(),
                mean: s.mean,
                std: s.std,
                runs: args.runs,
                scale: args.scale,
            });
        }
        rows.push(cells);
    }
    print_table(
        "Table IV: AUC vs constrained-sigmoid bound b (epsilon = 6, a = 1e-5)",
        &["b".into(), "PPI".into(), "Facebook".into(), "Blog".into()],
        &rows,
    );
    append_jsonl("table4", &records)
        .expect("failed to append results/table4.jsonl (bench records must not vanish silently)");
    println!("\npaper shape check: AUC improves gradually as b grows 40 -> 140");
}
