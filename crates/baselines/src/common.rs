//! Shared baseline machinery: configuration, random features, degree
//! bounding, and budget-to-noise calibration.

use advsgm_graph::{Graph, NodeId};
use advsgm_linalg::init::normalize_rows;
use advsgm_linalg::rng::gaussian_matrix;
use advsgm_linalg::DenseMatrix;
use advsgm_privacy::conversion::rdp_to_delta;
use advsgm_privacy::rdp::{default_alpha_grid, GaussianRdp};
use advsgm_privacy::subsampled::subsampled_gaussian_curve;
use rand::Rng;

use crate::error::BaselineError;

/// Shared configuration for all four baselines.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineConfig {
    /// Embedding dimension (the paper evaluates everything at `r = 128`).
    pub dim: usize,
    /// Target privacy budget `epsilon`.
    pub epsilon: f64,
    /// Target failure probability `delta`.
    pub delta: f64,
    /// Training epochs / propagation depth (method-specific meaning).
    pub epochs: usize,
    /// Batch size for the DPSGD-trained baselines.
    pub batch_size: usize,
    /// Learning rate.
    pub eta: f64,
    /// Gradient clipping threshold.
    pub clip: f64,
    /// Worker threads for the parallelised baselines (`0` = auto: the
    /// `ADVSGM_THREADS` environment variable, else 1). Baselines that
    /// parallelise (currently GAP's aggregation) derive their randomness
    /// per row, so the output is **identical across thread counts** — the
    /// pool only changes wall-clock.
    pub num_threads: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        Self {
            dim: 128,
            epsilon: 6.0,
            delta: 1e-5,
            epochs: 30,
            batch_size: 128,
            eta: 0.1,
            clip: 1.0,
            num_threads: 0,
            seed: 0,
        }
    }
}

impl BaselineConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`BaselineError::Config`] naming the first offending field.
    pub fn validate(&self) -> Result<(), BaselineError> {
        let bad =
            |field: &'static str, reason: String| Err(BaselineError::Config { field, reason });
        if self.dim == 0 {
            return bad("dim", "dimension must be positive".into());
        }
        if self.epsilon.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return bad("epsilon", "epsilon must be positive".into());
        }
        if !(self.delta > 0.0 && self.delta < 1.0) {
            return bad(
                "delta",
                format!("delta must be in (0,1), got {}", self.delta),
            );
        }
        if self.epochs == 0 || self.batch_size == 0 {
            return bad("epochs", "need positive epochs and batch size".into());
        }
        if self.eta.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
            || self.clip.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
        {
            return bad("eta", "learning rate and clip must be positive".into());
        }
        if self.num_threads > advsgm_parallel::MAX_THREADS {
            return bad(
                "num_threads",
                format!(
                    "at most {} worker threads, got {}",
                    advsgm_parallel::MAX_THREADS,
                    self.num_threads
                ),
            );
        }
        Ok(())
    }

    /// The thread count parallelised baselines will actually use
    /// (see [`advsgm_parallel::resolve_threads`]).
    pub fn effective_threads(&self) -> usize {
        advsgm_parallel::resolve_threads(self.num_threads)
    }

    /// A fast configuration for tests.
    pub fn test_small() -> Self {
        Self {
            dim: 16,
            epochs: 3,
            batch_size: 16,
            ..Self::default()
        }
    }
}

/// Row-normalised Gaussian random features — the stand-in the paper uses
/// for GAP/DPAR on featureless graphs ("we use randomly generated features
/// as inputs for GAP and DPAR").
pub fn random_features(num_nodes: usize, dim: usize, rng: &mut impl Rng) -> DenseMatrix {
    let mut x = gaussian_matrix(rng, 1.0, num_nodes, dim);
    normalize_rows(&mut x);
    x
}

/// Degree-bounded neighbor lists: every node keeps at most `max_degree`
/// neighbors (a uniform subsample). Bounding the degree bounds the number
/// of aggregation terms one node can influence — the sensitivity-control
/// step of GAP/DPAR-style node-level DP.
pub fn bounded_neighbors(graph: &Graph, max_degree: usize, rng: &mut impl Rng) -> Vec<Vec<u32>> {
    let mut out = Vec::with_capacity(graph.num_nodes());
    for i in 0..graph.num_nodes() {
        let nbrs = graph.neighbors(NodeId::from_index(i));
        if nbrs.len() <= max_degree {
            out.push(nbrs.to_vec());
        } else {
            // Partial Fisher-Yates over a copy.
            let mut pool = nbrs.to_vec();
            for t in 0..max_degree {
                let j = rng.gen_range(t..pool.len());
                pool.swap(t, j);
            }
            pool.truncate(max_degree);
            pool.sort_unstable();
            out.push(pool);
        }
    }
    out
}

/// Finds the smallest noise multiplier `sigma` such that `steps`
/// compositions of a `gamma`-subsampled Gaussian mechanism stay within
/// `(epsilon, delta)`. Binary search over `sigma`; used by every baseline
/// to calibrate its noise to the same budget AdvSGM gets.
///
/// # Errors
/// Returns [`BaselineError::Config`] if even a huge multiplier cannot fit
/// (degenerate targets).
pub fn calibrate_noise_multiplier(
    steps: u64,
    gamma: f64,
    epsilon: f64,
    delta: f64,
) -> Result<f64, BaselineError> {
    let alphas = default_alpha_grid();
    let fits = |sigma: f64| -> Result<bool, BaselineError> {
        let curve = if gamma >= 1.0 {
            GaussianRdp::new(sigma)
                .map_err(BaselineError::from)?
                .curve(&alphas)
        } else {
            subsampled_gaussian_curve(sigma, gamma, &alphas)?
        };
        let scaled: Vec<(usize, f64)> = curve
            .into_iter()
            .map(|(a, e)| (a, e * steps as f64))
            .collect();
        Ok(rdp_to_delta(&scaled, epsilon)? < delta)
    };
    let mut hi = 1.0f64;
    let mut guard = 0;
    while !fits(hi)? {
        hi *= 2.0;
        guard += 1;
        if guard > 40 {
            return Err(BaselineError::Config {
                field: "epsilon",
                reason: format!("cannot calibrate noise for eps={epsilon}, delta={delta}"),
            });
        }
    }
    let mut lo = hi / 2.0;
    if !fits(lo)? || hi <= 1.0 {
        lo = 0.0;
    }
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if fits(mid)? {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use advsgm_graph::generators::classic::{karate_club, star_graph};
    use advsgm_linalg::rng::seeded;
    use advsgm_linalg::vector::norm2;

    #[test]
    fn config_validation() {
        BaselineConfig::default().validate().unwrap();
        let c = BaselineConfig {
            epsilon: 0.0,
            ..BaselineConfig::default()
        };
        assert!(c.validate().is_err());
        let c = BaselineConfig {
            num_threads: advsgm_parallel::MAX_THREADS + 1,
            ..BaselineConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn random_features_unit_rows() {
        let mut rng = seeded(1);
        let x = random_features(10, 8, &mut rng);
        for i in 0..10 {
            assert!((norm2(x.row(i)) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn bounded_neighbors_caps_degree() {
        let mut rng = seeded(2);
        let g = star_graph(50); // hub degree 49
        let b = bounded_neighbors(&g, 10, &mut rng);
        assert_eq!(b[0].len(), 10);
        assert_eq!(b[1].len(), 1);
        // Bounded lists are subsets of the true neighborhoods.
        for &n in &b[0] {
            assert!(g.neighbors(NodeId(0)).contains(&n));
        }
    }

    #[test]
    fn bounded_neighbors_noop_when_under_cap() {
        let mut rng = seeded(3);
        let g = karate_club();
        let b = bounded_neighbors(&g, 100, &mut rng);
        for (i, nbrs) in b.iter().enumerate() {
            assert_eq!(nbrs, g.neighbors(NodeId::from_index(i)));
        }
    }

    #[test]
    fn calibration_meets_budget() {
        let sigma = calibrate_noise_multiplier(100, 1.0, 2.0, 1e-5).unwrap();
        assert!(sigma > 0.0);
        // Verify: composing 100 steps at this sigma stays under budget.
        let alphas = default_alpha_grid();
        let curve = GaussianRdp::new(sigma).unwrap().curve(&alphas);
        let scaled: Vec<(usize, f64)> = curve.into_iter().map(|(a, e)| (a, e * 100.0)).collect();
        assert!(rdp_to_delta(&scaled, 2.0).unwrap() < 1e-5);
    }

    #[test]
    fn more_steps_need_more_noise() {
        let s10 = calibrate_noise_multiplier(10, 1.0, 2.0, 1e-5).unwrap();
        let s1000 = calibrate_noise_multiplier(1000, 1.0, 2.0, 1e-5).unwrap();
        assert!(s1000 > s10, "s10={s10} s1000={s1000}");
    }

    #[test]
    fn subsampling_reduces_required_noise() {
        let full = calibrate_noise_multiplier(100, 1.0, 2.0, 1e-5).unwrap();
        let sub = calibrate_noise_multiplier(100, 0.01, 2.0, 1e-5).unwrap();
        assert!(sub < full, "sub={sub} full={full}");
    }

    #[test]
    fn bigger_budget_needs_less_noise() {
        let tight = calibrate_noise_multiplier(100, 0.1, 1.0, 1e-5).unwrap();
        let loose = calibrate_noise_multiplier(100, 0.1, 6.0, 1e-5).unwrap();
        assert!(loose < tight);
    }
}
