//! Error type for the baseline implementations.

use std::fmt;

use advsgm_graph::GraphError;
use advsgm_privacy::PrivacyError;

/// Errors produced by the baseline trainers.
#[derive(Debug)]
pub enum BaselineError {
    /// Invalid configuration.
    Config {
        /// Offending field.
        field: &'static str,
        /// Explanation.
        reason: String,
    },
    /// Graph-substrate failure.
    Graph(GraphError),
    /// Privacy-substrate failure.
    Privacy(PrivacyError),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::Config { field, reason } => {
                write!(f, "invalid baseline configuration {field}: {reason}")
            }
            BaselineError::Graph(e) => write!(f, "graph error: {e}"),
            BaselineError::Privacy(e) => write!(f, "privacy error: {e}"),
        }
    }
}

impl std::error::Error for BaselineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BaselineError::Graph(e) => Some(e),
            BaselineError::Privacy(e) => Some(e),
            BaselineError::Config { .. } => None,
        }
    }
}

impl From<GraphError> for BaselineError {
    fn from(e: GraphError) -> Self {
        BaselineError::Graph(e)
    }
}

impl From<PrivacyError> for BaselineError {
    fn from(e: PrivacyError) -> Self {
        BaselineError::Privacy(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = BaselineError::from(GraphError::EmptyGraph { op: "gap" });
        assert!(e.to_string().contains("gap"));
        assert!(e.source().is_some());
    }
}
