//! A minimal one-hidden-layer MLP with manual backprop.
//!
//! Used as DPGGAN's pair discriminator. Input `x` (dim `d_in`) → hidden
//! ReLU layer (`d_h`) → scalar logit. Gradients are exact; verified against
//! finite differences in tests.

use advsgm_linalg::activations::sigmoid;
use advsgm_linalg::init::xavier_uniform;
use advsgm_linalg::DenseMatrix;
use rand::Rng;

/// One-hidden-layer MLP producing a scalar logit.
#[derive(Debug, Clone)]
pub struct Mlp {
    w1: DenseMatrix, // d_in x d_h
    b1: Vec<f64>,
    w2: Vec<f64>, // d_h
    b2: f64,
}

/// Cached forward activations for backprop.
#[derive(Debug, Clone)]
pub struct MlpForward {
    /// Input row.
    pub x: Vec<f64>,
    /// Hidden pre-activations.
    pub u: Vec<f64>,
    /// Hidden activations (ReLU of `u`).
    pub h: Vec<f64>,
    /// Output logit.
    pub logit: f64,
}

/// Gradients of a scalar loss w.r.t. all MLP parameters.
#[derive(Debug, Clone)]
pub struct MlpGrads {
    w1: DenseMatrix,
    b1: Vec<f64>,
    w2: Vec<f64>,
    b2: f64,
}

impl Mlp {
    /// Creates an MLP with Xavier-initialised weights.
    pub fn new(d_in: usize, d_h: usize, rng: &mut impl Rng) -> Self {
        Self {
            w1: xavier_uniform(rng, d_in, d_h),
            b1: vec![0.0; d_h],
            w2: xavier_uniform(rng, d_h, 1).as_slice().to_vec(),
            b2: 0.0,
        }
    }

    /// Input dimension.
    pub fn d_in(&self) -> usize {
        self.w1.rows()
    }

    /// Hidden dimension.
    pub fn d_h(&self) -> usize {
        self.w1.cols()
    }

    /// Forward pass, caching activations.
    pub fn forward(&self, x: &[f64]) -> MlpForward {
        debug_assert_eq!(x.len(), self.d_in());
        let mut u = self.w1.vecmat(x).expect("shape checked");
        for (ui, bi) in u.iter_mut().zip(&self.b1) {
            *ui += bi;
        }
        let h: Vec<f64> = u.iter().map(|&v| v.max(0.0)).collect();
        let logit = h.iter().zip(&self.w2).map(|(a, b)| a * b).sum::<f64>() + self.b2;
        MlpForward {
            x: x.to_vec(),
            u,
            h,
            logit,
        }
    }

    /// Probability output `sigmoid(logit)`.
    pub fn prob(&self, x: &[f64]) -> f64 {
        sigmoid(self.forward(x).logit)
    }

    /// Zero-initialised gradient buffer.
    pub fn zero_grads(&self) -> MlpGrads {
        MlpGrads {
            w1: DenseMatrix::zeros(self.d_in(), self.d_h()),
            b1: vec![0.0; self.d_h()],
            w2: vec![0.0; self.d_h()],
            b2: 0.0,
        }
    }

    /// Accumulates parameter gradients for one sample given
    /// `dL/dlogit = upstream`; also returns `dL/dx` for chaining into the
    /// embedding update.
    pub fn accumulate_grads(
        &self,
        fwd: &MlpForward,
        upstream: f64,
        grads: &mut MlpGrads,
    ) -> Vec<f64> {
        // Output layer.
        grads.b2 += upstream;
        for (g, h) in grads.w2.iter_mut().zip(&fwd.h) {
            *g += upstream * h;
        }
        // Hidden layer.
        let mut dx = vec![0.0; self.d_in()];
        for k in 0..self.d_h() {
            if fwd.u[k] <= 0.0 {
                continue; // ReLU gate closed
            }
            let dh = upstream * self.w2[k];
            grads.b1[k] += dh;
            for (i, &xi) in fwd.x.iter().enumerate() {
                let cell = grads.w1.get(i, k) + dh * xi;
                grads.w1.set(i, k, cell);
                dx[i] += dh * self.w1.get(i, k);
            }
        }
        dx
    }

    /// Applies a descent step with learning rate `eta` on averaged grads.
    pub fn step(&mut self, eta: f64, grads: &MlpGrads, batch: usize) {
        let scale = eta / batch.max(1) as f64;
        self.w1.axpy(-scale, &grads.w1).expect("same shape");
        for (p, g) in self.b1.iter_mut().zip(&grads.b1) {
            *p -= scale * g;
        }
        for (p, g) in self.w2.iter_mut().zip(&grads.w2) {
            *p -= scale * g;
        }
        self.b2 -= scale * grads.b2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advsgm_linalg::rng::seeded;

    #[test]
    fn forward_shapes_and_relu() {
        let mut rng = seeded(1);
        let m = Mlp::new(4, 8, &mut rng);
        let f = m.forward(&[0.1, -0.2, 0.3, 0.4]);
        assert_eq!(f.h.len(), 8);
        assert!(f.h.iter().all(|&h| h >= 0.0));
        let p = m.prob(&[0.1, -0.2, 0.3, 0.4]);
        assert!(p > 0.0 && p < 1.0);
    }

    #[test]
    fn param_gradients_match_finite_difference() {
        let mut rng = seeded(2);
        let mut m = Mlp::new(3, 5, &mut rng);
        let x = [0.3, -0.5, 0.8];
        // Loss = logit itself (upstream = 1).
        let fwd = m.forward(&x);
        let mut grads = m.zero_grads();
        m.accumulate_grads(&fwd, 1.0, &mut grads);
        let h = 1e-6;
        for a in 0..3 {
            for b in 0..5 {
                let orig = m.w1.get(a, b);
                m.w1.set(a, b, orig + h);
                let up = m.forward(&x).logit;
                m.w1.set(a, b, orig - h);
                let down = m.forward(&x).logit;
                m.w1.set(a, b, orig);
                let fd = (up - down) / (2.0 * h);
                assert!(
                    (fd - grads.w1.get(a, b)).abs() < 1e-5,
                    "w1[{a}][{b}] fd={fd} an={}",
                    grads.w1.get(a, b)
                );
            }
        }
        for k in 0..5 {
            let orig = m.w2[k];
            m.w2[k] = orig + h;
            let up = m.forward(&x).logit;
            m.w2[k] = orig - h;
            let down = m.forward(&x).logit;
            m.w2[k] = orig;
            let fd = (up - down) / (2.0 * h);
            assert!((fd - grads.w2[k]).abs() < 1e-5, "w2[{k}]");
        }
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut rng = seeded(3);
        let m = Mlp::new(3, 6, &mut rng);
        let x = [0.2, 0.7, -0.3];
        let fwd = m.forward(&x);
        let mut grads = m.zero_grads();
        let dx = m.accumulate_grads(&fwd, 1.0, &mut grads);
        let h = 1e-6;
        for d in 0..3 {
            let mut xp = x.to_vec();
            xp[d] += h;
            let mut xm = x.to_vec();
            xm[d] -= h;
            let fd = (m.forward(&xp).logit - m.forward(&xm).logit) / (2.0 * h);
            assert!((fd - dx[d]).abs() < 1e-5, "dx[{d}] fd={fd} an={}", dx[d]);
        }
    }

    #[test]
    fn can_learn_a_linear_rule() {
        // Separate x[0] > 0 from x[0] < 0 by logistic loss.
        let mut rng = seeded(4);
        let mut m = Mlp::new(2, 8, &mut rng);
        for _ in 0..500 {
            let mut grads = m.zero_grads();
            for _ in 0..16 {
                let x = [
                    advsgm_linalg::rng::gaussian(&mut rng, 1.0),
                    advsgm_linalg::rng::gaussian(&mut rng, 1.0),
                ];
                let y = if x[0] > 0.0 { 1.0 } else { 0.0 };
                let fwd = m.forward(&x);
                let p = sigmoid(fwd.logit);
                // d/dlogit of -[y ln p + (1-y) ln(1-p)] = p - y.
                m.accumulate_grads(&fwd, p - y, &mut grads);
            }
            m.step(0.5, &grads, 16);
        }
        let mut correct = 0;
        for _ in 0..200 {
            let x = [
                advsgm_linalg::rng::gaussian(&mut rng, 1.0),
                advsgm_linalg::rng::gaussian(&mut rng, 1.0),
            ];
            let y = x[0] > 0.0;
            if (m.prob(&x) > 0.5) == y {
                correct += 1;
            }
        }
        assert!(correct > 180, "accuracy {correct}/200 too low");
    }
}
