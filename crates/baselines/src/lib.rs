//! # advsgm-baselines
//!
//! The four external private graph-learning methods the paper compares
//! against in Figs. 3–4, re-implemented in compact form (DESIGN.md §1
//! documents the simplifications and why they preserve the comparison):
//!
//! * [`dpggan`] — DPGGAN (Yang et al., IJCAI 2021): embeddings trained
//!   adversarially against an MLP pair-discriminator, DPSGD on the
//!   embedding updates;
//! * [`dpgvae`] — DPGVAE (same work): graph autoencoder with inner-product
//!   decoder and KL-style regulariser, DPSGD updates;
//! * [`gap`] — GAP (Sajadmanesh et al., USENIX Security 2023): degree-
//!   bounded **aggregation perturbation** over random features, budget
//!   split across K hops;
//! * [`dpar`] — DPAR (Zhang et al., WWW 2024): decoupled personalized-
//!   PageRank propagation with per-hop noise.
//!
//! All four are calibrated through the same RDP accountant as AdvSGM, so a
//! comparison at equal `(epsilon, delta)` is honest: every method's noise
//! scale is exactly what its budget affords.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod common;
pub mod dpar;
pub mod dpggan;
pub mod dpgvae;
pub mod error;
pub mod gap;
pub mod mlp;

pub use common::BaselineConfig;
pub use dpar::Dpar;
pub use dpggan::DpgGan;
pub use dpgvae::DpgVae;
pub use error::BaselineError;
pub use gap::Gap;
