//! GAP — differentially private GNN with aggregation perturbation
//! (Sajadmanesh et al., USENIX Security 2023), compact re-implementation.
//!
//! Pipeline: degree-bounded adjacency (sensitivity control) → `K` hops of
//! sum-aggregation over row-normalised features, each hop perturbed with
//! Gaussian noise calibrated so the `K` full-batch mechanisms together meet
//! `(epsilon, delta)` → row normalisation after every hop (so the next
//! hop's sensitivity stays bounded). Features are random (the paper's
//! protocol for featureless graphs). The released embedding is the final
//! hop. The structural drawback the AdvSGM paper highlights — every
//! aggregation query costs budget, so a handful of hops exhausts it —
//! falls directly out of this construction.

use advsgm_graph::Graph;
use advsgm_linalg::init::normalize_rows;
use advsgm_linalg::rng::{derive_seed, gaussian, seeded};
use advsgm_linalg::DenseMatrix;

use crate::common::{
    bounded_neighbors, calibrate_noise_multiplier, random_features, BaselineConfig,
};
use crate::error::BaselineError;

/// The GAP baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gap {
    /// Aggregation hops `K`.
    pub hops: usize,
    /// Degree bound `D_max`.
    pub max_degree: usize,
}

impl Default for Gap {
    fn default() -> Self {
        Self {
            hops: 2,
            max_degree: 32,
        }
    }
}

impl Gap {
    /// Runs the noisy aggregation pipeline and returns node embeddings.
    ///
    /// # Errors
    /// Propagates configuration/calibration failures.
    pub fn train(&self, graph: &Graph, cfg: &BaselineConfig) -> Result<DenseMatrix, BaselineError> {
        cfg.validate()?;
        if self.hops == 0 || self.max_degree == 0 {
            return Err(BaselineError::Config {
                field: "hops",
                reason: "GAP needs positive hops and degree bound".into(),
            });
        }
        let n = graph.num_nodes();
        if n == 0 {
            return Err(BaselineError::Config {
                field: "graph",
                reason: "empty graph".into(),
            });
        }
        let mut rng = seeded(derive_seed(cfg.seed, 0x6A9));
        // Budget: K full-batch Gaussian mechanisms.
        let sigma = calibrate_noise_multiplier(self.hops as u64, 1.0, cfg.epsilon, cfg.delta)?;
        // Node-level sensitivity of one degree-bounded sum aggregation with
        // unit-norm inputs: changing one node perturbs its own aggregate
        // (<= sqrt(D_max) shift) and appears in <= D_max other sums (each
        // <= 1), so Delta <= sqrt(D_max) + sqrt(D_max) = 2 sqrt(D_max).
        let sensitivity = 2.0 * (self.max_degree as f64).sqrt();
        let noise_std = sigma * sensitivity;

        let bounded = bounded_neighbors(graph, self.max_degree, &mut rng);
        let mut h = random_features(n, cfg.dim, &mut rng);
        // Each hop is an embarrassingly parallel per-node job: sum the
        // bounded neighborhood, add that node's Gaussian perturbation, and
        // row-normalise. Noise comes from a per-(hop, node) derived stream,
        // so the result is bitwise-identical for every thread count — the
        // pool only changes wall-clock (DESIGN.md §7).
        let mut pool = advsgm_parallel::ThreadPool::new(cfg.effective_threads());
        let dim = cfg.dim;
        let hop_base = derive_seed(cfg.seed, 0x6A90);
        for hop in 0..self.hops {
            let hop_seed = derive_seed(hop_base, hop as u64);
            let mut agg = DenseMatrix::zeros(n, dim);
            let h_ref = &h;
            let bounded_ref = &bounded;
            let rows_per_chunk = n.div_ceil(pool.threads()).max(1);
            pool.for_each_chunk_mut(
                agg.as_mut_slice(),
                rows_per_chunk * dim,
                |_chunk, offset, rows| {
                    let first_row = offset / dim;
                    for (local, out) in rows.chunks_mut(dim).enumerate() {
                        let i = first_row + local;
                        // Self + bounded neighbors (GAP keeps a residual
                        // connection).
                        out.copy_from_slice(h_ref.row(i));
                        for &j in &bounded_ref[i] {
                            for (a, b) in out.iter_mut().zip(h_ref.row(j as usize)) {
                                *a += b;
                            }
                        }
                        let mut noise_rng = seeded(derive_seed(hop_seed, i as u64));
                        for v in out.iter_mut() {
                            *v += gaussian(&mut noise_rng, noise_std);
                        }
                    }
                },
            );
            normalize_rows(&mut agg);
            h = agg;
        }
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advsgm_graph::generators::sbm::{degree_corrected_sbm, SbmConfig};
    use advsgm_linalg::vector;

    fn graph() -> Graph {
        let mut rng = seeded(55);
        degree_corrected_sbm(
            &SbmConfig {
                num_nodes: 150,
                num_edges: 700,
                num_blocks: 3,
                mixing: 0.05,
                degree_exponent: 2.5,
            },
            &mut rng,
        )
    }

    #[test]
    fn output_shape_and_normalisation() {
        let g = graph();
        let emb = Gap::default()
            .train(&g, &BaselineConfig::test_small())
            .unwrap();
        assert_eq!(emb.rows(), 150);
        assert_eq!(emb.cols(), 16);
        for i in 0..emb.rows() {
            let norm = vector::norm2(emb.row(i));
            assert!(norm <= 1.0 + 1e-9, "row {i} norm {norm}");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let g = graph();
        let a = Gap::default()
            .train(&g, &BaselineConfig::test_small())
            .unwrap();
        let b = Gap::default()
            .train(&g, &BaselineConfig::test_small())
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn output_is_invariant_across_thread_counts() {
        // Noise is derived per (hop, node), so the pool width must not
        // change a single bit of the embedding.
        let g = graph();
        let base = Gap::default()
            .train(&g, &BaselineConfig::test_small())
            .unwrap();
        for threads in [2usize, 4] {
            let cfg = BaselineConfig {
                num_threads: threads,
                ..BaselineConfig::test_small()
            };
            let emb = Gap::default().train(&g, &cfg).unwrap();
            let same = base
                .as_slice()
                .iter()
                .zip(emb.as_slice())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "threads={threads} changed the GAP embedding");
        }
    }

    #[test]
    fn generous_budget_preserves_community_signal() {
        // With epsilon enormous (noise ~ 0), aggregated random features of
        // same-block nodes should correlate more than cross-block pairs.
        let g = graph();
        let mut cfg = BaselineConfig::test_small();
        cfg.epsilon = 1e9;
        let emb = Gap::default().train(&g, &cfg).unwrap();
        let labels = g.labels().unwrap();
        let mut same = 0.0;
        let mut same_n = 0;
        let mut diff = 0.0;
        let mut diff_n = 0;
        for e in g.edges().iter().take(300) {
            let c = vector::cosine(emb.row(e.u().index()), emb.row(e.v().index()));
            if labels[e.u().index()] == labels[e.v().index()] {
                same += c;
                same_n += 1;
            } else {
                diff += c;
                diff_n += 1;
            }
        }
        let same_avg = same / same_n.max(1) as f64;
        let diff_avg = diff / diff_n.max(1) as f64;
        assert!(
            same_avg > diff_avg,
            "no community signal: same={same_avg} diff={diff_avg}"
        );
    }

    #[test]
    fn invalid_params_rejected() {
        let g = graph();
        let bad = Gap {
            hops: 0,
            max_degree: 8,
        };
        assert!(bad.train(&g, &BaselineConfig::test_small()).is_err());
    }
}
