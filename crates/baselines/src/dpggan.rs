//! DPGGAN — differentially private graph GAN (Yang et al., IJCAI 2021),
//! compact re-implementation.
//!
//! Architecture: a free embedding matrix plus an MLP *pair discriminator*
//! scoring the element-wise product `e_i .* e_j`. Real pairs come from the
//! edge set, fake pairs from sampled non-edges; the embedding matrix is the
//! released artifact and its updates are DPSGD-noised (per-pair clip +
//! per-batch Gaussian, pre-calibrated to the budget). The MLP head is
//! internal scaffolding and is trained on the same batches — the original
//! similarly spends its entire budget on the generator/encoder path and
//! converges prematurely at small `epsilon`, which is the behaviour Fig. 3
//! relies on.

use advsgm_graph::partition::sample_non_edges;
use advsgm_graph::sampling::edge_sampler::EdgeBatchSampler;
use advsgm_graph::Graph;
use advsgm_linalg::activations::sigmoid;
use advsgm_linalg::init::{embedding_uniform, normalize_rows};
use advsgm_linalg::rng::{derive_seed, gaussian_vec, seeded};
use advsgm_linalg::vector;
use advsgm_linalg::DenseMatrix;

use crate::common::{calibrate_noise_multiplier, BaselineConfig};
use crate::error::BaselineError;
use crate::mlp::Mlp;

/// Hidden width of the pair discriminator.
const HIDDEN: usize = 32;
/// Steps per epoch.
const STEPS_PER_EPOCH: usize = 15;

/// The DPGGAN baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct DpgGan;

impl DpgGan {
    /// Trains and returns the embedding matrix.
    ///
    /// # Errors
    /// Propagates configuration/sampling/calibration failures.
    pub fn train(graph: &Graph, cfg: &BaselineConfig) -> Result<DenseMatrix, BaselineError> {
        cfg.validate()?;
        if graph.num_edges() == 0 {
            return Err(BaselineError::Config {
                field: "graph",
                reason: "graph has no edges".into(),
            });
        }
        let mut rng = seeded(derive_seed(cfg.seed, 0x66A7));
        let batch = cfg.batch_size.min(graph.num_edges());
        let steps = (cfg.epochs * STEPS_PER_EPOCH) as u64;
        let gamma = batch as f64 / graph.num_edges() as f64;
        let sigma = calibrate_noise_multiplier(steps, gamma, cfg.epsilon, cfg.delta)?;

        let mut emb = embedding_uniform(&mut rng, graph.num_nodes(), cfg.dim);
        normalize_rows(&mut emb);
        let mut disc = Mlp::new(cfg.dim, HIDDEN, &mut rng);
        let mut sampler = EdgeBatchSampler::new(graph.num_edges())?;

        for _ in 0..steps {
            let pos = sampler.sample_edges(graph, batch, &mut rng)?;
            let neg = sample_non_edges(graph, batch, &mut rng)?;
            let noise = gaussian_vec(&mut rng, cfg.clip * sigma, cfg.dim);
            let mut emb_acc: std::collections::HashMap<usize, (Vec<f64>, usize)> =
                std::collections::HashMap::new();
            let mut mlp_grads = disc.zero_grads();
            let mut add = |idx: usize, g: Vec<f64>| match emb_acc.get_mut(&idx) {
                Some((sum, c)) => {
                    vector::add_assign(sum, &g);
                    *c += 1;
                }
                None => {
                    emb_acc.insert(idx, (g, 1));
                }
            };
            for (e, label) in pos
                .iter()
                .map(|e| (e, 1.0))
                .chain(neg.iter().map(|e| (e, 0.0)))
            {
                let i = e.u().index();
                let j = e.v().index();
                let x = vector::hadamard(emb.row(i), emb.row(j));
                let fwd = disc.forward(&x);
                let p = sigmoid(fwd.logit);
                // BCE gradient w.r.t. logit.
                let upstream = p - label;
                let dx = disc.accumulate_grads(&fwd, upstream, &mut mlp_grads);
                // Chain rule through the Hadamard product.
                let mut gi: Vec<f64> = dx.iter().zip(emb.row(j)).map(|(&d, &o)| d * o).collect();
                let mut gj: Vec<f64> = dx.iter().zip(emb.row(i)).map(|(&d, &o)| d * o).collect();
                vector::clip_l2(&mut gi, cfg.clip);
                vector::clip_l2(&mut gj, cfg.clip);
                add(i, gi);
                add(j, gj);
            }
            let denom = (2 * batch) as f64;
            for (idx, (mut g, c)) in emb_acc {
                vector::axpy(c as f64, &noise, &mut g);
                vector::scale(&mut g, 1.0 / denom);
                let row = emb.row_mut(idx);
                for (pv, gv) in row.iter_mut().zip(&g) {
                    *pv -= cfg.eta * gv;
                }
                vector::clip_l2(row, 1.0);
            }
            disc.step(cfg.eta, &mlp_grads, 2 * batch);
        }
        Ok(emb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advsgm_graph::generators::sbm::{degree_corrected_sbm, SbmConfig};

    fn graph() -> Graph {
        let mut rng = seeded(88);
        degree_corrected_sbm(
            &SbmConfig {
                num_nodes: 100,
                num_edges: 400,
                num_blocks: 4,
                mixing: 0.1,
                degree_exponent: 2.5,
            },
            &mut rng,
        )
    }

    #[test]
    fn produces_finite_bounded_embeddings() {
        let g = graph();
        let emb = DpgGan::train(&g, &BaselineConfig::test_small()).unwrap();
        assert_eq!(emb.rows(), 100);
        assert!(emb.as_slice().iter().all(|v| v.is_finite()));
        for i in 0..emb.rows() {
            assert!(vector::norm2(emb.row(i)) <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let g = graph();
        let a = DpgGan::train(&g, &BaselineConfig::test_small()).unwrap();
        let b = DpgGan::train(&g, &BaselineConfig::test_small()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let g = graph();
        let mut cfg2 = BaselineConfig::test_small();
        cfg2.seed = 9;
        let a = DpgGan::train(&g, &BaselineConfig::test_small()).unwrap();
        let b = DpgGan::train(&g, &cfg2).unwrap();
        assert_ne!(a, b);
    }
}
