//! DPAR — decoupled GNN with node-level DP via private personalized
//! PageRank propagation (Zhang et al., WWW 2024), compact re-implementation.
//!
//! Pipeline: random features → `T` rounds of degree-bounded *mean*
//! aggregation accumulated with personalized-PageRank weights
//! `alpha (1-alpha)^t` → per-round Gaussian noise calibrated so the `T`
//! full-batch mechanisms meet `(epsilon, delta)`. Decoupling propagation
//! from learning is what lets DPAR outperform the aggregation-perturbation
//! GNNs at equal budget (the ordering Fig. 3 shows), because the number of
//! private queries is fixed at `T` instead of growing with every parameter
//! update.

use advsgm_graph::Graph;
use advsgm_linalg::init::normalize_rows;
use advsgm_linalg::rng::{derive_seed, gaussian, seeded};
use advsgm_linalg::DenseMatrix;

use crate::common::{
    bounded_neighbors, calibrate_noise_multiplier, random_features, BaselineConfig,
};
use crate::error::BaselineError;

/// The DPAR baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dpar {
    /// Propagation rounds `T`.
    pub rounds: usize,
    /// PPR teleport probability `alpha`.
    pub alpha: f64,
    /// Degree bound `D_max`.
    pub max_degree: usize,
}

impl Default for Dpar {
    fn default() -> Self {
        Self {
            rounds: 4,
            alpha: 0.15,
            max_degree: 32,
        }
    }
}

impl Dpar {
    /// Runs private PPR propagation and returns node embeddings.
    ///
    /// # Errors
    /// Propagates configuration/calibration failures.
    pub fn train(&self, graph: &Graph, cfg: &BaselineConfig) -> Result<DenseMatrix, BaselineError> {
        cfg.validate()?;
        if self.rounds == 0 || !(0.0..1.0).contains(&self.alpha) || self.max_degree == 0 {
            return Err(BaselineError::Config {
                field: "rounds",
                reason: format!(
                    "need rounds>0, alpha in [0,1), max_degree>0 (got {}, {}, {})",
                    self.rounds, self.alpha, self.max_degree
                ),
            });
        }
        let n = graph.num_nodes();
        if n == 0 {
            return Err(BaselineError::Config {
                field: "graph",
                reason: "empty graph".into(),
            });
        }
        let mut rng = seeded(derive_seed(cfg.seed, 0xD9A2));
        let sigma = calibrate_noise_multiplier(self.rounds as u64, 1.0, cfg.epsilon, cfg.delta)?;
        // Mean aggregation over <= D_max unit-norm rows: one node shifts its
        // own mean by <= 1 and each of <= D_max neighbors' means by
        // <= 1/|N| <= 1, so a conservative node-level bound is
        // Delta <= 1 + sqrt(D_max).
        let sensitivity = 1.0 + (self.max_degree as f64).sqrt();
        let noise_std = sigma * sensitivity;

        let bounded = bounded_neighbors(graph, self.max_degree, &mut rng);
        let x = random_features(n, cfg.dim, &mut rng);
        let mut h = x.clone();
        let mut out = x.clone();
        for v in out.as_mut_slice().iter_mut() {
            *v *= self.alpha;
        }
        let mut weight = self.alpha;
        for _ in 0..self.rounds {
            let mut agg = DenseMatrix::zeros(n, cfg.dim);
            for (i, nbrs) in bounded.iter().enumerate() {
                if nbrs.is_empty() {
                    let src = h.row(i).to_vec();
                    agg.row_mut(i).copy_from_slice(&src);
                    continue;
                }
                for &j in nbrs {
                    let src = h.row(j as usize).to_vec();
                    for (a, b) in agg.row_mut(i).iter_mut().zip(&src) {
                        *a += b;
                    }
                }
                let inv = 1.0 / nbrs.len() as f64;
                for a in agg.row_mut(i).iter_mut() {
                    *a *= inv;
                }
            }
            for v in agg.as_mut_slice().iter_mut() {
                *v += gaussian(&mut rng, noise_std);
            }
            normalize_rows(&mut agg);
            h = agg;
            weight *= 1.0 - self.alpha;
            out.axpy(weight, &h).expect("same shape");
        }
        normalize_rows(&mut out);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advsgm_graph::generators::sbm::{degree_corrected_sbm, SbmConfig};
    use advsgm_linalg::vector;

    fn graph() -> Graph {
        let mut rng = seeded(66);
        degree_corrected_sbm(
            &SbmConfig {
                num_nodes: 150,
                num_edges: 700,
                num_blocks: 3,
                mixing: 0.05,
                degree_exponent: 2.5,
            },
            &mut rng,
        )
    }

    #[test]
    fn output_shape_and_rows_normalised() {
        let g = graph();
        let emb = Dpar::default()
            .train(&g, &BaselineConfig::test_small())
            .unwrap();
        assert_eq!(emb.rows(), 150);
        for i in 0..emb.rows() {
            assert!(vector::norm2(emb.row(i)) <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let g = graph();
        let a = Dpar::default()
            .train(&g, &BaselineConfig::test_small())
            .unwrap();
        let b = Dpar::default()
            .train(&g, &BaselineConfig::test_small())
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn generous_budget_preserves_community_signal() {
        let g = graph();
        let mut cfg = BaselineConfig::test_small();
        cfg.epsilon = 1e9;
        let emb = Dpar::default().train(&g, &cfg).unwrap();
        let labels = g.labels().unwrap();
        let (mut same, mut same_n, mut diff, mut diff_n) = (0.0, 0usize, 0.0, 0usize);
        for e in g.edges().iter().take(300) {
            let c = vector::cosine(emb.row(e.u().index()), emb.row(e.v().index()));
            if labels[e.u().index()] == labels[e.v().index()] {
                same += c;
                same_n += 1;
            } else {
                diff += c;
                diff_n += 1;
            }
        }
        assert!(
            same / same_n.max(1) as f64 > diff / diff_n.max(1) as f64,
            "no community signal"
        );
    }

    #[test]
    fn isolated_nodes_keep_their_features() {
        // A graph with an isolated node must not produce NaNs.
        let g = Graph::from_parts(3, vec![advsgm_graph::Edge::from_raw(0, 1)], None);
        let emb = Dpar::default()
            .train(&g, &BaselineConfig::test_small())
            .unwrap();
        assert!(emb.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn invalid_params_rejected() {
        let g = graph();
        let bad = Dpar {
            rounds: 0,
            ..Dpar::default()
        };
        assert!(bad.train(&g, &BaselineConfig::test_small()).is_err());
    }
}
