//! DPGVAE — differentially private graph variational autoencoder
//! (Yang et al., "Secure deep graph generation with link differential
//! privacy", IJCAI 2021), compact re-implementation.
//!
//! Architecture: a free embedding matrix (the encoder mean), an
//! inner-product decoder `p(i ~ j) = sigmoid(e_i . e_j)`, a KL-style
//! L2 pull toward the prior, and DPSGD training: per-pair gradients are
//! clipped, a shared per-batch Gaussian rides on each summand, and every
//! step is recorded against the `(epsilon, delta)` budget. The noise
//! multiplier is *pre-calibrated* so the configured number of steps exactly
//! exhausts the budget — mirroring the original's use of the moments
//! accountant (and reproducing its failure mode: tight budgets force huge
//! noise and the model barely moves).

use advsgm_graph::partition::sample_non_edges;
use advsgm_graph::sampling::edge_sampler::EdgeBatchSampler;
use advsgm_graph::Graph;
use advsgm_linalg::init::{embedding_uniform, normalize_rows};
use advsgm_linalg::rng::{derive_seed, gaussian_vec, seeded};
use advsgm_linalg::vector;
use advsgm_linalg::DenseMatrix;

use crate::common::{calibrate_noise_multiplier, BaselineConfig};
use crate::error::BaselineError;

/// KL-proxy regularisation strength.
const KL_WEIGHT: f64 = 1e-3;
/// Discriminator steps per epoch.
const STEPS_PER_EPOCH: usize = 15;

/// The DPGVAE baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct DpgVae;

impl DpgVae {
    /// Trains and returns the embedding matrix.
    ///
    /// # Errors
    /// Propagates configuration/sampling/calibration failures.
    pub fn train(graph: &Graph, cfg: &BaselineConfig) -> Result<DenseMatrix, BaselineError> {
        cfg.validate()?;
        if graph.num_edges() == 0 {
            return Err(BaselineError::Config {
                field: "graph",
                reason: "graph has no edges".into(),
            });
        }
        let mut rng = seeded(derive_seed(cfg.seed, 0x0AE1));
        let batch = cfg.batch_size.min(graph.num_edges());
        let steps = (cfg.epochs * STEPS_PER_EPOCH) as u64;
        let gamma = batch as f64 / graph.num_edges() as f64;
        let sigma = calibrate_noise_multiplier(steps, gamma, cfg.epsilon, cfg.delta)?;

        let mut emb = embedding_uniform(&mut rng, graph.num_nodes(), cfg.dim);
        normalize_rows(&mut emb);
        let mut sampler = EdgeBatchSampler::new(graph.num_edges())?;

        for _ in 0..steps {
            let pos = sampler.sample_edges(graph, batch, &mut rng)?;
            let neg = sample_non_edges(graph, batch, &mut rng)?;
            let noise = gaussian_vec(&mut rng, cfg.clip * sigma, cfg.dim);
            let mut acc: std::collections::HashMap<usize, (Vec<f64>, usize)> =
                std::collections::HashMap::new();
            let mut add = |idx: usize, g: Vec<f64>| match acc.get_mut(&idx) {
                Some((sum, c)) => {
                    vector::add_assign(sum, &g);
                    *c += 1;
                }
                None => {
                    acc.insert(idx, (g, 1));
                }
            };
            for (e, label) in pos
                .iter()
                .map(|e| (e, 1.0))
                .chain(neg.iter().map(|e| (e, 0.0)))
            {
                let i = e.u().index();
                let j = e.v().index();
                let ei = emb.row(i);
                let ej = emb.row(j);
                let p = advsgm_linalg::activations::sigmoid(vector::dot(ei, ej));
                // d/de_i of BCE + KL proxy.
                let coeff = p - label;
                let mut gi: Vec<f64> = ej
                    .iter()
                    .zip(ei)
                    .map(|(&o, &s)| coeff * o + KL_WEIGHT * s)
                    .collect();
                let mut gj: Vec<f64> = ei
                    .iter()
                    .zip(ej)
                    .map(|(&o, &s)| coeff * o + KL_WEIGHT * s)
                    .collect();
                vector::clip_l2(&mut gi, cfg.clip);
                vector::clip_l2(&mut gj, cfg.clip);
                add(i, gi);
                add(j, gj);
            }
            let denom = (2 * batch) as f64;
            for (idx, (mut g, c)) in acc {
                vector::axpy(c as f64, &noise, &mut g);
                vector::scale(&mut g, 1.0 / denom);
                let row = emb.row_mut(idx);
                for (p, gv) in row.iter_mut().zip(&g) {
                    *p -= cfg.eta * gv;
                }
                vector::clip_l2(row, 1.0);
            }
        }
        Ok(emb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advsgm_graph::generators::sbm::{degree_corrected_sbm, SbmConfig};

    fn graph() -> Graph {
        let mut rng = seeded(77);
        degree_corrected_sbm(
            &SbmConfig {
                num_nodes: 100,
                num_edges: 400,
                num_blocks: 4,
                mixing: 0.1,
                degree_exponent: 2.5,
            },
            &mut rng,
        )
    }

    #[test]
    fn produces_finite_embeddings() {
        let g = graph();
        let emb = DpgVae::train(&g, &BaselineConfig::test_small()).unwrap();
        assert_eq!(emb.rows(), 100);
        assert_eq!(emb.cols(), 16);
        assert!(emb.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn deterministic_under_seed() {
        let g = graph();
        let a = DpgVae::train(&g, &BaselineConfig::test_small()).unwrap();
        let b = DpgVae::train(&g, &BaselineConfig::test_small()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rows_stay_bounded() {
        let g = graph();
        let emb = DpgVae::train(&g, &BaselineConfig::test_small()).unwrap();
        for i in 0..emb.rows() {
            assert!(vector::norm2(emb.row(i)) <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn empty_graph_rejected() {
        let g = Graph::from_parts(4, vec![], None);
        assert!(DpgVae::train(&g, &BaselineConfig::test_small()).is_err());
    }
}
