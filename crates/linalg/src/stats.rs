//! Summary statistics for experiment tables.
//!
//! Every table in the paper reports "average ± standard deviation" over five
//! independent runs; this module provides the tiny statistics kit the bench
//! harness uses to produce those cells.

use std::fmt;

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Unbiased sample variance (n-1 denominator); 0.0 for fewer than 2 samples.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Median (average of the two central order statistics for even n);
/// 0.0 for an empty slice.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in median input"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// Minimum; +inf for an empty slice.
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Maximum; -inf for an empty slice.
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// A "mean ± std" summary of repeated measurements, displayed like the
/// paper's table cells (`0.6095±0.0101`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Mean over runs.
    pub mean: f64,
    /// Sample standard deviation over runs.
    pub std: f64,
    /// Number of runs aggregated.
    pub n: usize,
}

impl Summary {
    /// Summarises a slice of measurements.
    pub fn of(xs: &[f64]) -> Self {
        Self {
            mean: mean(xs),
            std: stddev(xs),
            n: xs.len(),
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}\u{b1}{:.4}", self.mean, self.std)
    }
}

/// Welford's online mean/variance accumulator, for streaming statistics in
/// long training loops without storing every sample.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0.0 before any observation).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased running variance (0.0 with fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Running standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_simple() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn variance_known_value() {
        // Sample variance of {2, 4, 4, 4, 5, 5, 7, 9} is 32/7.
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn variance_degenerate() {
        assert_eq!(variance(&[5.0]), 0.0);
        assert_eq!(variance(&[]), 0.0);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn min_max_simple() {
        let xs = [3.0, -1.0, 2.0];
        assert_eq!(min(&xs), -1.0);
        assert_eq!(max(&xs), 3.0);
    }

    #[test]
    fn summary_display_matches_paper_format() {
        let s = Summary::of(&[0.6, 0.62, 0.61, 0.6, 0.62]);
        let txt = s.to_string();
        assert!(txt.starts_with("0.61"), "{txt}");
        assert!(txt.contains('\u{b1}'), "{txt}");
        assert_eq!(s.n, 5);
    }

    #[test]
    fn online_matches_batch() {
        let xs = [1.0, 4.0, 9.0, 16.0, 25.0];
        let mut o = OnlineStats::new();
        for &x in &xs {
            o.push(x);
        }
        assert!((o.mean() - mean(&xs)).abs() < 1e-12);
        assert!((o.variance() - variance(&xs)).abs() < 1e-9);
        assert_eq!(o.count(), 5);
    }

    #[test]
    fn online_empty_is_zero() {
        let o = OnlineStats::new();
        assert_eq!(o.mean(), 0.0);
        assert_eq!(o.variance(), 0.0);
    }
}
