//! NEON kernel implementations (aarch64).
//!
//! The aarch64 sibling of the AVX2 module: all `unsafe` is confined
//! here, every function is `unsafe fn` with a `# Safety` contract, and
//! `unsafe_op_in_unsafe_fn` is denied. NEON is an architectural part of
//! AArch64, so support-detection is a compile-target question.
//!
//! Bitwise-tier functions use separate `vmulq_f64`/`vaddq_f64` — never
//! `vfmaq_f64`, whose single rounding would break bit-equality with
//! the scalar multiply-then-add — and keep the scalar operand order so
//! NaN payload propagation matches. Lanes are independent elements
//! (element-wise kernels) or independent scalar accumulators
//! (`dot2`/`dot4`), exactly as in `crate::vector`.
#![deny(unsafe_op_in_unsafe_fn)]

use core::arch::aarch64::{
    float64x2_t, vaddq_f64, vdupq_n_f64, vfmaq_f64, vgetq_lane_f64, vld1q_f64, vmulq_f64,
    vst1q_f64, vtrn1q_f64, vtrn2q_f64,
};

/// Two independent dot-product accumulators in one 128-bit register:
/// `(x . a, x . b)`, bitwise-identical to [`crate::vector::dot2`].
///
/// Lane `0` is `da`, lane `1` is `db`; per element the update is
/// `acc = acc + x[i] * [a[i], b[i]]` in strict `i` order.
///
/// # Safety
/// The caller must ensure `x.len() == a.len() == b.len()`.
#[target_feature(enable = "neon")]
unsafe fn dot2(x: &[f64], a: &[f64], b: &[f64]) -> (f64, f64) {
    let n = x.len();
    let mut acc = vdupq_n_f64(0.0);
    let mut i = 0;
    while i + 2 <= n {
        // SAFETY: i + 2 <= n == a.len() == b.len() bounds both loads.
        let (ra, rb) = unsafe { (vld1q_f64(a.as_ptr().add(i)), vld1q_f64(b.as_ptr().add(i))) };
        // 2x2 transpose: columns [a[i], b[i]] and [a[i+1], b[i+1]].
        let c0 = vtrn1q_f64(ra, rb);
        let c1 = vtrn2q_f64(ra, rb);
        acc = vaddq_f64(acc, vmulq_f64(vdupq_n_f64(x[i]), c0));
        acc = vaddq_f64(acc, vmulq_f64(vdupq_n_f64(x[i + 1]), c1));
        i += 2;
    }
    if i < n {
        let col = [a[i], b[i]];
        // SAFETY: `col` is a live 16-byte stack buffer.
        let cv = unsafe { vld1q_f64(col.as_ptr()) };
        acc = vaddq_f64(acc, vmulq_f64(vdupq_n_f64(x[i]), cv));
    }
    (vgetq_lane_f64::<0>(acc), vgetq_lane_f64::<1>(acc))
}

/// Four independent dot-product accumulators in two 128-bit registers:
/// `[x.a, x.b, x.c, x.d]`, bitwise-identical to [`crate::vector::dot4`].
///
/// # Safety
/// The caller must ensure all five slices have equal length.
#[target_feature(enable = "neon")]
unsafe fn dot4(x: &[f64], a: &[f64], b: &[f64], c: &[f64], d: &[f64]) -> [f64; 4] {
    let n = x.len();
    let mut acc01 = vdupq_n_f64(0.0); // lanes [da, db]
    let mut acc23 = vdupq_n_f64(0.0); // lanes [dc, dd]
    let mut i = 0;
    while i + 2 <= n {
        // SAFETY: i + 2 <= n bounds all four 16-byte row loads.
        let (ra, rb, rc, rd) = unsafe {
            (
                vld1q_f64(a.as_ptr().add(i)),
                vld1q_f64(b.as_ptr().add(i)),
                vld1q_f64(c.as_ptr().add(i)),
                vld1q_f64(d.as_ptr().add(i)),
            )
        };
        let x0 = vdupq_n_f64(x[i]);
        let x1 = vdupq_n_f64(x[i + 1]);
        acc01 = vaddq_f64(acc01, vmulq_f64(x0, vtrn1q_f64(ra, rb)));
        acc01 = vaddq_f64(acc01, vmulq_f64(x1, vtrn2q_f64(ra, rb)));
        acc23 = vaddq_f64(acc23, vmulq_f64(x0, vtrn1q_f64(rc, rd)));
        acc23 = vaddq_f64(acc23, vmulq_f64(x1, vtrn2q_f64(rc, rd)));
        i += 2;
    }
    if i < n {
        let xv = vdupq_n_f64(x[i]);
        let col01 = [a[i], b[i]];
        let col23 = [c[i], d[i]];
        // SAFETY: both are live 16-byte stack buffers.
        let (cv01, cv23) = unsafe { (vld1q_f64(col01.as_ptr()), vld1q_f64(col23.as_ptr())) };
        acc01 = vaddq_f64(acc01, vmulq_f64(xv, cv01));
        acc23 = vaddq_f64(acc23, vmulq_f64(xv, cv23));
    }
    [
        vgetq_lane_f64::<0>(acc01),
        vgetq_lane_f64::<1>(acc01),
        vgetq_lane_f64::<0>(acc23),
        vgetq_lane_f64::<1>(acc23),
    ]
}

/// `y += alpha * x`, two lanes per step; bitwise-identical to
/// [`crate::vector::axpy`].
///
/// # Safety
/// The caller must ensure `x.len() == y.len()`.
#[target_feature(enable = "neon")]
unsafe fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    let n = y.len();
    let av = vdupq_n_f64(alpha);
    let mut i = 0;
    while i + 2 <= n {
        // SAFETY: i + 2 <= n == x.len() bounds both loads and the store.
        unsafe {
            let xv = vld1q_f64(x.as_ptr().add(i));
            let yv = vld1q_f64(y.as_ptr().add(i));
            vst1q_f64(y.as_mut_ptr().add(i), vaddq_f64(yv, vmulq_f64(av, xv)));
        }
        i += 2;
    }
    while i < n {
        y[i] += alpha * x[i];
        i += 1;
    }
}

/// `x *= alpha`, two lanes per step; bitwise-identical to
/// [`crate::vector::scale`].
///
/// # Safety
/// No preconditions beyond running on aarch64 (NEON is architectural).
#[target_feature(enable = "neon")]
unsafe fn scale(x: &mut [f64], alpha: f64) {
    let n = x.len();
    let av = vdupq_n_f64(alpha);
    let mut i = 0;
    while i + 2 <= n {
        // SAFETY: i + 2 <= n bounds the load and the store.
        unsafe {
            let xv = vld1q_f64(x.as_ptr().add(i));
            vst1q_f64(x.as_mut_ptr().add(i), vmulq_f64(xv, av));
        }
        i += 2;
    }
    while i < n {
        x[i] *= alpha;
        i += 1;
    }
}

/// `y = (y + alpha * x) * beta`, two lanes per step; bitwise-identical
/// to [`crate::vector::fused_axpy_scale`].
///
/// # Safety
/// The caller must ensure `x.len() == y.len()`.
#[target_feature(enable = "neon")]
unsafe fn fused_axpy_scale(y: &mut [f64], alpha: f64, x: &[f64], beta: f64) {
    let n = y.len();
    let av = vdupq_n_f64(alpha);
    let bv = vdupq_n_f64(beta);
    let mut i = 0;
    while i + 2 <= n {
        // SAFETY: i + 2 <= n == x.len() bounds both loads and the store.
        unsafe {
            let xv = vld1q_f64(x.as_ptr().add(i));
            let yv = vld1q_f64(y.as_ptr().add(i));
            let u = vaddq_f64(yv, vmulq_f64(av, xv));
            vst1q_f64(y.as_mut_ptr().add(i), vmulq_f64(u, bv));
        }
        i += 2;
    }
    while i < n {
        y[i] = (y[i] + alpha * x[i]) * beta;
        i += 1;
    }
}

/// Relaxed dot product: two independent lane accumulators with fused
/// multiply-add, fixed-order reduction `(l0 + l1) + tail`. Deterministic
/// but not bitwise-equal to the scalar sum — see
/// [`super::RelaxedKernels::dot`] for the error bound.
///
/// # Safety
/// The caller must ensure `x.len() == y.len()`.
#[target_feature(enable = "neon")]
unsafe fn dot_relaxed(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len();
    let mut acc: float64x2_t = vdupq_n_f64(0.0);
    let mut i = 0;
    while i + 2 <= n {
        // SAFETY: i + 2 <= n == y.len() bounds both loads.
        unsafe {
            let xv = vld1q_f64(x.as_ptr().add(i));
            let yv = vld1q_f64(y.as_ptr().add(i));
            acc = vfmaq_f64(acc, xv, yv);
        }
        i += 2;
    }
    let mut tail = 0.0f64;
    while i < n {
        tail = x[i].mul_add(y[i], tail);
        i += 1;
    }
    (vgetq_lane_f64::<0>(acc) + vgetq_lane_f64::<1>(acc)) + tail
}

// ---------------------------------------------------------------------
// Safe entry points. NEON is architectural on aarch64 (this module only
// compiles for that target), so the wrappers check slice lengths only;
// all `unsafe` stays inside this module.
// ---------------------------------------------------------------------

/// Safe [`dot2`]: checks lengths, then runs the kernel.
#[inline]
pub(super) fn dot2_checked(x: &[f64], a: &[f64], b: &[f64]) -> (f64, f64) {
    assert!(
        x.len() == a.len() && x.len() == b.len(),
        "dot2: length mismatch"
    );
    // SAFETY: NEON is architectural on aarch64; lengths asserted equal.
    unsafe { dot2(x, a, b) }
}

/// Safe [`dot4`]: checks lengths, then runs the kernel.
#[inline]
pub(super) fn dot4_checked(x: &[f64], a: &[f64], b: &[f64], c: &[f64], d: &[f64]) -> [f64; 4] {
    assert!(
        x.len() == a.len() && x.len() == b.len() && x.len() == c.len() && x.len() == d.len(),
        "dot4: length mismatch"
    );
    // SAFETY: NEON is architectural on aarch64; lengths asserted equal.
    unsafe { dot4(x, a, b, c, d) }
}

/// Safe [`axpy`]: checks lengths, then runs the kernel.
#[inline]
pub(super) fn axpy_checked(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    // SAFETY: NEON is architectural on aarch64; lengths asserted equal.
    unsafe { axpy(alpha, x, y) }
}

/// Safe [`scale`]: runs the kernel (no length precondition).
#[inline]
pub(super) fn scale_checked(x: &mut [f64], alpha: f64) {
    // SAFETY: NEON is architectural on aarch64; `scale` touches only `x`.
    unsafe { scale(x, alpha) }
}

/// Safe [`fused_axpy_scale`]: checks lengths, then runs the kernel.
#[inline]
pub(super) fn fused_axpy_scale_checked(y: &mut [f64], alpha: f64, x: &[f64], beta: f64) {
    assert_eq!(x.len(), y.len(), "fused_axpy_scale: length mismatch");
    // SAFETY: NEON is architectural on aarch64; lengths asserted equal.
    unsafe { fused_axpy_scale(y, alpha, x, beta) }
}

/// Safe [`dot_relaxed`]: checks lengths, then runs the kernel.
#[inline]
pub(super) fn dot_relaxed_checked(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    // SAFETY: NEON is architectural on aarch64; lengths asserted equal.
    unsafe { dot_relaxed(x, y) }
}
