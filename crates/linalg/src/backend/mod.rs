//! Runtime-dispatched kernel backends (DESIGN.md §15).
//!
//! Every hot inner loop of AdvSGM — the Eq.-2 inner products behind
//! `score`/`top_k`, the Theorem-6 per-pair gradients, the noisy batch
//! apply — bottoms out in the scalar kernels of [`crate::vector`]. This
//! module puts that surface behind one runtime CPU-feature dispatch so
//! the hot loops run on explicit SIMD paths where the host has them,
//! without trusting autovectorization and **without bending the
//! repo's determinism contract**.
//!
//! # The two arithmetic tiers
//!
//! **Bitwise tier** — [`dot`], [`dot2`], [`dot4`], [`axpy`], [`scale`],
//! [`fused_axpy_scale`], [`norm2_sq`]. Every backend executes the *same
//! floating-point operation sequence* as the scalar reference in
//! [`crate::vector`], so results are bitwise-identical across backends:
//!
//! * Element-wise kernels (`axpy`, `scale`, `fused_axpy_scale`)
//!   vectorize trivially: SIMD lanes are independent elements and each
//!   lane performs exactly the scalar op chain (separate multiply and
//!   add — never FMA, whose single rounding differs from mul-then-add).
//! * `dot2`/`dot4` already use independent scalar accumulators — one
//!   per output — so the SIMD form packs those accumulators into lanes
//!   and feeds each lane its operands in the scalar order. No sum is
//!   reassociated.
//! * `dot` and `norm2_sq` reduce into a **single** sequential
//!   accumulator; that association is the contract, so they stay on the
//!   scalar loop under every backend. (The serving scan gets its SIMD
//!   win from `dot4`, which is why `top_k_rows` fuses four rows.)
//!
//! Training and exact serving use only this tier; the exhaustive
//! cross-backend equality proof lives in `tests/kernel_equivalence.rs`.
//!
//! One honest caveat: when an *input* is NaN, the guarantee weakens to
//! "the same elements are NaN". Which NaN *payload* propagates through
//! `a * b` is unspecified by Rust's own scalar semantics (LLVM commutes
//! `fmul`/`fadd` freely, so even scalar-vs-scalar payloads vary with
//! optimization level); no kernel layer can promise more than the
//! language does. Every non-NaN result — including ±inf, signed zeros,
//! and subnormals — is bit-exact. Training inputs are finite, so the
//! training-side contract (`.aemb` bytes) is unaffected.
//!
//! **Relaxed tier** — [`RelaxedKernels`]: reassociated multi-lane FMA
//! reductions for single-`dot` row scans. Faster, *not* bitwise-equal
//! to scalar (results differ within a documented ULP bound, see
//! [`RelaxedKernels::dot`]). It is deliberately unreachable from
//! training: the only callers are the approximate serving paths
//! (`IvfIndex::search_relaxed` behind an explicit opt-in). That is safe
//! for the same reason the ANN index itself is: released embeddings are
//! Theorem-5 post-processing — any function of the released bytes,
//! including a differently-rounded score, costs no additional privacy.
//!
//! # Selection
//!
//! The backend is resolved once, on first use, and cached:
//!
//! 1. `ADVSGM_KERNELS=scalar|avx2|neon` (case-insensitive) wins when it
//!    names a backend the host supports;
//! 2. a value naming an *unsupported or unknown* backend degrades to
//!    auto-detection (like an absurd `ADVSGM_THREADS` degrades to a
//!    slow run, never a crash);
//! 3. auto-detection picks the best supported backend: AVX2 on x86-64
//!    hosts with AVX2+FMA, NEON on aarch64, scalar everywhere else.
//!
//! Because the bitwise tier is bitwise-equal across backends, the
//! override is an A/B and CI tool, not a correctness knob: `train`,
//! `query` (exact), and `.aemb`/`.aidx` bytes do not depend on it.

use std::sync::atomic::{AtomicU8, Ordering};

use crate::vector;

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod avx2;
#[cfg(target_arch = "aarch64")]
#[allow(unsafe_code)]
mod neon;

/// One kernel implementation the dispatcher can select.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The portable reference loops of [`crate::vector`] — always
    /// available, and the definition of the bitwise contract.
    Scalar,
    /// 256-bit AVX2 paths (x86-64 with AVX2; FMA is additionally
    /// required so the relaxed tier can fuse, the bitwise tier never
    /// contracts).
    Avx2,
    /// 128-bit NEON paths (aarch64, where NEON is architectural).
    Neon,
}

impl Backend {
    /// Every backend the dispatcher knows, strongest-first per arch.
    pub const ALL: [Backend; 3] = [Backend::Avx2, Backend::Neon, Backend::Scalar];

    /// The backend's `ADVSGM_KERNELS` spelling.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
            Backend::Neon => "neon",
        }
    }

    /// Parses an `ADVSGM_KERNELS` value (trimmed, case-insensitive).
    pub fn parse(s: &str) -> Option<Backend> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(Backend::Scalar),
            "avx2" => Some(Backend::Avx2),
            "neon" => Some(Backend::Neon),
            _ => None,
        }
    }

    /// Whether this host can execute the backend.
    pub fn is_supported(self) -> bool {
        match self {
            Backend::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => {
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
            }
            #[cfg(not(target_arch = "x86_64"))]
            Backend::Avx2 => false,
            // NEON is a mandatory part of AArch64: if the binary runs,
            // the feature is there.
            Backend::Neon => cfg!(target_arch = "aarch64"),
        }
    }

    /// The best backend this host supports (auto-detection).
    pub fn detect() -> Backend {
        Backend::ALL
            .into_iter()
            .find(|b| b.is_supported())
            .unwrap_or(Backend::Scalar)
    }

    fn code(self) -> u8 {
        match self {
            Backend::Scalar => 1,
            Backend::Avx2 => 2,
            Backend::Neon => 3,
        }
    }

    fn from_code(code: u8) -> Option<Backend> {
        match code {
            1 => Some(Backend::Scalar),
            2 => Some(Backend::Avx2),
            3 => Some(Backend::Neon),
            _ => None,
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How [`resolve_backend`] arrived at its answer — surfaced by
/// `advsgm info --host` and the `serve` startup log so an ignored
/// override is visible, not silent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendResolution {
    /// `ADVSGM_KERNELS` named a supported backend and was honored.
    EnvSelected,
    /// `ADVSGM_KERNELS` named a known backend this host cannot run;
    /// auto-detection was used instead.
    EnvUnsupported,
    /// `ADVSGM_KERNELS` was set but not a recognized backend name;
    /// auto-detection was used instead.
    EnvInvalid,
    /// `ADVSGM_KERNELS` was unset (or blank); auto-detection was used.
    Detected,
}

impl BackendResolution {
    /// A short human-readable source label for logs.
    pub fn describe(self) -> &'static str {
        match self {
            BackendResolution::EnvSelected => "ADVSGM_KERNELS",
            BackendResolution::EnvUnsupported => {
                "auto (ADVSGM_KERNELS named an unsupported backend)"
            }
            BackendResolution::EnvInvalid => "auto (ADVSGM_KERNELS was not a backend name)",
            BackendResolution::Detected => "auto-detected",
        }
    }
}

/// Resolves an `ADVSGM_KERNELS`-style value to a backend.
///
/// Precedence (mirrors `--threads`/`ADVSGM_THREADS`): a set, valid,
/// host-supported value wins; anything else — unset, blank, unknown
/// name, or a backend the host lacks — degrades to [`Backend::detect`].
/// The second element reports which branch was taken.
///
/// Pure in its argument so the precedence table is unit-testable
/// without touching the process environment.
pub fn resolve_backend(env: Option<&str>) -> (Backend, BackendResolution) {
    match env.map(str::trim) {
        None | Some("") => (Backend::detect(), BackendResolution::Detected),
        Some(value) => match Backend::parse(value) {
            Some(b) if b.is_supported() => (b, BackendResolution::EnvSelected),
            Some(_) => (Backend::detect(), BackendResolution::EnvUnsupported),
            None => (Backend::detect(), BackendResolution::EnvInvalid),
        },
    }
}

/// The resolution [`active`] would cache, recomputed from the current
/// environment (for `info --host` / `serve` startup reporting).
pub fn resolution() -> (Backend, BackendResolution) {
    resolve_backend(std::env::var("ADVSGM_KERNELS").ok().as_deref())
}

/// The cached backend selection: 0 = not yet resolved.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

/// The backend every dispatched kernel in this process uses.
///
/// Resolved once from `ADVSGM_KERNELS` / auto-detection on first call,
/// then cached (one relaxed atomic load per dispatch).
pub fn active() -> Backend {
    match Backend::from_code(ACTIVE.load(Ordering::Relaxed)) {
        Some(b) => b,
        None => {
            let (resolved, _) = resolution();
            // A concurrent first call resolves to the same value (the
            // environment does not change under us), so a race is benign.
            ACTIVE.store(resolved.code(), Ordering::Relaxed);
            resolved
        }
    }
}

/// Forces the active backend, overriding `ADVSGM_KERNELS`.
///
/// Intended for the equivalence tests and the kernel benches, which A/B
/// backends inside one process. Forcing is always sound: the bitwise
/// tier is bitwise-equal across backends, so no computation observes
/// the switch.
///
/// # Panics
/// Panics if the host cannot execute `backend`.
pub fn force(backend: Backend) {
    assert!(
        backend.is_supported(),
        "backend {backend} is not supported on this host"
    );
    ACTIVE.store(backend.code(), Ordering::Relaxed);
}

/// `(feature name, detected)` pairs for this host — the `info --host`
/// report. Scalar-relevant baseline features are included so the
/// output is meaningful on every arch.
pub fn host_features() -> Vec<(&'static str, bool)> {
    #[cfg(target_arch = "x86_64")]
    {
        vec![
            ("sse2", true), // x86-64 baseline
            ("avx", std::arch::is_x86_feature_detected!("avx")),
            ("avx2", std::arch::is_x86_feature_detected!("avx2")),
            ("fma", std::arch::is_x86_feature_detected!("fma")),
            ("avx512f", std::arch::is_x86_feature_detected!("avx512f")),
        ]
    }
    #[cfg(target_arch = "aarch64")]
    {
        vec![("neon", true)] // architectural on aarch64
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        Vec::new()
    }
}

// ---------------------------------------------------------------------
// Bitwise tier: dispatched kernel surface.
//
// Each `foo` dispatches on `active()`; each `foo_with` takes the
// backend explicitly (the equivalence tests and benches A/B through
// these). `foo_with` falls back to the scalar reference when handed a
// backend the host cannot run — never UB, and bitwise-identical anyway.
// ---------------------------------------------------------------------

/// Dispatched [`vector::dot`]. Scalar on every backend: the single
/// sequential accumulator *is* the pinned FP association, so there is
/// no bitwise-preserving SIMD form (see module docs).
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    dot_with(active(), x, y)
}

/// [`dot`] on an explicit backend.
#[inline]
pub fn dot_with(backend: Backend, x: &[f64], y: &[f64]) -> f64 {
    let _ = backend; // one scalar definition serves every backend
    vector::dot(x, y)
}

/// Dispatched [`vector::norm2_sq`]. Scalar on every backend, like
/// [`dot`].
#[inline]
pub fn norm2_sq(x: &[f64]) -> f64 {
    norm2_sq_with(active(), x)
}

/// [`norm2_sq`] on an explicit backend.
#[inline]
pub fn norm2_sq_with(backend: Backend, x: &[f64]) -> f64 {
    let _ = backend;
    vector::norm2_sq(x)
}

/// Dispatched [`vector::dot2`]: `(x . a, x . b)`, bitwise-identical to
/// two scalar [`vector::dot`]s on every backend.
#[inline]
pub fn dot2(x: &[f64], a: &[f64], b: &[f64]) -> (f64, f64) {
    dot2_with(active(), x, a, b)
}

/// [`dot2`] on an explicit backend.
#[inline]
pub fn dot2_with(backend: Backend, x: &[f64], a: &[f64], b: &[f64]) -> (f64, f64) {
    assert_eq!(x.len(), a.len(), "dot2: length mismatch (a)");
    assert_eq!(x.len(), b.len(), "dot2: length mismatch (b)");
    match backend {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 if Backend::Avx2.is_supported() => avx2::dot2_checked(x, a, b),
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => neon::dot2_checked(x, a, b),
        _ => vector::dot2(x, a, b),
    }
}

/// Dispatched [`vector::dot4`]: `[x.a, x.b, x.c, x.d]`,
/// bitwise-identical to four scalar [`vector::dot`]s on every backend —
/// the serving scan's workhorse.
#[inline]
pub fn dot4(x: &[f64], a: &[f64], b: &[f64], c: &[f64], d: &[f64]) -> [f64; 4] {
    dot4_with(active(), x, a, b, c, d)
}

/// [`dot4`] on an explicit backend.
#[inline]
pub fn dot4_with(
    backend: Backend,
    x: &[f64],
    a: &[f64],
    b: &[f64],
    c: &[f64],
    d: &[f64],
) -> [f64; 4] {
    assert_eq!(x.len(), a.len(), "dot4: length mismatch (a)");
    assert_eq!(x.len(), b.len(), "dot4: length mismatch (b)");
    assert_eq!(x.len(), c.len(), "dot4: length mismatch (c)");
    assert_eq!(x.len(), d.len(), "dot4: length mismatch (d)");
    match backend {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 if Backend::Avx2.is_supported() => avx2::dot4_checked(x, a, b, c, d),
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => neon::dot4_checked(x, a, b, c, d),
        _ => vector::dot4(x, a, b, c, d),
    }
}

/// Dispatched [`vector::axpy`]: `y += alpha * x`, element-wise
/// bitwise-identical on every backend.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    axpy_with(active(), alpha, x, y);
}

/// [`axpy`] on an explicit backend.
#[inline]
pub fn axpy_with(backend: Backend, alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    match backend {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 if Backend::Avx2.is_supported() => avx2::axpy_checked(alpha, x, y),
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => neon::axpy_checked(alpha, x, y),
        _ => vector::axpy(alpha, x, y),
    }
}

/// Dispatched [`vector::scale`]: `x *= alpha`, element-wise
/// bitwise-identical on every backend.
#[inline]
pub fn scale(x: &mut [f64], alpha: f64) {
    scale_with(active(), x, alpha);
}

/// [`scale`] on an explicit backend.
#[inline]
pub fn scale_with(backend: Backend, x: &mut [f64], alpha: f64) {
    match backend {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 if Backend::Avx2.is_supported() => avx2::scale_checked(x, alpha),
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => neon::scale_checked(x, alpha),
        _ => vector::scale(x, alpha),
    }
}

/// Dispatched [`vector::fused_axpy_scale`]:
/// `y = (y + alpha * x) * beta`, element-wise bitwise-identical on
/// every backend — the trainer's noisy-apply kernel.
#[inline]
pub fn fused_axpy_scale(y: &mut [f64], alpha: f64, x: &[f64], beta: f64) {
    fused_axpy_scale_with(active(), y, alpha, x, beta);
}

/// [`fused_axpy_scale`] on an explicit backend.
#[inline]
pub fn fused_axpy_scale_with(backend: Backend, y: &mut [f64], alpha: f64, x: &[f64], beta: f64) {
    assert_eq!(x.len(), y.len(), "fused_axpy_scale: length mismatch");
    match backend {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 if Backend::Avx2.is_supported() => {
            avx2::fused_axpy_scale_checked(y, alpha, x, beta)
        }
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => neon::fused_axpy_scale_checked(y, alpha, x, beta),
        _ => vector::fused_axpy_scale(y, alpha, x, beta),
    }
}

// ---------------------------------------------------------------------
// Relaxed tier.
// ---------------------------------------------------------------------

/// Opt-in token for the relaxed arithmetic tier: reassociated
/// multi-lane FMA reductions that are faster than the bitwise tier but
/// **not** bitwise-equal to the scalar reference.
///
/// Constructing one is the explicit acknowledgement that the caller is
/// in Theorem-5 post-processing territory: scoring *released*
/// embeddings, where a differently-rounded inner product changes no
/// privacy property and (in approximate serving) the result is already
/// a recall trade-off. The training engines and every exact-serving
/// path take no `RelaxedKernels` parameter, and
/// `tests/kernel_equivalence.rs` pins that reachability claim by
/// scanning `advsgm-core` for this type.
///
/// The token captures the backend at construction, so one search
/// request is internally consistent even if [`force`] flips the global
/// selection mid-flight.
#[derive(Debug, Clone, Copy)]
pub struct RelaxedKernels {
    backend: Backend,
}

impl RelaxedKernels {
    /// Opts in on the [`active`] backend.
    pub fn opt_in() -> Self {
        Self { backend: active() }
    }

    /// Opts in on an explicit backend (equivalence tests and benches).
    pub fn with_backend(backend: Backend) -> Self {
        Self { backend }
    }

    /// The backend this token scores with.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Relaxed dot product `x . y`.
    ///
    /// On SIMD backends the reduction runs 4 (AVX2) or 2 (NEON)
    /// independent lane accumulators with fused multiply-add, then sums
    /// the lanes in a fixed order; on the scalar backend it is exactly
    /// [`vector::dot`]. For a given backend the result is deterministic,
    /// but across backends it differs from the scalar sum by the usual
    /// reassociation error: for finite inputs the relative error vs. the
    /// exact (infinitely precise) sum is bounded by `~n * eps` — in
    /// practice well under `1e-12` relative at serving dimensions
    /// (`r <= 1024`), the bound `tests/kernel_equivalence.rs` enforces.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    #[inline]
    pub fn dot(&self, x: &[f64], y: &[f64]) -> f64 {
        assert_eq!(x.len(), y.len(), "dot: length mismatch");
        match self.backend {
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 if Backend::Avx2.is_supported() => avx2::dot_relaxed_checked(x, y),
            #[cfg(target_arch = "aarch64")]
            Backend::Neon => neon::dot_relaxed_checked(x, y),
            _ => vector::dot(x, y),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_known_names_case_insensitively() {
        assert_eq!(Backend::parse("scalar"), Some(Backend::Scalar));
        assert_eq!(Backend::parse(" AVX2 "), Some(Backend::Avx2));
        assert_eq!(Backend::parse("Neon"), Some(Backend::Neon));
        assert_eq!(Backend::parse("sse9"), None);
        assert_eq!(Backend::parse(""), None);
    }

    #[test]
    fn resolution_precedence_mirrors_threads() {
        // Unset / blank -> auto-detection.
        assert_eq!(
            resolve_backend(None),
            (Backend::detect(), BackendResolution::Detected)
        );
        assert_eq!(
            resolve_backend(Some("  ")),
            (Backend::detect(), BackendResolution::Detected)
        );
        // A valid, supported name wins verbatim.
        assert_eq!(
            resolve_backend(Some("scalar")),
            (Backend::Scalar, BackendResolution::EnvSelected)
        );
        // Garbage degrades to auto-detection, never a crash.
        assert_eq!(
            resolve_backend(Some("turbo")),
            (Backend::detect(), BackendResolution::EnvInvalid)
        );
        // A known-but-unsupported backend also degrades to detection.
        let foreign = if cfg!(target_arch = "x86_64") {
            "neon"
        } else {
            "avx2"
        };
        assert_eq!(
            resolve_backend(Some(foreign)),
            (Backend::detect(), BackendResolution::EnvUnsupported)
        );
    }

    #[test]
    fn detect_reports_a_supported_backend() {
        let b = Backend::detect();
        assert!(b.is_supported());
        // Scalar is supported everywhere, so detection never fails.
        assert!(Backend::Scalar.is_supported());
    }

    #[test]
    fn active_is_stable_and_forceable() {
        let first = active();
        assert_eq!(active(), first);
        force(Backend::Scalar);
        assert_eq!(active(), Backend::Scalar);
        // Restore detection's choice for other tests in this process.
        force(first);
        assert_eq!(active(), first);
    }

    #[test]
    fn bitwise_tier_smoke_on_every_supported_backend() {
        let x: Vec<f64> = (0..37).map(|i| (i as f64 * 0.71).sin() * 3.0).collect();
        let a: Vec<f64> = (0..37).map(|i| (i as f64 * 0.37).cos() / 7.0).collect();
        let b: Vec<f64> = (0..37).map(|i| 1.0 / (i as f64 + 0.5)).collect();
        let c: Vec<f64> = (0..37).map(|i| (i as f64).sqrt() - 2.0).collect();
        let d: Vec<f64> = (0..37).map(|i| (i as f64 * 1.3).tan()).collect();
        for backend in Backend::ALL.into_iter().filter(|b| b.is_supported()) {
            let (da, db) = dot2_with(backend, &x, &a, &b);
            let (ra, rb) = vector::dot2(&x, &a, &b);
            assert_eq!(da.to_bits(), ra.to_bits(), "{backend} dot2.a");
            assert_eq!(db.to_bits(), rb.to_bits(), "{backend} dot2.b");

            let got = dot4_with(backend, &x, &a, &b, &c, &d);
            let want = vector::dot4(&x, &a, &b, &c, &d);
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.to_bits(), w.to_bits(), "{backend} dot4");
            }

            let mut y1 = a.clone();
            let mut y2 = a.clone();
            axpy_with(backend, 1.7, &x, &mut y1);
            vector::axpy(1.7, &x, &mut y2);
            assert_eq!(bits(&y1), bits(&y2), "{backend} axpy");

            scale_with(backend, &mut y1, 0.3);
            vector::scale(&mut y2, 0.3);
            assert_eq!(bits(&y1), bits(&y2), "{backend} scale");

            fused_axpy_scale_with(backend, &mut y1, 5.0, &x, 0.2);
            vector::fused_axpy_scale(&mut y2, 5.0, &x, 0.2);
            assert_eq!(bits(&y1), bits(&y2), "{backend} fused_axpy_scale");
        }
    }

    #[test]
    fn relaxed_dot_is_deterministic_and_close() {
        let x: Vec<f64> = (0..129).map(|i| (i as f64 * 0.11).sin()).collect();
        let y: Vec<f64> = (0..129).map(|i| (i as f64 * 0.23).cos()).collect();
        let exact = vector::dot(&x, &y);
        for backend in Backend::ALL.into_iter().filter(|b| b.is_supported()) {
            let relaxed = RelaxedKernels::with_backend(backend);
            let got = relaxed.dot(&x, &y);
            assert_eq!(got.to_bits(), relaxed.dot(&x, &y).to_bits());
            assert!(
                (got - exact).abs() <= 1e-12 * exact.abs().max(1.0),
                "{backend}: relaxed {got} vs exact {exact}"
            );
        }
    }

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn host_features_include_the_active_backend_requirements() {
        let features = host_features();
        if Backend::Avx2.is_supported() {
            assert!(features.iter().any(|&(name, on)| name == "avx2" && on));
        }
        if Backend::Neon.is_supported() {
            assert!(features.iter().any(|&(name, on)| name == "neon" && on));
        }
    }
}
