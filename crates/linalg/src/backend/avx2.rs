//! AVX2 kernel implementations (x86-64).
//!
//! All `unsafe` in `advsgm-linalg` lives in this module (and its NEON
//! sibling). Every function is `unsafe fn` with a `# Safety` contract
//! — the dispatcher in [`super`] checks CPU support and slice lengths
//! before calling — and `unsafe_op_in_unsafe_fn` is denied, so each
//! pointer dereference carries its own justification.
//!
//! Bitwise-tier functions (`dot2`, `dot4`, `axpy`, `scale`,
//! `fused_axpy_scale`) enable **only** `avx2`: with no FMA in the
//! feature set and no fast-math flags, each lane performs the exact
//! scalar operation sequence (separate `vmulpd`/`vaddpd`, IEEE-754
//! exactly-rounded per op), so results are bitwise-identical to
//! `crate::vector`. Operand order is kept identical to the scalar code
//! (`mul(x, row)`, `add(acc, prod)`) so even NaN payload propagation —
//! x86 returns the first NaN operand — matches.
//!
//! The relaxed-tier `dot_relaxed` additionally enables `fma` and
//! reassociates: four independent lane accumulators, fused
//! multiply-add, fixed-order horizontal sum. See
//! [`super::RelaxedKernels`].
#![deny(unsafe_op_in_unsafe_fn)]

use core::arch::x86_64::{
    __m256d, _mm256_add_pd, _mm256_castpd256_pd128, _mm256_extractf128_pd, _mm256_fmadd_pd,
    _mm256_loadu_pd, _mm256_mul_pd, _mm256_permute2f128_pd, _mm256_set1_pd, _mm256_set_pd,
    _mm256_setzero_pd, _mm256_storeu_pd, _mm256_unpackhi_pd, _mm256_unpacklo_pd, _mm_add_pd,
    _mm_add_sd, _mm_cvtsd_f64, _mm_loadu_pd, _mm_mul_pd, _mm_set1_pd, _mm_set_pd, _mm_setzero_pd,
    _mm_storeu_pd, _mm_unpackhi_pd, _mm_unpacklo_pd,
};

/// Two independent dot-product accumulators packed into one 128-bit
/// lane pair: `(x . a, x . b)`, bitwise-identical to [`crate::vector::dot2`].
///
/// Lane `0` is `da`, lane `1` is `db`. Per element the update is
/// `acc = acc + x[i] * [a[i], b[i]]` — exactly the scalar
/// `da += xi * ai; db += xi * bi` per lane, in the same `i` order.
///
/// # Safety
/// The caller must ensure AVX2 is available and
/// `x.len() == a.len() == b.len()`.
#[target_feature(enable = "avx2")]
unsafe fn dot2(x: &[f64], a: &[f64], b: &[f64]) -> (f64, f64) {
    let n = x.len();
    let mut acc = _mm_setzero_pd();
    let mut i = 0;
    while i + 2 <= n {
        // SAFETY: i + 2 <= n == a.len() == b.len() bounds both loads.
        let (ra, rb) = unsafe {
            (
                _mm_loadu_pd(a.as_ptr().add(i)),
                _mm_loadu_pd(b.as_ptr().add(i)),
            )
        };
        // 2x2 transpose: columns [a[i], b[i]] and [a[i+1], b[i+1]].
        let c0 = _mm_unpacklo_pd(ra, rb);
        let c1 = _mm_unpackhi_pd(ra, rb);
        acc = _mm_add_pd(acc, _mm_mul_pd(_mm_set1_pd(x[i]), c0));
        acc = _mm_add_pd(acc, _mm_mul_pd(_mm_set1_pd(x[i + 1]), c1));
        i += 2;
    }
    if i < n {
        // _mm_set_pd lists lanes high-to-low: lanes are [a[i], b[i]].
        let col = _mm_set_pd(b[i], a[i]);
        acc = _mm_add_pd(acc, _mm_mul_pd(_mm_set1_pd(x[i]), col));
    }
    let mut out = [0.0f64; 2];
    // SAFETY: `out` is a properly aligned, writable 16-byte buffer.
    unsafe { _mm_storeu_pd(out.as_mut_ptr(), acc) };
    (out[0], out[1])
}

/// Four independent dot-product accumulators packed into one `__m256d`:
/// `[x.a, x.b, x.c, x.d]`, bitwise-identical to [`crate::vector::dot4`].
///
/// Elements are consumed four at a time: one 4x4 transpose turns four
/// contiguous row loads into per-`i` columns `[a[i], b[i], c[i], d[i]]`,
/// then the accumulator takes them in strict `i` order — each lane sees
/// exactly the scalar operation sequence.
///
/// # Safety
/// The caller must ensure AVX2 is available and all five slices have
/// equal length.
#[target_feature(enable = "avx2")]
unsafe fn dot4(x: &[f64], a: &[f64], b: &[f64], c: &[f64], d: &[f64]) -> [f64; 4] {
    let n = x.len();
    let mut acc = _mm256_setzero_pd();
    let mut i = 0;
    while i + 4 <= n {
        // SAFETY: i + 4 <= n bounds all four 32-byte row loads.
        let (ra, rb, rc, rd) = unsafe {
            (
                _mm256_loadu_pd(a.as_ptr().add(i)),
                _mm256_loadu_pd(b.as_ptr().add(i)),
                _mm256_loadu_pd(c.as_ptr().add(i)),
                _mm256_loadu_pd(d.as_ptr().add(i)),
            )
        };
        // 4x4 transpose to columns ct = [a[i+t], b[i+t], c[i+t], d[i+t]].
        let t0 = _mm256_unpacklo_pd(ra, rb); // [a0, b0, a2, b2]
        let t1 = _mm256_unpackhi_pd(ra, rb); // [a1, b1, a3, b3]
        let t2 = _mm256_unpacklo_pd(rc, rd); // [c0, d0, c2, d2]
        let t3 = _mm256_unpackhi_pd(rc, rd); // [c1, d1, c3, d3]
        let c0 = _mm256_permute2f128_pd::<0x20>(t0, t2);
        let c1 = _mm256_permute2f128_pd::<0x20>(t1, t3);
        let c2 = _mm256_permute2f128_pd::<0x31>(t0, t2);
        let c3 = _mm256_permute2f128_pd::<0x31>(t1, t3);
        acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_set1_pd(x[i]), c0));
        acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_set1_pd(x[i + 1]), c1));
        acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_set1_pd(x[i + 2]), c2));
        acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_set1_pd(x[i + 3]), c3));
        i += 4;
    }
    while i < n {
        // _mm256_set_pd lists lanes high-to-low: [a[i], b[i], c[i], d[i]].
        let col = _mm256_set_pd(d[i], c[i], b[i], a[i]);
        acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_set1_pd(x[i]), col));
        i += 1;
    }
    let mut out = [0.0f64; 4];
    // SAFETY: `out` is a properly aligned, writable 32-byte buffer.
    unsafe { _mm256_storeu_pd(out.as_mut_ptr(), acc) };
    out
}

/// `y += alpha * x`, four lanes per step; bitwise-identical to
/// [`crate::vector::axpy`] (per element: multiply, then add — no FMA).
///
/// # Safety
/// The caller must ensure AVX2 is available and `x.len() == y.len()`.
#[target_feature(enable = "avx2")]
unsafe fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    let n = y.len();
    let av = _mm256_set1_pd(alpha);
    let mut i = 0;
    while i + 4 <= n {
        // SAFETY: i + 4 <= n == x.len() bounds both loads and the store.
        unsafe {
            let xv = _mm256_loadu_pd(x.as_ptr().add(i));
            let yv = _mm256_loadu_pd(y.as_ptr().add(i));
            let prod = _mm256_mul_pd(av, xv);
            _mm256_storeu_pd(y.as_mut_ptr().add(i), _mm256_add_pd(yv, prod));
        }
        i += 4;
    }
    while i < n {
        y[i] += alpha * x[i];
        i += 1;
    }
}

/// `x *= alpha`, four lanes per step; bitwise-identical to
/// [`crate::vector::scale`].
///
/// # Safety
/// The caller must ensure AVX2 is available.
#[target_feature(enable = "avx2")]
unsafe fn scale(x: &mut [f64], alpha: f64) {
    let n = x.len();
    let av = _mm256_set1_pd(alpha);
    let mut i = 0;
    while i + 4 <= n {
        // SAFETY: i + 4 <= n bounds the load and the store.
        unsafe {
            let xv = _mm256_loadu_pd(x.as_ptr().add(i));
            _mm256_storeu_pd(x.as_mut_ptr().add(i), _mm256_mul_pd(xv, av));
        }
        i += 4;
    }
    while i < n {
        x[i] *= alpha;
        i += 1;
    }
}

/// `y = (y + alpha * x) * beta`, four lanes per step; bitwise-identical
/// to [`crate::vector::fused_axpy_scale`] (per element: multiply, add,
/// multiply — the exact scalar chain, no FMA contraction).
///
/// # Safety
/// The caller must ensure AVX2 is available and `x.len() == y.len()`.
#[target_feature(enable = "avx2")]
unsafe fn fused_axpy_scale(y: &mut [f64], alpha: f64, x: &[f64], beta: f64) {
    let n = y.len();
    let av = _mm256_set1_pd(alpha);
    let bv = _mm256_set1_pd(beta);
    let mut i = 0;
    while i + 4 <= n {
        // SAFETY: i + 4 <= n == x.len() bounds both loads and the store.
        unsafe {
            let xv = _mm256_loadu_pd(x.as_ptr().add(i));
            let yv = _mm256_loadu_pd(y.as_ptr().add(i));
            let t = _mm256_mul_pd(av, xv);
            let u = _mm256_add_pd(yv, t);
            _mm256_storeu_pd(y.as_mut_ptr().add(i), _mm256_mul_pd(u, bv));
        }
        i += 4;
    }
    while i < n {
        y[i] = (y[i] + alpha * x[i]) * beta;
        i += 1;
    }
}

/// Relaxed dot product: four independent lane accumulators, fused
/// multiply-add, fixed-order horizontal reduction
/// `((l0 + l2) + (l1 + l3)) + tail`. Deterministic, but **not**
/// bitwise-equal to the scalar sum — see [`super::RelaxedKernels::dot`]
/// for the error bound.
///
/// # Safety
/// The caller must ensure AVX2 **and FMA** are available and
/// `x.len() == y.len()`.
#[target_feature(enable = "avx2,fma")]
unsafe fn dot_relaxed(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len();
    let mut acc: __m256d = _mm256_setzero_pd();
    let mut i = 0;
    while i + 4 <= n {
        // SAFETY: i + 4 <= n == y.len() bounds both loads.
        unsafe {
            let xv = _mm256_loadu_pd(x.as_ptr().add(i));
            let yv = _mm256_loadu_pd(y.as_ptr().add(i));
            acc = _mm256_fmadd_pd(xv, yv, acc);
        }
        i += 4;
    }
    let mut tail = 0.0f64;
    while i < n {
        tail = x[i].mul_add(y[i], tail);
        i += 1;
    }
    let lo = _mm256_castpd256_pd128(acc);
    let hi = _mm256_extractf128_pd::<1>(acc);
    let s2 = _mm_add_pd(lo, hi); // [l0 + l2, l1 + l3]
    let lanes = _mm_add_sd(s2, _mm_unpackhi_pd(s2, s2));
    _mm_cvtsd_f64(lanes) + tail
}

// ---------------------------------------------------------------------
// Safe entry points. The dispatcher calls only these: each one verifies
// the CPU feature (std caches the detection in an atomic) and the slice
// lengths the unsafe kernels rely on, so the `unsafe` stays inside this
// module.
// ---------------------------------------------------------------------

/// Asserts AVX2 availability — the safe wrappers' feature gate.
#[inline]
fn require_avx2() {
    assert!(
        std::arch::is_x86_feature_detected!("avx2"),
        "avx2 backend selected on a host without AVX2"
    );
}

/// Safe [`dot2`]: checks feature and lengths, then runs the kernel.
#[inline]
pub(super) fn dot2_checked(x: &[f64], a: &[f64], b: &[f64]) -> (f64, f64) {
    require_avx2();
    assert!(
        x.len() == a.len() && x.len() == b.len(),
        "dot2: length mismatch"
    );
    // SAFETY: AVX2 verified and lengths asserted equal just above.
    unsafe { dot2(x, a, b) }
}

/// Safe [`dot4`]: checks feature and lengths, then runs the kernel.
#[inline]
pub(super) fn dot4_checked(x: &[f64], a: &[f64], b: &[f64], c: &[f64], d: &[f64]) -> [f64; 4] {
    require_avx2();
    assert!(
        x.len() == a.len() && x.len() == b.len() && x.len() == c.len() && x.len() == d.len(),
        "dot4: length mismatch"
    );
    // SAFETY: AVX2 verified and lengths asserted equal just above.
    unsafe { dot4(x, a, b, c, d) }
}

/// Safe [`axpy`]: checks feature and lengths, then runs the kernel.
#[inline]
pub(super) fn axpy_checked(alpha: f64, x: &[f64], y: &mut [f64]) {
    require_avx2();
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    // SAFETY: AVX2 verified and lengths asserted equal just above.
    unsafe { axpy(alpha, x, y) }
}

/// Safe [`scale`]: checks the feature, then runs the kernel.
#[inline]
pub(super) fn scale_checked(x: &mut [f64], alpha: f64) {
    require_avx2();
    // SAFETY: AVX2 verified just above; `scale` reads/writes only `x`.
    unsafe { scale(x, alpha) }
}

/// Safe [`fused_axpy_scale`]: checks feature and lengths, then runs the
/// kernel.
#[inline]
pub(super) fn fused_axpy_scale_checked(y: &mut [f64], alpha: f64, x: &[f64], beta: f64) {
    require_avx2();
    assert_eq!(x.len(), y.len(), "fused_axpy_scale: length mismatch");
    // SAFETY: AVX2 verified and lengths asserted equal just above.
    unsafe { fused_axpy_scale(y, alpha, x, beta) }
}

/// Safe [`dot_relaxed`]: checks AVX2+FMA and lengths, then runs the
/// kernel.
#[inline]
pub(super) fn dot_relaxed_checked(x: &[f64], y: &[f64]) -> f64 {
    require_avx2();
    assert!(
        std::arch::is_x86_feature_detected!("fma"),
        "relaxed avx2 kernels selected on a host without FMA"
    );
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    // SAFETY: AVX2 and FMA verified and lengths asserted equal above.
    unsafe { dot_relaxed(x, y) }
}
